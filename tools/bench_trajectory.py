#!/usr/bin/env python3
"""Record benchmark trajectories (host perf or simulated SLO) over time.

Runs a bench binary in --csv mode, appends one entry to a JSON history file,
and fails when the tracked value regressed more than the threshold against
the best prior entry. The comparison is keyed per row: only rows whose key
columns match in BOTH entries are summed on each side, so adding a new
scenario (which inflates the raw total) cannot trip the gate, and a prior
entry from an older checkout without the new rows stays comparable forever.
The checksum column is the simulated-behaviour fingerprint: a changed
checksum means the build simulates different events, which the golden tests
gate separately — here it is reported so the trajectory stays interpretable.

The column schema is configurable so one tool serves every bench:
  microbench_simcore (default): key scenario,nodes,pages,lock_model,
      value wall_ms (host perf), checksum checksum.
  serving_mixes: --key-cols policy,mix,phase --value-col p99_us
      --checksum-col cksum (simulated tail latency).

A missing, empty, or corrupt history file is treated as a fresh start (with
a warning), so the first run of a new clone or a wiped file never crashes.

Usage:
  tools/bench_trajectory.py --bench build/bench/microbench_simcore \
      [--file BENCH_simcore.json] [--label "..."] [--commit SHA] \
      [--threshold 0.10] [--csv-in rows.csv] [--no-gate] \
      [--bench-args "--quick"] [--key-cols a,b] [--value-col v] \
      [--checksum-col c]
  tools/bench_trajectory.py --check

--csv-in skips running the binary and ingests a previously captured
`--csv` output instead (used to seed the file from an older checkout).
--check runs the built-in self-test (no benchmark binary needed) and exits
0/1; CI invokes it so gate bugs fail fast instead of mis-gating a PR.
"""

import argparse
import csv
import io
import json
import os
import subprocess
import sys
import tempfile
import time

DEFAULT_KEY_COLS = "scenario,nodes,pages,lock_model"
DEFAULT_VALUE_COL = "wall_ms"
DEFAULT_CHECKSUM_COL = "checksum"


def run_bench(bench, extra_args):
    out = subprocess.run([bench] + extra_args + ["--csv"], check=True,
                         capture_output=True, text=True).stdout
    return out


def parse_rows(text, key_cols, value_col, checksum_col):
    rows = []
    for rec in csv.DictReader(io.StringIO(text)):
        row = {}
        for c in key_cols + [value_col, checksum_col]:
            if c not in rec:
                sys.exit(f"bench_trajectory: CSV is missing column {c!r} "
                         f"(has: {', '.join(rec)})")
        for c in key_cols:
            v = rec[c]
            try:
                v = int(v)  # keep numeric keys numeric in the JSON
            except ValueError:
                pass
            row[c] = v
        row[value_col] = float(rec[value_col])
        row[checksum_col] = rec[checksum_col]
        rows.append(row)
    if not rows:
        sys.exit("bench_trajectory: no CSV rows parsed")
    return rows


def row_key(r, key_cols):
    # str()-normalized so an int 2 from a fresh parse matches a "2" from an
    # older hand-edited history file.
    return tuple(str(r.get(c)) for c in key_cols)


def load_history(path):
    """Load the history file; missing/empty/corrupt all yield a fresh start."""
    fresh = {"schema": 1, "entries": []}
    if not os.path.exists(path):
        return fresh
    try:
        with open(path) as f:
            data = json.load(f)
        if not isinstance(data, dict) or not isinstance(
                data.get("entries"), list):
            raise ValueError("unexpected shape")
        return data
    except (json.JSONDecodeError, ValueError, OSError) as e:
        print(f"bench_trajectory: WARNING {path} unreadable ({e}); "
              "starting a fresh history", file=sys.stderr)
        return fresh


def compare_common(rows, prior_entries, key_cols=None, value_col=None):
    """Tracked-value ratio of `rows` vs the *best* (lowest over shared rows)
    prior entry: the maximum per-entry ratio, so a slow old entry can never
    mask a regression against the fastest one. Returns (ratio, entry) or
    (None, None) when no prior entry shares any row key."""
    key_cols = key_cols or DEFAULT_KEY_COLS.split(",")
    value_col = value_col or DEFAULT_VALUE_COL
    new_by_key = {row_key(r, key_cols): r[value_col] for r in rows}
    best_ratio, best_entry = None, None
    for e in prior_entries:
        common = [(new_by_key[row_key(r, key_cols)], r[value_col])
                  for r in e.get("rows", [])
                  if value_col in r and row_key(r, key_cols) in new_by_key]
        prior_sum = sum(p for _, p in common)
        if not common or prior_sum <= 0:
            continue
        ratio = sum(n for n, _ in common) / prior_sum
        if best_ratio is None or ratio > best_ratio:
            best_ratio, best_entry = ratio, e
    return best_ratio, best_entry


def append_and_gate(rows, args, key_cols, value_col, checksum_col):
    total = round(sum(r[value_col] for r in rows), 3)
    data = load_history(args.file)

    # Snapshot prior entries before appending: data["entries"] is mutated
    # below, and the gate must compare against the *prior* best only.
    prior = list(data["entries"])
    entry = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": args.commit or git_commit(),
        "label": args.label,
        f"total_{value_col}": total,
        "rows": rows,
    }
    best_ratio, _ = compare_common(rows, prior, key_cols, value_col)
    if best_ratio is not None:
        entry["vs_best_prior"] = round(best_ratio, 3)
        last = prior[-1]
        last_by_key = {row_key(r, key_cols): r.get(checksum_col)
                       for r in last.get("rows", [])}
        if any(last_by_key.get(row_key(r, key_cols),
                               r[checksum_col]) != r[checksum_col]
               for r in rows):
            print("bench_trajectory: NOTE simulated-behaviour checksums "
                  "changed vs previous entry (golden tests gate whether "
                  "that is allowed)", file=sys.stderr)
    data["entries"].append(entry)

    with open(args.file, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"bench_trajectory: appended entry ({total} {value_col} total, "
          f"{len(rows)} rows) to {args.file}")

    if best_ratio is not None and not args.no_gate:
        limit = 1.0 + args.threshold
        if best_ratio > limit:
            sys.exit(f"bench_trajectory: REGRESSION common-row {value_col} "
                     f"{best_ratio:.3f}x best prior exceeds "
                     f"{limit:.3f}x (threshold {args.threshold:.0%})")
        print(f"bench_trajectory: OK {best_ratio:.3f}x vs best prior "
              "over common rows")


def git_commit():
    try:
        return subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              check=True, capture_output=True,
                              text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def self_check():
    """Exercise the load tolerance and the intersection gate in a tempdir;
    prints one line per case and exits 1 on the first failure."""
    failures = []
    default_keys = DEFAULT_KEY_COLS.split(",")

    def case(name, ok):
        print(f"bench_trajectory --check: {'ok' if ok else 'FAIL'} {name}")
        if not ok:
            failures.append(name)

    def row(scenario, ms, checksum="00"):
        return {"scenario": scenario, "nodes": 2, "pages": 4096,
                "lock_model": "coarse", "wall_ms": ms, "checksum": checksum}

    with tempfile.TemporaryDirectory() as d:
        missing = os.path.join(d, "missing.json")
        case("missing file -> fresh history",
             load_history(missing) == {"schema": 1, "entries": []})

        empty = os.path.join(d, "empty.json")
        open(empty, "w").close()
        case("empty file -> fresh history",
             load_history(empty)["entries"] == [])

        corrupt = os.path.join(d, "corrupt.json")
        with open(corrupt, "w") as f:
            f.write("{not json")
        case("corrupt file -> fresh history",
             load_history(corrupt)["entries"] == [])

        shaped = os.path.join(d, "shaped.json")
        with open(shaped, "w") as f:
            json.dump(["wrong", "shape"], f)
        case("wrong-shape file -> fresh history",
             load_history(shaped)["entries"] == [])

        prior = [{"total_wall_ms": 2.0, "rows": [row("a", 1.0), row("b", 1.0)]}]
        ratio, _ = compare_common([row("a", 1.0), row("b", 1.0)], prior)
        case("identical rows -> ratio 1.0", ratio is not None
             and abs(ratio - 1.0) < 1e-9)

        ratio, _ = compare_common([row("a", 2.0), row("b", 2.0)], prior)
        case("2x slower -> ratio 2.0 (would trip 10% gate)",
             ratio is not None and abs(ratio - 2.0) < 1e-9)

        # A new scenario inflates the raw total but must not affect the
        # gate: only rows present in both entries are compared.
        ratio, _ = compare_common(
            [row("a", 1.0), row("b", 1.0), row("new", 50.0)], prior)
        case("new scenario rows excluded from gate",
             ratio is not None and abs(ratio - 1.0) < 1e-9)

        ratio, _ = compare_common([row("other", 1.0)], prior)
        case("no common rows -> no gate", ratio is None)

        # Best prior wins: a slow older entry must not mask a regression
        # against the fastest one.
        two = [{"total_wall_ms": 4.0, "rows": [row("a", 4.0)]},
               {"total_wall_ms": 1.0, "rows": [row("a", 1.0)]}]
        ratio, best = compare_common([row("a", 2.0)], two)
        case("gate compares against best prior",
             ratio is not None and abs(ratio - 2.0) < 1e-9
             and best is two[1])

        parsed = parse_rows("scenario,nodes,pages,lock_model,wall_ms,checksum\n"
                            "a,2,4096,coarse,1.5,00ff\n",
                            default_keys, "wall_ms", "checksum")
        case("csv round-trip", parsed == [row("a", 1.5, "00ff")])

        # Custom column schema (serving_mixes): different keys, a simulated
        # latency value column, extra CSV columns ignored.
        skeys = ["policy", "mix", "phase"]

        def srow(pol, p99, ck="aa"):
            return {"policy": pol, "mix": "scan_mixed", "phase": 0,
                    "p99_us": p99, "cksum": ck}

        parsed = parse_rows(
            "policy,mix,phase,requests,p50_us,p99_us,cksum\n"
            "autonuma,scan_mixed,0,72000,1.1,15.473,aa\n",
            skeys, "p99_us", "cksum")
        case("custom columns parse (extras dropped)",
             parsed == [srow("autonuma", 15.473)])

        sprior = [{"rows": [srow("autonuma", 10.0)]}]
        ratio, _ = compare_common([srow("autonuma", 12.0)], sprior,
                                  skeys, "p99_us")
        case("custom value column ratio",
             ratio is not None and abs(ratio - 1.2) < 1e-9)

        # str()-normalized keys: an int phase matches a stringly-typed one
        # from a hand-edited history.
        stringly = [{"rows": [{"policy": "autonuma", "mix": "scan_mixed",
                               "phase": "0", "p99_us": 10.0, "cksum": "aa"}]}]
        ratio, _ = compare_common([srow("autonuma", 10.0)], stringly,
                                  skeys, "p99_us")
        case("int/str key normalization",
             ratio is not None and abs(ratio - 1.0) < 1e-9)

    if failures:
        sys.exit(f"bench_trajectory --check: {len(failures)} failure(s)")
    print("bench_trajectory --check: all cases passed")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", help="path to the bench binary")
    ap.add_argument("--bench-args", default="",
                    help="extra arguments for the bench run (e.g. --quick)")
    ap.add_argument("--file", default="BENCH_simcore.json")
    ap.add_argument("--label", default="")
    ap.add_argument("--commit", default=None)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fail when the common-row value exceeds best prior "
                         "by this fraction (default 0.10)")
    ap.add_argument("--key-cols", default=DEFAULT_KEY_COLS,
                    help="comma-separated identity columns of one row")
    ap.add_argument("--value-col", default=DEFAULT_VALUE_COL,
                    help="numeric column the gate tracks")
    ap.add_argument("--checksum-col", default=DEFAULT_CHECKSUM_COL,
                    help="simulated-behaviour fingerprint column")
    ap.add_argument("--csv-in", help="ingest this CSV instead of running")
    ap.add_argument("--no-gate", action="store_true",
                    help="append without the regression check")
    ap.add_argument("--check", action="store_true",
                    help="run the built-in self-test and exit")
    args = ap.parse_args()

    if args.check:
        self_check()
        return

    key_cols = [c.strip() for c in args.key_cols.split(",") if c.strip()]
    if not key_cols:
        ap.error("--key-cols must name at least one column")

    if args.csv_in:
        with open(args.csv_in) as f:
            text = f.read()
    elif args.bench:
        text = run_bench(args.bench, args.bench_args.split())
    else:
        ap.error("one of --bench or --csv-in is required")
    rows = parse_rows(text, key_cols, args.value_col, args.checksum_col)

    append_and_gate(rows, args, key_cols, args.value_col, args.checksum_col)


if __name__ == "__main__":
    main()
