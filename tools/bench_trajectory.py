#!/usr/bin/env python3
"""Record simulator-core host performance over time.

Runs bench/microbench_simcore on its fixed default matrix (scenario x nodes x
pages x lock model), appends one entry to BENCH_simcore.json, and fails when
total wall-clock regressed more than the threshold against the best prior
entry. The checksum column is the simulated-behaviour fingerprint: a changed
checksum means the build simulates different events, which the golden tests
gate separately — here it is reported so the trajectory stays interpretable.

Usage:
  tools/bench_trajectory.py --bench build/bench/microbench_simcore \
      [--file BENCH_simcore.json] [--label "..."] [--commit SHA] \
      [--threshold 0.10] [--csv-in rows.csv] [--no-gate]

--csv-in skips running the binary and ingests a previously captured
`--csv` output instead (used to seed the file from an older checkout).
"""

import argparse
import csv
import io
import json
import os
import subprocess
import sys
import time


def run_bench(bench):
    out = subprocess.run([bench, "--csv"], check=True, capture_output=True,
                         text=True).stdout
    return out


def parse_rows(text):
    rows = []
    for rec in csv.DictReader(io.StringIO(text)):
        rows.append({
            "scenario": rec["scenario"],
            "nodes": int(rec["nodes"]),
            "pages": int(rec["pages"]),
            "lock_model": rec["lock_model"],
            "wall_ms": float(rec["wall_ms"]),
            "checksum": rec["checksum"],
        })
    if not rows:
        sys.exit("bench_trajectory: no CSV rows parsed")
    return rows


def git_commit():
    try:
        return subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                              check=True, capture_output=True,
                              text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", help="path to microbench_simcore")
    ap.add_argument("--file", default="BENCH_simcore.json")
    ap.add_argument("--label", default="")
    ap.add_argument("--commit", default=None)
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="fail when total wall-clock exceeds best prior by "
                         "this fraction (default 0.10)")
    ap.add_argument("--csv-in", help="ingest this CSV instead of running")
    ap.add_argument("--no-gate", action="store_true",
                    help="append without the regression check")
    args = ap.parse_args()

    if args.csv_in:
        with open(args.csv_in) as f:
            rows = parse_rows(f.read())
    elif args.bench:
        rows = parse_rows(run_bench(args.bench))
    else:
        ap.error("one of --bench or --csv-in is required")

    total = round(sum(r["wall_ms"] for r in rows), 3)

    data = {"schema": 1, "entries": []}
    if os.path.exists(args.file):
        with open(args.file) as f:
            data = json.load(f)

    # Snapshot prior totals before appending: data["entries"] is mutated
    # below, and the gate must compare against the *prior* best only.
    prior = list(data["entries"])
    entry = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": args.commit or git_commit(),
        "label": args.label,
        "total_wall_ms": total,
        "rows": rows,
    }
    if prior:
        best = min(e["total_wall_ms"] for e in prior)
        entry["vs_best_prior"] = round(total / best, 3)
        last = prior[-1]
        changed = {(r["scenario"], r["nodes"], r["pages"], r["lock_model"])
                   for r in rows} == \
                  {(r["scenario"], r["nodes"], r["pages"], r["lock_model"])
                   for r in last["rows"]} and \
                  any(a["checksum"] != b["checksum"]
                      for a, b in zip(rows, last["rows"]))
        if changed:
            print("bench_trajectory: NOTE simulated-behaviour checksums "
                  "changed vs previous entry (golden tests gate whether "
                  "that is allowed)", file=sys.stderr)
    data["entries"].append(entry)

    with open(args.file, "w") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"bench_trajectory: appended entry ({total} ms total, "
          f"{len(rows)} rows) to {args.file}")

    if prior and not args.no_gate:
        best = min(e["total_wall_ms"] for e in prior)
        limit = best * (1.0 + args.threshold)
        if total > limit:
            sys.exit(f"bench_trajectory: REGRESSION total {total} ms > "
                     f"{limit:.3f} ms (best prior {best} ms + "
                     f"{args.threshold:.0%})")
        print(f"bench_trajectory: OK total {total} ms vs best prior {best} ms")


if __name__ == "__main__":
    main()
