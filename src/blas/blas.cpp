#include "blas/blas.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace numasim::blas {

BlasEngine::BlasEngine(rt::Machine& m, BlasParams params)
    : m_(m), params_(params) {
  if (params_.numeric && m.kernel().phys().backing() != mem::Backing::kMaterialized)
    throw std::invalid_argument{"BlasEngine: numeric mode needs materialized memory"};
}

double BlasEngine::flop_ns(std::uint64_t flops) const {
  const auto& core = m_.topology().core_spec();
  const double eff =
      params_.flop_efficiency > 0.0 ? params_.flop_efficiency : core.gemm_efficiency;
  const double gflops = core.peak_gflops() * eff;  // flops per ns
  return static_cast<double>(flops) / gflops;
}

sim::Task<void> BlasEngine::account(rt::Thread& th, std::uint64_t flops,
                                    const Tile* reads, std::size_t nreads,
                                    const Tile* writes, std::size_t nwrites) {
  kern::Kernel& k = th.kernel();
  kern::ThreadCtx& ctx = th.ctx();

  std::uint64_t sum_bytes = 0;
  for (std::size_t i = 0; i < nreads; ++i) sum_bytes += reads[i].touched_bytes();
  for (std::size_t i = 0; i < nwrites; ++i) sum_bytes += writes[i].touched_bytes();

  // Cache model: operand sets fitting in the node's shared L3 stream each
  // byte once; larger sets pay the amplified (bytes_per_flop) traffic.
  const double l3 = static_cast<double>(
      m_.topology().node_spec(th.node()).l3_bytes);
  double scale = params_.cache_hit_fraction;
  if (sum_bytes > 0 &&
      static_cast<double>(sum_bytes) > params_.cache_fraction * l3) {
    scale = 1.0;
    const double amplified = params_.bytes_per_flop * static_cast<double>(flops);
    if (amplified > static_cast<double>(sum_bytes))
      scale = amplified / static_cast<double>(sum_bytes);
  }

  // Walk pages (faults, next-touch migration) and collect where the bytes
  // live; the data-plane charge happens below, in bounded slices.
  std::vector<std::uint64_t> by_node(m_.topology().num_nodes(), 0);
  std::vector<std::uint64_t> tile_nodes;
  auto walk = [&](const Tile& tile, vm::Prot want) {
    k.access_strided(ctx, tile.base, tile.rows, tile.row_bytes(),
                     tile.stride_bytes(), want, 0.0, 1.0, &tile_nodes);
    for (std::size_t n = 0; n < by_node.size(); ++n) by_node[n] += tile_nodes[n];
  };
  for (std::size_t i = 0; i < nreads; ++i) walk(reads[i], vm::Prot::kRead);
  for (std::size_t i = 0; i < nwrites; ++i) walk(writes[i], vm::Prot::kReadWrite);
  co_await th.sync();

  const double rate = k.cost().core_stream_bytes_per_us;
  const std::uint64_t slice = params_.stream_slice_bytes;
  for (topo::NodeId n = 0; n < by_node.size(); ++n) {
    auto remaining = static_cast<std::uint64_t>(
        static_cast<double>(by_node[n]) * scale + 0.5);
    while (remaining > 0) {
      const std::uint64_t now = std::min(remaining, slice);
      k.charge_stream(ctx, n, now, rate);
      remaining -= now;
      co_await th.sync();
    }
  }

  const auto fns = static_cast<sim::Time>(flop_ns(flops) + 0.5);
  ctx.clock += fns;
  ctx.stats.add(sim::CostKind::kCompute, fns);
  co_await th.sync();
}

std::vector<double> BlasEngine::load(rt::Thread& th, const Tile& t) const {
  std::vector<double> v(t.rows * t.cols);
  for (std::uint64_t r = 0; r < t.rows; ++r) {
    auto* dst = reinterpret_cast<std::byte*>(v.data() + r * t.cols);
    if (!m_.kernel().peek(th.ctx().pid, t.row_addr(r), {dst, t.row_bytes()}))
      throw std::runtime_error{"BlasEngine: tile not materialized/present"};
  }
  return v;
}

void BlasEngine::store(rt::Thread& th, const Tile& t,
                       const std::vector<double>& v) const {
  assert(v.size() == t.rows * t.cols);
  for (std::uint64_t r = 0; r < t.rows; ++r) {
    const auto* src = reinterpret_cast<const std::byte*>(v.data() + r * t.cols);
    if (!m_.kernel().poke(th.ctx().pid, t.row_addr(r), {src, t.row_bytes()}))
      throw std::runtime_error{"BlasEngine: tile not materialized/present"};
  }
}

sim::Task<void> BlasEngine::gemm_minus(rt::Thread& th, Tile a, Tile b, Tile c) {
  assert(a.cols == b.rows && a.rows == c.rows && b.cols == c.cols);
  const std::uint64_t flops = 2 * a.rows * b.cols * a.cols;
  const Tile reads[] = {a, b};
  const Tile writes[] = {c};
  co_await account(th, flops, reads, 2, writes, 1);

  if (params_.numeric) {
    const auto va = load(th, a);
    const auto vb = load(th, b);
    auto vc = load(th, c);
    const std::uint64_t m = a.rows, n = b.cols, kk = a.cols;
    for (std::uint64_t i = 0; i < m; ++i) {
      for (std::uint64_t l = 0; l < kk; ++l) {
        const double ail = va[i * kk + l];
        if (ail == 0.0) continue;
        for (std::uint64_t j = 0; j < n; ++j)
          vc[i * n + j] -= ail * vb[l * n + j];
      }
    }
    store(th, c, vc);
  }
  co_await th.sync();
}

sim::Task<void> BlasEngine::trsm_lower_left(rt::Thread& th, Tile d, Tile b) {
  assert(d.rows == d.cols && d.cols == b.rows);
  const std::uint64_t flops = d.rows * d.rows * b.cols;
  const Tile reads[] = {d};
  const Tile writes[] = {b};
  co_await account(th, flops, reads, 1, writes, 1);

  if (params_.numeric) {
    const auto vl = load(th, d);
    auto vb = load(th, b);
    const std::uint64_t n = d.rows, nc = b.cols;
    for (std::uint64_t k = 0; k < n; ++k) {
      for (std::uint64_t i = k + 1; i < n; ++i) {
        const double lik = vl[i * n + k];
        if (lik == 0.0) continue;
        for (std::uint64_t j = 0; j < nc; ++j)
          vb[i * nc + j] -= lik * vb[k * nc + j];
      }
    }
    store(th, b, vb);
  }
  co_await th.sync();
}

sim::Task<void> BlasEngine::trsm_upper_right(rt::Thread& th, Tile d, Tile b) {
  assert(d.rows == d.cols && d.cols == b.cols);
  const std::uint64_t flops = d.rows * d.rows * b.rows;
  const Tile reads[] = {d};
  const Tile writes[] = {b};
  co_await account(th, flops, reads, 1, writes, 1);

  if (params_.numeric) {
    const auto vu = load(th, d);
    auto vb = load(th, b);
    const std::uint64_t n = d.cols, nr = b.rows;
    for (std::uint64_t i = 0; i < nr; ++i) {
      for (std::uint64_t j = 0; j < n; ++j) {
        double x = vb[i * n + j];
        for (std::uint64_t k = 0; k < j; ++k)
          x -= vb[i * n + k] * vu[k * n + j];
        vb[i * n + j] = x / vu[j * n + j];
      }
    }
    store(th, b, vb);
  }
  co_await th.sync();
}

sim::Task<void> BlasEngine::getf2(rt::Thread& th, Tile d) {
  assert(d.rows == d.cols);
  const std::uint64_t n = d.rows;
  const std::uint64_t flops = 2 * n * n * n / 3;
  const Tile writes[] = {d};
  co_await account(th, flops, nullptr, 0, writes, 1);

  if (params_.numeric) {
    auto v = load(th, d);
    for (std::uint64_t k = 0; k < n; ++k) {
      const double pivot = v[k * n + k];
      if (pivot == 0.0) throw std::runtime_error{"getf2: zero pivot"};
      for (std::uint64_t i = k + 1; i < n; ++i) {
        v[i * n + k] /= pivot;
        const double lik = v[i * n + k];
        for (std::uint64_t j = k + 1; j < n; ++j)
          v[i * n + j] -= lik * v[k * n + j];
      }
    }
    store(th, d, v);
  }
  co_await th.sync();
}

sim::Task<void> BlasEngine::axpy(rt::Thread& th, double alpha, vm::Vaddr x,
                                 vm::Vaddr y, std::uint64_t n) {
  kern::Kernel& k = th.kernel();
  const double rate = k.cost().core_stream_bytes_per_us;
  // Exact streaming traffic: x read once, y read+written once.
  k.access(th.ctx(), x, n * kElemBytes, vm::Prot::kRead, rate);
  k.access(th.ctx(), y, n * kElemBytes, vm::Prot::kReadWrite, rate);
  const auto fns = static_cast<sim::Time>(flop_ns(2 * n) + 0.5);
  th.ctx().clock += fns;
  th.ctx().stats.add(sim::CostKind::kCompute, fns);

  if (params_.numeric) {
    std::vector<double> vx(n), vy(n);
    auto* bx = reinterpret_cast<std::byte*>(vx.data());
    auto* by = reinterpret_cast<std::byte*>(vy.data());
    if (!k.peek(th.ctx().pid, x, {bx, n * kElemBytes}) ||
        !k.peek(th.ctx().pid, y, {by, n * kElemBytes}))
      throw std::runtime_error{"axpy: vectors not materialized/present"};
    for (std::uint64_t i = 0; i < n; ++i) vy[i] += alpha * vx[i];
    k.poke(th.ctx().pid, y, {by, n * kElemBytes});
  }
  co_await th.sync();
}

sim::Task<double> BlasEngine::dot(rt::Thread& th, vm::Vaddr x, vm::Vaddr y,
                                  std::uint64_t n) {
  kern::Kernel& k = th.kernel();
  const double rate = k.cost().core_stream_bytes_per_us;
  k.access(th.ctx(), x, n * kElemBytes, vm::Prot::kRead, rate);
  k.access(th.ctx(), y, n * kElemBytes, vm::Prot::kRead, rate);
  const auto fns = static_cast<sim::Time>(flop_ns(2 * n) + 0.5);
  th.ctx().clock += fns;
  th.ctx().stats.add(sim::CostKind::kCompute, fns);

  double result = 0.0;
  if (params_.numeric) {
    std::vector<double> vx(n), vy(n);
    auto* bx = reinterpret_cast<std::byte*>(vx.data());
    auto* by = reinterpret_cast<std::byte*>(vy.data());
    if (!k.peek(th.ctx().pid, x, {bx, n * kElemBytes}) ||
        !k.peek(th.ctx().pid, y, {by, n * kElemBytes}))
      throw std::runtime_error{"dot: vectors not materialized/present"};
    for (std::uint64_t i = 0; i < n; ++i) result += vx[i] * vy[i];
  }
  co_await th.sync();
  co_return result;
}

void fill_matrix(rt::Machine& m, const Matrix& mat,
                 double (*f)(std::uint64_t, std::uint64_t)) {
  std::vector<double> row(mat.cols);
  for (std::uint64_t r = 0; r < mat.rows; ++r) {
    for (std::uint64_t c = 0; c < mat.cols; ++c) row[c] = f(r, c);
    const auto* src = reinterpret_cast<const std::byte*>(row.data());
    if (!m.kernel().poke(m.pid(), mat.at(r, 0), {src, mat.cols * kElemBytes}))
      throw std::runtime_error{"fill_matrix: matrix not populated/materialized"};
  }
}

std::vector<double> dump_matrix(rt::Machine& m, const Matrix& mat) {
  std::vector<double> v(mat.rows * mat.cols);
  for (std::uint64_t r = 0; r < mat.rows; ++r) {
    auto* dst = reinterpret_cast<std::byte*>(v.data() + r * mat.cols);
    if (!m.kernel().peek(m.pid(), mat.at(r, 0), {dst, mat.cols * kElemBytes}))
      throw std::runtime_error{"dump_matrix: matrix not populated/materialized"};
  }
  return v;
}

}  // namespace numasim::blas
