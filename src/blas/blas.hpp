// Simulated BLAS kernels: timing-modelled, optionally numerically real.
//
// Timing model. Each kernel touches its operand tiles through the MMU (so
// faults, first-touch placement and next-touch migration behave exactly as
// for any other access), then charges
//   * data traffic: operand bytes, amplified by `bytes_per_flop` when the
//     operand workset exceeds the cache (a 2009-era untuned BLAS streams
//     operands repeatedly); traffic is drawn from the nodes that actually
//     hold the pages, so locality and link congestion emerge naturally;
//   * arithmetic: flops / (core peak * gemm_efficiency).
// The cache test against the node's shared L3 is what makes small blocks
// placement-insensitive — the mechanism behind the paper's 512-block
// threshold (Table 1, Fig. 8).
//
// Numeric mode. On a materialized machine the kernels also perform the real
// double-precision arithmetic on the simulated memory contents, letting
// tests validate an entire LU factorization bit-for-bit against a host
// reference while migrations shuffle pages underneath.
#pragma once

#include <cstdint>
#include <vector>

#include "blas/tile.hpp"
#include "rt/team.hpp"

namespace numasim::blas {

struct BlasParams {
  /// Out-of-cache traffic amplification: bytes of memory traffic generated
  /// per floating-point operation (untuned 2009 BLAS, strided B accesses).
  double bytes_per_flop = 3.0;
  /// Operands must fit in this fraction of the node L3 to count as cached.
  double cache_fraction = 1.0;
  /// Fraction of operand bytes that still reach DRAM when the operand set is
  /// cache-resident (cross-call reuse keeps most lines hot). This is what
  /// makes small blocks placement-insensitive: there is little DRAM traffic
  /// left for migration to localize.
  double cache_hit_fraction = 0.25;
  /// Amplified traffic is charged to the hardware in slices of this many
  /// bytes, with an engine yield between slices, so concurrent kernels share
  /// DRAM/links fairly instead of blocking each other for whole operands.
  std::uint64_t stream_slice_bytes = 8u << 20;
  /// Sustained fraction of peak flops (overrides topo CoreSpec when >0).
  double flop_efficiency = 0.0;
  /// Also execute the arithmetic on materialized memory.
  bool numeric = false;
};

class BlasEngine {
 public:
  explicit BlasEngine(rt::Machine& m, BlasParams params = {});

  const BlasParams& params() const { return params_; }

  /// C -= A * B  (A: m×k, B: k×n, C: m×n).
  sim::Task<void> gemm_minus(rt::Thread& th, Tile a, Tile b, Tile c);

  /// B = L⁻¹ B with L the unit-lower-triangular factor stored in `d`.
  sim::Task<void> trsm_lower_left(rt::Thread& th, Tile d, Tile b);

  /// B = B U⁻¹ with U the upper-triangular factor stored in `d`.
  sim::Task<void> trsm_upper_right(rt::Thread& th, Tile d, Tile b);

  /// In-place unblocked LU of a square tile (no pivoting; see DESIGN.md).
  sim::Task<void> getf2(rt::Thread& th, Tile d);

  /// y += alpha * x over n doubles (BLAS1; exact streaming traffic).
  sim::Task<void> axpy(rt::Thread& th, double alpha, vm::Vaddr x, vm::Vaddr y,
                       std::uint64_t n);

  /// Sum of x[i]*y[i] (timing always; value only in numeric mode, else 0).
  sim::Task<double> dot(rt::Thread& th, vm::Vaddr x, vm::Vaddr y, std::uint64_t n);

 private:
  /// Touch the tiles and charge traffic + flops for one kernel invocation.
  /// Coroutine: yields between traffic slices for fair hardware sharing.
  sim::Task<void> account(rt::Thread& th, std::uint64_t flops, const Tile* reads,
                          std::size_t nreads, const Tile* writes,
                          std::size_t nwrites);

  double flop_ns(std::uint64_t flops) const;

  // Host-side numeric helpers (materialized machines only).
  std::vector<double> load(rt::Thread& th, const Tile& t) const;
  void store(rt::Thread& th, const Tile& t, const std::vector<double>& v) const;

  rt::Machine& m_;
  BlasParams params_;
};

/// Fill a simulated matrix with deterministic values (numeric machines);
/// element (r,c) = f(r,c). Uses poke() — no simulated time passes.
void fill_matrix(rt::Machine& m, const Matrix& mat, double (*f)(std::uint64_t, std::uint64_t));

/// Read a simulated matrix into host memory (no simulated time).
std::vector<double> dump_matrix(rt::Machine& m, const Matrix& mat);

}  // namespace numasim::blas
