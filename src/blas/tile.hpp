// Matrix and tile descriptors over simulated buffers.
//
// Matrices are row-major double-precision with a leading dimension, living
// at a simulated virtual address; a Tile is a rectangular view. Layout is
// deliberately the paper's: with ld = N doubles, a 512-wide tile's rows are
// exactly page-sized, which is the block-size threshold Table 1 hinges on.
#pragma once

#include <cstdint>

#include "vm/address_space.hpp"

namespace numasim::blas {

inline constexpr std::uint64_t kElemBytes = sizeof(double);

struct Matrix {
  vm::Vaddr base = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t ld = 0;  ///< leading dimension, in elements

  std::uint64_t bytes() const { return rows * ld * kElemBytes; }
  vm::Vaddr at(std::uint64_t r, std::uint64_t c) const {
    return base + (r * ld + c) * kElemBytes;
  }
};

struct Tile {
  vm::Vaddr base = 0;        ///< address of tile element (0,0)
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t ld = 0;      ///< parent leading dimension, in elements

  static Tile of(const Matrix& m, std::uint64_t r0, std::uint64_t c0,
                 std::uint64_t nr, std::uint64_t nc) {
    return Tile{m.at(r0, c0), nr, nc, m.ld};
  }

  std::uint64_t row_bytes() const { return cols * kElemBytes; }
  std::uint64_t stride_bytes() const { return ld * kElemBytes; }
  std::uint64_t touched_bytes() const { return rows * cols * kElemBytes; }
  vm::Vaddr row_addr(std::uint64_t r) const { return base + r * stride_bytes(); }
};

}  // namespace numasim::blas
