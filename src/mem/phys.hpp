// Physical memory: page frames and the per-NUMA-node frame allocator.
//
// A frame is 4 KiB of simulated physical memory on one node. Frames can be
// *materialized* (carry a real host buffer, so migration really copies bytes
// and tests can verify data integrity) or *phantom* (timing only, so 8 GiB
// worksets fit in host RAM). Capacity per node is enforced; callers fall
// back to other nodes in hop order, as Linux's zonelists do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.hpp"

namespace numasim::mem {

inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;

using FrameId = std::uint32_t;
inline constexpr FrameId kInvalidFrame = static_cast<FrameId>(-1);

/// Whether frames carry real 4 KiB host buffers.
enum class Backing : std::uint8_t { kPhantom, kMaterialized };

class PhysMem {
 public:
  /// Frame pool sized from the topology's per-node DRAM capacity, clamped to
  /// `max_frames_per_node` (0 = no clamp) so unit tests stay tiny.
  PhysMem(const topo::Topology& topo, Backing backing,
          std::uint64_t max_frames_per_node = 0);

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  /// Allocate a frame on exactly `node`; kInvalidFrame when the node is full.
  FrameId alloc_on(topo::NodeId node);

  /// Allocate on `preferred`, falling back to other nodes in increasing hop
  /// distance (ties by node id). kInvalidFrame only when the machine is full.
  FrameId alloc_near(topo::NodeId preferred);

  void free(FrameId f);

  topo::NodeId node_of(FrameId f) const { return frames_[f].node; }

  /// Host backing of a materialized frame; nullptr for phantom frames.
  std::byte* data(FrameId f) { return frames_[f].data.get(); }
  const std::byte* data(FrameId f) const { return frames_[f].data.get(); }

  Backing backing() const { return backing_; }
  std::uint64_t capacity_frames(topo::NodeId n) const { return per_node_[n].capacity; }
  std::uint64_t used_frames(topo::NodeId n) const { return per_node_[n].used; }
  std::uint64_t free_frames(topo::NodeId n) const {
    return per_node_[n].capacity - per_node_[n].used;
  }
  std::uint64_t total_used_frames() const;

  /// True when `f` is a live allocated frame (consistency checks).
  bool is_live(FrameId f) const {
    return f < frames_.size() && frames_[f].in_use;
  }

  /// Lifetime counters (diagnostics / tests).
  std::uint64_t total_allocs() const { return allocs_; }
  std::uint64_t total_frees() const { return frees_; }
  std::uint64_t fallback_allocs() const { return fallbacks_; }

 private:
  struct Frame {
    topo::NodeId node = topo::kInvalidNode;
    bool in_use = false;
    std::unique_ptr<std::byte[]> data;
  };
  struct NodePool {
    std::uint64_t capacity = 0;
    std::uint64_t used = 0;
    std::vector<FrameId> free_list;  // frames returned by free()
  };

  FrameId take_frame(topo::NodeId node);

  const topo::Topology& topo_;
  Backing backing_;
  std::vector<Frame> frames_;
  std::vector<NodePool> per_node_;
  std::vector<std::vector<topo::NodeId>> fallback_order_;  // per preferred node
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace numasim::mem
