// Physical memory: page frames and the per-NUMA-node frame allocator.
//
// A frame is 4 KiB of simulated physical memory on one node. Frames can be
// *materialized* (carry a real host buffer, so migration really copies bytes
// and tests can verify data integrity) or *phantom* (timing only, so 8 GiB
// worksets fit in host RAM). Capacity per node is enforced; callers fall
// back to other nodes in hop order, as Linux's zonelists do.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "topo/topology.hpp"

namespace numasim::mem {

inline constexpr unsigned kPageShift = 12;
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;

using FrameId = std::uint32_t;
inline constexpr FrameId kInvalidFrame = static_cast<FrameId>(-1);

/// Whether frames carry real 4 KiB host buffers.
enum class Backing : std::uint8_t { kPhantom, kMaterialized };

class PhysMem {
 public:
  /// Frame pool sized from the topology's per-node DRAM capacity, clamped to
  /// `max_frames_per_node` (0 = no clamp) so unit tests stay tiny.
  PhysMem(const topo::Topology& topo, Backing backing,
          std::uint64_t max_frames_per_node = 0);

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  /// Allocate a frame on exactly `node`; kInvalidFrame when the node is full
  /// or (unless `use_reserve`) its free frames are at/below the min
  /// watermark. `use_reserve` models GFP_ATOMIC-style dips into the reserve
  /// pool: only a truly full node fails.
  FrameId alloc_on(topo::NodeId node, bool use_reserve = false);

  /// Allocate on `preferred`, falling back to other nodes in increasing hop
  /// distance (ties by node id), skipping nodes at their min watermark (the
  /// zonelist walk). kInvalidFrame only when every node is exhausted.
  FrameId alloc_near(topo::NodeId preferred, bool use_reserve = false);

  void free(FrameId f);

  // --- memory-pressure model (Linux zone watermarks) -------------------------
  /// Keep `min` frames of every node in reserve (non-reserve allocations fail
  /// first) and flag pressure once free frames drop below `low`. Fractions
  /// of each node's capacity; both default to 0 (no watermarks).
  void set_watermarks(double min_frac, double low_frac);
  /// Per-node override in absolute frames.
  void set_node_watermarks(topo::NodeId n, std::uint64_t min_frames,
                           std::uint64_t low_frames);
  std::uint64_t min_watermark(topo::NodeId n) const { return per_node_[n].wm_min; }
  std::uint64_t low_watermark(topo::NodeId n) const { return per_node_[n].wm_low; }
  /// True when `n`'s free frames are below its low watermark (kswapd would
  /// be running).
  bool under_pressure(topo::NodeId n) const {
    return free_frames(n) < per_node_[n].wm_low;
  }

  /// Shrink (or restore, up to the construction-time size) node `n`'s usable
  /// capacity. Fault plans use this to exhaust a node deterministically;
  /// frames already allocated above the new cap stay valid until freed.
  void set_node_capacity(topo::NodeId n, std::uint64_t frames);

  /// Home node of frame `f`. Reads a dense side array rather than striding
  /// the Frame records — this is the single hottest lookup in the simulator
  /// (every access/walk resolves frame placement per page).
  topo::NodeId node_of(FrameId f) const { return node_[f]; }

  // --- shadow-frame accounting (transactional migration) ---------------------
  /// Mark/unmark `f` as a transactional shadow frame: a second physical copy
  /// of a still-mapped page, held only between the shadow copy and the
  /// commit flip (or abort). No PTE references it, so the consistency audit
  /// accounts for it separately; free() drops the mark automatically.
  void mark_shadow(FrameId f);
  void clear_shadow(FrameId f);
  bool is_shadow(FrameId f) const {
    return f < frames_.size() && frames_[f].in_use && frames_[f].shadow;
  }
  std::uint64_t shadow_frames(topo::NodeId n) const {
    return per_node_[n].shadow;
  }
  std::uint64_t total_shadow_frames() const;

  /// Pressure counters: allocations denied only by the min watermark, and
  /// reserve-pool allocations that dipped below it.
  std::uint64_t watermark_blocks(topo::NodeId n) const {
    return per_node_[n].watermark_blocks;
  }
  std::uint64_t reserve_allocs(topo::NodeId n) const {
    return per_node_[n].reserve_allocs;
  }

  /// Host backing of a materialized frame; nullptr for phantom frames.
  std::byte* data(FrameId f) { return frames_[f].data.get(); }
  const std::byte* data(FrameId f) const { return frames_[f].data.get(); }

  Backing backing() const { return backing_; }
  std::uint64_t capacity_frames(topo::NodeId n) const { return per_node_[n].capacity; }
  std::uint64_t used_frames(topo::NodeId n) const { return per_node_[n].used; }
  std::uint64_t free_frames(topo::NodeId n) const {
    // A capacity cap may drop below the live count; clamp at zero.
    const NodePool& p = per_node_[n];
    return p.used >= p.capacity ? 0 : p.capacity - p.used;
  }
  std::uint64_t total_used_frames() const;

  // --- per-tier occupancy (memory tiering) ------------------------------------
  /// Live frames / usable capacity summed over every node on tier `t`.
  /// `tier_used_frames` is maintained incrementally by take_frame()/free();
  /// audit_tiers() recomputes it from the per-node pools and throws
  /// std::logic_error on drift (hooked into Kernel::validate()).
  std::uint64_t tier_used_frames(topo::MemTier t) const {
    return tier_used_[static_cast<std::size_t>(t)];
  }
  std::uint64_t tier_capacity_frames(topo::MemTier t) const;
  void audit_tiers() const;

  /// True when `f` is a live allocated frame (consistency checks).
  bool is_live(FrameId f) const {
    return f < frames_.size() && frames_[f].in_use;
  }

  /// Lifetime counters (diagnostics / tests).
  std::uint64_t total_allocs() const { return allocs_; }
  std::uint64_t total_frees() const { return frees_; }
  std::uint64_t fallback_allocs() const { return fallbacks_; }

 private:
  struct Frame {
    topo::NodeId node = topo::kInvalidNode;
    bool in_use = false;
    std::unique_ptr<std::byte[]> data;
    bool shadow = false;  ///< held by an in-flight transactional migration
  };
  struct NodePool {
    std::uint64_t capacity = 0;
    std::uint64_t base_capacity = 0;  // construction-time size (cap ceiling)
    std::uint64_t used = 0;
    std::uint64_t wm_min = 0;  // frames kept in reserve
    std::uint64_t wm_low = 0;  // pressure threshold
    std::uint64_t watermark_blocks = 0;
    std::uint64_t reserve_allocs = 0;
    std::uint64_t shadow = 0;  // live frames currently marked shadow
    std::vector<FrameId> free_list;  // frames returned by free()
  };

  FrameId take_frame(topo::NodeId node, bool use_reserve);

  const topo::Topology& topo_;
  Backing backing_;
  std::vector<Frame> frames_;
  std::vector<topo::NodeId> node_;  // parallel to frames_: home node (fixed)
  std::vector<NodePool> per_node_;
  std::vector<topo::MemTier> node_tier_;             // cached node -> tier
  std::array<std::uint64_t, 3> tier_used_{};         // live frames per tier
  std::vector<std::vector<topo::NodeId>> fallback_order_;  // per preferred node
  std::uint64_t allocs_ = 0;
  std::uint64_t frees_ = 0;
  std::uint64_t fallbacks_ = 0;
};

// take_frame / free / clear_shadow are the allocator's per-page hot path
// (every fault and migration goes through them); defined inline so callers
// don't pay an out-of-line call for a handful of counter updates.
inline void PhysMem::clear_shadow(FrameId f) {
  assert(f < frames_.size());
  if (frames_[f].shadow) {
    frames_[f].shadow = false;
    assert(per_node_[frames_[f].node].shadow > 0);
    --per_node_[frames_[f].node].shadow;
  }
}

inline FrameId PhysMem::take_frame(topo::NodeId node, bool use_reserve) {
  NodePool& pool = per_node_[node];
  if (pool.used >= pool.capacity) return kInvalidFrame;
  const std::uint64_t free = pool.capacity - pool.used;
  if (free <= pool.wm_min) {
    // Only reserve-entitled allocations may dip below the min watermark.
    if (!use_reserve) {
      ++pool.watermark_blocks;
      return kInvalidFrame;
    }
    ++pool.reserve_allocs;
  }
  ++pool.used;
  ++tier_used_[static_cast<std::size_t>(node_tier_[node])];
  ++allocs_;
  FrameId id;
  if (!pool.free_list.empty()) {
    id = pool.free_list.back();
    pool.free_list.pop_back();
    frames_[id].in_use = true;
  } else {
    id = static_cast<FrameId>(frames_.size());
    frames_.push_back(Frame{node, true, nullptr});
    node_.push_back(node);
  }
  if (backing_ == Backing::kMaterialized && !frames_[id].data) {
    frames_[id].data = std::make_unique<std::byte[]>(kPageSize);
  }
  return id;
}

inline void PhysMem::free(FrameId f) {
  assert(f < frames_.size() && frames_[f].in_use);
  clear_shadow(f);
  Frame& frame = frames_[f];
  frame.in_use = false;
  NodePool& pool = per_node_[frame.node];
  assert(pool.used > 0);
  --pool.used;
  assert(tier_used_[static_cast<std::size_t>(node_tier_[frame.node])] > 0);
  --tier_used_[static_cast<std::size_t>(node_tier_[frame.node])];
  ++frees_;
  pool.free_list.push_back(f);
}

}  // namespace numasim::mem
