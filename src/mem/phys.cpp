#include "mem/phys.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>

namespace numasim::mem {

PhysMem::PhysMem(const topo::Topology& topo, Backing backing,
                 std::uint64_t max_frames_per_node)
    : topo_(topo), backing_(backing) {
  per_node_.resize(topo.num_nodes());
  fallback_order_.resize(topo.num_nodes());
  node_tier_.reserve(topo.num_nodes());
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n)
    node_tier_.push_back(topo.node_spec(n).tier);
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    std::uint64_t cap = topo.node_spec(n).dram_capacity_bytes >> kPageShift;
    if (max_frames_per_node != 0) cap = std::min(cap, max_frames_per_node);
    per_node_[n].capacity = cap;
    per_node_[n].base_capacity = cap;

    auto& order = fallback_order_[n];
    order.resize(topo.num_nodes());
    std::iota(order.begin(), order.end(), topo::NodeId{0});
    std::stable_sort(order.begin(), order.end(), [&](topo::NodeId a, topo::NodeId b) {
      return topo.hops(n, a) < topo.hops(n, b);
    });
  }
}

FrameId PhysMem::alloc_on(topo::NodeId node, bool use_reserve) {
  assert(node < per_node_.size());
  return take_frame(node, use_reserve);
}

FrameId PhysMem::alloc_near(topo::NodeId preferred, bool use_reserve) {
  assert(preferred < per_node_.size());
  for (topo::NodeId n : fallback_order_[preferred]) {
    const FrameId f = take_frame(n, use_reserve);
    if (f != kInvalidFrame) {
      if (n != preferred) ++fallbacks_;
      return f;
    }
  }
  return kInvalidFrame;
}

void PhysMem::set_watermarks(double min_frac, double low_frac) {
  assert(min_frac >= 0.0 && low_frac >= min_frac);
  for (topo::NodeId n = 0; n < per_node_.size(); ++n) {
    const double cap = static_cast<double>(per_node_[n].capacity);
    set_node_watermarks(n, static_cast<std::uint64_t>(cap * min_frac),
                        static_cast<std::uint64_t>(cap * low_frac));
  }
}

void PhysMem::set_node_watermarks(topo::NodeId n, std::uint64_t min_frames,
                                  std::uint64_t low_frames) {
  assert(n < per_node_.size());
  per_node_[n].wm_min = min_frames;
  per_node_[n].wm_low = std::max(min_frames, low_frames);
}

void PhysMem::set_node_capacity(topo::NodeId n, std::uint64_t frames) {
  assert(n < per_node_.size());
  per_node_[n].capacity = std::min(frames, per_node_[n].base_capacity);
}

void PhysMem::mark_shadow(FrameId f) {
  assert(is_live(f));
  if (!frames_[f].shadow) {
    frames_[f].shadow = true;
    ++per_node_[frames_[f].node].shadow;
  }
}

std::uint64_t PhysMem::total_shadow_frames() const {
  std::uint64_t sum = 0;
  for (const auto& p : per_node_) sum += p.shadow;
  return sum;
}

std::uint64_t PhysMem::tier_capacity_frames(topo::MemTier t) const {
  std::uint64_t sum = 0;
  for (topo::NodeId n = 0; n < per_node_.size(); ++n)
    if (node_tier_[n] == t) sum += per_node_[n].capacity;
  return sum;
}

void PhysMem::audit_tiers() const {
  std::array<std::uint64_t, 3> want{};
  for (topo::NodeId n = 0; n < per_node_.size(); ++n)
    want[static_cast<std::size_t>(node_tier_[n])] += per_node_[n].used;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (want[i] != tier_used_[i])
      throw std::logic_error{
          "PhysMem::audit_tiers: tier " +
          std::string{topo::mem_tier_name(static_cast<topo::MemTier>(i))} +
          " accounts " + std::to_string(tier_used_[i]) + " used frames, nodes sum to " +
          std::to_string(want[i])};
  }
}

std::uint64_t PhysMem::total_used_frames() const {
  std::uint64_t sum = 0;
  for (const auto& p : per_node_) sum += p.used;
  return sum;
}

}  // namespace numasim::mem
