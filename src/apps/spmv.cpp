#include "apps/spmv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lib/numalib.hpp"
#include "sim/rng.hpp"

namespace numasim::apps {

namespace {

constexpr std::uint64_t kElem = sizeof(double);

double value_of(std::uint64_t k) { return 1.0 + 0.25 * static_cast<double>(k % 7); }
double x_of(std::uint64_t i) {
  return std::sin(static_cast<double>(i) * 0.37) + 1.5;
}

}  // namespace

Spmv::Spmv(rt::Machine& m, rt::Team& team, SpmvConfig cfg)
    : m_(m), team_(team), cfg_(cfg) {
  if (cfg_.n == 0 || cfg_.nnz_per_row == 0)
    throw std::invalid_argument{"Spmv: empty matrix"};
  if (cfg_.numeric && m.kernel().phys().backing() != mem::Backing::kMaterialized)
    throw std::invalid_argument{"Spmv: numeric mode needs materialized memory"};
  if (cfg_.policy == SpmvConfig::Policy::kNextTouchReplX)
    m.kernel().set_replication_enabled(true);
  generate_structure();
}

void Spmv::generate_structure() {
  sim::Rng rng(cfg_.seed);
  csr_.row_ptr.assign(cfg_.n + 1, 0);
  csr_.col.clear();
  csr_.col.reserve(cfg_.n * cfg_.nnz_per_row);
  for (std::uint64_t i = 0; i < cfg_.n; ++i) {
    // Band around the diagonal plus a few far entries (AMR-ish stencil).
    const unsigned band = cfg_.nnz_per_row * 3 / 4;
    for (unsigned k = 0; k < cfg_.nnz_per_row; ++k) {
      std::uint64_t c;
      if (k < band) {
        const std::uint64_t off = k;
        c = (i + off) % cfg_.n;
      } else {
        c = rng.below(cfg_.n);
      }
      csr_.col.push_back(c);
    }
    std::sort(csr_.col.begin() + static_cast<std::ptrdiff_t>(csr_.row_ptr[i]),
              csr_.col.end());
    csr_.row_ptr[i + 1] = csr_.col.size();
  }
  csr_.nnz = csr_.col.size();
}

std::vector<std::uint64_t> Spmv::partition(std::uint64_t shift) const {
  // Equal-nnz contiguous bounds over rows, then rotated by `shift` rows.
  const unsigned parts = team_.size();
  std::vector<std::uint64_t> bounds{0};
  const std::uint64_t target = csr_.nnz / parts;
  for (std::uint64_t i = 0; i < cfg_.n && bounds.size() < parts; ++i) {
    if (csr_.row_ptr[i + 1] >= target * bounds.size()) bounds.push_back(i + 1);
  }
  while (bounds.size() <= parts) bounds.push_back(cfg_.n);
  for (auto& b : bounds) b = (b + shift) % cfg_.n;
  return bounds;  // parts+1 entries; consecutive pairs may wrap
}

sim::Task<void> Spmv::run(rt::Thread& main) {
  kern::Kernel& k = m_.kernel();
  const auto all = vm::MemPolicy::interleave(m_.topology().all_nodes_mask());
  csr_.values = k.sys_mmap(main.ctx(), csr_.nnz * kElem, vm::Prot::kReadWrite, all, "val");
  csr_.colidx = k.sys_mmap(main.ctx(), csr_.nnz * 8, vm::Prot::kReadWrite, all, "col");
  csr_.x = k.sys_mmap(main.ctx(), cfg_.n * kElem, vm::Prot::kReadWrite, all, "x");
  csr_.y = k.sys_mmap(main.ctx(), cfg_.n * kElem, vm::Prot::kReadWrite, all, "y");
  lib::populate(main.ctx(), k, csr_.values, csr_.nnz * kElem);
  lib::populate(main.ctx(), k, csr_.colidx, csr_.nnz * 8);
  lib::populate(main.ctx(), k, csr_.x, cfg_.n * kElem);
  lib::populate(main.ctx(), k, csr_.y, cfg_.n * kElem);
  co_await main.sync();

  if (cfg_.numeric) {
    std::vector<double> vals(csr_.nnz), xs(cfg_.n);
    for (std::uint64_t i = 0; i < csr_.nnz; ++i) vals[i] = value_of(i);
    for (std::uint64_t i = 0; i < cfg_.n; ++i) xs[i] = x_of(i);
    k.poke(m_.pid(), csr_.values,
           {reinterpret_cast<const std::byte*>(vals.data()), csr_.nnz * kElem});
    k.poke(m_.pid(), csr_.x,
           {reinterpret_cast<const std::byte*>(xs.data()), cfg_.n * kElem});
  }

  const std::uint64_t migrated0 = k.stats().pages_migrated_nexttouch;
  const std::uint64_t replicas0 = k.stats().replica_pages;
  const sim::Time t0 = main.now();

  const double flop_rate =
      m_.topology().core_spec().peak_gflops() *
      m_.topology().core_spec().gemm_efficiency * 0.25;  // SpMV is inefficient

  std::uint64_t shift = 0;
  for (unsigned iter = 0; iter < cfg_.iterations; ++iter) {
    if (iter != 0 && cfg_.repartition_every != 0 &&
        iter % cfg_.repartition_every == 0)
      shift += cfg_.n / (2 * team_.size());

    if (cfg_.policy != SpmvConfig::Policy::kStatic) {
      co_await main.madvise(csr_.values, csr_.nnz * kElem,
                            kern::Advice::kMigrateOnNextTouch);
      co_await main.madvise(csr_.colidx, csr_.nnz * 8,
                            kern::Advice::kMigrateOnNextTouch);
      if (cfg_.policy == SpmvConfig::Policy::kNextTouchReplX &&
          k.replica_pages(m_.pid()) == 0) {
        co_await main.madvise(csr_.x, cfg_.n * kElem, kern::Advice::kReplicate);
      }
    }

    const auto bounds = partition(shift);
    rt::Team::WorkerFn sweep = [this, bounds, flop_rate](
                                   unsigned tid, rt::Thread& w) -> sim::Task<void> {
      // Row range, possibly wrapping past row n.
      const std::uint64_t lo = bounds[tid];
      const std::uint64_t hi = bounds[tid + 1];
      std::uint64_t segs[2][2] = {{lo, hi}, {0, 0}};
      if (hi < lo) {
        segs[0][1] = cfg_.n;
        segs[1][0] = 0;
        segs[1][1] = hi;
      }
      std::uint64_t my_nnz = 0;
      for (auto& seg : segs) {
        if (seg[0] == seg[1]) continue;
        const std::uint64_t e0 = csr_.row_ptr[seg[0]];
        const std::uint64_t e1 = csr_.row_ptr[seg[1]];
        my_nnz += e1 - e0;
        // CSR streams: values + column indices of my rows.
        co_await w.touch(csr_.values + e0 * kElem, (e1 - e0) * kElem,
                         vm::Prot::kRead);
        co_await w.touch(csr_.colidx + e0 * 8, (e1 - e0) * 8, vm::Prot::kRead);
        // Result segment.
        co_await w.touch(csr_.y + seg[0] * kElem, (seg[1] - seg[0]) * kElem,
                         vm::Prot::kReadWrite);
      }
      // Gather of the shared x vector: scattered over all of x.
      co_await w.touch(csr_.x, cfg_.n * kElem, vm::Prot::kRead);
      co_await w.compute(static_cast<sim::Time>(
          static_cast<double>(2 * my_nnz) / flop_rate));
    };
    co_await team_.parallel(main, std::move(sweep));

    if (cfg_.numeric && iter == 0) {
      // Verify: compute y from the *simulated* contents and from pure host
      // data; migrations/replication must be invisible.
      std::vector<double> vals(csr_.nnz), xs(cfg_.n);
      k.peek(m_.pid(), csr_.values,
             {reinterpret_cast<std::byte*>(vals.data()), csr_.nnz * kElem});
      k.peek(m_.pid(), csr_.x,
             {reinterpret_cast<std::byte*>(xs.data()), cfg_.n * kElem});
      sim_y_.assign(cfg_.n, 0.0);
      ref_y_.assign(cfg_.n, 0.0);
      for (std::uint64_t i = 0; i < cfg_.n; ++i) {
        for (std::uint64_t e = csr_.row_ptr[i]; e < csr_.row_ptr[i + 1]; ++e) {
          sim_y_[i] += vals[e] * xs[csr_.col[e]];
          ref_y_[i] += value_of(e) * x_of(csr_.col[e]);
        }
      }
      k.poke(m_.pid(), csr_.y,
             {reinterpret_cast<const std::byte*>(sim_y_.data()), cfg_.n * kElem});
    }
  }

  result_.solve_time = main.now() - t0;
  result_.pages_migrated = k.stats().pages_migrated_nexttouch - migrated0;
  result_.replicas_created = k.stats().replica_pages - replicas0;
}

}  // namespace numasim::apps
