// Independent BLAS3 multiplications in concurrent threads (paper Fig. 8).
//
// One thread per core computes its own C = A·B. All matrices are first
// allocated and initialized by the main thread (so first-touch puts every
// page on the main thread's node — the worst case the figure probes), then:
//   kStatic    — compute in place, paying remote access for 3/4 of threads;
//   kKernelNT  — each thread madvises its matrices migrate-on-next-touch;
//   kUserNT    — each thread arms them through the mprotect/SIGSEGV library.
// The figure's lesson reproduces: below the L3-resident block size (512)
// migration cannot pay; above it, locality dominates.
#pragma once

#include <cstdint>
#include <vector>

#include "blas/blas.hpp"
#include "lib/numalib.hpp"
#include "lib/user_next_touch.hpp"
#include "rt/team.hpp"

namespace numasim::apps {

struct MatmulBatchConfig {
  std::uint64_t n = 512;  ///< per-thread matrix dimension
  enum class Mode : std::uint8_t { kStatic, kKernelNextTouch, kUserNextTouch };
  Mode mode = Mode::kStatic;
  blas::BlasParams blas{};
  /// Multiplications each thread performs (paper uses one per thread).
  unsigned repetitions = 1;
};

struct MatmulBatchResult {
  sim::Time compute_time = 0;  ///< parallel-region span
  std::uint64_t pages_migrated = 0;
};

class MatmulBatch {
 public:
  MatmulBatch(rt::Machine& m, rt::Team& team, MatmulBatchConfig cfg);

  sim::Task<void> run(rt::Thread& main);

  const MatmulBatchResult& result() const { return result_; }

 private:
  rt::Machine& m_;
  rt::Team& team_;
  MatmulBatchConfig cfg_;
  blas::BlasEngine blas_;
  std::vector<lib::NumaBuffer> bufs_;  // one A|B|C arena per thread
  MatmulBatchResult result_;
};

}  // namespace numasim::apps
