#include "apps/kvstore.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

namespace numasim::apps {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

KvStore::KvStore(rt::Machine& m, KvConfig cfg) : m_(m), cfg_(cfg) {
  if (cfg_.shards == 0 || cfg_.keys_per_shard == 0)
    throw std::invalid_argument("KvStore: empty shape");
  if (cfg_.value_bytes == 0 || mem::kPageSize % cfg_.value_bytes != 0)
    throw std::invalid_argument(
        "KvStore: value_bytes must divide the page size");

  const std::uint64_t payload = cfg_.keys_per_shard * cfg_.value_bytes;
  shard_bytes_ = (payload + mem::kPageSize - 1) / mem::kPageSize * mem::kPageSize;

  // Host-side index state is independent of the machine: build it up front
  // so accessors (shard routing, slot permutation) work before setup().
  const std::uint64_t cells = next_pow2(2 * cfg_.keys_per_shard);
  table_mask_ = cells - 1;
  tables_.assign(cfg_.shards, {});
  slot_of_key_.resize(num_keys());
  for (std::uint64_t s = 0; s < cfg_.shards; ++s) {
    // Fisher-Yates slot permutation per shard: values land in arena order
    // unrelated to key order, like a real allocator's free-list would.
    sim::Rng perm_rng(splitmix64(cfg_.index_seed) ^ (s * 0x9e3779b97f4a7c15ull));
    std::vector<std::uint32_t> perm(cfg_.keys_per_shard);
    for (std::uint64_t i = 0; i < cfg_.keys_per_shard; ++i)
      perm[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = cfg_.keys_per_shard; i > 1; --i) {
      const std::uint64_t j = perm_rng.below(i);
      std::swap(perm[i - 1], perm[j]);
    }
    std::vector<std::uint64_t>& table = tables_[s];
    table.assign(cells, 0);
    const std::uint64_t base = s * cfg_.keys_per_shard;
    for (std::uint64_t k = 0; k < cfg_.keys_per_shard; ++k) {
      const std::uint64_t key = base + k;
      slot_of_key_[key] = perm[k];
      std::uint64_t h = splitmix64(key ^ cfg_.index_seed) & table_mask_;
      while (table[h] != 0) h = (h + 1) & table_mask_;
      table[h] = key + 1;
    }
  }
  if (cfg_.numeric) expected_.assign(num_keys(), 0);
}

sim::Task<void> KvStore::setup(rt::Thread& th) {
  kern::ThreadCtx& t = th.ctx();
  kern::Kernel& k = th.kernel();
  arenas_.clear();
  arenas_.reserve(cfg_.shards);
  for (std::uint64_t s = 0; s < cfg_.shards; ++s) {
    const std::string name = "kv.shard" + std::to_string(s);
    switch (cfg_.placement) {
      case KvPlacement::kFirstTouch:
        arenas_.push_back(lib::NumaBuffer::local(t, k, shard_bytes_, name));
        break;
      case KvPlacement::kInterleave:
        arenas_.push_back(lib::NumaBuffer::interleaved(t, k, shard_bytes_, name));
        break;
      case KvPlacement::kTiered:
        arenas_.push_back(lib::NumaBuffer::tiered(t, k, shard_bytes_, 0, name));
        break;
    }
  }
  co_await th.sync();
}

sim::Task<void> KvStore::populate_all(rt::Thread& th) {
  for (std::uint64_t s = 0; s < cfg_.shards; ++s)
    co_await th.touch(shard_addr(s), shard_bytes_, vm::Prot::kReadWrite);
  if (cfg_.numeric) {
    for (std::uint64_t key = 0; key < num_keys(); ++key) {
      const std::uint64_t stamp = stamp_for(key, 0);
      write_stamp(key, stamp);
      expected_[key] = stamp;
    }
  }
}

std::uint64_t KvStore::probe_slot(std::uint64_t key,
                                  std::uint64_t& probes) const {
  const std::vector<std::uint64_t>& table = tables_[shard_of(key)];
  std::uint64_t h = splitmix64(key ^ cfg_.index_seed) & table_mask_;
  probes = 1;
  while (table[h] != key + 1) {
    h = (h + 1) & table_mask_;
    ++probes;
  }
  return slot_of_key_[key];
}

std::uint64_t KvStore::stamp_for(std::uint64_t key, std::uint64_t seq) const {
  return splitmix64(key * 0x2545f4914f6cdd1dull ^ seq);
}

void KvStore::write_stamp(std::uint64_t key, std::uint64_t stamp) {
  std::span<const std::byte> in(reinterpret_cast<const std::byte*>(&stamp),
                                sizeof stamp);
  m_.kernel().poke(m_.pid(), slot_addr(key), in);
}

bool KvStore::read_stamp(std::uint64_t key, std::uint64_t& stamp) const {
  std::span<std::byte> out(reinterpret_cast<std::byte*>(&stamp), sizeof stamp);
  return m_.kernel().peek(m_.pid(), slot_addr(key), out);
}

sim::Task<void> KvStore::execute(rt::Thread& th, const Request& req,
                                 obs::Histogram* lat) {
  const sim::Time t0 = th.now();
  std::optional<rt::Thread::Phase> span;
  if (th.kernel().tracing())
    span.emplace(th, std::string("kv.") + op_name(req.op));
  switch (req.op) {
    case Op::kGet:
      co_await get(th, req.key);
      break;
    case Op::kPut:
      co_await put(th, req.key);
      break;
    case Op::kScan:
      co_await scan(th, req.key, req.scan_slots);
      break;
  }
  if (span) span->end();
  if (lat != nullptr) lat->record(static_cast<std::uint64_t>(th.now() - t0));
}

sim::Task<void> KvStore::get(rt::Thread& th, std::uint64_t key) {
  std::uint64_t probes = 0;
  const std::uint64_t slot = probe_slot(key, probes);
  (void)slot;
  co_await th.compute(kIndexBaseNs + kIndexProbeNs * static_cast<sim::Time>(probes - 1));
  co_await th.touch(slot_addr(key), cfg_.value_bytes, vm::Prot::kRead);
  ++stats_.gets;
  stats_.index_probes += probes;
  if (cfg_.numeric && expected_[key] != 0) {
    std::uint64_t got = 0;
    if (!read_stamp(key, got) || got != expected_[key]) ++stats_.verify_failures;
  }
}

sim::Task<void> KvStore::put(rt::Thread& th, std::uint64_t key) {
  std::uint64_t probes = 0;
  const std::uint64_t slot = probe_slot(key, probes);
  (void)slot;
  co_await th.compute(kIndexBaseNs + kIndexProbeNs * static_cast<sim::Time>(probes - 1));
  co_await th.touch(slot_addr(key), cfg_.value_bytes, vm::Prot::kReadWrite);
  ++stats_.puts;
  stats_.index_probes += probes;
  if (cfg_.numeric) {
    const std::uint64_t stamp = stamp_for(key, ++stamp_seq_);
    write_stamp(key, stamp);
    expected_[key] = stamp;
  }
}

sim::Task<void> KvStore::scan(rt::Thread& th, std::uint64_t key,
                              std::uint32_t slots) {
  std::uint64_t probes = 0;
  const std::uint64_t first = probe_slot(key, probes);
  co_await th.compute(kIndexBaseNs + kIndexProbeNs * static_cast<sim::Time>(probes - 1));
  const std::uint64_t n =
      std::min<std::uint64_t>(std::max<std::uint32_t>(slots, 1),
                              cfg_.keys_per_shard - first);
  co_await th.touch(shard_addr(shard_of(key)) + first * cfg_.value_bytes,
                    n * cfg_.value_bytes, vm::Prot::kRead);
  ++stats_.scans;
  stats_.scan_slots += n;
  stats_.index_probes += probes;
}

std::uint64_t KvStore::verify_all() const {
  if (!cfg_.numeric) return 0;
  std::uint64_t bad = 0;
  for (std::uint64_t key = 0; key < num_keys(); ++key) {
    if (expected_[key] == 0) continue;
    std::uint64_t got = 0;
    if (!read_stamp(key, got) || got != expected_[key]) ++bad;
  }
  return bad;
}

}  // namespace numasim::apps
