#include "apps/blas1_sweep.hpp"

#include "lib/numalib.hpp"
#include "rt/team.hpp"

namespace numasim::apps {

sim::Task<void> Blas1Sweep::run(rt::Thread& main, topo::CoreId worker_core) {
  kern::Kernel& k = m_.kernel();
  const std::uint64_t vec_bytes = cfg_.n * blas::kElemBytes;

  lib::NumaBuffer x_buf = lib::NumaBuffer::local(main.ctx(), k, vec_bytes, "x");
  lib::NumaBuffer y_buf = lib::NumaBuffer::local(main.ctx(), k, vec_bytes, "y");
  x_buf.populate(main.ctx());
  y_buf.populate(main.ctx());
  co_await main.sync();
  const vm::Vaddr x = x_buf.addr();
  const vm::Vaddr y = y_buf.addr();

  const auto cfg = cfg_;
  blas::BlasEngine* eng = &blas_;
  Blas1Result* res = &result_;

  rt::Team team(m_, {worker_core});
  // Named before co_await: GCC 12 coroutine workaround (see team.cpp).
  rt::Team::WorkerFn worker =
      [cfg, eng, res, x, y, vec_bytes](unsigned, rt::Thread& th)
      -> sim::Task<void> {
        const sim::Time t0 = th.now();
        if (cfg.mode == Blas1Config::Mode::kSyncMigrate) {
          co_await th.move_range(x, vec_bytes, th.node());
          co_await th.move_range(y, vec_bytes, th.node());
          res->migration_time = th.now() - t0;
        } else if (cfg.mode == Blas1Config::Mode::kLazyMigrate) {
          co_await th.madvise(x, vec_bytes, kern::Advice::kMigrateOnNextTouch);
          co_await th.madvise(y, vec_bytes, kern::Advice::kMigrateOnNextTouch);
          res->migration_time = th.now() - t0;  // marking only; faults amortize
        }
        for (unsigned p = 0; p < cfg.passes; ++p)
          co_await eng->axpy(th, 1.5, x, y, cfg.n);
        res->total_time = th.now() - t0;
      };
  co_await team.parallel(main, std::move(worker));
}

}  // namespace numasim::apps
