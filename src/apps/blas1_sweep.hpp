// BLAS1 migration (non-)benefit probe (paper Sec. 4.5, last paragraph).
//
// A worker on a remote node runs `passes` axpy sweeps over vectors that
// live on node 0. Three variants: leave the data remote, migrate it
// synchronously first, or mark it migrate-on-next-touch. The paper observed
// BLAS1 "never improves thanks to memory migration"; with few passes the
// migration cost exceeds the per-pass remote-access penalty.
#pragma once

#include <cstdint>

#include "blas/blas.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

namespace numasim::apps {

struct Blas1Config {
  std::uint64_t n = 1u << 20;  ///< vector length (doubles)
  unsigned passes = 4;
  enum class Mode : std::uint8_t { kRemote, kSyncMigrate, kLazyMigrate };
  Mode mode = Mode::kRemote;
  blas::BlasParams blas{};
};

struct Blas1Result {
  sim::Time total_time = 0;      ///< migration (if any) + all passes
  sim::Time migration_time = 0;  ///< the migration portion
};

class Blas1Sweep {
 public:
  Blas1Sweep(rt::Machine& m, Blas1Config cfg) : m_(m), cfg_(cfg), blas_(m, cfg.blas) {}

  /// `main` must run on node 0; the compute worker is forked on `worker_core`.
  sim::Task<void> run(rt::Thread& main, topo::CoreId worker_core);

  const Blas1Result& result() const { return result_; }

 private:
  rt::Machine& m_;
  Blas1Config cfg_;
  blas::BlasEngine blas_;
  Blas1Result result_;
};

}  // namespace numasim::apps
