#include "apps/lu.hpp"

#include <stdexcept>

#include "lib/numalib.hpp"

namespace numasim::apps {

namespace {
/// Diagonally dominant test values so the unpivoted factorization is stable.
double lu_fill(std::uint64_t r, std::uint64_t c) {
  if (r == c) return 64.0;
  const auto d = r > c ? r - c : c - r;
  return 1.0 / (1.0 + static_cast<double>(d));
}
}  // namespace

LuFactorization::LuFactorization(rt::Machine& m, rt::Team& team, LuConfig cfg)
    : m_(m), team_(team), cfg_(cfg), blas_(m, cfg.blas) {
  if (cfg_.n == 0 || cfg_.bs == 0 || cfg_.n % cfg_.bs != 0)
    throw std::invalid_argument{"LuFactorization: n must be a multiple of bs"};
}

sim::Task<void> LuFactorization::run(rt::Thread& main) {
  kern::Kernel& k = m_.kernel();
  const std::uint64_t bytes = cfg_.n * cfg_.n * blas::kElemBytes;

  // The paper's best static allocation: interleave over all nodes.
  buf_ = lib::NumaBuffer::interleaved(main.ctx(), k, bytes, "lu");
  const vm::Vaddr base = buf_.addr();
  mat_ = blas::Matrix{base, cfg_.n, cfg_.n, cfg_.n};
  buf_.populate(main.ctx());
  co_await main.sync();
  if (cfg_.blas.numeric)
    blas::fill_matrix(m_, mat_, cfg_.fill != nullptr ? cfg_.fill : lu_fill);

  const std::uint64_t before_nt_pages = k.stats().pages_migrated_nexttouch;
  const std::uint64_t before_nt_faults = k.stats().nexttouch_faults;
  result_.setup_end = main.now();
  const sim::Time t0 = main.now();

  const std::uint64_t nb = cfg_.n / cfg_.bs;
  for (std::uint64_t kk = 0; kk < nb; ++kk) {
    // The paper's hook: mark the active trailing submatrix migrate-on-
    // next-touch so the coming parallel section redistributes it.
    if (cfg_.next_touch) {
      const vm::Vaddr tail = mat_.at(kk * cfg_.bs, 0);
      co_await main.madvise(tail, bytes - (tail - base),
                            kern::Advice::kMigrateOnNextTouch);
      ++result_.madvise_calls;
    }

    co_await blas_.getf2(main, block(kk, kk));

    // Row and column panels in one parallel loop. (Worker lambdas are named
    // before co_await — GCC 12 coroutine workaround, see team.cpp.)
    const std::uint64_t rem = nb - kk - 1;
    if (rem > 0) {
      rt::Team::IndexFn panels = [this, kk, rem](unsigned, rt::Thread& th,
                                                 std::uint64_t i) -> sim::Task<void> {
        if (i < rem) {
          co_await blas_.trsm_lower_left(th, block(kk, kk), block(kk, kk + 1 + i));
        } else {
          co_await blas_.trsm_upper_right(th, block(kk, kk),
                                          block(kk + 1 + (i - rem), kk));
        }
      };
      co_await team_.parallel_for(main, 0, 2 * rem, cfg_.schedule, std::move(panels));

      // Trailing update: one GEMM per remaining block.
      rt::Team::IndexFn update = [this, kk, rem](unsigned, rt::Thread& th,
                                                 std::uint64_t idx) -> sim::Task<void> {
        const std::uint64_t i = kk + 1 + idx / rem;
        const std::uint64_t j = kk + 1 + idx % rem;
        co_await blas_.gemm_minus(th, block(i, kk), block(kk, j), block(i, j));
      };
      co_await team_.parallel_for(main, 0, rem * rem, cfg_.schedule, std::move(update));
    }
  }

  result_.factor_time = main.now() - t0;
  result_.nexttouch_migrations =
      k.stats().pages_migrated_nexttouch - before_nt_pages;
  result_.nexttouch_faults = k.stats().nexttouch_faults - before_nt_faults;
}

}  // namespace numasim::apps
