// Iterative sparse matrix-vector workload (conjugate-gradient style).
//
// The paper motivates next-touch with "dynamic and irregular applications
// such as adaptive mesh refinement" whose partitioning evolves. This app
// models the kernel of such solvers: repeated y = A·x sweeps over a CSR
// matrix partitioned by rows, with the partition shifted every few
// iterations (load rebalancing). Policies:
//   kStatic          — interleaved CSR, shared x read remotely;
//   kNextTouch       — CSR rows follow their owning thread after each
//                      repartition (madvise hook, as in the LU app);
//   kNextTouchReplX  — additionally replicate the read-shared x vector so
//                      every node gathers locally (combines the paper's
//                      contribution with its future-work replication).
//
// In numeric mode the CSR structure lives in simulated memory and the SpMV
// is verified element-for-element against a host reference.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/team.hpp"

namespace numasim::apps {

struct SpmvConfig {
  std::uint64_t n = 1u << 15;     ///< rows
  unsigned nnz_per_row = 16;      ///< band + pseudo-random off-band entries
  unsigned iterations = 8;
  unsigned repartition_every = 2; ///< shift the row partition this often
  enum class Policy : std::uint8_t { kStatic, kNextTouch, kNextTouchReplX };
  Policy policy = Policy::kStatic;
  bool numeric = false;           ///< real CSR values + verified SpMV
  std::uint64_t seed = 42;
};

struct SpmvResult {
  sim::Time solve_time = 0;
  std::uint64_t pages_migrated = 0;
  std::uint64_t replicas_created = 0;
};

class Spmv {
 public:
  Spmv(rt::Machine& m, rt::Team& team, SpmvConfig cfg);

  sim::Task<void> run(rt::Thread& main);

  const SpmvResult& result() const { return result_; }

  /// Host-side reference result of one SpMV on the generated matrix with
  /// x = initial vector (numeric runs only; empty otherwise).
  const std::vector<double>& reference_y() const { return ref_y_; }
  /// y read back from simulated memory after the first iteration
  /// (numeric runs only).
  const std::vector<double>& simulated_y() const { return sim_y_; }

 private:
  struct Csr {
    std::vector<std::uint64_t> row_ptr;  // host-side structure mirror
    std::vector<std::uint64_t> col;
    vm::Vaddr values = 0;   // simulated: n_nnz doubles
    vm::Vaddr colidx = 0;   // simulated: n_nnz uint64 (charged, not read)
    vm::Vaddr x = 0;        // simulated: n doubles
    vm::Vaddr y = 0;        // simulated: n doubles
    std::uint64_t nnz = 0;
  };

  void generate_structure();
  /// Equal-nnz contiguous row partition, rotated by `shift` rows.
  std::vector<std::uint64_t> partition(std::uint64_t shift) const;

  rt::Machine& m_;
  rt::Team& team_;
  SpmvConfig cfg_;
  Csr csr_;
  SpmvResult result_;
  std::vector<double> ref_y_;
  std::vector<double> sim_y_;
};

}  // namespace numasim::apps
