// Deterministic request traffic for the serving subsystem (apps/kvstore).
//
// "Revisiting Page Migration for Main-Memory Database Systems" argues that
// page migration should be judged by tail request latency under live
// traffic, not end-to-end runtime. This layer generates that traffic
// reproducibly: a seeded zipfian key sampler (integer fixed-point CDF — no
// host floating-point randomness feeds the simulation), per-tenant request
// mixes, and a phase-shift schedule that rotates each tenant's key range
// mid-run so the hot shard migrates across NUMA nodes — the serving-shaped
// cousin of the adaptive-refinement phase shifts the paper motivates
// next-touch with.
//
// Every client owns its own sampler streams seeded from (seed, tenant,
// client), so the request sequence of a client is a pure function of its
// config — independent of engine interleaving with other clients.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace numasim::apps {

enum class Op : std::uint8_t { kGet, kPut, kScan };

const char* op_name(Op op);

struct Request {
  Op op = Op::kGet;
  std::uint64_t key = 0;
  std::uint32_t scan_slots = 0;  ///< slots read by a kScan (0 otherwise)
};

/// Named tenant request mixes (the --mix flag of bench/serving_mixes).
enum class Mix : std::uint8_t { kReadHeavy, kWriteHeavy, kScanMixed };

const char* mix_name(Mix m);

/// Operation fractions of one mix. get/put/scan fractions sum to 1.
struct MixSpec {
  double get_frac = 1.0;
  double put_frac = 0.0;
  double scan_frac = 0.0;
  std::uint32_t scan_slots = 0;  ///< contiguous slots per scan
};

MixSpec mix_spec(Mix m);

/// Zipfian rank sampler over [0, n): rank 0 is the hottest key. The CDF is
/// a fixed-point integer table built once at construction (std::pow only at
/// table build, never per sample); sampling is one Rng draw plus a binary
/// search, so identical seeds give identical streams on any host.
class ZipfianSampler {
 public:
  ZipfianSampler(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

  /// Next rank in [0, n); rank 0 is sampled most often.
  std::uint64_t next();

 private:
  std::vector<std::uint64_t> cdf_;  ///< inclusive cumulative weights
  std::uint64_t total_ = 0;
  double theta_ = 0.0;
  sim::Rng rng_;
};

/// Phase schedule: `phases` equal phases of `requests_per_phase` requests
/// per client. Requests past the last boundary stay in the final phase.
struct PhasePlan {
  unsigned phases = 3;
  std::uint64_t requests_per_phase = 1000;

  unsigned phase_of(std::uint64_t i) const {
    if (requests_per_phase == 0 || phases == 0) return 0;
    const std::uint64_t p = i / requests_per_phase;
    return static_cast<unsigned>(p < phases ? p : phases - 1);
  }
  std::uint64_t total_requests() const {
    return static_cast<std::uint64_t>(phases) * requests_per_phase;
  }
};

/// The deterministic request stream of one client thread.
///
/// The keyspace is split into `tenants` contiguous ranges of
/// `keys_per_tenant` keys. In phase p, the client of tenant t addresses
/// range (t + p) % tenants, mapping zipf rank r to key range*keys_per_tenant
/// + r — so the hottest ranks of every tenant sit at the head of its
/// current range, and each phase shift hands every range to the next
/// tenant over (the hot head must migrate to stay local).
class ClientTraffic {
 public:
  struct Config {
    unsigned tenant = 0;
    unsigned tenants = 1;
    std::uint64_t keys_per_tenant = 1024;
    Mix mix = Mix::kReadHeavy;
    double theta = 0.99;
    PhasePlan plan;
    std::uint64_t seed = 1;
  };

  explicit ClientTraffic(const Config& cfg);

  const Config& config() const { return cfg_; }
  std::uint64_t emitted() const { return i_; }
  unsigned phase() const { return cfg_.plan.phase_of(i_); }

  /// Key-range index tenant `cfg.tenant` addresses in `phase`.
  unsigned range_of(unsigned phase) const {
    return (cfg_.tenant + phase) % cfg_.tenants;
  }
  /// First key of the range addressed in `phase`.
  std::uint64_t range_base(unsigned phase) const {
    return static_cast<std::uint64_t>(range_of(phase)) * cfg_.keys_per_tenant;
  }

  Request next();

 private:
  Config cfg_;
  MixSpec spec_;
  ZipfianSampler zipf_;
  sim::Rng op_rng_;
  std::uint64_t i_ = 0;
};

}  // namespace numasim::apps
