// Sharded in-memory key-value store over NUMA-placed shard arenas.
//
// The first request-serving workload of the repo: fixed-size values live in
// one `lib::NumaBuffer` arena per shard (placement per KvConfig::Placement),
// a host-side open-addressing index maps keys to permuted slots (the probe
// walk is charged as computation, the value access as a simulated touch),
// and get/put/scan execute as coroutines on the calling thread so per-request
// simulated latency is just the thread-clock delta across `execute()`.
//
// Keys are dense: the keyspace is exactly shards * keys_per_shard and every
// key exists after setup (serving stores are loaded before they take
// traffic). `shard_of` is key / keys_per_shard, so a contiguous key range
// maps to contiguous shards — the traffic layer exploits this to
// concentrate zipfian heat in the first shard of each tenant's range.
//
// In numeric mode (materialized backing only) every put stamps the value's
// first 8 bytes through the timing-free poke path and every get re-reads
// the stamp, so tests can assert end-to-end data integrity under concurrent
// migration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/traffic.hpp"
#include "lib/numalib.hpp"
#include "obs/metrics.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

namespace numasim::apps {

/// Arena placement policy (the --placement axis of bench/serving_mixes that
/// is decided at allocation time; move_pages/AutoNUMA act on top of
/// kFirstTouch afterwards).
enum class KvPlacement : std::uint8_t { kFirstTouch, kInterleave, kTiered };

struct KvConfig {
  std::uint64_t shards = 16;
  std::uint64_t keys_per_shard = 512;
  /// Bytes per value; must divide the page size (values never straddle
  /// pages, like a slab allocator).
  std::uint64_t value_bytes = 1024;
  KvPlacement placement = KvPlacement::kFirstTouch;
  std::uint64_t index_seed = 7;  ///< slot-permutation / hash-table seed
  bool numeric = false;          ///< stamp verification via peek/poke
};

class KvStore {
 public:
  struct OpStats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t scans = 0;
    std::uint64_t scan_slots = 0;      ///< total slots read by scans
    std::uint64_t index_probes = 0;    ///< hash-table cells inspected
    std::uint64_t verify_failures = 0; ///< numeric-mode stamp mismatches
  };

  KvStore(rt::Machine& m, KvConfig cfg);

  /// Map the shard arenas and build the index. Call once from the setup
  /// thread before issuing requests; arenas are not faulted in (first touch
  /// must stay with the serving clients for kFirstTouch placement).
  sim::Task<void> setup(rt::Thread& th);

  /// Numeric mode: fault every slot in and write its initial stamp from the
  /// calling thread (tests that want a fully resident store).
  sim::Task<void> populate_all(rt::Thread& th);

  const KvConfig& config() const { return cfg_; }
  const OpStats& stats() const { return stats_; }
  std::uint64_t num_keys() const { return cfg_.shards * cfg_.keys_per_shard; }

  std::uint64_t shard_of(std::uint64_t key) const {
    return key / cfg_.keys_per_shard;
  }
  /// Permuted slot of `key` within its shard (stable for the store's life).
  std::uint64_t slot_of(std::uint64_t key) const {
    return slot_of_key_[key];
  }
  vm::Vaddr shard_addr(std::uint64_t shard) const {
    return arenas_[shard].addr();
  }
  /// Mapped bytes of one shard arena (page-rounded).
  std::uint64_t shard_bytes() const { return shard_bytes_; }
  vm::Vaddr slot_addr(std::uint64_t key) const {
    return shard_addr(shard_of(key)) + slot_of(key) * cfg_.value_bytes;
  }
  /// Present pages of `shard`'s arena on `node` (timing-free).
  std::uint64_t shard_pages_on(std::uint64_t shard, topo::NodeId node) const {
    return arenas_[shard].pages_on(node);
  }

  /// Run one request on `th`; when `lat` is given, records the simulated
  /// nanoseconds the request took. Emits a per-request trace span only when
  /// a sink is attached (span construction is pure host cost, but a span
  /// per request would still be waste when nobody listens).
  sim::Task<void> execute(rt::Thread& th, const Request& req,
                          obs::Histogram* lat = nullptr);

  sim::Task<void> get(rt::Thread& th, std::uint64_t key);
  sim::Task<void> put(rt::Thread& th, std::uint64_t key);
  /// Read up to `slots` contiguous slots starting at `key`'s slot (clamped
  /// at the shard end — scans never leave their shard).
  sim::Task<void> scan(rt::Thread& th, std::uint64_t key, std::uint32_t slots);

  /// Numeric mode: re-read every stamped key through peek and count
  /// mismatches (0 = store intact). Timing-free.
  std::uint64_t verify_all() const;

 private:
  // Index-walk computation charge: base lookup plus one cache-miss-ish step
  // per extra probed cell.
  static constexpr sim::Time kIndexBaseNs = 120;
  static constexpr sim::Time kIndexProbeNs = 40;

  std::uint64_t probe_slot(std::uint64_t key, std::uint64_t& probes) const;
  std::uint64_t stamp_for(std::uint64_t key, std::uint64_t seq) const;
  void write_stamp(std::uint64_t key, std::uint64_t stamp);
  bool read_stamp(std::uint64_t key, std::uint64_t& stamp) const;

  rt::Machine& m_;
  KvConfig cfg_;
  std::uint64_t shard_bytes_ = 0;
  std::vector<lib::NumaBuffer> arenas_;
  /// Per-shard open-addressing table (power-of-two cells, linear probing);
  /// a cell holds key+1, 0 = empty. Lookup realism feeds the probe charge.
  std::vector<std::vector<std::uint64_t>> tables_;
  std::uint64_t table_mask_ = 0;
  std::vector<std::uint32_t> slot_of_key_;
  /// Numeric mode: expected stamp per key (monotone per-store sequence).
  std::vector<std::uint64_t> expected_;
  std::uint64_t stamp_seq_ = 0;
  OpStats stats_;
};

}  // namespace numasim::apps
