// Threaded blocked LU factorization (the paper's Section 4.5 application).
//
// Right-looking block LU without pivoting: at step k the diagonal block is
// factorized, the row and column panels are solved, and the trailing blocks
// are GEMM-updated — the panel and trailing updates run as OpenMP-style
// parallel-for loops across all cores. The matrix starts interleaved across
// all NUMA nodes (the paper's best static policy for this bandwidth-bound
// problem). In next-touch mode, a madvise(MIGRATE_ON_NEXT_TOUCH) hook on the
// active trailing submatrix at the top of every iteration lets each block
// follow whichever thread the schedule hands it to.
//
// The paper's pivoting note: the reference implementation computes a "pivot"
// block on the diagonal but does not pivot across blocks; we do the same
// (getf2 without row exchanges), which is numerically fine for the
// diagonally dominant test matrices the tests use.
#pragma once

#include <cstdint>

#include "blas/blas.hpp"
#include "lib/numalib.hpp"
#include "rt/team.hpp"

namespace numasim::apps {

struct LuConfig {
  std::uint64_t n = 1024;       ///< matrix dimension (doubles)
  std::uint64_t bs = 128;       ///< block size; paper sweeps 64..1024
  bool next_touch = false;      ///< insert the per-iteration madvise hook
  rt::Schedule schedule = rt::Schedule::kStatic;
  blas::BlasParams blas{};
  /// Matrix entries for numeric runs (nullptr = built-in diagonally
  /// dominant fill).
  double (*fill)(std::uint64_t, std::uint64_t) = nullptr;
};

struct LuResult {
  sim::Time setup_end = 0;        ///< instant population/init finished
  sim::Time factor_time = 0;      ///< simulated factorization duration
  std::uint64_t nexttouch_migrations = 0;
  std::uint64_t nexttouch_faults = 0;
  std::uint64_t madvise_calls = 0;
};

class LuFactorization {
 public:
  LuFactorization(rt::Machine& m, rt::Team& team, LuConfig cfg);

  /// Allocate + populate the matrix, then factorize. Call from a simulated
  /// main thread; workers are forked per parallel region on the team.
  sim::Task<void> run(rt::Thread& main);

  const LuResult& result() const { return result_; }
  const blas::Matrix& matrix() const { return mat_; }

 private:
  blas::Tile block(std::uint64_t bi, std::uint64_t bj) const {
    return blas::Tile::of(mat_, bi * cfg_.bs, bj * cfg_.bs, cfg_.bs, cfg_.bs);
  }

  rt::Machine& m_;
  rt::Team& team_;
  LuConfig cfg_;
  blas::BlasEngine blas_;
  lib::NumaBuffer buf_;  // owns the matrix storage
  blas::Matrix mat_;
  LuResult result_;
};

}  // namespace numasim::apps
