#include "apps/matmul_batch.hpp"

#include <memory>
#include <utility>

#include "lib/numalib.hpp"

namespace numasim::apps {

MatmulBatch::MatmulBatch(rt::Machine& m, rt::Team& team, MatmulBatchConfig cfg)
    : m_(m), team_(team), cfg_(cfg), blas_(m, cfg.blas) {}

sim::Task<void> MatmulBatch::run(rt::Thread& main) {
  kern::Kernel& k = m_.kernel();
  const std::uint64_t mat_bytes = cfg_.n * cfg_.n * blas::kElemBytes;
  const std::uint64_t arena = 3 * mat_bytes;  // A | B | C

  // Main thread allocates and initializes everything: first-touch places all
  // pages on the main thread's node.
  bufs_.clear();
  for (unsigned t = 0; t < team_.size(); ++t) {
    lib::NumaBuffer buf = lib::NumaBuffer::local(main.ctx(), k, arena, "gemm-arena");
    buf.populate(main.ctx());
    bufs_.push_back(std::move(buf));
  }
  co_await main.sync();

  // User next-touch library, shared by the workers (it is the process
  // SIGSEGV handler); only constructed when needed.
  std::shared_ptr<lib::UserNextTouch> unt;
  if (cfg_.mode == MatmulBatchConfig::Mode::kUserNextTouch)
    unt = std::make_shared<lib::UserNextTouch>(k, m_.pid());

  const std::uint64_t migrated0 =
      k.stats().pages_migrated_nexttouch + k.stats().pages_migrated_move;

  const auto mode = cfg_.mode;
  const auto n = cfg_.n;
  const auto reps = cfg_.repetitions;
  const auto& bufs = bufs_;
  blas::BlasEngine* eng = &blas_;

  // Named before co_await: GCC 12 coroutine workaround (see team.cpp).
  rt::Team::WorkerFn worker =
      [mode, n, reps, &bufs, eng, unt, mat_bytes, arena](
          unsigned tid, rt::Thread& th) -> sim::Task<void> {
        const vm::Vaddr base = bufs[tid].addr();
        if (mode == MatmulBatchConfig::Mode::kKernelNextTouch) {
          co_await th.madvise(base, arena, kern::Advice::kMigrateOnNextTouch);
        } else if (mode == MatmulBatchConfig::Mode::kUserNextTouch) {
          unt->mark(th.ctx(), base, arena);
          co_await th.sync();
        }
        const blas::Matrix a{base, n, n, n};
        const blas::Matrix b{base + mat_bytes, n, n, n};
        const blas::Matrix c{base + 2 * mat_bytes, n, n, n};
        for (unsigned r = 0; r < reps; ++r) {
          co_await eng->gemm_minus(th, blas::Tile::of(a, 0, 0, n, n),
                                   blas::Tile::of(b, 0, 0, n, n),
                                   blas::Tile::of(c, 0, 0, n, n));
        }
      };
  co_await team_.parallel(main, std::move(worker));

  result_.compute_time = team_.last_span();
  result_.pages_migrated = k.stats().pages_migrated_nexttouch +
                           k.stats().pages_migrated_move - migrated0;
}

}  // namespace numasim::apps
