#include "apps/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numasim::apps {

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet: return "get";
    case Op::kPut: return "put";
    case Op::kScan: return "scan";
  }
  return "?";
}

const char* mix_name(Mix m) {
  switch (m) {
    case Mix::kReadHeavy: return "read_heavy";
    case Mix::kWriteHeavy: return "write_heavy";
    case Mix::kScanMixed: return "scan_mixed";
  }
  return "?";
}

MixSpec mix_spec(Mix m) {
  switch (m) {
    case Mix::kReadHeavy: return {0.95, 0.05, 0.0, 0};
    case Mix::kWriteHeavy: return {0.50, 0.50, 0.0, 0};
    case Mix::kScanMixed: return {0.70, 0.20, 0.10, 16};
  }
  return {};
}

namespace {
// Seed-stream separation: derive independent sub-seeds for the rank and the
// op draws so they never alias even when callers pass small seeds.
constexpr std::uint64_t kZipfStream = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kOpStream = 0xc2b2ae3d27d4eb4full;
}  // namespace

ZipfianSampler::ZipfianSampler(std::uint64_t n, double theta,
                               std::uint64_t seed)
    : theta_(theta), rng_(seed) {
  if (n == 0) throw std::invalid_argument("ZipfianSampler: n == 0");
  // Fixed-point weights w_r ~ 2^32 / (r+1)^theta. The constant keeps the
  // total below 2^63 for any practical n, and the floor at 1 keeps every
  // rank reachable.
  constexpr double kScale = 4294967296.0;  // 2^32
  cdf_.resize(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    const double w =
        kScale / std::pow(static_cast<double>(r + 1), theta);
    total_ += std::max<std::uint64_t>(1, static_cast<std::uint64_t>(w));
    cdf_[r] = total_;
  }
}

std::uint64_t ZipfianSampler::next() {
  const std::uint64_t u = rng_.below(total_);
  // First rank whose cumulative weight exceeds the draw.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

ClientTraffic::ClientTraffic(const Config& cfg)
    : cfg_(cfg), spec_(mix_spec(cfg.mix)),
      zipf_(cfg.keys_per_tenant, cfg.theta, cfg.seed ^ kZipfStream),
      op_rng_(cfg.seed ^ kOpStream) {
  if (cfg_.tenants == 0) throw std::invalid_argument("ClientTraffic: tenants == 0");
  if (cfg_.tenant >= cfg_.tenants)
    throw std::invalid_argument("ClientTraffic: tenant out of range");
}

Request ClientTraffic::next() {
  const unsigned ph = cfg_.plan.phase_of(i_);
  ++i_;
  Request r;
  r.key = range_base(ph) + zipf_.next();
  const double u = op_rng_.uniform();
  if (u < spec_.get_frac) {
    r.op = Op::kGet;
  } else if (u < spec_.get_frac + spec_.put_frac) {
    r.op = Op::kPut;
  } else {
    r.op = Op::kScan;
    r.scan_slots = spec_.scan_slots;
  }
  return r;
}

}  // namespace numasim::apps
