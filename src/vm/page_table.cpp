#include "vm/page_table.hpp"

namespace numasim::vm {

void PageTable::clear_range(Vpn first, Vpn last) {
  for (Vpn vpn = first; vpn < last; ++vpn) {
    if (Pte* pte = find(vpn)) *pte = Pte{};
  }
}

std::uint64_t PageTable::count_present(Vpn first, Vpn last) const {
  std::uint64_t n = 0;
  for (Vpn vpn = first; vpn < last; ++vpn) {
    const Pte* pte = find(vpn);
    if (pte != nullptr && pte->present()) ++n;
  }
  return n;
}

}  // namespace numasim::vm
