#include "vm/page_table.hpp"

namespace numasim::vm {

void PageTable::clear_range(Vpn first, Vpn last) {
  for_each_run(first, last, [](PageRun run) {
    for (Pte& pte : run.ptes) pte = Pte{};
  });
}

std::uint64_t PageTable::count_present(Vpn first, Vpn last) const {
  std::uint64_t n = 0;
  for_each_run(first, last, [&n](ConstPageRun run) {
    for (const Pte& pte : run.ptes) n += pte.present() ? 1 : 0;
  });
  return n;
}

}  // namespace numasim::vm
