// NUMA memory policies (the set_mempolicy / mbind modes the paper relies on).
#pragma once

#include <cstdint>

#include "topo/topology.hpp"
#include "vm/page_table.hpp"

namespace numasim::vm {

enum class PolicyMode : std::uint8_t {
  kDefault,        // first-touch: allocate on the faulting core's node
  kBind,           // allocate only within the node mask
  kInterleave,     // round-robin across the node mask, by page offset
  kPreferred,      // try one node, fall back near it
  kPreferredMany,  // MPOL_PREFERRED_MANY: try the mask's nodes in kernel
                   // order (tier, then distance), fall back anywhere
};

struct MemPolicy {
  PolicyMode mode = PolicyMode::kDefault;
  topo::NodeMask nodes = 0;

  static MemPolicy first_touch() { return {PolicyMode::kDefault, 0}; }
  static MemPolicy bind(topo::NodeMask m) { return {PolicyMode::kBind, m}; }
  static MemPolicy interleave(topo::NodeMask m) { return {PolicyMode::kInterleave, m}; }
  static MemPolicy preferred(topo::NodeId n) {
    return {PolicyMode::kPreferred, topo::node_mask_of(n)};
  }
  /// MPOL_PREFERRED_MANY-style ordered preference over a node set. The
  /// kernel ranks the mask's nodes by memory tier (fast first), then by
  /// distance from the faulting core, and falls back to the zonelist when
  /// every preferred node is full — allocation never hard-fails on tier
  /// pressure. See lib::tier_preferred() for the common all-tiers mask.
  static MemPolicy preferred_many(topo::NodeMask m) {
    return {PolicyMode::kPreferredMany, m};
  }

  friend bool operator==(const MemPolicy&, const MemPolicy&) = default;

  /// Target node for a page at offset `pgoff` within its VMA, given the node
  /// the faulting thread runs on. Interleave is offset-based (as in Linux),
  /// so placement is deterministic and independent of fault order.
  topo::NodeId target_node(std::uint64_t pgoff, topo::NodeId local,
                           unsigned num_nodes) const {
    switch (mode) {
      case PolicyMode::kDefault:
        return local;
      case PolicyMode::kPreferred:
        return first_node(num_nodes);
      case PolicyMode::kBind:
        return first_node(num_nodes);
      case PolicyMode::kPreferredMany:
        // Tier-blind fallback (the kernel's fault path refines this with
        // its tier ranking; see Kernel::preferred_many_target).
        return first_node(num_nodes);
      case PolicyMode::kInterleave: {
        const unsigned weight = popcount(num_nodes);
        if (weight == 0) return local;
        unsigned k = static_cast<unsigned>(pgoff % weight);
        for (topo::NodeId n = 0; n < num_nodes; ++n) {
          if (topo::mask_contains(nodes, n)) {
            if (k == 0) return n;
            --k;
          }
        }
        return local;
      }
    }
    return local;
  }

 private:
  unsigned popcount(unsigned num_nodes) const {
    unsigned c = 0;
    for (topo::NodeId n = 0; n < num_nodes; ++n)
      if (topo::mask_contains(nodes, n)) ++c;
    return c;
  }
  topo::NodeId first_node(unsigned num_nodes) const {
    for (topo::NodeId n = 0; n < num_nodes; ++n)
      if (topo::mask_contains(nodes, n)) return n;
    return topo::kInvalidNode;
  }
};

}  // namespace numasim::vm
