// Two-level radix page table keyed by virtual page number.
//
// Chunks of 512 PTEs (one 2 MiB-aligned region each) give dense storage and
// cache-friendly walks for the multi-million-page worksets of Table 1, while
// staying sparse across the 48-bit address space. A one-entry chunk cache
// accelerates the sequential walks the kernel does constantly.
//
// Range walks go through the PageRun span API (for_each_run): one hash
// lookup per 512-page chunk instead of one per page, with the PTEs of each
// run handed out as a contiguous span. Chunk storage comes from a bump
// arena owned by the table — chunks are never individually freed (unmap
// only zeroes PTEs), so spans and Pte pointers stay valid for the table's
// lifetime even while faults grow the table mid-walk.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "vm/pte.hpp"

namespace numasim::vm {

/// Virtual page number (virtual address >> 12).
using Vpn = std::uint64_t;

/// A maximal contiguous span of existing PTEs inside one chunk, as yielded
/// by PageTable::for_each_run. `ptes[i]` is the entry for page `first + i`.
struct PageRun {
  Vpn first = 0;
  std::span<Pte> ptes;
};

/// Read-only variant of PageRun. Implicitly convertible from PageRun so a
/// read-only callback can be handed to the mutable walk unchanged.
struct ConstPageRun {
  Vpn first = 0;
  std::span<const Pte> ptes;

  ConstPageRun() = default;
  ConstPageRun(Vpn f, std::span<const Pte> p) : first(f), ptes(p) {}
  ConstPageRun(const PageRun& r) : first(r.first), ptes(r.ptes) {}
};

class PageTable {
 public:
  static constexpr unsigned kChunkBits = 9;
  static constexpr std::uint64_t kChunkPages = 1ull << kChunkBits;

  /// PTE for `vpn`, or nullptr if nothing was ever established there.
  /// Prefer for_each_run for walks over a range; per-page find stays as the
  /// point-lookup primitive (and thin-wrapper compatibility, see DESIGN.md).
  Pte* find(Vpn vpn) {
    Chunk* c = chunk_of(vpn, /*create=*/false);
    return c ? &(*c)[vpn & (kChunkPages - 1)] : nullptr;
  }
  const Pte* find(Vpn vpn) const {
    return const_cast<PageTable*>(this)->find(vpn);
  }

  /// PTE for `vpn`, creating an empty one if needed.
  Pte& ensure(Vpn vpn) {
    return (*chunk_of(vpn, /*create=*/true))[vpn & (kChunkPages - 1)];
  }

  /// Invoke `fn` on each run of existing PTEs covering [first, last), in
  /// ascending page order. Pages whose chunk was never established are
  /// skipped — exactly the pages for which find() returns nullptr. `fn`
  /// takes a PageRun (or ConstPageRun) and may return void, or bool where
  /// `false` stops the walk early. Runs split only at chunk boundaries;
  /// callers overlay VMA/policy/txn structure on top. Creating PTEs from
  /// inside `fn` is safe: chunks are arena-backed and never move, and the
  /// walk locates each chunk by key, not by map iteration.
  template <typename Fn>
  void for_each_run(Vpn first, Vpn last, Fn&& fn) {
    if (first >= last) return;
    const std::uint64_t last_key = (last - 1) >> kChunkBits;
    for (std::uint64_t key = first >> kChunkBits; key <= last_key; ++key) {
      Chunk* c = chunk_of(key << kChunkBits, /*create=*/false);
      if (c == nullptr) continue;
      const Vpn base = key << kChunkBits;
      const std::uint64_t lo = base < first ? first - base : 0;
      const std::uint64_t hi =
          last - base < kChunkPages ? last - base : kChunkPages;
      PageRun run{base + lo, std::span<Pte>(c->data() + lo, hi - lo)};
      if constexpr (std::is_void_v<decltype(fn(run))>) {
        fn(run);
      } else {
        if (!fn(run)) return;
      }
    }
  }

  template <typename Fn>
  void for_each_run(Vpn first, Vpn last, Fn&& fn) const {
    auto shim = [&fn](PageRun run) { return fn(ConstPageRun(run)); };
    const_cast<PageTable*>(this)->for_each_run(first, last, shim);
  }

  /// Reset all PTEs in [first, last) to empty (frames must already be freed).
  void clear_range(Vpn first, Vpn last);

  /// Number of present PTEs in [first, last).
  std::uint64_t count_present(Vpn first, Vpn last) const;

 private:
  using Chunk = std::array<Pte, kChunkPages>;

  /// Bump arena for chunk storage: blocks of 16 chunks, allocated once and
  /// released only with the table. Individual chunks are never freed, which
  /// is what makes PageRun spans and Pte pointers stable.
  class ChunkArena {
   public:
    Chunk* alloc() {
      if (used_ == kBlockChunks || blocks_.empty()) {
        blocks_.push_back(std::make_unique<Chunk[]>(kBlockChunks));
        used_ = 0;
      }
      return &blocks_.back()[used_++];
    }

   private:
    static constexpr std::size_t kBlockChunks = 16;
    std::vector<std::unique_ptr<Chunk[]>> blocks_;
    std::size_t used_ = kBlockChunks;
  };

  Chunk* chunk_of(Vpn vpn, bool create) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (key == cached_key_ && cached_chunk_ != nullptr) return cached_chunk_;
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      if (!create) return nullptr;
      it = chunks_.emplace(key, arena_.alloc()).first;
    }
    cached_key_ = key;
    cached_chunk_ = it->second;
    return cached_chunk_;
  }

  ChunkArena arena_;
  std::unordered_map<std::uint64_t, Chunk*> chunks_;
  std::uint64_t cached_key_ = ~0ull;
  Chunk* cached_chunk_ = nullptr;
};

}  // namespace numasim::vm
