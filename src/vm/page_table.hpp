// Two-level radix page table keyed by virtual page number.
//
// Chunks of 512 PTEs (one 2 MiB-aligned region each) give dense storage and
// cache-friendly walks for the multi-million-page worksets of Table 1, while
// staying sparse across the 48-bit address space. A one-entry chunk cache
// accelerates the sequential walks the kernel does constantly.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "vm/pte.hpp"

namespace numasim::vm {

/// Virtual page number (virtual address >> 12).
using Vpn = std::uint64_t;

class PageTable {
 public:
  static constexpr unsigned kChunkBits = 9;
  static constexpr std::uint64_t kChunkPages = 1ull << kChunkBits;

  /// PTE for `vpn`, or nullptr if nothing was ever established there.
  Pte* find(Vpn vpn) {
    Chunk* c = chunk_of(vpn, /*create=*/false);
    return c ? &(*c)[vpn & (kChunkPages - 1)] : nullptr;
  }
  const Pte* find(Vpn vpn) const {
    return const_cast<PageTable*>(this)->find(vpn);
  }

  /// PTE for `vpn`, creating an empty one if needed.
  Pte& ensure(Vpn vpn) {
    return (*chunk_of(vpn, /*create=*/true))[vpn & (kChunkPages - 1)];
  }

  /// Reset all PTEs in [first, last) to empty (frames must already be freed).
  void clear_range(Vpn first, Vpn last);

  /// Number of present PTEs in [first, last) — O(pages), for tests.
  std::uint64_t count_present(Vpn first, Vpn last) const;

 private:
  using Chunk = std::array<Pte, kChunkPages>;

  Chunk* chunk_of(Vpn vpn, bool create) {
    const std::uint64_t key = vpn >> kChunkBits;
    if (key == cached_key_ && cached_chunk_ != nullptr) return cached_chunk_;
    auto it = chunks_.find(key);
    if (it == chunks_.end()) {
      if (!create) return nullptr;
      it = chunks_.emplace(key, std::make_unique<Chunk>()).first;
    }
    cached_key_ = key;
    cached_chunk_ = it->second.get();
    return cached_chunk_;
  }

  std::unordered_map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
  std::uint64_t cached_key_ = ~0ull;
  Chunk* cached_chunk_ = nullptr;
};

}  // namespace numasim::vm
