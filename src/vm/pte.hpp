// Page-table entry, with the paper's migrate-on-next-touch flag.
#pragma once

#include <cstdint>

#include "mem/phys.hpp"

namespace numasim::vm {

/// Access protection bits (subset of PROT_*).
enum class Prot : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

constexpr Prot operator|(Prot a, Prot b) {
  return static_cast<Prot>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
constexpr bool prot_allows(Prot have, Prot want) {
  return (static_cast<std::uint8_t>(have) & static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

struct Pte {
  // Flag bits. kHwRead/kHwWrite are the *hardware* permissions in the PTE,
  // which may be narrower than the owning VMA's protection: both next-touch
  // implementations work by clearing them so the next access faults
  // (paper Figs. 1 and 2).
  static constexpr std::uint16_t kPresent = 1u << 0;
  static constexpr std::uint16_t kHwRead = 1u << 1;
  static constexpr std::uint16_t kHwWrite = 1u << 2;
  static constexpr std::uint16_t kAccessed = 1u << 3;
  static constexpr std::uint16_t kDirty = 1u << 4;
  /// The kernel next-touch marker (the paper's new madvise semantics).
  static constexpr std::uint16_t kNextTouch = 1u << 5;
  /// Extension: this PTE points at a read-only replica (see kern/replication).
  static constexpr std::uint16_t kReplica = 1u << 6;
  /// Extension: part of a 2 MiB huge mapping (populated as a block; not
  /// migratable, matching Linux circa 2009).
  static constexpr std::uint16_t kHuge = 1u << 7;
  /// AutoNUMA hint marker (pte_protnone): the scan clock cleared the hw
  /// bits so the next ordinary access takes a NUMA hint fault.
  static constexpr std::uint16_t kNumaHint = 1u << 8;
  /// A transactional migration (kern/txn_migrate) has write-protected this
  /// page between its shadow copy and the commit flip. A write fault clears
  /// it and restores write access immediately — the writer never waits for
  /// the migration; the verify step then sees the dirtied generation.
  static constexpr std::uint16_t kTxn = 1u << 9;

  /// Flags that make a page ineligible for the soft-TLB extent cache
  /// (kern/stlb.hpp): each marks pending per-page work — replica resolution,
  /// a migration transaction, a next-touch or NUMA-hint fault — that the
  /// walk-free fast path could not perform. Shared by the access() fill
  /// paths and the validate() descriptor audit so they can never disagree.
  static constexpr std::uint16_t kStlbExcluded =
      kNextTouch | kReplica | kNumaHint | kTxn;

  /// `numa_last` value meaning "no hint fault recorded yet".
  static constexpr std::uint8_t kNoNumaNode = 0xFF;

  mem::FrameId frame = mem::kInvalidFrame;
  std::uint16_t flags = 0;
  /// Node of the last hint fault on this page (two-reference confirmation,
  /// like page_cpupid_last); kNoNumaNode until the first hint fault.
  std::uint8_t numa_last = kNoNumaNode;
  /// Scan windows this page has carried kNumaHint without a refault —
  /// cold-page evidence for tier demotion (saturating; reset on any hint
  /// fault and after a demotion).
  std::uint8_t numa_idle = 0;
  /// Write-generation stamp: bumped on every write access (and poke). The
  /// transactional migrator snapshots it before the shadow copy and
  /// re-verifies it before the commit flip — the simulated dirty-bit race
  /// window. Generation counting subsumes timestamping the last write: any
  /// write after the snapshot changes the generation.
  std::uint32_t write_gen = 0;

  bool present() const { return flags & kPresent; }
  bool next_touch() const { return flags & kNextTouch; }
  bool numa_hint() const { return flags & kNumaHint; }
  bool hw_allows(Prot want) const {
    if (!present()) return false;
    if (prot_allows(want, Prot::kWrite) && !(flags & kHwWrite)) return false;
    if (prot_allows(want, Prot::kRead) && !(flags & kHwRead)) return false;
    return true;
  }
  void set(std::uint16_t f) { flags |= f; }
  void clear(std::uint16_t f) { flags &= static_cast<std::uint16_t>(~f); }

  /// Re-derive the hardware permission bits from the owning VMA's
  /// protection — the rearm step shared by fault repair, next-touch
  /// completion, and its degraded (migration-failed) variant.
  void restore_hw(Prot vma_prot) {
    clear(kHwRead | kHwWrite);
    if (prot_allows(vma_prot, Prot::kRead)) set(kHwRead);
    if (prot_allows(vma_prot, Prot::kWrite)) set(kHwWrite);
  }
};

// Page metadata is the dominant per-page cost at million-page scale: a
// 512-entry chunk must stay compact (12 bytes/page — 12 MiB of metadata per
// million pages). Widening Pte needs a deliberate decision, not an
// accidental field.
static_assert(sizeof(Pte) <= 16, "Pte grew past the compact metadata budget");

}  // namespace numasim::vm
