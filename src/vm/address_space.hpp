// Process address space: VMAs plus the page table.
//
// Pure bookkeeping — all cost accounting and frame management happens in the
// simulated kernel (src/kern), which drives this structure the way Linux's
// mm/ code drives mm_struct. VMAs split on partial mprotect/madvise/mbind
// and re-merge when neighbours become identical, as in Linux.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "vm/page_table.hpp"
#include "vm/policy.hpp"
#include "vm/pte.hpp"

namespace numasim::vm {

/// Virtual byte address.
using Vaddr = std::uint64_t;

constexpr Vpn vpn_of(Vaddr a) { return a >> mem::kPageShift; }
constexpr Vaddr addr_of(Vpn v) { return v << mem::kPageShift; }
constexpr Vaddr page_align_down(Vaddr a) { return a & ~(mem::kPageSize - 1); }
constexpr Vaddr page_align_up(Vaddr a) {
  return (a + mem::kPageSize - 1) & ~(mem::kPageSize - 1);
}

struct Vma {
  Vaddr start = 0;  // inclusive, page aligned
  Vaddr end = 0;    // exclusive, page aligned
  Prot prot = Prot::kReadWrite;
  MemPolicy policy;
  /// VPN of the original mapping's first page; interleave placement is
  /// computed relative to this so splits don't change page targets.
  Vpn pgoff_base = 0;
  /// 2 MiB huge mapping (MAP_HUGETLB): populated block-wise, not migratable.
  bool huge = false;
  /// Identity of the range lock covering this VMA (LockModel::kRange).
  /// Assigned once per map() call; splits inherit it, so every fragment of an
  /// original mapping shares one lock — conflicts are decided by page range,
  /// not by VMA boundary churn.
  std::uint64_t lock_id = 0;
  std::string name;

  std::uint64_t pages() const { return (end - start) >> mem::kPageShift; }
  bool contains(Vaddr a) const { return a >= start && a < end; }
  std::uint64_t pgoff(Vpn vpn) const { return vpn - pgoff_base; }
};

class AddressSpace {
 public:
  /// Lowest address handed out by map(); below is an unmapped guard region
  /// so stray null-ish accesses fault.
  static constexpr Vaddr kMmapBase = 0x1000'0000ull;

  /// Create a VMA of `len` bytes (rounded up to pages). Returns its start.
  /// `huge` requests a 2 MiB-page mapping: len must be a 2 MiB multiple and
  /// the returned address is 2 MiB aligned.
  Vaddr map(std::uint64_t len, Prot prot, const MemPolicy& policy,
            std::string name = {}, bool huge = false);

  /// Remove VMAs overlapping [addr, addr+len). The caller (kernel) must have
  /// freed the frames already. Returns number of pages unmapped.
  std::uint64_t unmap(Vaddr addr, std::uint64_t len);

  /// VMA containing `addr`, or nullptr.
  Vma* find(Vaddr addr);
  const Vma* find(Vaddr addr) const;

  /// True when every byte of [addr, addr+len) lies inside some VMA.
  bool range_mapped(Vaddr addr, std::uint64_t len) const;

  /// Apply `fn` to each VMA overlapping [start, end), splitting at the
  /// boundaries first so callers may mutate prot/policy of exactly the
  /// covered region. Returns number of VMAs visited.
  unsigned for_range(Vaddr start, Vaddr end, const std::function<void(Vma&)>& fn);

  /// Read-only iteration over all VMAs in address order.
  void for_each(const std::function<void(const Vma&)>& fn) const;

  unsigned vma_count() const { return static_cast<unsigned>(vmas_.size()); }

  PageTable& page_table() { return pt_; }
  const PageTable& page_table() const { return pt_; }

  /// Coalesce adjacent VMAs with identical attributes (called after
  /// for_range mutations; also callable from tests).
  void merge_adjacent();

 private:
  void split_at(Vaddr addr);

  std::map<Vaddr, Vma> vmas_;  // keyed by start
  /// One-entry find() cache (map nodes are address-stable; dropped on every
  /// erase). Sequential fault/walk traffic hits the same VMA almost always.
  mutable Vma* cached_vma_ = nullptr;
  PageTable pt_;
  Vaddr next_addr_ = kMmapBase;
  std::uint64_t next_lock_id_ = 1;
};

}  // namespace numasim::vm
