#include "vm/address_space.hpp"

#include <cassert>
#include <stdexcept>

namespace numasim::vm {

Vaddr AddressSpace::map(std::uint64_t len, Prot prot, const MemPolicy& policy,
                        std::string name, bool huge) {
  if (len == 0) throw std::invalid_argument{"AddressSpace::map: zero length"};
  len = page_align_up(len);
  constexpr Vaddr kHugeSize = 2ull << 20;
  if (huge) {
    if (len % kHugeSize != 0)
      throw std::invalid_argument{"AddressSpace::map: huge length not 2MiB-multiple"};
    next_addr_ = (next_addr_ + kHugeSize - 1) & ~(kHugeSize - 1);
  }
  const Vaddr start = next_addr_;
  next_addr_ = start + len + mem::kPageSize;  // one guard page between mappings

  Vma vma;
  vma.huge = huge;
  vma.start = start;
  vma.end = start + len;
  vma.prot = prot;
  vma.policy = policy;
  vma.pgoff_base = vpn_of(start);
  vma.lock_id = next_lock_id_++;
  vma.name = std::move(name);
  vmas_.emplace(start, std::move(vma));
  return start;
}

void AddressSpace::split_at(Vaddr addr) {
  assert(addr == page_align_down(addr));
  Vma* v = find(addr);
  if (v == nullptr || v->start == addr) return;
  Vma right = *v;
  right.start = addr;
  v->end = addr;
  vmas_.emplace(addr, std::move(right));
}

std::uint64_t AddressSpace::unmap(Vaddr addr, std::uint64_t len) {
  const Vaddr start = page_align_down(addr);
  const Vaddr end = page_align_up(addr + len);
  split_at(start);
  split_at(end);

  std::uint64_t pages = 0;
  auto it = vmas_.lower_bound(start);
  while (it != vmas_.end() && it->second.start < end) {
    pages += it->second.pages();
    pt_.clear_range(vpn_of(it->second.start), vpn_of(it->second.end));
    cached_vma_ = nullptr;
    it = vmas_.erase(it);
  }
  return pages;
}

Vma* AddressSpace::find(Vaddr addr) {
  if (cached_vma_ != nullptr && cached_vma_->contains(addr)) return cached_vma_;
  auto it = vmas_.upper_bound(addr);
  if (it == vmas_.begin()) return nullptr;
  --it;
  if (!it->second.contains(addr)) return nullptr;
  cached_vma_ = &it->second;
  return cached_vma_;
}

const Vma* AddressSpace::find(Vaddr addr) const {
  return const_cast<AddressSpace*>(this)->find(addr);
}

bool AddressSpace::range_mapped(Vaddr addr, std::uint64_t len) const {
  Vaddr cur = page_align_down(addr);
  const Vaddr end = page_align_up(addr + len);
  while (cur < end) {
    const Vma* v = find(cur);
    if (v == nullptr) return false;
    cur = v->end;
  }
  return true;
}

unsigned AddressSpace::for_range(Vaddr start, Vaddr end,
                                 const std::function<void(Vma&)>& fn) {
  start = page_align_down(start);
  end = page_align_up(end);
  split_at(start);
  split_at(end);

  unsigned visited = 0;
  auto it = vmas_.lower_bound(start);
  while (it != vmas_.end() && it->second.start < end) {
    fn(it->second);
    ++visited;
    ++it;
  }
  merge_adjacent();
  return visited;
}

void AddressSpace::for_each(const std::function<void(const Vma&)>& fn) const {
  for (const auto& [start, vma] : vmas_) fn(vma);
}

void AddressSpace::merge_adjacent() {
  auto it = vmas_.begin();
  while (it != vmas_.end()) {
    auto next = std::next(it);
    if (next == vmas_.end()) break;
    Vma& a = it->second;
    const Vma& b = next->second;
    if (a.end == b.start && a.prot == b.prot && a.policy == b.policy &&
        a.pgoff_base == b.pgoff_base && a.huge == b.huge &&
        a.lock_id == b.lock_id && a.name == b.name) {
      a.end = b.end;
      cached_vma_ = nullptr;
      vmas_.erase(next);
    } else {
      it = next;
    }
  }
}

}  // namespace numasim::vm
