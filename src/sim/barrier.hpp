// Coroutine barrier for simulated threads.
//
// All participants suspend on arrive(); when the last one arrives, every
// participant resumes at (last arrival time + per-phase cost). The barrier
// is reusable (generation-based), like an OpenMP implicit barrier.
#pragma once

#include <cassert>
#include <coroutine>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace numasim::sim {

class Barrier {
 public:
  /// `parties` threads synchronize; each release costs `phase_cost` ns
  /// (models the cache-line ping-pong of a real tree barrier).
  Barrier(Engine& engine, unsigned parties, Time phase_cost = 0)
      : engine_(engine), parties_(parties), phase_cost_(phase_cost) {
    assert(parties_ > 0);
    waiting_.reserve(parties_);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Awaitable: block until all parties have arrived in this generation.
  auto arrive() {
    struct Awaiter {
      Barrier& barrier;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { barrier.on_arrive(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  unsigned parties() const { return parties_; }

 private:
  void on_arrive(std::coroutine_handle<> h) {
    waiting_.push_back(h);
    if (waiting_.size() == parties_) {
      engine_.post_at(engine_.now() + phase_cost_, waiting_);
      waiting_.clear();
    }
  }

  Engine& engine_;
  unsigned parties_;
  Time phase_cost_;
  std::vector<std::coroutine_handle<>> waiting_;
};

}  // namespace numasim::sim
