#include "sim/stats.hpp"

namespace numasim::sim {

std::string_view cost_kind_name(CostKind k) {
  switch (k) {
    case CostKind::kCompute: return "compute";
    case CostKind::kMemAccess: return "mem-access";
    case CostKind::kSyscallEntry: return "syscall-entry";
    case CostKind::kMovePagesControl: return "move_pages-control";
    case CostKind::kMovePagesCopy: return "move_pages-copy";
    case CostKind::kMigratePagesControl: return "migrate_pages-control";
    case CostKind::kMigratePagesCopy: return "migrate_pages-copy";
    case CostKind::kPageFault: return "page-fault";
    case CostKind::kSignalDelivery: return "signal-delivery";
    case CostKind::kUserHandler: return "user-handler";
    case CostKind::kMprotectMark: return "mprotect-mark";
    case CostKind::kMprotectRestore: return "mprotect-restore";
    case CostKind::kMadvise: return "madvise";
    case CostKind::kNextTouchControl: return "next-touch-control";
    case CostKind::kNextTouchCopy: return "next-touch-copy";
    case CostKind::kTlbShootdown: return "tlb-shootdown";
    case CostKind::kReplicaControl: return "replica-control";
    case CostKind::kReplicaCopy: return "replica-copy";
    case CostKind::kLockWait: return "lock-wait";
    case CostKind::kAllocZero: return "alloc-zero";
    case CostKind::kNumaScan: return "numa-scan";
    case CostKind::kNumaHint: return "numa-hint";
    case CostKind::kNumaBalance: return "numa-balance";
    case CostKind::kOther: return "other";
    case CostKind::kCount: break;
  }
  return "?";
}

}  // namespace numasim::sim
