// Simulated time: 64-bit unsigned nanoseconds.
//
// All durations and instants in the simulator use this unit. Helpers below
// convert from human units and format instants for reports.
#pragma once

#include <cstdint>
#include <string>

namespace numasim::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;

/// Largest representable instant; used as "never".
inline constexpr Time kTimeNever = ~Time{0};

constexpr Time nanoseconds(std::uint64_t v) { return v; }
constexpr Time microseconds(std::uint64_t v) { return v * 1'000ull; }
constexpr Time milliseconds(std::uint64_t v) { return v * 1'000'000ull; }
constexpr Time seconds(std::uint64_t v) { return v * 1'000'000'000ull; }

/// Convert an instant/duration to floating-point seconds (for reports).
constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }

/// Convert to floating-point microseconds (for reports).
constexpr double to_microseconds(Time t) { return static_cast<double>(t) * 1e-3; }

/// Throughput in MB/s (decimal megabytes, as the paper plots) for `bytes`
/// transferred over duration `t`. Returns 0 for a zero duration.
constexpr double mb_per_second(std::uint64_t bytes, Time t) {
  if (t == 0) return 0.0;
  return static_cast<double>(bytes) / 1e6 / to_seconds(t);
}

/// Human-readable rendering, e.g. "1.234 ms" — for logs and examples.
std::string format_time(Time t);

}  // namespace numasim::sim
