#include "sim/time.hpp"

#include <cstdio>

namespace numasim::sim {

std::string format_time(Time t) {
  char buf[64];
  const double ns = static_cast<double>(t);
  if (t < 10'000ull) {
    std::snprintf(buf, sizeof buf, "%llu ns", static_cast<unsigned long long>(t));
  } else if (t < 10'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else if (t < 10'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  }
  return buf;
}

}  // namespace numasim::sim
