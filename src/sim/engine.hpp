// Deterministic discrete-event engine.
//
// One host thread runs the whole simulation. Simulated threads are
// coroutines; every timed operation computes a finish instant and then
// `co_await engine.resume_at(finish)`. The engine pops events in
// (time, sequence) order, so execution is bit-reproducible: ties resolve by
// scheduling order, never by host scheduling.
//
// Posting goes through post_at/post_in/post_now — the raw queue is an
// implementation detail. Same-instant posts (post_now, post_at(now()),
// clamped past posts) take an O(1) FIFO fast path instead of paying a heap
// push/pop; the run loop drains heap events due at the current instant
// before FIFO ones, which reproduces the (time, sequence) order of the
// single-heap design exactly: any heap event due at `now` was posted while
// the clock was still earlier, so its sequence number is smaller than that
// of every event the FIFO holds.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace numasim::sim {

/// Identifies a root task started on the engine.
using RootId = std::size_t;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated instant (the timestamp of the event being processed).
  Time now() const { return now_; }

  /// Post a raw coroutine resume at absolute instant `t` (>= now(); an
  /// earlier `t` is clamped to now()). Same-instant posts are O(1).
  void post_at(Time t, std::coroutine_handle<> h) {
    assert(t >= now_ && "cannot post into the simulated past");
    if (t <= now_) {
      fifo_.push_back(h);
    } else {
      queue_.push(Event{t, seq_++, h});
    }
  }

  /// Batch-post: every handle in `hs` resumes at instant `t`, in the given
  /// order (one heap insertion point, or the FIFO when `t` == now()).
  void post_at(Time t, std::span<const std::coroutine_handle<>> hs) {
    for (std::coroutine_handle<> h : hs) post_at(t, h);
  }

  /// Post a resume `d` nanoseconds from now.
  void post_in(Time d, std::coroutine_handle<> h) { post_at(now_ + d, h); }

  /// Post a resume at the current instant — always the O(1) FIFO path. The
  /// handle runs after every already-posted event due at now(), in posting
  /// order.
  void post_now(std::coroutine_handle<> h) { fifo_.push_back(h); }

  /// Deprecated pre-redesign spelling of post_at(); kept as a thin wrapper
  /// (see DESIGN.md). New code should use post_at/post_in/post_now.
  void schedule(Time t, std::coroutine_handle<> h) { post_at(t, h); }

  /// Awaitable: suspend the current coroutine and resume it at instant `t`.
  /// `t` may equal now(); the coroutine is then re-queued behind already
  /// scheduled same-instant events (deterministic FIFO ordering).
  auto resume_at(Time t) {
    struct Awaiter {
      Engine& engine;
      Time at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { engine.post_at(at, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, t};
  }

  /// Awaitable: advance the current coroutine's clock by `d` nanoseconds.
  auto advance(Time d) { return resume_at(now_ + d); }

  /// Adopt `task` as a root coroutine and schedule its first resume at
  /// max(at, now()). Ownership of the coroutine frame moves to the engine.
  RootId start(Task<void> task, Time at = 0);

  /// As `start`, additionally invoking `on_done` (inside the simulation, at
  /// the root's completion instant) when the task finishes.
  RootId start_with_callback(Task<void> task, std::function<void()> on_done, Time at = 0);

  /// True once the given root task has run to completion.
  bool finished(RootId id) const;

  /// Process events until the queue drains. Rethrows the first exception
  /// that escaped any root task (after the queue is drained).
  void run();

  /// Number of events processed so far (diagnostics).
  std::uint64_t events_processed() const { return events_; }

  /// Number of root tasks that have not yet completed.
  std::size_t live_roots() const;

 private:
  struct RootState {
    std::coroutine_handle<Task<void>::promise_type> handle;
    bool done = false;
    std::function<void()> user_done;
    std::function<void()> hook;  // pointed to by the promise
  };

  struct Event {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::deque<std::coroutine_handle<>> fifo_;  // same-instant fast path
  std::vector<std::unique_ptr<RootState>> roots_;
};

}  // namespace numasim::sim
