// Slab allocator for coroutine frames — the simulator's event records.
//
// Every sim event is a suspended coroutine, so event allocation *is*
// coroutine-frame allocation. The default promise operator new hits the
// global heap once per spawned task/awaiter; fork/join workloads create
// millions of frames of only a handful of distinct sizes. FramePool keeps
// size-classed free lists carved from 64 KiB slabs (SICM's extent-array
// idiom): allocation is a pop, deallocation a push, both O(1), and the
// slabs themselves are recycled for the lifetime of the thread.
//
// Determinism: recycling changes the *addresses* frames land at, never the
// order events run in — nothing in the simulator orders on pointer values.
// The pool is thread_local: the sim core is single-threaded by design, and
// test binaries that drive several engines from different host threads get
// one pool each. Slabs are released at thread exit so leak checkers stay
// quiet.
#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <vector>

namespace numasim::sim {

class FramePool {
 public:
  static void* allocate(std::size_t n) { return instance().alloc(n); }
  static void deallocate(void* p, std::size_t n) noexcept { instance().free_one(p, n); }

  /// Pooled bytes currently sitting on free lists (diagnostics).
  static std::size_t free_bytes() { return instance().free_bytes_; }

 private:
  /// Size classes are 64-byte granules; larger frames (rare: big inline
  /// locals) fall through to the global heap.
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kMaxPooled = 4096;
  static constexpr std::size_t kClasses = kMaxPooled / kGranule;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  static FramePool& instance() {
    thread_local FramePool pool;
    return pool;
  }

  static std::size_t class_of(std::size_t n) { return (n + kGranule - 1) / kGranule - 1; }

  void* alloc(std::size_t n) {
    if (n == 0 || n > kMaxPooled) return ::operator new(n);
    auto& list = free_[class_of(n)];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      free_bytes_ -= (class_of(n) + 1) * kGranule;
      return p;
    }
    const std::size_t sz = (class_of(n) + 1) * kGranule;
    if (slab_left_ < sz) {
      slabs_.push_back(static_cast<std::byte*>(::operator new(kSlabBytes)));
      slab_cursor_ = slabs_.back();
      slab_left_ = kSlabBytes;
    }
    void* p = slab_cursor_;
    slab_cursor_ += sz;
    slab_left_ -= sz;
    return p;
  }

  void free_one(void* p, std::size_t n) noexcept {
    if (n == 0 || n > kMaxPooled) {
      ::operator delete(p);
      return;
    }
    free_[class_of(n)].push_back(p);
    free_bytes_ += (class_of(n) + 1) * kGranule;
  }

  FramePool() = default;
  ~FramePool() {
    for (std::byte* s : slabs_) ::operator delete(s);
  }
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  std::array<std::vector<void*>, kClasses> free_;
  std::vector<std::byte*> slabs_;
  std::byte* slab_cursor_ = nullptr;
  std::size_t slab_left_ = 0;
  std::size_t free_bytes_ = 0;
};

}  // namespace numasim::sim
