// Deterministic PRNG for workload generation (xoshiro256**).
//
// Host randomness never feeds the simulation: every random choice comes from
// an explicitly seeded Rng so runs are bit-reproducible.
#pragma once

#include <cstdint>

namespace numasim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace numasim::sim
