// Cost-category accounting (the instrumentation behind the paper's Fig. 6).
//
// Every nanosecond the simulated kernel or user library spends is attributed
// to one CostKind; benchmarks aggregate these to print the paper's
// "Next-Touch Migration Cost Percentage" breakdowns.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace numasim::sim {

enum class CostKind : std::uint8_t {
  kCompute,             // user-space arithmetic
  kMemAccess,           // user-space loads/stores through the cache model
  kSyscallEntry,        // kernel entry/exit trampolines
  kMovePagesControl,    // move_pages: locking, page-table walks, status arrays
  kMovePagesCopy,       // move_pages: the actual page copies
  kMigratePagesControl, // migrate_pages: VMA traversal and bookkeeping
  kMigratePagesCopy,    // migrate_pages: the actual page copies
  kPageFault,           // fault entry + VMA lookup + PTE inspection
  kSignalDelivery,      // SIGSEGV delivery + sigreturn
  kUserHandler,         // user-space work inside a signal handler
  kMprotectMark,        // mprotect() used to arm user next-touch
  kMprotectRestore,     // mprotect() restoring protection after migration
  kMadvise,             // madvise(MADV_MIGRATE_ON_NEXT_TOUCH) marking
  kNextTouchControl,    // kernel next-touch fault path bookkeeping
  kNextTouchCopy,       // kernel next-touch page copies
  kTlbShootdown,        // remote TLB invalidation IPIs
  kReplicaControl,      // replication bookkeeping (extension)
  kReplicaCopy,         // replica page copies (extension)
  kLockWait,            // queueing on the page-table lock
  kAllocZero,           // first-touch allocation + zero-fill
  kNumaScan,            // autonuma: scan-clock PTE unmapping windows
  kNumaHint,            // autonuma: hint-fault bookkeeping + promotion submits
  kNumaBalance,         // autonuma: sched::Balancer evaluation passes
  kOther,
  kCount
};

constexpr std::size_t kCostKindCount = static_cast<std::size_t>(CostKind::kCount);

std::string_view cost_kind_name(CostKind k);

/// Per-thread (or per-run) accumulator of time by category.
class CostStats {
 public:
  void add(CostKind k, Time t) { ns_[static_cast<std::size_t>(k)] += t; }
  Time get(CostKind k) const { return ns_[static_cast<std::size_t>(k)]; }

  Time total() const {
    Time sum = 0;
    for (Time t : ns_) sum += t;
    return sum;
  }

  double fraction(CostKind k) const {
    const Time t = total();
    return t == 0 ? 0.0 : static_cast<double>(get(k)) / static_cast<double>(t);
  }

  CostStats& operator+=(const CostStats& o) {
    for (std::size_t i = 0; i < kCostKindCount; ++i) ns_[i] += o.ns_[i];
    return *this;
  }

  void reset() { ns_.fill(0); }

 private:
  std::array<Time, kCostKindCount> ns_{};
};

}  // namespace numasim::sim
