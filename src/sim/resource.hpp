// Timeline resources: contention modelled as reservations, not suspension.
//
// Because the engine executes operations in global simulated-time order, a
// shared resource can be modelled as a "next free instant": an operation
// arriving at `now` starts at max(now, free_at) and pushes free_at forward.
// The caller's clock simply advances to the returned finish instant, which
// bakes both queueing delay and service time into its timeline. This models
// kernel locks (Timeline), DRAM controllers and HyperTransport links
// (BandwidthResource) without any host-level blocking.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace numasim::sim {

/// A start/finish pair returned by a reservation. `start - request` is the
/// queueing (contention) delay; `finish - start` is the service time.
struct Slot {
  Time start = 0;
  Time finish = 0;
  Time wait(Time requested) const { return start - requested; }
  Time service() const { return finish - start; }
};

/// Exclusive serially-reusable resource (a lock, a migration daemon, ...).
class Timeline {
 public:
  /// Reserve the resource for `hold` ns starting no earlier than `now`.
  Slot reserve(Time now, Time hold) {
    const Time start = now > free_at_ ? now : free_at_;
    free_at_ = start + hold;
    return {start, free_at_};
  }

  /// Next instant at which the resource is idle.
  Time free_at() const { return free_at_; }

  void reset() { free_at_ = 0; }

 private:
  Time free_at_ = 0;
};

/// Reader/writer serially-reusable resource (an rwsem). Shared holds overlap
/// freely with each other; an exclusive hold waits for every outstanding hold
/// and blocks all later arrivals until it finishes. Like Timeline this keeps
/// only "next free instant" summaries, so it is O(1) per reservation.
class SharedTimeline {
 public:
  /// Reserve a shared (reader) hold of `hold` ns starting no earlier than
  /// `now`. Readers queue only behind writers.
  Slot reserve_shared(Time now, Time hold) {
    const Time start = now > excl_free_at_ ? now : excl_free_at_;
    const Time finish = start + hold;
    if (finish > shared_free_at_) shared_free_at_ = finish;
    return {start, finish};
  }

  /// Reserve an exclusive (writer) hold: waits for all readers and writers.
  Slot reserve_exclusive(Time now, Time hold) {
    Time start = now > excl_free_at_ ? now : excl_free_at_;
    if (shared_free_at_ > start) start = shared_free_at_;
    excl_free_at_ = start + hold;
    return {start, excl_free_at_};
  }

  /// Next instant at which no hold (of either kind) is outstanding.
  Time free_at() const {
    return excl_free_at_ > shared_free_at_ ? excl_free_at_ : shared_free_at_;
  }

  void reset() { excl_free_at_ = shared_free_at_ = 0; }

 private:
  Time excl_free_at_ = 0;    // last writer's finish
  Time shared_free_at_ = 0;  // latest reader finish
};

/// A store-and-forward bandwidth pipe: transfers serialize, each taking
/// latency + bytes/rate. Concurrent users share the aggregate bandwidth by
/// queueing, which matches how sustained streams share a memory link.
class BandwidthResource {
 public:
  /// `bytes_per_us`: sustained bandwidth in bytes per microsecond
  /// (1 GB/s == 1000 bytes/us). `latency`: fixed per-transfer setup cost.
  BandwidthResource(double bytes_per_us, Time latency = 0)
      : ns_per_byte_(1000.0 / bytes_per_us), latency_(latency) {}

  /// Reserve the pipe for a transfer of `bytes` starting no earlier than `now`.
  Slot transfer(Time now, std::uint64_t bytes) {
    const Time dur = latency_ + duration(bytes);
    return line_.reserve(now, dur);
  }

  /// Unloaded service time for `bytes` (no queueing).
  Time duration(std::uint64_t bytes) const {
    return static_cast<Time>(static_cast<double>(bytes) * ns_per_byte_ + 0.5);
  }

  double bytes_per_us() const { return 1000.0 / ns_per_byte_; }
  Time latency() const { return latency_; }
  Time free_at() const { return line_.free_at(); }
  void reset() { line_.reset(); }

 private:
  double ns_per_byte_;
  Time latency_;
  Timeline line_;
};

}  // namespace numasim::sim
