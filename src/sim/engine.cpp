#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace numasim::sim {

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r->handle) r->handle.destroy();
  }
}

RootId Engine::start(Task<void> task, Time at) {
  return start_with_callback(std::move(task), {}, at);
}

RootId Engine::start_with_callback(Task<void> task, std::function<void()> on_done, Time at) {
  auto state = std::make_unique<RootState>();
  state->handle = task.release();
  state->user_done = std::move(on_done);
  RootState* raw = state.get();
  state->hook = [raw] {
    raw->done = true;
    if (raw->user_done) raw->user_done();
  };
  state->handle.promise().on_root_done = &state->hook;
  roots_.push_back(std::move(state));
  post_at(at < now_ ? now_ : at, raw->handle);
  return roots_.size() - 1;
}

bool Engine::finished(RootId id) const {
  if (id >= roots_.size()) throw std::out_of_range{"Engine::finished: bad RootId"};
  return roots_[id]->done;
}

std::size_t Engine::live_roots() const {
  std::size_t n = 0;
  for (const auto& r : roots_)
    if (!r->done) ++n;
  return n;
}

void Engine::run() {
  // Heap events due at the current instant carry smaller sequence numbers
  // than anything in the FIFO (see the header comment), so draining them
  // first reproduces exact (time, sequence) order.
  for (;;) {
    std::coroutine_handle<> h;
    if (fifo_.empty()) {
      // Pure-heap steady state: as cheap as the single-queue design. The
      // top event's time is >= now_ (posts clamp), so the assignment both
      // advances the clock and is a no-op for due-now events.
      if (queue_.empty()) break;
      now_ = queue_.top().t;
      h = queue_.top().h;
      queue_.pop();
    } else if (!queue_.empty() && queue_.top().t <= now_) {
      h = queue_.top().h;
      queue_.pop();
    } else {
      h = fifo_.front();
      fifo_.pop_front();
    }
    ++events_;
    h.resume();
  }
  for (const auto& r : roots_) {
    if (r->done && r->handle.promise().exception) {
      std::rethrow_exception(r->handle.promise().exception);
    }
  }
}

}  // namespace numasim::sim
