#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace numasim::sim {

Engine::~Engine() {
  for (auto& r : roots_) {
    if (r->handle) r->handle.destroy();
  }
}

void Engine::schedule(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule into the simulated past");
  queue_.push(Event{t < now_ ? now_ : t, seq_++, h});
}

RootId Engine::start(Task<void> task, Time at) {
  return start_with_callback(std::move(task), {}, at);
}

RootId Engine::start_with_callback(Task<void> task, std::function<void()> on_done, Time at) {
  auto state = std::make_unique<RootState>();
  state->handle = task.release();
  state->user_done = std::move(on_done);
  RootState* raw = state.get();
  state->hook = [raw] {
    raw->done = true;
    if (raw->user_done) raw->user_done();
  };
  state->handle.promise().on_root_done = &state->hook;
  roots_.push_back(std::move(state));
  schedule(at < now_ ? now_ : at, raw->handle);
  return roots_.size() - 1;
}

bool Engine::finished(RootId id) const {
  if (id >= roots_.size()) throw std::out_of_range{"Engine::finished: bad RootId"};
  return roots_[id]->done;
}

std::size_t Engine::live_roots() const {
  std::size_t n = 0;
  for (const auto& r : roots_)
    if (!r->done) ++n;
  return n;
}

void Engine::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++events_;
    ev.h.resume();
  }
  for (const auto& r : roots_) {
    if (r->done && r->handle.promise().exception) {
      std::rethrow_exception(r->handle.promise().exception);
    }
  }
}

}  // namespace numasim::sim
