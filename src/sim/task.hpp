// Minimal lazy coroutine task type used for simulated-thread bodies.
//
// A Task<T> is a coroutine that starts suspended, runs when awaited (or when
// started as a root task by the Engine), and resumes its awaiter via
// symmetric transfer when it completes. Exceptions propagate to the awaiter;
// for root tasks the Engine rethrows them from Engine::run().
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

#include "sim/arena.hpp"

namespace numasim::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;           // who to resume on completion
  std::exception_ptr exception;                   // captured error, if any
  std::function<void()>* on_root_done = nullptr;  // set only for root tasks

  // Frames are the simulator's event records; route them through the slab
  // pool instead of the global heap. Inherited by both promise types, so
  // every Task<T> frame is pooled. Only the sized delete is declared — the
  // frame size is the size class.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p, std::size_t n) noexcept { FramePool::deallocate(p, n); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.on_root_done != nullptr && *p.on_root_done) (*p.on_root_done)();
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    alignas(T) unsigned char storage[sizeof(T)];
    bool has_value = false;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
    template <typename U>
    void return_value(U&& v) {
      ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
      has_value = true;
    }
    T& value() { return *std::launder(reinterpret_cast<T*>(storage)); }
    ~promise_type() {
      if (has_value) value().~T();
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  // Awaitable interface: starting the child and transferring control to it.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(h_.promise().value());
  }

 private:
  friend class Engine;
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  friend class Engine;
  std::coroutine_handle<promise_type> release() { return std::exchange(h_, nullptr); }
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace numasim::sim
