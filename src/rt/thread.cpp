#include "rt/thread.hpp"

#include <algorithm>

namespace numasim::rt {

Thread::Thread(Machine& m, kern::ThreadId tid, topo::CoreId core) : m_(m) {
  ctx_.tid = tid;
  ctx_.pid = m.pid();
  ctx_.core = core;
}

sim::Task<void> Thread::sync() {
  co_await m_.engine().resume_at(ctx_.clock);
}

sim::Task<void> Thread::compute(sim::Time ns) {
  ctx_.clock += ns;
  ctx_.stats.add(sim::CostKind::kCompute, ns);
  co_await m_.engine().resume_at(ctx_.clock);
}

sim::Task<void> Thread::migrate_to_core(topo::CoreId core) {
  ctx_.clock += m_.cost().thread_spawn;  // context migration cost
  ctx_.stats.add(sim::CostKind::kOther, m_.cost().thread_spawn);
  ctx_.core = core;
  co_await m_.engine().resume_at(ctx_.clock);
}

sim::Task<vm::Vaddr> Thread::mmap(std::uint64_t len, vm::Prot prot,
                                  vm::MemPolicy policy, std::string name) {
  const vm::Vaddr a = kernel().sys_mmap(ctx_, len, prot, policy, std::move(name));
  co_await m_.engine().resume_at(ctx_.clock);
  co_return a;
}

sim::Task<kern::SyscallResult> Thread::munmap(vm::Vaddr addr, std::uint64_t len) {
  const kern::SyscallResult r = kernel().sys_munmap(ctx_, addr, len);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::mprotect(vm::Vaddr addr, std::uint64_t len,
                                                vm::Prot prot) {
  const kern::SyscallResult r = kernel().sys_mprotect(ctx_, addr, len, prot);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::madvise(vm::Vaddr addr, std::uint64_t len,
                                               kern::Advice advice) {
  const kern::SyscallResult r = kernel().sys_madvise(ctx_, addr, len, advice);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::mbind(vm::Vaddr addr, std::uint64_t len,
                                             vm::MemPolicy policy) {
  const kern::SyscallResult r = kernel().sys_mbind(ctx_, addr, len, policy);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::set_mempolicy(vm::MemPolicy policy) {
  const kern::SyscallResult r = kernel().sys_set_mempolicy(ctx_, policy);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::AccessResult> Thread::touch(vm::Vaddr addr, std::uint64_t len,
                                            vm::Prot want, double stream_rate) {
  if (stream_rate < 0) stream_rate = m_.cost().core_stream_bytes_per_us;
  kern::AccessResult total;
  const std::uint64_t chunk_bytes = kChunkPages * mem::kPageSize;
  std::uint64_t off = 0;
  while (off < len) {
    const std::uint64_t n = std::min(chunk_bytes, len - off);
    const kern::AccessResult r = kernel().access(ctx_, addr + off, n, want, stream_rate);
    total.pages += r.pages;
    total.minor_faults += r.minor_faults;
    total.nexttouch_migrations += r.nexttouch_migrations;
    total.nexttouch_hits_local += r.nexttouch_hits_local;
    total.sigsegv_delivered += r.sigsegv_delivered;
    off += n;
    co_await m_.engine().resume_at(ctx_.clock);
  }
  co_return total;
}

sim::Task<kern::AccessResult> Thread::touch_pages_sparse(vm::Vaddr addr,
                                                         std::uint64_t len,
                                                         vm::Prot want) {
  // Touching one word per page is, fault-wise, the same as walking the range
  // with no data-plane charge — so this is touch() at stream rate 0. Going
  // through the chunked range access keeps the kernel's per-batch migration
  // pipeline anchored per chunk, not per page.
  return touch(addr, len, want, 0.0);
}

sim::Task<int> Thread::memcpy_user(vm::Vaddr dst, vm::Vaddr src, std::uint64_t len) {
  const int r = kernel().user_memcpy(ctx_, dst, src, len);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<int> Thread::read(vm::Vaddr addr, std::span<std::byte> out) {
  const int r = kernel().read_bytes(ctx_, addr, out);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<int> Thread::write(vm::Vaddr addr, std::span<const std::byte> in) {
  const int r = kernel().write_bytes(ctx_, addr, in);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::move_pages(
    std::span<const vm::Vaddr> pages, std::span<const topo::NodeId> nodes,
    std::span<int> status) {
  if (!nodes.empty() && nodes.size() != pages.size()) co_return -kern::kEINVAL;
  if (status.size() != pages.size()) co_return -kern::kEINVAL;
  if (pages.empty()) {
    // Mirror the kernel's nr_pages == 0 fast path (no mmap_sem, no base).
    const kern::SyscallResult r = kernel().sys_move_pages(ctx_, pages, nodes, status);
    co_await m_.engine().resume_at(ctx_.clock);
    co_return r;
  }
  kernel().move_pages_enter(ctx_, pages.size());
  co_await m_.engine().resume_at(ctx_.clock);
  for (std::size_t off = 0; off < pages.size(); off += kChunkPages) {
    const std::size_t n = std::min(kChunkPages, pages.size() - off);
    kernel().move_pages_chunk(ctx_, pages.subspan(off, n),
                              nodes.empty() ? nodes : nodes.subspan(off, n),
                              status.subspan(off, n), pages.size());
    co_await m_.engine().resume_at(ctx_.clock);
  }
  co_return 0;
}

sim::Task<kern::SyscallResult> Thread::move_range(vm::Vaddr addr,
                                                  std::uint64_t len,
                                                  topo::NodeId node) {
  const vm::Vpn first = vm::vpn_of(addr);
  const vm::Vpn last = vm::vpn_of(addr + len - 1) + 1;
  std::vector<vm::Vaddr> pages;
  pages.reserve(last - first);
  for (vm::Vpn vpn = first; vpn < last; ++vpn) pages.push_back(vm::addr_of(vpn));
  std::vector<topo::NodeId> nodes(pages.size(), node);
  std::vector<int> status(pages.size(), 0);
  const kern::SyscallResult r = co_await move_pages(pages, nodes, status);
  if (!r.ok()) co_return r;
  long moved = 0;
  for (int s : status)
    if (s >= 0) ++moved;
  co_return moved;
}

sim::Task<kern::SyscallResult> Thread::migrate_pages(kern::Pid target,
                                                     topo::NodeMask from,
                                                     topo::NodeMask to) {
  const kern::SyscallResult r = kernel().sys_migrate_pages(ctx_, target, from, to);
  co_await m_.engine().resume_at(ctx_.clock);
  co_return r;
}

sim::Task<kern::SyscallResult> Thread::move_range_async(vm::Vaddr addr,
                                                        std::uint64_t len,
                                                        topo::NodeId node) {
  const kern::Kernel::MoveRange r{addr, len, node};
  const kern::SyscallResult res =
      kernel().sys_move_pages_async(ctx_, std::span{&r, 1});
  co_await m_.engine().resume_at(ctx_.clock);
  co_return res;
}

sim::Task<void> Thread::kmigrated_drain() {
  kernel().kmigrated_drain(ctx_);
  co_await m_.engine().resume_at(ctx_.clock);
}

sim::Task<void> Thread::barrier(sim::Barrier& b) {
  co_await m_.engine().resume_at(ctx_.clock);
  co_await b.arrive();
  ctx_.clock = m_.engine().now();
}

}  // namespace numasim::rt
