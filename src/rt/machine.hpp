// Machine: engine + topology + kernel + the simulated process, in one box.
//
// This is the library's main entry object. Examples and benchmarks build a
// Machine, spawn simulated threads bound to cores, and run the event loop.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "kern/kernel.hpp"
#include "mem/phys.hpp"
#include "sim/engine.hpp"
#include "topo/topology.hpp"

namespace numasim::rt {

class Thread;

class Machine {
 public:
  /// Machine construction *is* kernel construction: one aggregate config
  /// (topology, cost model, lock model, fault plan, ...) flows through.
  using Config = kern::KernelConfig;

  Machine() : Machine(Config{}) {}
  explicit Machine(Config cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;
  ~Machine();

  sim::Engine& engine() { return engine_; }
  kern::Kernel& kernel() { return *kernel_; }
  const topo::Topology& topology() const { return cfg_.topology; }
  const kern::CostModel& cost() const { return kernel_->cost(); }
  kern::Pid pid() const { return pid_; }

  /// A simulated-thread body: a coroutine consuming the Thread facade.
  using Body = std::function<sim::Task<void>(Thread&)>;

  /// Spawn a simulated thread pinned to `core`, starting at simulated
  /// instant `at` (0 = immediately). Returns the Thread for stats
  /// inspection; it stays valid for the Machine's lifetime.
  Thread* spawn(topo::CoreId core, Body body, std::function<void()> on_done = {},
                sim::Time at = 0);

  /// Drain the event loop (rethrows escaped simulated-thread exceptions).
  void run() { engine_.run(); }

  /// Spawn `body` as the initial thread and run the simulation to idle.
  void run_main(topo::CoreId core, Body body) {
    spawn(core, std::move(body));
    run();
  }

  const std::vector<std::unique_ptr<Thread>>& threads() const { return threads_; }

 private:
  Config cfg_;
  std::unique_ptr<kern::Kernel> kernel_;
  // Declared after kernel_ so the engine (and the coroutine frames it owns,
  // which may reference the kernel from their destructors) dies first.
  sim::Engine engine_;
  kern::Pid pid_ = 0;
  kern::ThreadId next_tid_ = 0;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace numasim::rt
