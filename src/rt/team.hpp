// Team: an OpenMP-flavoured fork/join worker group over simulated threads.
//
// `parallel` forks one worker per core and joins them (the caller's clock
// advances to the slowest worker's finish — an implicit barrier, as at the
// end of an OpenMP parallel region). `parallel_for` adds static (GOMP
// default) and dynamic scheduling over an index range; Table 1 and Fig. 8
// run on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "rt/machine.hpp"
#include "rt/thread.hpp"

namespace numasim::rt {

enum class Schedule : std::uint8_t { kStatic, kDynamic };

class Team {
 public:
  Team(Machine& m, std::vector<topo::CoreId> cores);

  /// One worker per core in the Machine, in core order.
  static Team all_cores(Machine& m);
  /// Workers on the cores of a single NUMA node.
  static Team node_cores(Machine& m, topo::NodeId node, unsigned count);

  unsigned size() const { return static_cast<unsigned>(cores_.size()); }
  const std::vector<topo::CoreId>& cores() const { return cores_; }

  using WorkerFn = std::function<sim::Task<void>(unsigned tid, Thread&)>;
  /// Fork size() workers, run `fn`, join. Caller time advances to the join.
  /// `region` names the trace span emitted for the region: one slice per
  /// worker timeline plus a fork-to-join slice on the caller.
  sim::Task<void> parallel(Thread& caller, WorkerFn fn,
                           std::string region = "parallel");

  using IndexFn =
      std::function<sim::Task<void>(unsigned tid, Thread&, std::uint64_t i)>;
  /// Distribute [begin, end) across the team. Static: contiguous blocks
  /// (GCC's GOMP default). Dynamic: workers pull `chunk`-sized slices from a
  /// shared counter, paying a small dispatch cost per slice.
  sim::Task<void> parallel_for(Thread& caller, std::uint64_t begin,
                               std::uint64_t end, Schedule sched, IndexFn body,
                               std::uint64_t chunk = 1,
                               std::string region = "parallel_for");

  /// Aggregate cost stats of the workers of the last region.
  const sim::CostStats& last_stats() const { return last_stats_; }
  /// Wall-span of the last region (fork to join, simulated).
  sim::Time last_span() const { return last_span_; }

 private:
  static constexpr sim::Time kDispatchCost = 250;  // dynamic-schedule grab

  Machine& m_;
  std::vector<topo::CoreId> cores_;
  sim::CostStats last_stats_;
  sim::Time last_span_ = 0;
};

}  // namespace numasim::rt
