// Thread: the coroutine-facing facade a simulated thread's body programs
// against. Every operation calls into the (synchronous) kernel, then awaits
// the engine so concurrent threads interleave in global time order.
//
// Long operations (big touches, big move_pages requests) are internally
// split into kernel-batch-sized chunks with an await between chunks, so lock
// and link contention is modelled at realistic granularity.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "kern/kernel.hpp"
#include "rt/machine.hpp"
#include "sim/barrier.hpp"
#include "sim/task.hpp"

namespace numasim::rt {

class Thread {
 public:
  /// Pages processed per interleaving step in chunked operations.
  static constexpr std::size_t kChunkPages = 64;

  Thread(Machine& m, kern::ThreadId tid, topo::CoreId core);

  kern::ThreadCtx& ctx() { return ctx_; }
  const kern::ThreadCtx& ctx() const { return ctx_; }
  Machine& machine() { return m_; }
  kern::Kernel& kernel() { return m_.kernel(); }
  sim::Time now() const { return ctx_.clock; }
  topo::CoreId core() const { return ctx_.core; }
  topo::NodeId node() const { return m_.topology().node_of_core(ctx_.core); }
  const sim::CostStats& stats() const { return ctx_.stats; }

  // --- observability annotations ----------------------------------------------
  /// Scoped phase annotation: emits an "app" span covering its lifetime into
  /// the kernel's trace sinks (a named slice on this thread's timeline in
  /// the Chrome trace). Free when no sink is attached; never advances
  /// simulated time.
  class Phase {
   public:
    Phase(Thread& th, std::string name)
        : th_(&th), name_(std::move(name)), begin_(th.ctx().clock) {}
    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;
    ~Phase() { end(); }
    /// Close the span early (idempotent).
    void end() {
      if (th_ != nullptr) {
        th_->kernel().emit_span(th_->ctx(), name_, begin_);
        th_ = nullptr;
      }
    }

   private:
    Thread* th_;
    std::string name_;
    sim::Time begin_;
  };
  Phase phase(std::string name) { return Phase{*this, std::move(name)}; }

  /// Instant marker on this thread's timeline.
  void annotate(std::string_view name) { kernel().emit_instant(ctx_, name); }

  /// Re-synchronize with the engine (await until global clock == ctx.clock).
  sim::Task<void> sync();

  /// Spend `ns` of pure computation.
  sim::Task<void> compute(sim::Time ns);

  /// Move this thread to another core (sched_setaffinity + migration cost).
  sim::Task<void> migrate_to_core(topo::CoreId core);

  // --- memory mapping ---------------------------------------------------------
  sim::Task<vm::Vaddr> mmap(std::uint64_t len, vm::Prot prot = vm::Prot::kReadWrite,
                            vm::MemPolicy policy = {}, std::string name = {});
  sim::Task<kern::SyscallResult> munmap(vm::Vaddr addr, std::uint64_t len);
  sim::Task<kern::SyscallResult> mprotect(vm::Vaddr addr, std::uint64_t len,
                                          vm::Prot prot);
  sim::Task<kern::SyscallResult> madvise(vm::Vaddr addr, std::uint64_t len,
                                         kern::Advice advice);
  sim::Task<kern::SyscallResult> mbind(vm::Vaddr addr, std::uint64_t len,
                                       vm::MemPolicy policy);
  sim::Task<kern::SyscallResult> set_mempolicy(vm::MemPolicy policy);

  // --- data plane --------------------------------------------------------------
  /// Touch [addr, addr+len) (chunked). `stream_rate` in bytes/us; pass 0 to
  /// model a pointer-chase touch (faults only, no bandwidth charge).
  sim::Task<kern::AccessResult> touch(vm::Vaddr addr, std::uint64_t len,
                                      vm::Prot want = vm::Prot::kReadWrite,
                                      double stream_rate = -1.0);

  /// Touch one word at the start of every page in the range — the classic
  /// migration-microbenchmark access pattern.
  sim::Task<kern::AccessResult> touch_pages_sparse(vm::Vaddr addr, std::uint64_t len,
                                                   vm::Prot want = vm::Prot::kReadWrite);

  /// memcpy(dst, src, len) in user space (the Fig. 4 baseline).
  sim::Task<int> memcpy_user(vm::Vaddr dst, vm::Vaddr src, std::uint64_t len);

  sim::Task<int> read(vm::Vaddr addr, std::span<std::byte> out);
  sim::Task<int> write(vm::Vaddr addr, std::span<const std::byte> in);

  // --- migration ----------------------------------------------------------------
  /// move_pages(2), chunked for realistic concurrency.
  sim::Task<kern::SyscallResult> move_pages(std::span<const vm::Vaddr> pages,
                                            std::span<const topo::NodeId> nodes,
                                            std::span<int> status);

  /// Convenience: synchronously migrate a whole range to `node`.
  /// count() = pages landed on `node`.
  sim::Task<kern::SyscallResult> move_range(vm::Vaddr addr, std::uint64_t len,
                                            topo::NodeId node);

  sim::Task<kern::SyscallResult> migrate_pages(kern::Pid target,
                                               topo::NodeMask from,
                                               topo::NodeMask to);

  /// Async ranged migration: queue [addr, addr+len) -> node on the
  /// destination's kmigrated daemon. count() = pages queued.
  sim::Task<kern::SyscallResult> move_range_async(vm::Vaddr addr,
                                                  std::uint64_t len,
                                                  topo::NodeId node);

  /// Wait until every kmigrated daemon has drained.
  sim::Task<void> kmigrated_drain();

  // --- synchronization -------------------------------------------------------------
  sim::Task<void> barrier(sim::Barrier& b);

 private:
  Machine& m_;
  kern::ThreadCtx ctx_;
};

}  // namespace numasim::rt
