#include "rt/team.hpp"

#include <algorithm>
#include <coroutine>
#include <stdexcept>

namespace numasim::rt {

namespace {

/// Completion latch: the caller suspends until `remaining` workers finish.
struct JoinState {
  sim::Engine* engine = nullptr;
  unsigned remaining = 0;
  std::coroutine_handle<> waiter;

  void worker_done() {
    if (--remaining == 0 && waiter) engine->post_now(waiter);
  }
};

struct JoinAwaiter {
  std::shared_ptr<JoinState> state;
  bool await_ready() const noexcept { return state->remaining == 0; }
  void await_suspend(std::coroutine_handle<> h) { state->waiter = h; }
  void await_resume() const noexcept {}
};

}  // namespace

Team::Team(Machine& m, std::vector<topo::CoreId> cores)
    : m_(m), cores_(std::move(cores)) {
  if (cores_.empty()) throw std::invalid_argument{"Team: no cores"};
  for (topo::CoreId c : cores_) {
    if (c >= m.topology().num_cores())
      throw std::invalid_argument{"Team: core out of range"};
  }
}

Team Team::all_cores(Machine& m) {
  std::vector<topo::CoreId> cores(m.topology().num_cores());
  for (topo::CoreId c = 0; c < m.topology().num_cores(); ++c) cores[c] = c;
  return Team{m, std::move(cores)};
}

Team Team::node_cores(Machine& m, topo::NodeId node, unsigned count) {
  const auto node_set = m.topology().cores_of_node(node);
  if (count > node_set.size()) throw std::invalid_argument{"Team: node too small"};
  return Team{m, {node_set.begin(), node_set.begin() + count}};
}

sim::Task<void> Team::parallel(Thread& caller, WorkerFn fn, std::string region) {
  auto state = std::make_shared<JoinState>();
  state->engine = &m_.engine();
  state->remaining = size();

  caller.ctx().clock += m_.cost().thread_spawn;  // one fork episode
  caller.ctx().stats.add(sim::CostKind::kOther, m_.cost().thread_spawn);
  const sim::Time start = caller.ctx().clock;

  std::vector<Thread*> workers;
  workers.reserve(size());
  for (unsigned i = 0; i < size(); ++i) {
    // Named locals, not literals: GCC 12 mishandles temporary closures with
    // non-trivial captures in coroutine bodies (docs/gcc12-coroutine-bug.md).
    Machine::Body body = [fn, i, region](Thread& th) -> sim::Task<void> {
      const sim::Time begin = th.ctx().clock;
      co_await fn(i, th);
      th.kernel().emit_span(th.ctx(), region, begin);
    };
    std::function<void()> on_done = [state] { state->worker_done(); };
    workers.push_back(m_.spawn(cores_[i], std::move(body), std::move(on_done), start));
  }

  // Named awaiter: GCC 12 double-destroys temporary awaiters with
  // non-trivial members (docs/gcc12-coroutine-bug.md).
  JoinAwaiter join{state};
  co_await join;
  caller.ctx().clock = m_.engine().now();

  last_stats_.reset();
  for (Thread* w : workers) last_stats_ += w->stats();
  last_span_ = caller.ctx().clock - start;
  m_.kernel().emit_span(caller.ctx(), region, start);
}

sim::Task<void> Team::parallel_for(Thread& caller, std::uint64_t begin,
                                   std::uint64_t end, Schedule sched, IndexFn body,
                                   std::uint64_t chunk, std::string region) {
  if (chunk == 0) chunk = 1;
  const std::uint64_t n = end > begin ? end - begin : 0;

  // NOTE: worker lambdas are named before the co_await on purpose — writing a
  // lambda literal inside a co_await expression miscompiles on GCC 12
  // (closure temporary destroyed at the suspension point; see
  // docs/gcc12-coroutine-bug.md). The same discipline applies to callers.
  if (sched == Schedule::kStatic) {
    const std::uint64_t per = (n + size() - 1) / size();
    WorkerFn worker = [=](unsigned tid, Thread& th) -> sim::Task<void> {
      const std::uint64_t lo = begin + std::min<std::uint64_t>(n, tid * per);
      const std::uint64_t hi = begin + std::min<std::uint64_t>(n, (tid + 1) * per);
      for (std::uint64_t i = lo; i < hi; ++i) co_await body(tid, th, i);
    };
    co_await parallel(caller, std::move(worker), std::move(region));
    co_return;
  }

  // Dynamic: shared work counter; each grab costs kDispatchCost.
  auto next = std::make_shared<std::uint64_t>(begin);
  WorkerFn worker = [=](unsigned tid, Thread& th) -> sim::Task<void> {
    for (;;) {
      th.ctx().clock += kDispatchCost;
      th.ctx().stats.add(sim::CostKind::kOther, kDispatchCost);
      co_await th.sync();
      if (*next >= end) co_return;
      const std::uint64_t lo = *next;
      const std::uint64_t hi = std::min(end, lo + chunk);
      *next = hi;
      for (std::uint64_t i = lo; i < hi; ++i) co_await body(tid, th, i);
    }
  };
  co_await parallel(caller, std::move(worker), std::move(region));
}

}  // namespace numasim::rt
