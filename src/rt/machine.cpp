#include "rt/machine.hpp"

#include "rt/thread.hpp"

namespace numasim::rt {

Machine::Machine(Config cfg) : cfg_(std::move(cfg)) {
  kernel_ = std::make_unique<kern::Kernel>(cfg_);
  pid_ = kernel_->create_process("app");
}

Machine::~Machine() = default;

namespace {
sim::Task<void> trampoline(sim::Engine& engine, Thread& th, Machine::Body body) {
  th.ctx().clock = engine.now();
  co_await body(th);
}
}  // namespace

Thread* Machine::spawn(topo::CoreId core, Body body, std::function<void()> on_done,
                       sim::Time at) {
  if (core >= cfg_.topology.num_cores())
    throw std::invalid_argument{"Machine::spawn: core out of range"};
  threads_.push_back(std::make_unique<Thread>(*this, next_tid_++, core));
  Thread* th = threads_.back().get();
  engine_.start_with_callback(trampoline(engine_, *th, std::move(body)),
                              std::move(on_done), at);
  return th;
}

}  // namespace numasim::rt
