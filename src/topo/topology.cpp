#include "topo/topology.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <stdexcept>

namespace numasim::topo {

const char* mem_tier_name(MemTier t) {
  switch (t) {
    case MemTier::kFast: return "fast";
    case MemTier::kDram: return "dram";
    case MemTier::kFar: return "far";
  }
  return "?";
}

Topology Topology::quad_opteron() {
  std::vector<LinkSpec> links{
      {0, 1, 2200.0, 15},
      {1, 3, 2200.0, 15},
      {3, 2, 2200.0, 15},
      {2, 0, 2200.0, 15},
  };
  return build(4, 4, CoreSpec{}, NodeSpec{}, std::move(links));
}

Topology Topology::dual_node(unsigned cores_per_node) {
  std::vector<LinkSpec> links{{0, 1, 2200.0, 15}};
  return build(2, cores_per_node, CoreSpec{}, NodeSpec{}, std::move(links));
}

Topology Topology::build(unsigned nodes, unsigned cores_per_node,
                         const CoreSpec& core, const NodeSpec& node,
                         std::vector<LinkSpec> links) {
  return build(std::vector<NodeSpec>(nodes, node), cores_per_node, core,
               std::move(links));
}

Topology Topology::build(std::vector<NodeSpec> node_specs,
                         unsigned cores_per_node, const CoreSpec& core,
                         std::vector<LinkSpec> links) {
  const unsigned nodes = static_cast<unsigned>(node_specs.size());
  if (nodes == 0 || nodes > 64) throw std::invalid_argument{"Topology: 1..64 nodes"};
  if (cores_per_node == 0) throw std::invalid_argument{"Topology: need cores"};
  for (const auto& l : links) {
    if (l.a >= nodes || l.b >= nodes || l.a == l.b)
      throw std::invalid_argument{"Topology: bad link endpoints"};
  }

  Topology t;
  t.core_ = core;
  t.cores_per_node_ = cores_per_node;
  t.nodes_ = std::move(node_specs);
  t.links_ = std::move(links);
  t.node_cores_.resize(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    for (unsigned c = 0; c < cores_per_node; ++c) {
      t.core_node_.push_back(n);
      t.node_cores_[n].push_back(static_cast<CoreId>(t.core_node_.size() - 1));
    }
  }
  t.compute_routes();
  return t;
}

void Topology::compute_routes() {
  const unsigned n = num_nodes();
  hops_.assign(std::size_t{n} * n, 0);
  routes_.assign(std::size_t{n} * n, {});

  // Adjacency: node -> (neighbor, link id).
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj(n);
  for (LinkId l = 0; l < num_links(); ++l) {
    adj[links_[l].a].emplace_back(links_[l].b, l);
    adj[links_[l].b].emplace_back(links_[l].a, l);
  }

  for (NodeId src = 0; src < n; ++src) {
    std::vector<int> prev_node(n, -1);
    std::vector<LinkId> prev_link(n, 0);
    std::vector<bool> seen(n, false);
    std::deque<NodeId> queue{src};
    seen[src] = true;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (auto [v, l] : adj[u]) {
        if (!seen[v]) {
          seen[v] = true;
          prev_node[v] = static_cast<int>(u);
          prev_link[v] = l;
          queue.push_back(v);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) continue;
      if (!seen[dst]) throw std::invalid_argument{"Topology: interconnect not connected"};
      std::vector<LinkId> path;
      for (NodeId v = dst; v != src; v = static_cast<NodeId>(prev_node[v]))
        path.push_back(prev_link[v]);
      std::reverse(path.begin(), path.end());
      hops_[idx(src, dst)] = static_cast<unsigned>(path.size());
      routes_[idx(src, dst)] = std::move(path);
    }
  }

  // Latency matrix: access_latency is on the per-page hot path of every
  // kernel walk, so precompute destination DRAM latency + per-hop costs.
  lat_.assign(std::size_t{n} * n, 0);
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      sim::Time lat = nodes_[dst].dram_latency;
      for (LinkId l : routes_[idx(src, dst)]) lat += links_[l].hop_latency;
      lat_[idx(src, dst)] = lat;
    }
  }
}

std::span<const CoreId> Topology::cores_of_node(NodeId n) const {
  return node_cores_.at(n);
}

bool Topology::tiered() const {
  for (const NodeSpec& n : nodes_)
    if (n.tier != MemTier::kDram) return true;
  return false;
}

std::vector<NodeId> Topology::nodes_of_tier(MemTier t) const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < num_nodes(); ++n)
    if (nodes_[n].tier == t) out.push_back(n);
  return out;
}

std::span<const LinkId> Topology::route(NodeId a, NodeId b) const {
  return routes_[idx(a, b)];
}

double Topology::numa_factor(NodeId from, NodeId to) const {
  return static_cast<double>(access_latency(from, to)) /
         static_cast<double>(nodes_.at(from).dram_latency);
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << "available: " << num_nodes() << " nodes (0-" << num_nodes() - 1 << ")\n";
  for (NodeId n = 0; n < num_nodes(); ++n) {
    os << "node " << n << " cpus:";
    for (CoreId c : cores_of_node(n)) os << ' ' << c;
    os << "\nnode " << n << " size: " << (node_spec(n).dram_capacity_bytes >> 20)
       << " MB\n";
    if (tiered())
      os << "node " << n << " tier: " << mem_tier_name(node_spec(n).tier)
         << '\n';
  }
  os << "node distances:\nnode ";
  for (NodeId j = 0; j < num_nodes(); ++j) os << "  " << j;
  os << '\n';
  for (NodeId i = 0; i < num_nodes(); ++i) {
    os << "  " << i << ": ";
    for (NodeId j = 0; j < num_nodes(); ++j) os << ' ' << 10 + hops(i, j) * 10;
    os << '\n';
  }
  return os.str();
}

}  // namespace numasim::topo
