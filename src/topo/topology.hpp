// NUMA machine description: nodes, cores, caches, interconnect links.
//
// Topology is pure data — the dynamic contention state (DRAM / link
// timelines) lives in rt::Machine. Link routes between every node pair are
// precomputed with BFS so the memory model can charge each hop.
//
// The default machine (`quad_opteron()`) is the paper's evaluation host:
// four quad-core Opteron 8347HE sockets, one memory node per socket,
// HyperTransport square interconnect (Fig. 3), NUMA factor 1.2-1.4.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace numasim::topo {

using NodeId = std::uint32_t;
using CoreId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A set of NUMA nodes, as a bitmask (like Linux nodemask_t).
using NodeMask = std::uint64_t;

constexpr NodeMask node_mask_of(NodeId n) { return NodeMask{1} << n; }
constexpr bool mask_contains(NodeMask m, NodeId n) { return (m >> n) & 1; }

struct CoreSpec {
  double clock_ghz = 1.9;        // Opteron 8347HE
  double dp_flops_per_cycle = 4; // K10: 2 FMA-ish pipes x 2-wide SSE
  /// Sustained fraction of peak a tuned BLAS3 kernel reaches.
  double gemm_efficiency = 0.70;

  double peak_gflops() const { return clock_ghz * dp_flops_per_cycle; }
};

struct NodeSpec {
  /// Sustained local DRAM bandwidth (bytes per microsecond; 6400 = 6.4 GB/s).
  double dram_bytes_per_us = 6400.0;
  /// Local DRAM access latency.
  sim::Time dram_latency = 75;
  /// Installed memory per node (paper: 8 GB/node).
  std::uint64_t dram_capacity_bytes = 8ull << 30;
  /// Shared L3 per node (paper: 2 MB); used by the cache model.
  std::uint64_t l3_bytes = 2ull << 20;
};

struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  /// Sustained HyperTransport bandwidth per direction (bytes/us).
  double bytes_per_us = 2200.0;
  /// Added latency per hop across this link.
  sim::Time hop_latency = 15;
};

class Topology {
 public:
  /// The paper's host: 4 nodes x 4 cores, square HT interconnect
  /// 0-1, 1-3, 3-2, 2-0 (diagonals are two hops).
  static Topology quad_opteron();

  /// Two nodes, two cores each, one link — smallest interesting machine.
  static Topology dual_node(unsigned cores_per_node = 2);

  /// Fully custom machine. Links are bidirectional; the graph must connect
  /// all nodes (throws std::invalid_argument otherwise).
  static Topology build(unsigned nodes, unsigned cores_per_node,
                        const CoreSpec& core, const NodeSpec& node,
                        std::vector<LinkSpec> links);

  /// Build from a compact textual spec, e.g.
  ///   "nodes=8 cores=2 shape=ring link_bw=2200 hop_ns=15 dram_bw=6400"
  /// Keys (all optional except nodes/cores): shape=ring|line|mesh|star,
  /// link_bw (bytes/us), hop_ns, dram_bw (bytes/us), dram_ns, l3_mb,
  /// mem_gb, ghz, flops_per_cycle. Throws std::invalid_argument on errors.
  static Topology from_spec(const std::string& spec);

  unsigned num_nodes() const { return static_cast<unsigned>(nodes_.size()); }
  unsigned num_cores() const { return static_cast<unsigned>(core_node_.size()); }
  unsigned num_links() const { return static_cast<unsigned>(links_.size()); }
  unsigned cores_per_node() const { return cores_per_node_; }

  const CoreSpec& core_spec() const { return core_; }
  const NodeSpec& node_spec(NodeId n) const { return nodes_.at(n); }
  const LinkSpec& link_spec(LinkId l) const { return links_.at(l); }

  NodeId node_of_core(CoreId c) const { return core_node_.at(c); }
  std::span<const CoreId> cores_of_node(NodeId n) const;

  /// Number of interconnect hops between nodes (0 when a == b).
  unsigned hops(NodeId a, NodeId b) const { return hops_[idx(a, b)]; }

  /// The link ids traversed going from `a` to `b` (empty when a == b).
  std::span<const LinkId> route(NodeId a, NodeId b) const;

  /// Uncontended access latency from a core on `from` to DRAM on `to`.
  sim::Time access_latency(NodeId from, NodeId to) const;

  /// The paper's "NUMA factor": remote/local latency ratio.
  double numa_factor(NodeId from, NodeId to) const;

  /// Mask containing every node.
  NodeMask all_nodes_mask() const {
    return num_nodes() >= 64 ? ~NodeMask{0} : (NodeMask{1} << num_nodes()) - 1;
  }

  /// Human-readable dump (akin to `numactl --hardware`).
  std::string describe() const;

 private:
  std::size_t idx(NodeId a, NodeId b) const { return std::size_t{a} * num_nodes() + b; }
  void compute_routes();

  CoreSpec core_;
  unsigned cores_per_node_ = 0;
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::vector<NodeId> core_node_;             // core -> node
  std::vector<std::vector<CoreId>> node_cores_;
  std::vector<unsigned> hops_;                // n x n
  std::vector<std::vector<LinkId>> routes_;   // n x n -> link path
};

}  // namespace numasim::topo
