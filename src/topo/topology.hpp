// NUMA machine description: nodes, cores, caches, interconnect links.
//
// Topology is pure data — the dynamic contention state (DRAM / link
// timelines) lives in rt::Machine. Link routes between every node pair are
// precomputed with BFS so the memory model can charge each hop.
//
// The default machine (`quad_opteron()`) is the paper's evaluation host:
// four quad-core Opteron 8347HE sockets, one memory node per socket,
// HyperTransport square interconnect (Fig. 3), NUMA factor 1.2-1.4.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace numasim::topo {

using NodeId = std::uint32_t;
using CoreId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A set of NUMA nodes, as a bitmask (like Linux nodemask_t).
using NodeMask = std::uint64_t;

constexpr NodeMask node_mask_of(NodeId n) { return NodeMask{1} << n; }
constexpr bool mask_contains(NodeMask m, NodeId n) { return (m >> n) & 1; }

struct CoreSpec {
  double clock_ghz = 1.9;        // Opteron 8347HE
  double dp_flops_per_cycle = 4; // K10: 2 FMA-ish pipes x 2-wide SSE
  /// Sustained fraction of peak a tuned BLAS3 kernel reaches.
  double gemm_efficiency = 0.70;

  double peak_gflops() const { return clock_ghz * dp_flops_per_cycle; }
};

/// Memory tier of a node, ordered fastest-first so `tier_of(a) < tier_of(b)`
/// means "a is the faster medium". kDram is the classic symmetric node the
/// paper models; kFast is a small HBM/MCDRAM-like device; kFar is a
/// CXL/NVM-like device with asymmetric read/write bandwidth.
enum class MemTier : std::uint8_t {
  kFast = 0,  ///< HBM-like: high bandwidth, low latency, small capacity
  kDram = 1,  ///< plain DDR node (the default; all-kDram machines are "flat")
  kFar = 2,   ///< CXL/NVM-like: slow, write-asymmetric, large capacity
};

const char* mem_tier_name(MemTier t);

struct NodeSpec {
  /// Sustained local DRAM bandwidth (bytes per microsecond; 6400 = 6.4 GB/s).
  double dram_bytes_per_us = 6400.0;
  /// Local DRAM access latency.
  sim::Time dram_latency = 75;
  /// Installed memory per node (paper: 8 GB/node).
  std::uint64_t dram_capacity_bytes = 8ull << 30;
  /// Shared L3 per node (paper: 2 MB); used by the cache model.
  std::uint64_t l3_bytes = 2ull << 20;
  /// Memory tier of this node (see MemTier). Flat machines are all-kDram.
  MemTier tier = MemTier::kDram;
  /// Sustained *write* bandwidth (bytes/us). 0 means symmetric (writes run
  /// at dram_bytes_per_us); NVM-like tiers set this below the read rate and
  /// the hardware model stretches write streams by the ratio.
  double dram_write_bytes_per_us = 0;
};

/// Structured from_spec failure: carries the offending key and raw token so
/// callers (CLIs, tests) can point at the exact input instead of parsing a
/// message. Derives from std::invalid_argument, so pre-existing catch sites
/// keep working.
struct SpecError : std::invalid_argument {
  SpecError(const std::string& what, std::string key_arg,
            std::string token_arg)
      : std::invalid_argument(what),
        key(std::move(key_arg)),
        token(std::move(token_arg)) {}

  std::string key;    ///< spec key involved ("tiers", "nodes", ...; may be "")
  std::string token;  ///< offending raw token, if one was isolated
};

struct LinkSpec {
  NodeId a = 0;
  NodeId b = 0;
  /// Sustained HyperTransport bandwidth per direction (bytes/us).
  double bytes_per_us = 2200.0;
  /// Added latency per hop across this link.
  sim::Time hop_latency = 15;
};

class Topology {
 public:
  /// The paper's host: 4 nodes x 4 cores, square HT interconnect
  /// 0-1, 1-3, 3-2, 2-0 (diagonals are two hops).
  static Topology quad_opteron();

  /// Two nodes, two cores each, one link — smallest interesting machine.
  static Topology dual_node(unsigned cores_per_node = 2);

  /// Fully custom machine. Links are bidirectional; the graph must connect
  /// all nodes (throws std::invalid_argument otherwise).
  static Topology build(unsigned nodes, unsigned cores_per_node,
                        const CoreSpec& core, const NodeSpec& node,
                        std::vector<LinkSpec> links);

  /// Heterogeneous variant: one NodeSpec per node (tiers, asymmetric write
  /// bandwidth, per-node capacities). nodes.size() fixes the node count.
  static Topology build(std::vector<NodeSpec> nodes, unsigned cores_per_node,
                        const CoreSpec& core, std::vector<LinkSpec> links);

  /// Build from a compact textual spec, e.g.
  ///   "nodes=8 cores=2 shape=ring link_bw=2200 hop_ns=15 dram_bw=6400"
  /// Keys (all optional except nodes/cores): shape=ring|line|mesh|star,
  /// link_bw (bytes/us), hop_ns, dram_bw (bytes/us), dram_ns, l3_mb,
  /// mem_gb, ghz, flops_per_cycle.
  ///
  /// Memory tiers: `tiers=fast:1,dram:2,far:1` assigns tiers to node ids in
  /// listed order (here node 0 is kFast, nodes 1-2 kDram, node 3 kFar); the
  /// counts must sum to `nodes`. Omitting `tiers` keeps the machine flat
  /// (all kDram) and byte-identical to pre-tier behavior. Tier node specs
  /// derive from the dram values unless overridden with:
  ///   fast_bw, fast_ns, fast_mb   (default 3x dram_bw, dram_ns/2, 64 MB)
  ///   far_bw, far_ns, far_mb      (default dram_bw/2, 3x dram_ns, mem_gb)
  ///   far_wr_bw                   (write bandwidth; default far_bw/2)
  /// Capacities for fast/far are in MB — device tiers are small by design.
  ///
  /// Throws topo::SpecError (derives std::invalid_argument) carrying the
  /// offending key and token.
  static Topology from_spec(const std::string& spec);

  unsigned num_nodes() const { return static_cast<unsigned>(nodes_.size()); }
  unsigned num_cores() const { return static_cast<unsigned>(core_node_.size()); }
  unsigned num_links() const { return static_cast<unsigned>(links_.size()); }
  unsigned cores_per_node() const { return cores_per_node_; }

  const CoreSpec& core_spec() const { return core_; }
  const NodeSpec& node_spec(NodeId n) const { return nodes_.at(n); }
  const LinkSpec& link_spec(LinkId l) const { return links_.at(l); }

  NodeId node_of_core(CoreId c) const { return core_node_.at(c); }
  std::span<const CoreId> cores_of_node(NodeId n) const;

  /// Number of interconnect hops between nodes (0 when a == b).
  unsigned hops(NodeId a, NodeId b) const { return hops_[idx(a, b)]; }

  /// The link ids traversed going from `a` to `b` (empty when a == b).
  std::span<const LinkId> route(NodeId a, NodeId b) const;

  /// Uncontended access latency from a core on `from` to DRAM on `to`.
  /// Precomputed (destination DRAM latency + per-hop link latencies) — this
  /// sits on the per-page hot path of every kernel walk.
  sim::Time access_latency(NodeId from, NodeId to) const {
    return lat_[idx(from, to)];
  }

  /// The paper's "NUMA factor": remote/local latency ratio.
  double numa_factor(NodeId from, NodeId to) const;

  /// Memory tier of node `n`.
  MemTier tier_of(NodeId n) const { return nodes_.at(n).tier; }

  /// True when any node sits on a non-kDram tier (the machine is
  /// heterogeneous and tier-aware placement has something to do).
  bool tiered() const;

  /// All node ids on tier `t`, ascending.
  std::vector<NodeId> nodes_of_tier(MemTier t) const;

  /// Mask containing every node.
  NodeMask all_nodes_mask() const {
    return num_nodes() >= 64 ? ~NodeMask{0} : (NodeMask{1} << num_nodes()) - 1;
  }

  /// Human-readable dump (akin to `numactl --hardware`).
  std::string describe() const;

 private:
  std::size_t idx(NodeId a, NodeId b) const { return std::size_t{a} * num_nodes() + b; }
  void compute_routes();

  CoreSpec core_;
  unsigned cores_per_node_ = 0;
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::vector<NodeId> core_node_;             // core -> node
  std::vector<std::vector<CoreId>> node_cores_;
  std::vector<unsigned> hops_;                // n x n
  std::vector<std::vector<LinkId>> routes_;   // n x n -> link path
  std::vector<sim::Time> lat_;                // n x n access latency
};

}  // namespace numasim::topo
