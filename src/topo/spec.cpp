// Textual topology specs: build custom NUMA machines for the "larger
// machine" experiments (paper Sec. 6: "running similar experiments on larger
// NUMA machines where data locality is more critical") and the tiered
// machines of the memory-tier work (docs/memory-tiers.md).
//
// All parse failures throw topo::SpecError carrying the offending key and
// raw token (see topology.hpp for the grammar).
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace numasim::topo {

namespace {

[[noreturn]] void fail(const std::string& why, std::string key,
                       std::string token) {
  throw SpecError{"Topology::from_spec: " + why, std::move(key),
                  std::move(token)};
}

std::unordered_map<std::string, std::string> parse_kv(const std::string& spec) {
  std::unordered_map<std::string, std::string> kv;
  std::istringstream is(spec);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
      fail("bad token '" + tok + "'", "", tok);
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

double num(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, double fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    fail("bad number for " + key, key, it->second);
  }
  if (pos != it->second.size()) fail("bad number for " + key, key, it->second);
  return v;
}

/// Parse `tiers=fast:1,dram:2,far:1` into one tier per node, assigned to
/// node ids in listed order. The counts must sum to `nodes`.
std::vector<MemTier> parse_tiers(const std::string& value, unsigned nodes) {
  std::vector<MemTier> out;
  std::istringstream is(value);
  std::string part;
  while (std::getline(is, part, ',')) {
    const auto colon = part.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= part.size())
      fail("bad tiers clause '" + part + "' (want name:count)", "tiers", part);
    const std::string name = part.substr(0, colon);
    const std::string count_str = part.substr(colon + 1);
    MemTier tier;
    if (name == "fast") {
      tier = MemTier::kFast;
    } else if (name == "dram") {
      tier = MemTier::kDram;
    } else if (name == "far") {
      tier = MemTier::kFar;
    } else {
      fail("unknown tier '" + name + "' (fast|dram|far)", "tiers", part);
    }
    std::size_t pos = 0;
    unsigned long count = 0;
    try {
      count = std::stoul(count_str, &pos);
    } catch (const std::exception&) {
      fail("bad tier count in '" + part + "'", "tiers", part);
    }
    if (pos != count_str.size() || count == 0)
      fail("bad tier count in '" + part + "'", "tiers", part);
    out.insert(out.end(), count, tier);
  }
  if (out.size() != nodes)
    fail("tier counts sum to " + std::to_string(out.size()) + ", nodes=" +
             std::to_string(nodes),
         "tiers", value);
  return out;
}

}  // namespace

Topology Topology::from_spec(const std::string& spec) {
  const auto kv = parse_kv(spec);
  for (const auto& [key, value] : kv) {
    static const char* known[] = {
        "nodes",   "cores",  "shape",   "link_bw", "hop_ns",  "dram_bw",
        "dram_ns", "l3_mb",  "mem_gb",  "ghz",     "flops_per_cycle",
        "tiers",   "fast_bw", "fast_ns", "fast_mb", "far_bw",  "far_wr_bw",
        "far_ns",  "far_mb"};
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) fail("unknown key " + key, key, value);
  }

  const auto nodes = static_cast<unsigned>(num(kv, "nodes", 0));
  const auto cores = static_cast<unsigned>(num(kv, "cores", 0));
  if (nodes == 0 || cores == 0)
    fail("nodes= and cores= required", nodes == 0 ? "nodes" : "cores", "");

  CoreSpec core;
  core.clock_ghz = num(kv, "ghz", core.clock_ghz);
  core.dp_flops_per_cycle = num(kv, "flops_per_cycle", core.dp_flops_per_cycle);

  NodeSpec node;
  node.dram_bytes_per_us = num(kv, "dram_bw", node.dram_bytes_per_us);
  node.dram_latency = static_cast<sim::Time>(
      num(kv, "dram_ns", static_cast<double>(node.dram_latency)));
  node.l3_bytes = static_cast<std::uint64_t>(num(kv, "l3_mb", 2.0) * (1 << 20));
  node.dram_capacity_bytes =
      static_cast<std::uint64_t>(num(kv, "mem_gb", 8.0) * (1ull << 30));

  // Per-node specs: flat (all-kDram) unless a tiers= clause says otherwise.
  // Tier defaults derive from the dram numbers so a spec can scale the whole
  // machine with dram_bw/dram_ns and keep the tier ratios.
  std::vector<NodeSpec> node_specs(nodes, node);
  if (auto it = kv.find("tiers"); it != kv.end()) {
    NodeSpec fast = node;
    fast.tier = MemTier::kFast;
    fast.dram_bytes_per_us = num(kv, "fast_bw", node.dram_bytes_per_us * 3.0);
    fast.dram_latency = static_cast<sim::Time>(num(
        kv, "fast_ns",
        static_cast<double>(std::max<sim::Time>(1, node.dram_latency / 2))));
    fast.dram_capacity_bytes =
        static_cast<std::uint64_t>(num(kv, "fast_mb", 64.0) * (1ull << 20));

    NodeSpec far = node;
    far.tier = MemTier::kFar;
    far.dram_bytes_per_us = num(kv, "far_bw", node.dram_bytes_per_us / 2.0);
    far.dram_write_bytes_per_us =
        num(kv, "far_wr_bw", far.dram_bytes_per_us / 2.0);
    far.dram_latency = static_cast<sim::Time>(
        num(kv, "far_ns", static_cast<double>(node.dram_latency * 3)));
    far.dram_capacity_bytes = static_cast<std::uint64_t>(
        num(kv, "far_mb",
            static_cast<double>(node.dram_capacity_bytes >> 20)) *
        (1ull << 20));

    const std::vector<MemTier> tiers = parse_tiers(it->second, nodes);
    for (unsigned n = 0; n < nodes; ++n) {
      switch (tiers[n]) {
        case MemTier::kFast: node_specs[n] = fast; break;
        case MemTier::kDram: break;  // already the dram proto
        case MemTier::kFar: node_specs[n] = far; break;
      }
    }
  } else {
    for (const char* k : {"fast_bw", "fast_ns", "fast_mb", "far_bw",
                          "far_wr_bw", "far_ns", "far_mb"})
      if (kv.count(k) != 0)
        fail(std::string{k} + " requires a tiers= clause", k, kv.at(k));
  }

  LinkSpec proto;
  proto.bytes_per_us = num(kv, "link_bw", proto.bytes_per_us);
  proto.hop_latency = static_cast<sim::Time>(
      num(kv, "hop_ns", static_cast<double>(proto.hop_latency)));

  std::string shape = "ring";
  if (auto it = kv.find("shape"); it != kv.end()) shape = it->second;

  std::vector<LinkSpec> links;
  auto link = [&](NodeId a, NodeId b) {
    LinkSpec l = proto;
    l.a = a;
    l.b = b;
    links.push_back(l);
  };

  if (shape == "ring") {
    for (NodeId n = 0; n < nodes; ++n)
      if (nodes > 1 && !(nodes == 2 && n == 1)) link(n, (n + 1) % nodes);
  } else if (shape == "line") {
    for (NodeId n = 0; n + 1 < nodes; ++n) link(n, n + 1);
  } else if (shape == "mesh") {
    for (NodeId a = 0; a < nodes; ++a)
      for (NodeId b = a + 1; b < nodes; ++b) link(a, b);
  } else if (shape == "star") {
    for (NodeId n = 1; n < nodes; ++n) link(0, n);
  } else {
    fail("unknown shape " + shape, "shape", shape);
  }

  return build(std::move(node_specs), cores, core, std::move(links));
}

}  // namespace numasim::topo
