// Textual topology specs: build custom NUMA machines for the "larger
// machine" experiments (paper Sec. 6: "running similar experiments on larger
// NUMA machines where data locality is more critical").
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "topo/topology.hpp"

namespace numasim::topo {

namespace {

std::unordered_map<std::string, std::string> parse_kv(const std::string& spec) {
  std::unordered_map<std::string, std::string> kv;
  std::istringstream is(spec);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size())
      throw std::invalid_argument{"Topology::from_spec: bad token '" + tok + "'"};
    kv[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return kv;
}

double num(const std::unordered_map<std::string, std::string>& kv,
           const std::string& key, double fallback) {
  auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size())
    throw std::invalid_argument{"Topology::from_spec: bad number for " + key};
  return v;
}

}  // namespace

Topology Topology::from_spec(const std::string& spec) {
  const auto kv = parse_kv(spec);
  for (const auto& [key, value] : kv) {
    static const char* known[] = {"nodes",   "cores",  "shape",   "link_bw",
                                  "hop_ns",  "dram_bw", "dram_ns", "l3_mb",
                                  "mem_gb",  "ghz",    "flops_per_cycle"};
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok) throw std::invalid_argument{"Topology::from_spec: unknown key " + key};
  }

  const auto nodes = static_cast<unsigned>(num(kv, "nodes", 0));
  const auto cores = static_cast<unsigned>(num(kv, "cores", 0));
  if (nodes == 0 || cores == 0)
    throw std::invalid_argument{"Topology::from_spec: nodes= and cores= required"};

  CoreSpec core;
  core.clock_ghz = num(kv, "ghz", core.clock_ghz);
  core.dp_flops_per_cycle = num(kv, "flops_per_cycle", core.dp_flops_per_cycle);

  NodeSpec node;
  node.dram_bytes_per_us = num(kv, "dram_bw", node.dram_bytes_per_us);
  node.dram_latency = static_cast<sim::Time>(
      num(kv, "dram_ns", static_cast<double>(node.dram_latency)));
  node.l3_bytes = static_cast<std::uint64_t>(num(kv, "l3_mb", 2.0) * (1 << 20));
  node.dram_capacity_bytes =
      static_cast<std::uint64_t>(num(kv, "mem_gb", 8.0) * (1ull << 30));

  LinkSpec proto;
  proto.bytes_per_us = num(kv, "link_bw", proto.bytes_per_us);
  proto.hop_latency = static_cast<sim::Time>(
      num(kv, "hop_ns", static_cast<double>(proto.hop_latency)));

  std::string shape = "ring";
  if (auto it = kv.find("shape"); it != kv.end()) shape = it->second;

  std::vector<LinkSpec> links;
  auto link = [&](NodeId a, NodeId b) {
    LinkSpec l = proto;
    l.a = a;
    l.b = b;
    links.push_back(l);
  };

  if (shape == "ring") {
    for (NodeId n = 0; n < nodes; ++n)
      if (nodes > 1 && !(nodes == 2 && n == 1)) link(n, (n + 1) % nodes);
  } else if (shape == "line") {
    for (NodeId n = 0; n + 1 < nodes; ++n) link(n, n + 1);
  } else if (shape == "mesh") {
    for (NodeId a = 0; a < nodes; ++a)
      for (NodeId b = a + 1; b < nodes; ++b) link(a, b);
  } else if (shape == "star") {
    for (NodeId n = 1; n < nodes; ++n) link(0, n);
  } else {
    throw std::invalid_argument{"Topology::from_spec: unknown shape " + shape};
  }

  return build(nodes, cores, core, node, std::move(links));
}

}  // namespace numasim::topo
