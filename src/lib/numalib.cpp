#include "lib/numalib.hpp"

#include <vector>

namespace numasim::lib {

NumaBuffer NumaBuffer::on_node(kern::ThreadCtx& t, kern::Kernel& k,
                               std::uint64_t size, topo::NodeId node,
                               std::string name) {
  const vm::MemPolicy pol = vm::MemPolicy::bind(topo::node_mask_of(node));
  const vm::Vaddr a =
      k.sys_mmap(t, size, vm::Prot::kReadWrite, pol, std::move(name));
  return NumaBuffer{k, t.pid, a, size, pol, node};
}

NumaBuffer NumaBuffer::interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                   std::uint64_t size, std::string name) {
  const vm::MemPolicy pol = vm::MemPolicy::interleave(k.topo().all_nodes_mask());
  const vm::Vaddr a =
      k.sys_mmap(t, size, vm::Prot::kReadWrite, pol, std::move(name));
  return NumaBuffer{k, t.pid, a, size, pol, topo::kInvalidNode};
}

NumaBuffer NumaBuffer::local(kern::ThreadCtx& t, kern::Kernel& k,
                             std::uint64_t size, std::string name) {
  const vm::MemPolicy pol = vm::MemPolicy::first_touch();
  const vm::Vaddr a =
      k.sys_mmap(t, size, vm::Prot::kReadWrite, pol, std::move(name));
  return NumaBuffer{k, t.pid, a, size, pol, topo::kInvalidNode};
}

NumaBuffer NumaBuffer::tiered(kern::ThreadCtx& t, kern::Kernel& k,
                              std::uint64_t size, topo::NodeMask allowed,
                              std::string name) {
  const vm::MemPolicy pol = tier_preferred(k.topo(), allowed);
  const vm::Vaddr a =
      k.sys_mmap(t, size, vm::Prot::kReadWrite, pol, std::move(name));
  return NumaBuffer{k, t.pid, a, size, pol, topo::kInvalidNode};
}

void NumaBuffer::populate(kern::ThreadCtx& t) {
  kernel_->access(t, addr_, size_, vm::Prot::kReadWrite,
                  kernel_->cost().zero_rate_bytes_per_us);
}

kern::SyscallResult NumaBuffer::lazy_migrate(kern::ThreadCtx& t) {
  return kernel_->sys_madvise(t, addr_, size_,
                              kern::Advice::kMigrateOnNextTouch);
}

kern::SyscallResult NumaBuffer::sync_migrate(kern::ThreadCtx& t,
                                             topo::NodeId node) {
  return lib::sync_migrate(t, *kernel_, addr_, size_, node);
}

std::uint64_t NumaBuffer::pages_on(topo::NodeId node) const {
  if (kernel_ == nullptr || addr_ == 0) return 0;
  return kernel_->pages_on_node(pid_, addr_, size_, node);
}

kern::SyscallResult NumaBuffer::free(kern::ThreadCtx& t) {
  if (kernel_ == nullptr || addr_ == 0) return 0;
  const kern::SyscallResult r = kernel_->sys_munmap(t, addr_, size_);
  kernel_ = nullptr;
  addr_ = 0;
  size_ = 0;
  return r;
}

vm::Vaddr numa_alloc_onnode(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                            topo::NodeId node, std::string name) {
  return NumaBuffer::on_node(t, k, size, node, std::move(name)).release();
}

vm::Vaddr numa_alloc_interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                 std::uint64_t size, std::string name) {
  return NumaBuffer::interleaved(t, k, size, std::move(name)).release();
}

vm::Vaddr numa_alloc_local(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                           std::string name) {
  return NumaBuffer::local(t, k, size, std::move(name)).release();
}

void numa_free(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
               std::uint64_t size) {
  k.sys_munmap(t, addr, size);
}

void populate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
              std::uint64_t size) {
  k.access(t, addr, size, vm::Prot::kReadWrite, k.cost().zero_rate_bytes_per_us);
}

kern::SyscallResult lazy_migrate(kern::ThreadCtx& t, kern::Kernel& k,
                                 vm::Vaddr addr, std::uint64_t len) {
  return k.sys_madvise(t, addr, len, kern::Advice::kMigrateOnNextTouch);
}

kern::SyscallResult sync_migrate(kern::ThreadCtx& t, kern::Kernel& k,
                                 vm::Vaddr addr, std::uint64_t len,
                                 topo::NodeId node) {
  if (len == 0) return 0;
  const vm::Vpn first = vm::vpn_of(addr);
  const vm::Vpn last = vm::vpn_of(addr + len - 1) + 1;
  std::vector<vm::Vaddr> pages;
  pages.reserve(last - first);
  for (vm::Vpn vpn = first; vpn < last; ++vpn) pages.push_back(vm::addr_of(vpn));
  std::vector<topo::NodeId> nodes(pages.size(), node);
  std::vector<int> status(pages.size(), 0);
  const kern::SyscallResult r = k.sys_move_pages(t, pages, nodes, status);
  if (!r.ok()) return r;
  long ok = 0;
  for (int s : status)
    if (s == static_cast<int>(node)) ++ok;
  return ok;
}

vm::MemPolicy tier_preferred(const topo::Topology& topo,
                             topo::NodeMask allowed) {
  if (allowed == 0) allowed = topo.all_nodes_mask();
  return vm::MemPolicy::preferred_many(allowed & topo.all_nodes_mask());
}

}  // namespace numasim::lib
