#include "lib/numalib.hpp"

#include <vector>

namespace numasim::lib {

vm::Vaddr numa_alloc_onnode(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                            topo::NodeId node, std::string name) {
  return k.sys_mmap(t, size, vm::Prot::kReadWrite,
                    vm::MemPolicy::bind(topo::node_mask_of(node)), std::move(name));
}

vm::Vaddr numa_alloc_interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                 std::uint64_t size, std::string name) {
  return k.sys_mmap(t, size, vm::Prot::kReadWrite,
                    vm::MemPolicy::interleave(k.topo().all_nodes_mask()),
                    std::move(name));
}

vm::Vaddr numa_alloc_local(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                           std::string name) {
  return k.sys_mmap(t, size, vm::Prot::kReadWrite, vm::MemPolicy::first_touch(),
                    std::move(name));
}

void numa_free(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
               std::uint64_t size) {
  k.sys_munmap(t, addr, size);
}

void populate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
              std::uint64_t size) {
  k.access(t, addr, size, vm::Prot::kReadWrite, k.cost().zero_rate_bytes_per_us);
}

int lazy_migrate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
                 std::uint64_t len) {
  return k.sys_madvise(t, addr, len, kern::Advice::kMigrateOnNextTouch);
}

long sync_migrate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
                  std::uint64_t len, topo::NodeId node) {
  if (len == 0) return 0;
  const vm::Vpn first = vm::vpn_of(addr);
  const vm::Vpn last = vm::vpn_of(addr + len - 1) + 1;
  std::vector<vm::Vaddr> pages;
  pages.reserve(last - first);
  for (vm::Vpn vpn = first; vpn < last; ++vpn) pages.push_back(vm::addr_of(vpn));
  std::vector<topo::NodeId> nodes(pages.size(), node);
  std::vector<int> status(pages.size(), 0);
  const long r = k.sys_move_pages(t, pages, nodes, status);
  if (r < 0) return r;
  long ok = 0;
  for (int s : status)
    if (s == static_cast<int>(node)) ++ok;
  return ok;
}

}  // namespace numasim::lib
