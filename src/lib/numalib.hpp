// libnuma-flavoured user-space helpers over the simulated syscalls.
//
// These are the allocation entry points applications use (the simulated
// equivalents of numa_alloc_onnode / numa_alloc_interleaved / ...), plus the
// lazy-migration helper the paper builds from kernel next-touch (Sec. 3.4).
#pragma once

#include <cstdint>

#include "kern/kernel.hpp"

namespace numasim::lib {

/// Map `size` bytes bound to `node` (populated lazily on first touch).
vm::Vaddr numa_alloc_onnode(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                            topo::NodeId node, std::string name = {});

/// Map `size` bytes interleaved across all nodes.
vm::Vaddr numa_alloc_interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                 std::uint64_t size, std::string name = {});

/// Map `size` bytes with default policy (first touch decides placement).
vm::Vaddr numa_alloc_local(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                           std::string name = {});

void numa_free(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
               std::uint64_t size);

/// Fault the whole range in (one full-range write touch).
void populate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
              std::uint64_t size);

/// Lazy migration via kernel next-touch (paper Sec. 3.4): mark the buffer and
/// let pages follow whichever thread touches them, instead of a synchronous
/// move_pages. Returns 0 or -errno.
int lazy_migrate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
                 std::uint64_t len);

/// Synchronous migration of a whole range with move_pages. Returns number of
/// pages whose status reports the target node, or -errno.
long sync_migrate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
                  std::uint64_t len, topo::NodeId node);

}  // namespace numasim::lib
