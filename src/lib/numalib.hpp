// libnuma-flavoured user-space helpers over the simulated syscalls.
//
// The primary interface is the RAII `NumaBuffer` handle: it owns one mapped
// range, remembers its placement policy, exposes the paper's migration
// mechanisms as methods (lazy next-touch marking, synchronous move_pages),
// and releases the mapping when destroyed. The historical free functions
// (the simulated equivalents of numa_alloc_onnode / numa_alloc_interleaved /
// ...) remain as thin wrappers over it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "kern/kernel.hpp"

namespace numasim::lib {

/// RAII handle to one NUMA-placed allocation of a simulated process.
///
/// Operations that model user-visible work (populate, migrate, free) take
/// the calling ThreadCtx and charge simulated time exactly like the free
/// functions did. Destruction is the process-teardown path: it returns the
/// frames without a ThreadCtx and charges nothing — call `free(t)` instead
/// when the unmap itself is part of the measured workload.
class NumaBuffer {
 public:
  NumaBuffer() = default;

  /// Map `size` bytes bound to `node` (populated lazily on first touch).
  static NumaBuffer on_node(kern::ThreadCtx& t, kern::Kernel& k,
                            std::uint64_t size, topo::NodeId node,
                            std::string name = {});
  /// Map `size` bytes interleaved across all nodes.
  static NumaBuffer interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                std::uint64_t size, std::string name = {});
  /// Map `size` bytes with default policy (first touch decides placement).
  static NumaBuffer local(kern::ThreadCtx& t, kern::Kernel& k,
                          std::uint64_t size, std::string name = {});
  /// Map `size` bytes under the tier-preference policy (see
  /// lib::tier_preferred): fastest tier first, graceful spill down-tier.
  static NumaBuffer tiered(kern::ThreadCtx& t, kern::Kernel& k,
                           std::uint64_t size, topo::NodeMask allowed = 0,
                           std::string name = {});

  NumaBuffer(const NumaBuffer&) = delete;
  NumaBuffer& operator=(const NumaBuffer&) = delete;
  NumaBuffer(NumaBuffer&& o) noexcept { swap(o); }
  NumaBuffer& operator=(NumaBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      swap(o);
    }
    return *this;
  }
  ~NumaBuffer() { reset(); }

  vm::Vaddr addr() const { return addr_; }
  std::uint64_t size() const { return size_; }
  const vm::MemPolicy& policy() const { return policy_; }
  /// Binding node for on_node buffers; kInvalidNode otherwise.
  topo::NodeId node() const { return node_; }
  explicit operator bool() const { return addr_ != 0; }

  /// Fault the whole range in (one full-range write touch).
  void populate(kern::ThreadCtx& t);

  /// Lazy migration via kernel next-touch (paper Sec. 3.4): mark the buffer
  /// and let pages follow whichever thread touches them next.
  kern::SyscallResult lazy_migrate(kern::ThreadCtx& t);

  /// Synchronous migration of the whole buffer with move_pages. count() =
  /// pages whose status reports `node`.
  kern::SyscallResult sync_migrate(kern::ThreadCtx& t, topo::NodeId node);

  /// Present pages of the buffer currently on `node` (timing-free).
  std::uint64_t pages_on(topo::NodeId node) const;

  /// Charged munmap (the syscall the workload would issue); empties the
  /// handle.
  kern::SyscallResult free(kern::ThreadCtx& t);

  /// Give up ownership without unmapping; returns the address (for code
  /// managing raw Vaddrs, e.g. the legacy free functions).
  vm::Vaddr release() {
    const vm::Vaddr a = addr_;
    kernel_ = nullptr;
    addr_ = 0;
    size_ = 0;
    return a;
  }

 private:
  NumaBuffer(kern::Kernel& k, kern::Pid pid, vm::Vaddr addr, std::uint64_t size,
             vm::MemPolicy policy, topo::NodeId node)
      : kernel_(&k), pid_(pid), addr_(addr), size_(size), policy_(policy),
        node_(node) {}

  void reset() {
    if (kernel_ != nullptr && addr_ != 0)
      kernel_->teardown_unmap(pid_, addr_, size_);
    kernel_ = nullptr;
    addr_ = 0;
    size_ = 0;
  }

  void swap(NumaBuffer& o) {
    std::swap(kernel_, o.kernel_);
    std::swap(pid_, o.pid_);
    std::swap(addr_, o.addr_);
    std::swap(size_, o.size_);
    std::swap(policy_, o.policy_);
    std::swap(node_, o.node_);
  }

  kern::Kernel* kernel_ = nullptr;
  kern::Pid pid_ = 0;
  vm::Vaddr addr_ = 0;
  std::uint64_t size_ = 0;
  vm::MemPolicy policy_{};
  topo::NodeId node_ = topo::kInvalidNode;
};

// --- legacy free-function surface (thin wrappers over NumaBuffer) -------------

/// Map `size` bytes bound to `node` (populated lazily on first touch).
vm::Vaddr numa_alloc_onnode(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                            topo::NodeId node, std::string name = {});

/// Map `size` bytes interleaved across all nodes.
vm::Vaddr numa_alloc_interleaved(kern::ThreadCtx& t, kern::Kernel& k,
                                 std::uint64_t size, std::string name = {});

/// Map `size` bytes with default policy (first touch decides placement).
vm::Vaddr numa_alloc_local(kern::ThreadCtx& t, kern::Kernel& k, std::uint64_t size,
                           std::string name = {});

void numa_free(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
               std::uint64_t size);

/// Fault the whole range in (one full-range write touch).
void populate(kern::ThreadCtx& t, kern::Kernel& k, vm::Vaddr addr,
              std::uint64_t size);

/// Lazy migration via kernel next-touch (paper Sec. 3.4): mark the buffer and
/// let pages follow whichever thread touches them, instead of a synchronous
/// move_pages.
kern::SyscallResult lazy_migrate(kern::ThreadCtx& t, kern::Kernel& k,
                                 vm::Vaddr addr, std::uint64_t len);

/// Synchronous migration of a whole range with move_pages. count() = pages
/// whose status reports the target node.
kern::SyscallResult sync_migrate(kern::ThreadCtx& t, kern::Kernel& k,
                                 vm::Vaddr addr, std::uint64_t len,
                                 topo::NodeId node);

/// Tier-preference mempolicy (MPOL_PREFERRED_MANY flavour): allocations try
/// the nodes of `allowed` ordered fastest-tier-first (ties broken by distance
/// from the faulting core, then node id) and spill down-tier instead of
/// failing when the fast nodes are full. `allowed == 0` means every node.
/// On a flat (untiered) machine this degrades to nearest-first placement,
/// i.e. first-touch with an explicit mask.
vm::MemPolicy tier_preferred(const topo::Topology& topo,
                             topo::NodeMask allowed = 0);

}  // namespace numasim::lib
