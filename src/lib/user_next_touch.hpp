// User-space next-touch (the paper's Fig. 1 design, built like ref. [12]).
//
// A region is armed with mprotect(PROT_NONE); the next access raises a
// simulated SIGSEGV. The installed handler knows the workset layout, so it
// migrates a whole *granule* (up to the entire region) around the faulting
// address with move_pages, restores the protection, and the access retries.
// Because the library — not the kernel — chooses the granule, it can move
// complex shapes (a matrix column) on a single fault, the flexibility the
// paper credits this design with; the price is the signal round-trip and two
// mprotect TLB shootdowns per granule.
#pragma once

#include <cstdint>
#include <map>

#include "kern/kernel.hpp"

namespace numasim::lib {

class UserNextTouch {
 public:
  struct Stats {
    std::uint64_t faults_handled = 0;
    std::uint64_t pages_moved = 0;
    std::uint64_t granules_migrated = 0;
    /// Pages whose move_pages status came back negative (destination
    /// exhausted, transient kernel failure...). They stay on their source
    /// node; the window is still disarmed so the access proceeds remotely.
    std::uint64_t pages_failed = 0;
    /// Windows where at least one page failed to move (degraded completion).
    std::uint64_t degraded_windows = 0;
  };

  /// Installs this object as the process SIGSEGV handler. At most one
  /// UserNextTouch per process (mirrors a real signal handler slot).
  UserNextTouch(kern::Kernel& k, kern::Pid pid);
  ~UserNextTouch();
  UserNextTouch(const UserNextTouch&) = delete;
  UserNextTouch& operator=(const UserNextTouch&) = delete;

  /// Arm [addr, addr+len): each future fault migrates `granule` bytes
  /// (region-start-aligned window; 0 = the whole remaining region) to the
  /// faulting thread's node. The range must be mapped and not already armed.
  /// Returns 0 or -errno.
  int mark(kern::ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
           std::uint64_t granule = 0);

  /// Disarm a range without migrating (restores protection).
  int cancel(kern::ThreadCtx& t, vm::Vaddr addr, std::uint64_t len);

  /// Number of bytes still armed.
  std::uint64_t armed_bytes() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Region {
    vm::Vaddr start;  ///< original mark() start — granule alignment origin
    vm::Vaddr end;
    std::uint64_t granule;  ///< 0 = whole region
    vm::Prot orig_prot;
  };

  void on_segv(kern::ThreadCtx& t, const kern::SigInfo& info);
  /// Migrate + restore [lo, hi) of `region`, trimming the armed interval.
  void complete_window(kern::ThreadCtx& t, vm::Vaddr key, vm::Vaddr lo,
                       vm::Vaddr hi, topo::NodeId target);

  kern::Kernel& k_;
  kern::Pid pid_;
  std::map<vm::Vaddr, Region> armed_;  // keyed by current interval start
  Stats stats_;
};

}  // namespace numasim::lib
