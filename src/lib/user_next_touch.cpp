#include "lib/user_next_touch.hpp"

#include <algorithm>
#include <vector>

namespace numasim::lib {

UserNextTouch::UserNextTouch(kern::Kernel& k, kern::Pid pid) : k_(k), pid_(pid) {
  k_.set_sigsegv_handler(
      pid_, [this](kern::ThreadCtx& t, const kern::SigInfo& info) { on_segv(t, info); });
}

UserNextTouch::~UserNextTouch() { k_.set_sigsegv_handler(pid_, {}); }

int UserNextTouch::mark(kern::ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                        std::uint64_t granule) {
  const vm::Vaddr start = vm::page_align_down(addr);
  const vm::Vaddr end = vm::page_align_up(addr + len);
  if (end <= start) return -kern::kEINVAL;
  if (granule % mem::kPageSize != 0) return -kern::kEINVAL;

  // Reject overlap with an already-armed interval.
  auto it = armed_.upper_bound(start);
  if (it != armed_.end() && it->second.start < end) return -kern::kEBUSY;
  if (it != armed_.begin() && std::prev(it)->second.end > start)
    return -kern::kEBUSY;

  const vm::Vma* vma = k_.address_space(pid_).find(start);
  if (vma == nullptr) return -kern::kENOMEM;
  const vm::Prot orig = vma->prot;

  const kern::SyscallResult r = k_.sys_mprotect(t, start, end - start,
                                                vm::Prot::kNone,
                                                sim::CostKind::kMprotectMark);
  if (!r.ok()) return -static_cast<int>(r.error());
  armed_.emplace(start, Region{start, end, granule, orig});
  return 0;
}

int UserNextTouch::cancel(kern::ThreadCtx& t, vm::Vaddr addr, std::uint64_t len) {
  const vm::Vaddr start = vm::page_align_down(addr);
  const vm::Vaddr end = vm::page_align_up(addr + len);
  auto it = armed_.lower_bound(start);
  if (it != armed_.begin() && std::prev(it)->second.end > start) --it;
  while (it != armed_.end() && it->first < end) {
    const vm::Vaddr key = it->first;
    const Region r = it->second;
    it = armed_.erase(it);
    k_.sys_mprotect(t, key, r.end - key, r.orig_prot,
                    sim::CostKind::kMprotectRestore);
  }
  return 0;
}

std::uint64_t UserNextTouch::armed_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, r] : armed_) total += r.end - key;
  return total;
}

void UserNextTouch::on_segv(kern::ThreadCtx& t, const kern::SigInfo& info) {
  // Locate the armed interval containing the fault.
  auto it = armed_.upper_bound(info.fault_addr);
  if (it == armed_.begin()) throw kern::SegfaultError{info.fault_addr};
  --it;
  const vm::Vaddr key = it->first;
  const Region& region = it->second;
  if (info.fault_addr >= region.end) throw kern::SegfaultError{info.fault_addr};

  // Granule window, aligned to the region's original start.
  vm::Vaddr lo = key;
  vm::Vaddr hi = region.end;
  if (region.granule != 0) {
    const std::uint64_t off = info.fault_addr - region.start;
    lo = std::max<vm::Vaddr>(key, region.start + off / region.granule * region.granule);
    hi = std::min<vm::Vaddr>(region.end, lo + region.granule);
  }

  const topo::NodeId target = k_.topo().node_of_core(t.core);
  complete_window(t, key, lo, hi, target);
  ++stats_.faults_handled;
}

void UserNextTouch::complete_window(kern::ThreadCtx& t, vm::Vaddr key, vm::Vaddr lo,
                                    vm::Vaddr hi, topo::NodeId target) {
  auto it = armed_.find(key);
  const Region region = it->second;

  // The library knows the workset layout, so it can benefit from the
  // batched move_pages throughput: one call for the whole granule.
  const vm::Vpn first = vm::vpn_of(lo);
  const vm::Vpn last = vm::vpn_of(hi - 1) + 1;
  std::vector<vm::Vaddr> pages;
  pages.reserve(last - first);
  for (vm::Vpn vpn = first; vpn < last; ++vpn) pages.push_back(vm::addr_of(vpn));
  std::vector<topo::NodeId> nodes(pages.size(), target);
  std::vector<int> status(pages.size(), 0);
  const kern::SyscallResult r = k_.sys_move_pages(t, pages, nodes, status);

  // move_pages may fail wholesale (!r.ok()) or per page (negative status,
  // e.g. -ENOMEM when the target node is exhausted). Either way the pages
  // are still resident on their source node, so the only correct move is to
  // restore protection and let the access proceed remotely — re-arming (or
  // aborting) here would re-fault the same address forever.
  std::uint64_t failed = 0;
  if (!r.ok()) {
    failed = pages.size();
  } else {
    for (int s : status) (s >= 0 ? ++stats_.pages_moved : ++failed);
  }
  stats_.pages_failed += failed;
  if (failed != 0) ++stats_.degraded_windows;
  ++stats_.granules_migrated;

  k_.sys_mprotect(t, lo, hi - lo, region.orig_prot,
                  sim::CostKind::kMprotectRestore);

  // Trim [lo, hi) out of the armed interval.
  armed_.erase(it);
  if (lo > key) armed_.emplace(key, Region{region.start, lo, region.granule,
                                           region.orig_prot});
  if (hi < region.end)
    armed_.emplace(hi, Region{region.start, region.end, region.granule,
                              region.orig_prot});
}

}  // namespace numasim::lib
