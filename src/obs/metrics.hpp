// Metrics registry: named counters, gauges and log2-bucketed histograms with
// cheap snapshot/delta semantics.
//
// This is the accounting layer behind the paper's evaluation: benchmarks and
// tests snapshot the registry at phase boundaries and query deltas instead of
// keeping bespoke before/after counter pairs. The kernel binds its
// `KernelStats` fields into an attached registry (zero-overhead: bound
// counters read through a pointer at snapshot time, the hot path still bumps
// the plain struct field) and feeds latency histograms for fault service,
// per-page migration cost, lock waits and shootdown rounds.
//
// Ownership model:
//   * `counter()/gauge()/histogram()` create-or-return *owned* metrics with
//     stable references (node-based storage; safe to cache the pointer).
//   * `bind_counter()/bind_gauge()` register *external* storage; the source
//     must outlive the binding. `retire(prefix)` folds the current values of
//     bound counters into owned counters of the same name and drops the
//     bindings — the kernel calls it on detach/destruction so a registry can
//     outlive many short-lived kernels and keep accumulating.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace numasim::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_ += d; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

/// Point-in-time level (can go down).
class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  void add(std::int64_t d) { v_ += d; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Bucket count of a log2 histogram: bucket b holds values whose bit width
/// is b, i.e. bucket 0 = {0}, bucket 1 = {1}, bucket 2 = [2,4), bucket 3 =
/// [4,8), ..., bucket 64 = [2^63, 2^64).
inline constexpr std::size_t kHistBuckets = 65;

/// Log2-bucketed distribution of unsigned samples (latencies in ns, counts).
class Histogram {
 public:
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  /// Smallest value landing in bucket `b`.
  static constexpr std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value landing in bucket `b` (inclusive).
  static constexpr std::uint64_t bucket_hi(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket(std::size_t b) const { return buckets_[b]; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  /// Coarse by construction (log2 buckets) but monotone and cheap.
  std::uint64_t quantile(double q) const;

  /// Interpolated percentile (p in [0, 100]): rank-based (ceil(p% * count),
  /// nearest-rank) with linear interpolation across the rank's position
  /// inside its log2 bucket, clamped to [min, max] so a single-bucket
  /// distribution still reports within the observed range. Monotone in p;
  /// percentile(100) == max. Finer than quantile() whenever a bucket holds
  /// samples of mixed magnitude — the resolution latency benches need.
  double percentile(double p) const;

  void reset() {
    buckets_.fill(0);
    count_ = sum_ = max_ = 0;
    min_ = ~std::uint64_t{0};
  }

 private:
  std::array<std::uint64_t, kHistBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

/// Frozen histogram state inside a Snapshot.
struct HistogramSnap {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistBuckets> buckets{};
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  std::uint64_t quantile(double q) const;
  /// Interpolated percentile; see Histogram::percentile.
  double percentile(double p) const;
};

/// Point-in-time copy of every metric in a registry. Cheap value type;
/// subtract two snapshots to get per-phase deltas.
struct Snapshot {
  sim::Time when = 0;  ///< caller-stamped simulated instant (optional)
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnap> histograms;

  /// Per-phase delta: counters and histogram counts/sums/buckets subtract
  /// (saturating at 0); gauges and histogram min/max keep the later value.
  Snapshot delta_since(const Snapshot& earlier) const;

  /// Human-readable table (zero counters elided).
  std::string render() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-return an owned metric. References stay valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Register external counter storage (read at snapshot time). The source
  /// must stay valid until `retire()` with a covering prefix is called.
  void bind_counter(std::string_view name, const std::uint64_t* source);
  /// Register a computed gauge (evaluated at snapshot time).
  void bind_gauge(std::string_view name, std::function<std::int64_t()> fn);

  /// Fold bound counters whose name starts with `prefix` into owned counters
  /// of the same name and drop the bindings; drop matching bound gauges.
  /// After this no snapshot dereferences the retired sources.
  void retire(std::string_view prefix);

  Snapshot snapshot() const;
  std::string render() const { return snapshot().render(); }

 private:
  // Node-based maps: stable references across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, const std::uint64_t*, std::less<>> bound_counters_;
  std::map<std::string, std::function<std::int64_t()>, std::less<>> bound_gauges_;
};

}  // namespace numasim::obs
