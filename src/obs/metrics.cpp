#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace numasim::obs {

namespace {

std::uint64_t quantile_impl(const std::array<std::uint64_t, kHistBuckets>& buckets,
                            std::uint64_t count, std::uint64_t max, double q) {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the quantile sample, 1-based, rounded up (q=0.5 over 10 samples
  // selects the 5th).
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // Clamp the bucket upper bound by the observed max so q=1.0 never
      // reports past the largest recorded sample.
      return std::min(Histogram::bucket_hi(b), max);
    }
  }
  return max;
}

double percentile_impl(const std::array<std::uint64_t, kHistBuckets>& buckets,
                       std::uint64_t count, std::uint64_t min,
                       std::uint64_t max, double p) {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank (1-based): the sample at ceil(p% * count).
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistBuckets; ++b) {
    const std::uint64_t n = buckets[b];
    if (n != 0 && seen + n >= rank) {
      // Spread the bucket's samples evenly across (lo, hi] and take the
      // rank's position; the [min, max] clamp keeps the estimate inside the
      // observed range (exact when all samples share one bucket boundary).
      const auto lo = static_cast<double>(Histogram::bucket_lo(b));
      const auto hi = static_cast<double>(Histogram::bucket_hi(b));
      const auto within = static_cast<double>(rank - seen);
      double v = lo + (hi - lo) * within / static_cast<double>(n);
      v = std::max(v, static_cast<double>(min));
      v = std::min(v, static_cast<double>(max));
      return v;
    }
    seen += n;
  }
  return static_cast<double>(max);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

std::uint64_t Histogram::quantile(double q) const {
  return quantile_impl(buckets_, count_, max_, q);
}

std::uint64_t HistogramSnap::quantile(double q) const {
  return quantile_impl(buckets, count, max, q);
}

double Histogram::percentile(double p) const {
  return percentile_impl(buckets_, count_, min(), max_, p);
}

double HistogramSnap::percentile(double p) const {
  return percentile_impl(buckets, count, count == 0 ? 0 : min, max, p);
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void Registry::bind_counter(std::string_view name, const std::uint64_t* source) {
  bound_counters_.insert_or_assign(std::string(name), source);
}

void Registry::bind_gauge(std::string_view name, std::function<std::int64_t()> fn) {
  bound_gauges_.insert_or_assign(std::string(name), std::move(fn));
}

void Registry::retire(std::string_view prefix) {
  for (auto it = bound_counters_.begin(); it != bound_counters_.end();) {
    if (starts_with(it->first, prefix)) {
      counter(it->first).inc(*it->second);
      it = bound_counters_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = bound_gauges_.begin(); it != bound_gauges_.end();) {
    if (starts_with(it->first, prefix)) {
      it = bound_gauges_.erase(it);
    } else {
      ++it;
    }
  }
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  // A name can exist both owned (retired remainder from a dead kernel) and
  // bound (live kernel): the snapshot reports the sum, so totals accumulate
  // seamlessly across kernel generations.
  for (const auto& [name, src] : bound_counters_) s.counters[name] += *src;
  for (const auto& [name, g] : gauges_) s.gauges[name] = g.value();
  for (const auto& [name, fn] : bound_gauges_) s.gauges[name] = fn();
  for (const auto& [name, h] : histograms_) {
    HistogramSnap hs;
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    for (std::size_t b = 0; b < kHistBuckets; ++b) hs.buckets[b] = h.bucket(b);
    s.histograms[name] = hs;
  }
  return s;
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const {
  Snapshot d;
  d.when = when;
  for (const auto& [name, v] : counters) {
    std::uint64_t base = 0;
    if (auto it = earlier.counters.find(name); it != earlier.counters.end()) {
      base = it->second;
    }
    d.counters[name] = v >= base ? v - base : 0;
  }
  d.gauges = gauges;  // levels: report the later value
  for (const auto& [name, h] : histograms) {
    HistogramSnap dh = h;
    if (auto it = earlier.histograms.find(name); it != earlier.histograms.end()) {
      const HistogramSnap& base = it->second;
      dh.count = h.count >= base.count ? h.count - base.count : 0;
      dh.sum = h.sum >= base.sum ? h.sum - base.sum : 0;
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        dh.buckets[b] =
            h.buckets[b] >= base.buckets[b] ? h.buckets[b] - base.buckets[b] : 0;
      }
      // min/max are not subtractable; keep the later window's observation.
    }
    d.histograms[name] = dh;
  }
  return d;
}

std::string Snapshot::render() const {
  std::ostringstream os;
  os << "-- counters --\n";
  for (const auto& [name, v] : counters) {
    if (v != 0) os << "  " << name << " = " << v << "\n";
  }
  if (!gauges.empty()) {
    os << "-- gauges --\n";
    for (const auto& [name, v] : gauges) {
      os << "  " << name << " = " << v << "\n";
    }
  }
  for (const auto& [name, h] : histograms) {
    if (h.count == 0) continue;
    os << "-- histogram " << name << " --\n";
    os << "  count=" << h.count << " sum=" << h.sum << " min=" << h.min
       << " max=" << h.max << " mean=" << h.mean()
       << " p50<=" << h.quantile(0.5) << " p99<=" << h.quantile(0.99) << "\n";
  }
  return os.str();
}

}  // namespace numasim::obs
