#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace numasim::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Simulated ns -> trace-format µs, keeping ns precision in the fraction.
void append_us(std::string& out, sim::Time ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

void ChromeTraceWriter::record(const TraceEvent& e) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  Stored s;
  s.kind = e.kind;
  s.ts = e.ts;
  s.dur = e.dur;
  s.pid = e.pid;
  s.tid = e.tid;
  s.cat = std::string(e.cat);
  s.name = std::string(e.name);
  s.args.reserve(e.nargs);
  for (std::size_t i = 0; i < e.nargs; ++i) {
    s.args.emplace_back(std::string(e.args[i].key), e.args[i].value);
  }
  events_.push_back(std::move(s));
}

std::string ChromeTraceWriter::to_json() const {
  std::string out;
  out.reserve(events_.size() * 128 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Stored& s : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"cat\":\"";
    append_escaped(out, s.cat);
    out += "\",\"ph\":\"";
    out += (s.kind == TraceEvent::Kind::kSpan) ? 'X' : 'i';
    out += "\",\"ts\":";
    append_us(out, s.ts);
    if (s.kind == TraceEvent::Kind::kSpan) {
      out += ",\"dur\":";
      append_us(out, s.dur);
    } else {
      // Instant scope: thread-local arrow in the viewer.
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":";
    out += std::to_string(s.pid);
    out += ",\"tid\":";
    out += std::to_string(s.tid);
    if (!s.args.empty()) {
      out += ",\"args\":{";
      bool afirst = true;
      for (const auto& [key, value] : s.args) {
        if (!afirst) out += ',';
        afirst = false;
        out += '"';
        append_escaped(out, key);
        out += "\":";
        out += std::to_string(value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool ChromeTraceWriter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

}  // namespace numasim::obs
