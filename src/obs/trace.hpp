// Tracepoint layer: a pluggable sink interface behind the kernel's
// tracepoints.
//
// The kernel (and the runtime, via Kernel::emit_*) produces `TraceEvent`s —
// either instants ("a minor fault was serviced at t") or spans ("this
// madvise call ran from t to t+dur on thread 3"). Sinks subscribe via
// `Kernel::add_trace_sink()`. Two sinks ship here:
//
//   * `ChromeTraceWriter` serializes events to the Chrome trace-event JSON
//     format (load the file in chrome://tracing or https://ui.perfetto.dev);
//     each simulated thread becomes a timeline row, spans become slices.
//   * `kern::EventLog` (in kern/) adapts instants back into the legacy
//     bounded event deque, preserving its render()/to_csv() surface.
//
// Event names and arg keys are `string_view`s into string literals at every
// kernel/runtime call site, so building an event allocates nothing; sinks
// that outlive the call (like ChromeTraceWriter) copy what they keep.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace numasim::obs {

/// One key/value annotation on a trace event (node ids, page counts, ...).
/// Values are signed so "no node" can be encoded as -1.
struct TraceArg {
  std::string_view key;
  std::int64_t value = 0;
};

inline constexpr std::size_t kMaxTraceArgs = 6;

/// A single tracepoint firing. Plain value type, cheap to build on the stack.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kInstant,  ///< point event (ts only)
    kSpan,     ///< duration slice [ts, ts+dur]
  };

  Kind kind = Kind::kInstant;
  sim::Time ts = 0;   ///< simulated start time (ns)
  sim::Time dur = 0;  ///< span length (ns); 0 for instants
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string_view cat = "kern";  ///< "kern", "app", ...
  std::string_view name;          ///< e.g. "minor-fault", "move_pages"
  TraceArg args[kMaxTraceArgs];
  std::size_t nargs = 0;

  TraceEvent& add_arg(std::string_view key, std::int64_t value) {
    if (nargs < kMaxTraceArgs) args[nargs++] = TraceArg{key, value};
    return *this;
  }
};

/// Receives every tracepoint firing. Implementations must not assume call
/// order beyond "ts is the emitting thread's clock" — different simulated
/// threads interleave.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& e) = 0;
};

/// Swallows everything; useful in tests as the cheapest possible sink.
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Buffers events and serializes them as Chrome trace-event JSON
/// ("JSON Object Format": {"traceEvents":[...], "displayTimeUnit":"ns"}).
/// Timestamps are emitted in microseconds (the format's unit) with
/// nanosecond precision kept in the fraction.
class ChromeTraceWriter final : public TraceSink {
 public:
  /// `capacity` bounds buffered events; further events are counted in
  /// `dropped()` instead of stored.
  explicit ChromeTraceWriter(std::size_t capacity = std::size_t{1} << 20)
      : capacity_(capacity) {}

  void record(const TraceEvent& e) override;

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Serialize everything recorded so far.
  std::string to_json() const;
  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  // TraceEvent holds string_views into call-site literals; Stored owns copies
  // so the writer can outlive the emitting kernel.
  struct Stored {
    TraceEvent::Kind kind;
    sim::Time ts;
    sim::Time dur;
    std::uint32_t pid;
    std::uint32_t tid;
    std::string cat;
    std::string name;
    std::vector<std::pair<std::string, std::int64_t>> args;
  };

  std::size_t capacity_;
  std::vector<Stored> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace numasim::obs
