// numastat-style periodic reporter driven off *simulated* time.
//
// The reporter is a TraceSink so it can piggyback on the kernel's tracepoint
// stream for a notion of "now" without its own clock plumbing: every recorded
// event's timestamp advances the reporting window, and whenever a full
// interval elapses the reporter emits a delta snapshot of its registry
// through a caller-supplied output callback. Callers that don't attach it as
// a sink can drive it manually with `poll(now)`.
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace numasim::obs {

class PeriodicReporter final : public TraceSink {
 public:
  using Output = std::function<void(const std::string&)>;

  /// Reports deltas of `reg` every `interval` simulated ns through `out`.
  PeriodicReporter(const Registry& reg, sim::Time interval, Output out)
      : reg_(reg), interval_(interval), out_(std::move(out)),
        last_(reg.snapshot()) {}

  /// Emit a report if at least one interval has elapsed since the last one.
  /// Returns the number of reports emitted (catches up over idle gaps in a
  /// single report rather than flooding).
  int poll(sim::Time now);

  /// Unconditional final report covering the tail window.
  void final_report(sim::Time now);

  void record(const TraceEvent& e) override { poll(e.ts); }

  std::uint64_t reports() const { return reports_; }

 private:
  void emit(sim::Time now);

  const Registry& reg_;
  sim::Time interval_;
  Output out_;
  Snapshot last_;
  sim::Time next_due_ = 0;  // 0 = not started; first event arms the timer
  bool armed_ = false;
  std::uint64_t reports_ = 0;
};

}  // namespace numasim::obs
