#include "obs/report.hpp"

#include <sstream>

namespace numasim::obs {

int PeriodicReporter::poll(sim::Time now) {
  if (!armed_) {
    armed_ = true;
    next_due_ = now + interval_;
    last_ = reg_.snapshot();
    last_.when = now;
    return 0;
  }
  if (now < next_due_) return 0;
  emit(now);
  // Re-arm relative to `now`, not next_due_: a long idle gap yields one
  // catch-up report, not a burst.
  next_due_ = now + interval_;
  return 1;
}

void PeriodicReporter::final_report(sim::Time now) {
  emit(now);
  next_due_ = now + interval_;
}

void PeriodicReporter::emit(sim::Time now) {
  Snapshot cur = reg_.snapshot();
  cur.when = now;
  Snapshot d = cur.delta_since(last_);
  std::ostringstream os;
  os << "== numastat @" << now << "ns (window " << (now - last_.when)
     << "ns) ==\n"
     << d.render();
  out_(os.str());
  last_ = std::move(cur);
  ++reports_;
}

}  // namespace numasim::obs
