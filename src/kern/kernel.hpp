// The simulated Linux memory-management kernel.
//
// This is the heart of the reproduction: it implements, over the simulated
// hardware, the exact mechanisms the paper studies —
//   * move_pages(2) in both its pre-patch (quadratic) and patched (linear)
//     forms (paper Sec. 3.1),
//   * migrate_pages(2) whole-process migration,
//   * mprotect + SIGSEGV delivery, enabling the user-space next-touch of
//     Fig. 1,
//   * madvise(MADV_MIGRATE_ON_NEXT_TOUCH) + fault-path migration, the
//     kernel next-touch of Fig. 2,
//   * first-touch / bind / interleave / preferred memory policies,
//   * page-table-lock and mmap_sem contention, TLB shootdowns.
//
// Every operation takes a ThreadCtx, advances its clock by the modelled
// cost, and attributes the time to a CostKind (this instrumentation is what
// regenerates the Fig. 6 breakdowns). Long operations expose batched
// "chunk" variants so the runtime can interleave concurrent threads at
// realistic lock granularity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kern/cost_model.hpp"
#include "kern/errno.hpp"
#include "kern/event_log.hpp"
#include "kern/fault_injector.hpp"
#include "kern/hw_state.hpp"
#include "kern/kmigrated.hpp"
#include "kern/numab.hpp"
#include "kern/placement.hpp"
#include "kern/replication.hpp"
#include "kern/stlb.hpp"
#include "kern/tiers.hpp"
#include "kern/txn_migrate.hpp"
#include "mem/phys.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "topo/topology.hpp"
#include "vm/address_space.hpp"

namespace numasim::kern {

using Pid = std::uint32_t;
using ThreadId = std::uint32_t;

/// Execution context of one simulated thread, threaded through every kernel
/// entry point. The runtime owns it and awaits `clock` after each call.
struct ThreadCtx {
  ThreadId tid = 0;
  Pid pid = 0;
  topo::CoreId core = 0;
  sim::Time clock = 0;
  sim::CostStats stats;
  unsigned signal_depth = 0;  ///< >0 while running inside a SIGSEGV handler
  /// Host-side cache of this thread's numa-balancing fault table
  /// (&process.numab.tasks[tid]; map nodes are pointer-stable and never
  /// erased). Avoids a tree lookup on every hint fault.
  NumabTaskStats* numab_ts = nullptr;
  /// Per-thread software TLB of extent descriptors: lets access() skip the
  /// PTE walk for extents proven quiet since the process's last mapping
  /// change (see kern/stlb.hpp). Host-side only; simulated cost-identical.
  SoftTlb stlb;
};

/// Information passed to a registered SIGSEGV handler.
struct SigInfo {
  vm::Vaddr fault_addr = 0;
  vm::Prot attempted = vm::Prot::kRead;
};

/// A process-wide SIGSEGV handler; runs synchronously in the faulting
/// thread's context and may issue further syscalls (as the user-space
/// next-touch library does).
using SegvHandler = std::function<void(ThreadCtx&, const SigInfo&)>;

enum class Advice : std::uint8_t {
  kNormal,
  kWillNeed,
  kDontNeed,
  /// The paper's new advice: migrate each page to whichever node next
  /// touches it.
  kMigrateOnNextTouch,
  /// Extension (the paper's future work): serve reads from per-node
  /// replicas; the first write collapses them.
  kReplicate,
};

enum class MovePagesImpl : std::uint8_t {
  kQuadratic,  ///< Linux <= 2.6.28: per-page linear scan of the request array
  kLinear,     ///< the paper's patch (merged in 2.6.29)
};

/// Concurrency model of the migration paths.
enum class LockModel : std::uint8_t {
  /// Paper-faithful (2.6.29-era) locking: every migration path serializes on
  /// one process-wide mmap_sem timeline plus one migration pipeline, and
  /// each migrated page pays a full all-core TLB shootdown. This is the
  /// default and reproduces Fig. 7's flat/collapsing thread-scaling curves.
  kCoarse,
  /// Scalable engine: migration paths take the whole-space lock *shared*
  /// (only mmap/munmap/mprotect surgery is exclusive), per-VMA range locks
  /// serialize only overlapping page runs, and the shootdowns of one
  /// contiguous migrated run coalesce into a single IPI round. Disjoint
  /// ranges then migrate in parallel up to the copy hardware's bandwidth.
  kRange,
};

/// Aggregate construction parameters for a Kernel: one struct instead of a
/// positional constructor plus accreted setters. The kernel owns a copy, so
/// configs are freely reusable/temporary. rt::Machine::Config is an alias.
struct KernelConfig {
  topo::Topology topology = topo::Topology::quad_opteron();
  mem::Backing backing = mem::Backing::kMaterialized;
  CostModel cost{};
  LockModel lock_model = LockModel::kCoarse;
  MovePagesImpl move_pages_impl = MovePagesImpl::kLinear;
  /// Which migration engine the page-moving paths use (move_pages, the
  /// ranged/async interfaces, mbind(MPOL_MF_MOVE), kmigrated batches, numab
  /// promotion). kStopAndCopy is paper-faithful and runs event-for-event
  /// identical to kernels predating the transactional engine;
  /// kTransactional shadow-copies while the page stays mapped and falls
  /// back to stop-and-copy per page on retry exhaustion (see
  /// kern/txn_migrate.hpp and docs/failure-semantics.md). migrate_pages(2)
  /// whole-process migration always stop-and-copies: its pages belong to
  /// another (quiesced) process, so there is no running writer to avoid
  /// stalling.
  MigrationMode migration_mode = MigrationMode::kStopAndCopy;
  /// Extension toggle: replicate read-only pages on remote read faults.
  bool replication = false;
  std::uint64_t max_frames_per_node = 0;  ///< 0 = topology default
  /// Next-touch migrate-ahead: on each next-touch fault, up to this many
  /// further contiguous next-touch pages are handed to the faulting node's
  /// kmigrated daemon as one async batch. 0 (default) keeps the
  /// paper-faithful synchronous behaviour.
  std::uint64_t nt_async_window = 0;
  /// Fault plan applied at construction (empty = no injector attached, no
  /// randomness drawn). The kernel owns the resulting injector;
  /// set_fault_injector() overrides it with an external one.
  FaultPlan fault_plan{};
  std::uint64_t fault_seed = 0;
  /// Automatic NUMA balancing (hint-fault sampling + migrate-on-fault).
  /// Disabled by default; see kern/numab.hpp and docs/scheduling.md.
  NumaBalancingConfig numa_balancing{};
  /// Memory-tier promotion/demotion knobs (kern/tiers.hpp). Disabled by
  /// default; promotion rides the numab hint-fault loop, so tiering needs
  /// numa_balancing.enabled for the proactive paths (direct demotion under
  /// allocation pressure works regardless). See docs/memory-tiers.md.
  TierConfig tiers{};
  /// Soft-TLB access fast path (kern/stlb.hpp): memoize walk results per
  /// thread and skip the PTE walk when a cached extent descriptor is still
  /// valid. Host-side speedup only — `stlb = false` is event-for-event
  /// identical in simulated cost and output (CI double-runs both).
  bool stlb = true;
};

/// Result of an access() call (MMU emulation).
struct AccessResult {
  std::uint64_t pages = 0;
  std::uint64_t minor_faults = 0;      ///< first-touch allocations
  std::uint64_t nexttouch_migrations = 0;
  std::uint64_t nexttouch_hits_local = 0;  ///< NT-marked but already local
  std::uint64_t sigsegv_delivered = 0;
};

/// Machine-wide counters (diagnostics, tests, numa_maps-style reports).
struct KernelStats {
  std::uint64_t minor_faults = 0;
  std::uint64_t protection_faults = 0;
  std::uint64_t nexttouch_faults = 0;
  std::uint64_t pages_migrated_move = 0;
  std::uint64_t pages_migrated_process = 0;
  std::uint64_t pages_migrated_nexttouch = 0;
  std::uint64_t tlb_shootdowns = 0;
  std::uint64_t signals_delivered = 0;
  std::uint64_t replica_pages = 0;
  std::uint64_t replica_collapses = 0;
  // Degraded-mode accounting (memory pressure / fault injection):
  std::uint64_t migrations_failed = 0;   ///< aborted + rolled back migrations
  std::uint64_t migration_retries = 0;   ///< transient copy failures retried
  std::uint64_t nexttouch_degraded = 0;  ///< NT faults resolved without moving
  std::uint64_t shootdown_retries = 0;   ///< lost + re-sent shootdown IPIs
  std::uint64_t signals_delayed = 0;     ///< SIGSEGV deliveries delayed
  std::uint64_t alloc_stalls = 0;        ///< first-touch reclaim stalls
  // kmigrated (async per-node migration daemons):
  std::uint64_t kmigrated_batches = 0;         ///< batches accepted by a daemon
  std::uint64_t kmigrated_pages = 0;           ///< pages migrated by daemons
  std::uint64_t kmigrated_batches_dropped = 0; ///< batches lost (fault injection)
  std::uint64_t kmigrated_pages_failed = 0;    ///< per-page ENOMEM inside a batch
  // Automatic NUMA balancing:
  std::uint64_t numab_scans = 0;          ///< scan-clock windows executed
  std::uint64_t numab_pages_scanned = 0;  ///< PTEs tagged for hint faults
  std::uint64_t numab_hint_faults = 0;    ///< NUMA hint faults taken
  std::uint64_t numab_hint_faults_local = 0;  ///< ... whose page was local
  std::uint64_t numab_promotions_deferred = 0; ///< remote faults awaiting 2nd ref
  std::uint64_t numab_pages_promoted = 0; ///< pages handed to kmigrated
  std::uint64_t numab_task_migrations = 0;  ///< balancer core moves applied
  std::uint64_t numab_task_swaps = 0;       ///< interchange pair swaps chosen
  // Transactional migration (kern/txn_migrate):
  std::uint64_t txn_commits = 0;        ///< pages committed by atomic flip
  std::uint64_t txn_dirty_retries = 0;  ///< dirty hits re-copied with backoff
  std::uint64_t txn_degraded = 0;       ///< fell back to stop-and-copy / deferred
  std::uint64_t txn_aborted = 0;        ///< retry budget exhausted / permanent fault
  // Memory tiering (kern/tiers):
  std::uint64_t tier_promotions = 0;    ///< pages moved up-tier via numab/kmigrated
  std::uint64_t tier_demotions = 0;     ///< pages moved down-tier (daemon or direct)
  std::uint64_t tier_demote_passes = 0; ///< watermark/direct demotion walks run
  // Soft-TLB access fast path (kern/stlb.hpp). Host-side instrumentation:
  // hit/miss ratios never influence simulated behaviour.
  std::uint64_t stlb_hits = 0;           ///< accesses served without a PTE walk
  std::uint64_t stlb_misses = 0;         ///< lookups that fell to the slow walk
  std::uint64_t stlb_invalidations = 0;  ///< mapping_gen bumps (all processes)
  /// Async kmigrated batches still in flight when the kernel was destroyed;
  /// accounted (never silently dropped) so an attached metrics registry
  /// keeps the evidence across kernel generations.
  std::uint64_t kmigrated_dropped_at_teardown = 0;
};

class Kernel {
 public:
  /// The one construction path: every knob comes in through the config, of
  /// which the kernel keeps its own copy (including the topology).
  explicit Kernel(KernelConfig cfg);
  /// Detaches any metrics registry (retiring bound counters so an attached
  /// registry keeps accumulating across kernel generations). Not movable:
  /// the registry and sinks hold pointers into this object.
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const KernelConfig& config() const { return cfg_; }
  const topo::Topology& topo() const { return topo_; }
  const CostModel& cost() const { return cost_; }
  CostModel& cost_mutable() { return cost_; }
  HwState& hw() { return hw_; }
  mem::PhysMem& phys() { return phys_; }
  const mem::PhysMem& phys() const { return phys_; }
  const KernelStats& stats() const { return kstats_; }
  LockModel lock_model() const { return cfg_.lock_model; }
  MigrationMode migration_mode() const { return cfg_.migration_mode; }

  /// Selects which move_pages implementation sys_move_pages uses.
  void set_move_pages_impl(MovePagesImpl impl) { move_impl_ = impl; }
  MovePagesImpl move_pages_impl() const { return move_impl_; }

  /// Extension toggle: replicate read-only pages on remote read faults.
  void set_replication_enabled(bool on) { replication_ = on; }
  bool replication_enabled() const { return replication_; }

  // --- observability ----------------------------------------------------------
  /// Subscribe a tracepoint sink: every kernel tracepoint (instant events
  /// and duration spans) fans out to each attached sink, stamped with the
  /// emitting thread's simulated clock. Sinks are not owned. With no sinks
  /// attached the tracepoints reduce to one empty-vector check — no
  /// simulated cost, no randomness, byte-identical timing.
  void add_trace_sink(obs::TraceSink* sink);
  void remove_trace_sink(obs::TraceSink* sink);
  bool tracing() const { return !sinks_.empty(); }

  /// Legacy convenience: attach/detach an EventLog (nullptr = off; not
  /// owned). The log is an obs::TraceSink; this manages its subscription.
  void set_event_log(EventLog* log);
  EventLog* event_log() { return elog_; }

  /// Attach/detach a metrics registry (nullptr = off; not owned). The
  /// kernel binds every KernelStats field as a "kern.*" counter, per-node
  /// used-frame gauges as "mem.used_frames.nodeN", and feeds latency
  /// histograms: kern.fault_service_ns, kern.migrate_page_ns,
  /// kern.lock_wait_ns, kern.shootdown_rounds. Detaching (or destroying the
  /// kernel) retires the bound counters into the registry so totals survive
  /// the kernel — which means an attached registry MUST outlive the kernel
  /// (or be detached first). Recording is host-side only: simulated timing
  /// is unaffected.
  void set_metrics(obs::Registry* reg);
  obs::Registry* metrics() { return metrics_; }

  /// App-level tracepoints for the runtime and user code: an instant marker
  /// or a duration span [begin, t.clock] in the calling thread's timeline.
  /// No-ops (beyond one branch) when no sink is attached.
  void emit_instant(const ThreadCtx& t, std::string_view name,
                    std::string_view cat = "app");
  void emit_span(const ThreadCtx& t, std::string_view name, sim::Time begin,
                 std::string_view cat = "app");

  /// Attach/detach a fault injector (nullptr = off; not owned). Node caps in
  /// the injector's plan are applied to the frame allocator immediately;
  /// detaching restores the original capacities. With no injector the
  /// kernel draws no randomness and charges baseline costs exactly.
  void set_fault_injector(FaultInjector* inj);
  FaultInjector* fault_injector() { return injector_; }

  // --- process management ----------------------------------------------------
  Pid create_process(std::string name = {});
  vm::AddressSpace& address_space(Pid pid) { return proc(pid).as; }
  void set_sigsegv_handler(Pid pid, SegvHandler handler);
  void set_task_policy(Pid pid, const vm::MemPolicy& pol);

  // --- memory-management system calls -----------------------------------------
  /// mmap(MAP_PRIVATE|MAP_ANONYMOUS): lazily populated per `policy`.
  /// `huge` = MAP_HUGETLB: 2 MiB pages, populated block-wise; migration of
  /// huge pages is unsupported (as in Linux at the paper's time).
  vm::Vaddr sys_mmap(ThreadCtx& t, std::uint64_t len, vm::Prot prot,
                     const vm::MemPolicy& policy = {}, std::string name = {},
                     bool huge = false);
  SyscallResult sys_munmap(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len);
  SyscallResult sys_mprotect(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                             vm::Prot prot,
                             sim::CostKind attribute = sim::CostKind::kMprotectMark);
  SyscallResult sys_madvise(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                            Advice advice);
  /// mbind(2). With `move_existing` (MPOL_MF_MOVE), pages already present
  /// that violate the new policy are migrated to comply.
  SyscallResult sys_mbind(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                          const vm::MemPolicy& policy, bool move_existing = false);
  SyscallResult sys_set_mempolicy(ThreadCtx& t, const vm::MemPolicy& policy);
  SyscallResult sys_get_mempolicy(ThreadCtx& t, vm::MemPolicy& out);
  SyscallResult sys_getcpu(ThreadCtx& t, topo::CoreId* core, topo::NodeId* node);

  /// move_pages(2). `nodes` empty => query-only mode (status = current node).
  /// Returns ok() or error(); per-page results land in `status` (node id or
  /// negative errno per page).
  SyscallResult sys_move_pages(ThreadCtx& t, std::span<const vm::Vaddr> pages,
                               std::span<const topo::NodeId> nodes,
                               std::span<int> status);

  /// migrate_pages(2): move every page of `target` on a node in `from` to the
  /// corresponding slot in `to`. count() = pages migrated, or error().
  SyscallResult sys_migrate_pages(ThreadCtx& t, Pid target, topo::NodeMask from,
                                  topo::NodeMask to);

  /// A contiguous migration request for the range-based interface.
  struct MoveRange {
    vm::Vaddr addr = 0;
    std::uint64_t len = 0;
    topo::NodeId node = 0;
  };

  /// The paper's proposed interface improvement (Sec. 6: "improving the
  /// LINUX migration system call interface to reduce the move_pages
  /// overhead"): one call migrates whole ranges. The kernel walks pages
  /// sequentially (no per-page virtual-address lookup, no status array),
  /// so the per-page control cost drops and the base cost amortizes over
  /// all ranges. Returns count() = pages migrated, or error().
  SyscallResult sys_move_pages_ranged(ThreadCtx& t,
                                      std::span<const MoveRange> ranges);

  /// Asynchronous variant of the ranged interface: each range is validated
  /// and handed to the destination node's kmigrated daemon as one batch;
  /// the caller pays only the submission cost and returns immediately while
  /// the copies complete on the daemon's timeline. count() = pages queued
  /// (dropped/failed pages surface through kern.kmigrated.* counters and
  /// tracepoints, as with a real async engine). Invalid ranges fail the
  /// whole call up front, like sys_move_pages_ranged.
  SyscallResult sys_move_pages_async(ThreadCtx& t,
                                     std::span<const MoveRange> ranges);

  /// Block until every kmigrated daemon has drained: the calling thread's
  /// clock advances to the last batch completion (the wait is attributed to
  /// kLockWait, as any other queueing delay).
  void kmigrated_drain(ThreadCtx& t);

  const Kmigrated& kmigrated() const { return kmigrated_; }

  // --- batched lower-level entry points (used by the runtime so concurrent
  // --- threads interleave at realistic lock granularity) ----------------------
  /// Charge the fixed move_pages entry cost (mmap_sem etc.). Call once.
  void move_pages_enter(ThreadCtx& t, std::size_t total_pages);
  /// Process up to `chunk.size()` pages. Same per-page semantics as the
  /// full syscall. `request_total` = full request size (the unpatched
  /// implementation's scan cost depends on it).
  void move_pages_chunk(ThreadCtx& t, std::span<const vm::Vaddr> chunk,
                        std::span<const topo::NodeId> nodes, std::span<int> status,
                        std::size_t request_total);

  // --- MMU emulation ------------------------------------------------------------
  /// Touch [addr, addr+len): page-faults fire exactly as on real hardware
  /// (first-touch placement, next-touch migration, SIGSEGV delivery).
  /// Memory traffic for already-mapped pages is charged at `stream_rate`
  /// bytes/us if nonzero (0 = only fault handling, no data-plane charge —
  /// used when a cache model above accounts for the traffic itself).
  AccessResult access(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                      vm::Prot want, double stream_rate_bytes_per_us);

  /// Strided touch for blocked matrix kernels: `rows` segments of
  /// `row_bytes` at base, base+stride, ... Faults are handled per page
  /// exactly as in access(); the data-plane traffic is aggregated per source
  /// node and charged in bulk, scaled by `traffic_scale` (a cache model
  /// above uses >1 for out-of-cache traffic amplification). One engine
  /// event regardless of size, so million-page tiles stay simulable.
  /// When `bytes_by_node` is non-null it is resized to num_nodes and filled
  /// with the touched bytes per holding node; pass stream_rate 0 in that
  /// case and charge the traffic yourself (e.g. in slices, via
  /// charge_stream) so concurrent threads interleave fairly.
  AccessResult access_strided(ThreadCtx& t, vm::Vaddr base, std::uint64_t rows,
                              std::uint64_t row_bytes, std::uint64_t stride_bytes,
                              vm::Prot want, double stream_rate_bytes_per_us,
                              double traffic_scale = 1.0,
                              std::vector<std::uint64_t>* bytes_by_node = nullptr);

  /// Charge one data stream of `bytes` between the calling core and
  /// `mem_node` at `rate` bytes/us (plus one access latency), advancing the
  /// thread clock. Building block for layered traffic models. `dir` matters
  /// only on tiers with asymmetric write bandwidth (e.g. kFar).
  void charge_stream(ThreadCtx& t, topo::NodeId mem_node, std::uint64_t bytes,
                     double rate, MemDir dir = MemDir::kRead);

  /// Convenience: access + actually move bytes when frames are materialized.
  int read_bytes(ThreadCtx& t, vm::Vaddr addr, std::span<std::byte> out);
  int write_bytes(ThreadCtx& t, vm::Vaddr addr, std::span<const std::byte> in);

  /// User-space memcpy between two mapped ranges of the same process:
  /// faults pages in, charges the SSE copy rate, copies real bytes when
  /// materialized. (The Fig. 4 "memcpy" baseline.)
  int user_memcpy(ThreadCtx& t, vm::Vaddr dst, vm::Vaddr src, std::uint64_t len);

  /// Timing-free teardown of a mapping — the process-exit path RAII handles
  /// use from destructors, where no ThreadCtx exists to charge. Frees
  /// frames and replicas and drops the VMAs without touching any clock,
  /// stat, or tracepoint. Unmapped/partial ranges are fine (idempotent).
  void teardown_unmap(Pid pid, vm::Vaddr addr, std::uint64_t len);

  // --- timing-free inspection (tests, verification harnesses) -------------------
  /// Node currently holding the page, or kInvalidNode if not present.
  topo::NodeId page_node(Pid pid, vm::Vaddr addr) const;
  /// Copy bytes out without any timing or fault side effects. False when the
  /// range is not fully present or not materialized.
  bool peek(Pid pid, vm::Vaddr addr, std::span<std::byte> out) const;
  bool poke(Pid pid, vm::Vaddr addr, std::span<const std::byte> in);
  /// Total replica pages currently alive for `pid` (extension feature).
  std::uint64_t replica_pages(Pid pid) const { return proc(pid).replicas.total_replicas(); }

  /// Count of present pages in range whose frame lives on `node`.
  std::uint64_t pages_on_node(Pid pid, vm::Vaddr addr, std::uint64_t len,
                              topo::NodeId node) const;
  /// numa_maps-style text report for a process.
  std::string numa_maps(Pid pid) const;

  /// Consistency audit for tests and fuzzing: every present PTE references a
  /// live frame, every replica frame is live and distinct from its home,
  /// and the per-node used-frame counts equal what the page tables +
  /// replica tables reference. Throws std::logic_error on violation.
  void validate(Pid pid) const;

  /// Soft-TLB audit: additionally re-resolves every *current-generation*
  /// descriptor in `t`'s software TLB against the page table — each covered
  /// page must be present, on the descriptor's node, flag-quiet, and carry
  /// the hardware permissions (and dirty bit, for write descriptors) the
  /// fast path assumes. Stale-generation entries are skipped (that is the
  /// invalidation design working). Throws std::logic_error on violation: a
  /// forgotten mapping_gen bump site fails loudly here.
  void validate(const ThreadCtx& t) const;

  /// Current mapping generation of `pid` (soft-TLB invalidation epoch).
  /// Exposed for tests and diagnostics; bumps monotonically.
  std::uint64_t mapping_generation(Pid pid) const { return proc(pid).mapping_gen; }

  /// Per-node used/free frame summary (numactl --hardware style).
  std::string meminfo() const;

  /// Percent of the fast tier's frame capacity currently in use (rounded
  /// down); 0 when the topology has no kFast capacity. Exported as the
  /// kern.tier.fast_occupancy gauge.
  std::int64_t fast_occupancy_pct() const;

  // --- automatic NUMA balancing (consumed by sched::Balancer) -------------------
  /// Decayed per-node hint-fault scores of (pid, tid) as of `now` (empty if
  /// the task has taken no hint fault yet). Applies the lazy decay; host-side
  /// only, charges nothing.
  std::vector<double> numab_task_faults(Pid pid, ThreadId tid, sim::Time now);
  /// The node holding the largest decayed fault score of (pid, tid),
  /// provided it owns at least `hot_threshold` of the total mass;
  /// topo::kInvalidNode otherwise.
  topo::NodeId numab_preferred_node(Pid pid, ThreadId tid, sim::Time now);
  /// Balancer callbacks: account one applied task move / one chosen
  /// interchange pair (counters + kNumaTaskMigrate tracepoint).
  void numab_note_task_migration(const ThreadCtx& t, topo::CoreId from,
                                 topo::CoreId to);
  void numab_note_task_swap();

 private:
  friend class TxnMigrator;  // the state machine charges/traces through us

  struct Process {
    Pid pid = 0;
    std::string name;
    vm::AddressSpace as;
    vm::MemPolicy task_policy;  // set_mempolicy default for new VMAs
    SegvHandler segv;
    OwnedTimeline mmap_lock;
    OwnedTimeline pt_lock;
    sim::Timeline migration_pipeline;
    // LockModel::kRange state: the whole-space rwsem (shared by migration
    // paths, exclusive for mmap surgery) and the per-VMA range locks, keyed
    // by Vma::lock_id so VMA splits/merges don't orphan lock state.
    sim::SharedTimeline mmap_rw;
    std::unordered_map<std::uint64_t, RangeLock> vma_locks;
    ReplicaTable replicas;
    NumabState numab;
    // Per-chunk per-node present-page counts; see placement.hpp. Every site
    // that maps, remaps, or unmaps a home frame keeps it current, and
    // validate() audits it against the page table.
    PlacementCounts placement;
    // Soft-TLB invalidation epoch (kern/stlb.hpp): bumped by
    // stlb_invalidate() at every site that can narrow what a cached extent
    // descriptor promises. Descriptors stamped with an older generation
    // simply miss; validate(const ThreadCtx&) audits the current ones.
    std::uint64_t mapping_gen = 0;
  };

  Process& proc(Pid pid);
  const Process& proc(Pid pid) const;

  /// Accumulates page-copy traffic per (from, to) node pair so a batch of
  /// migrations reserves the copy hardware once, not once per page — the
  /// same coalescing the stream charging does. Keeps concurrent migrating
  /// threads overlapping at realistic granularity.
  struct CopyBatch {
    struct Run {
      topo::NodeId from;
      topo::NodeId to;
      std::uint64_t bytes;
    };
    std::vector<Run> runs;
    void add(topo::NodeId from, topo::NodeId to, std::uint64_t bytes) {
      if (!runs.empty() && runs.back().from == from && runs.back().to == to) {
        runs.back().bytes += bytes;
      } else {
        runs.push_back({from, to, bytes});
      }
    }
  };

  /// Charge the accumulated copies of a batch (kind = copy attribution).
  void flush_copy_batch(ThreadCtx& t, CopyBatch& batch, sim::CostKind kind);

  /// Page-fault entry point. Returns true if the access should be retried.
  /// When `copies` is non-null, migration copy traffic is deferred into it.
  /// (Instrumented wrapper around do_handle_fault: "fault" span +
  /// kern.fault_service_ns histogram.)
  bool handle_fault(ThreadCtx& t, Process& p, vm::Vaddr addr, vm::Prot want,
                    AccessResult& res, CopyBatch* copies);
  bool do_handle_fault(ThreadCtx& t, Process& p, vm::Vaddr addr, vm::Prot want,
                       AccessResult& res, CopyBatch* copies);

  /// For a read of a kReplica page: the node whose copy serves `reader`,
  /// creating the reader-local replica (charged) on first use.
  topo::NodeId resolve_replica(ThreadCtx& t, Process& p, vm::Pte& pte, vm::Vpn vpn,
                               topo::NodeId reader, CopyBatch* copies);

  /// Write to a replicated page: free every replica, keep one frame on the
  /// writer's node, restore write permission.
  void collapse_replicas(ThreadCtx& t, Process& p, vm::Pte& pte, vm::Vpn vpn,
                         topo::NodeId writer);

  /// Allocate + map a never-touched page per policy (first touch).
  void populate_page(ThreadCtx& t, Process& p, const vm::Vma& vma, vm::Vpn vpn,
                     vm::Pte& pte);

  /// Huge mapping fault: populate the whole 2 MiB block around `vpn` with
  /// one fault (one TLB entry, one zero-fill of 2 MiB).
  void populate_huge_block(ThreadCtx& t, Process& p, const vm::Vma& vma,
                           vm::Vpn vpn);

  /// Outcome of one page migration through the isolate→alloc→copy→remap
  /// pipeline. Anything but kOk means the pipeline rolled back: the original
  /// frame is still mapped and valid, nothing leaked.
  enum class MigrateResult : std::uint8_t {
    kOk,
    kNoMem,     ///< destination-node allocation failed (per-page -ENOMEM)
    kCopyFail,  ///< page copy failed permanently / retries exhausted (-EAGAIN)
  };

  /// Resolved schedule of one page copy under the attached injector:
  /// `retries` failed attempts (each re-charged and backed off), then
  /// success iff `ok`. Without an injector: {0, true}, no randomness drawn.
  struct CopyOutcome {
    unsigned retries = 0;
    bool ok = true;
  };
  CopyOutcome copy_outcome();

  /// Allocation of a migration destination frame on exactly `node` — strict
  /// __GFP_THISNODE semantics, honoring the min watermark, consulting the
  /// injector. kInvalidFrame = the caller must degrade (per-page ENOMEM).
  mem::FrameId alloc_migration_frame(topo::NodeId node);

  /// Allocation backing a user fault: preferred-node with zonelist fallback;
  /// injected pressure charges a reclaim stall, and the reserve pool is the
  /// last resort (user faults reclaim deeper than migrations, so touch never
  /// fails while any frame exists). kInvalidFrame = machine truly full.
  mem::FrameId alloc_user_frame(ThreadCtx& t, vm::Vpn vpn, topo::NodeId target);

  // --- memory tiering internals (src/kern/tiers.cpp) ----------------------------
  /// Node `n` is at/over its tier high watermark (tiering admission check).
  bool tier_pressured(topo::NodeId n) const;
  /// Best faster-tier destination for a hint-confirmed hot page on
  /// `page_node` accessed from `local`: strictly-faster tiers only, nearest
  /// to `local` first. Returns `page_node` when no faster tier can take it
  /// (promotion is skipped, plain numab targeting applies).
  topo::NodeId tier_promote_target(topo::NodeId page_node, topo::NodeId local) const;
  /// Nearest strictly-slower-tier node with headroom to absorb demotions
  /// from `from`; kInvalidNode when no lower tier has room.
  topo::NodeId tier_demote_target(topo::NodeId from) const;
  /// Demote up to `want_pages` of `p`'s pages off `node` down-tier via
  /// kmigrated. `require_idle` restricts victims to scan-confirmed cold
  /// pages (numa_idle >= cfg threshold); the direct-reclaim path passes
  /// false to take any eligible page. Returns pages submitted.
  std::uint64_t tier_demote(ThreadCtx& t, Process& p, topo::NodeId node,
                            std::uint64_t want_pages, bool require_idle,
                            sim::CostKind kind);
  /// Scan-clock hook: walk fast nodes over their high watermark and kick a
  /// cold-page demotion pass for each (kswapd-style, but driven off the
  /// numab scan window so the model stays single-clocked).
  void tier_demote_check(ThreadCtx& t, Process& p);
  /// MPOL_PREFERRED_MANY placement: best node of `mask` ranked by (tier,
  /// distance from `local`, id) that still has admission headroom; falls
  /// back to the best-ranked member when all are pressured.
  topo::NodeId preferred_many_target(topo::NodeMask mask, topo::NodeId local) const;

  /// Cost of one all-core TLB shootdown, re-sending the IPI when the
  /// injector drops it. Also bumps the shootdown stats.
  sim::Time shootdown_cost(const ThreadCtx& t);

  /// Migrate one present page (`vpn`, for tracing) to `target`; frees the
  /// old frame. Charges `control_kind`; the copy goes to `copies` if given,
  /// else is charged inline as `copy_kind`. On failure the original frame
  /// stays mapped.
  /// (Instrumented wrapper around do_migrate_page: "migrate-page" span +
  /// kern.migrate_page_ns histogram.)
  MigrateResult migrate_page(ThreadCtx& t, Process& p, vm::Pte& pte, vm::Vpn vpn,
                             topo::NodeId target, sim::Time control_cost,
                             sim::CostKind control_kind, sim::CostKind copy_kind,
                             CopyBatch* copies);
  MigrateResult do_migrate_page(ThreadCtx& t, Process& p, vm::Pte& pte,
                                vm::Vpn vpn, topo::NodeId target,
                                sim::Time control_cost, sim::CostKind control_kind,
                                sim::CostKind copy_kind, CopyBatch* copies);

  /// Terminal outcome of one transactional migration attempt. kDegraded
  /// means the shadow frame was released and the page is untouched: the
  /// caller must stop-and-copy it, or defer it (numab promotion).
  enum class TxnResult : std::uint8_t { kCommitted, kDegraded };

  /// Drive one TxnMigrator to a terminal state, wrapped in a "txn-migrate"
  /// span. Defined in txn_migrate.cpp.
  TxnResult do_migrate_page_txn(ThreadCtx& t, Process& p, vm::Vpn vpn,
                                topo::NodeId target, sim::CostKind control_kind,
                                sim::CostKind copy_kind);

  /// Should this page go through the transactional engine? (Mode selected
  /// AND the page is an ordinary mapped base page — replicas and huge
  /// blocks keep their existing paths.)
  bool txn_eligible(const vm::Pte& pte) const {
    return cfg_.migration_mode == MigrationMode::kTransactional &&
           !(pte.flags & (vm::Pte::kReplica | vm::Pte::kHuge));
  }

  /// Serialized per-page share of a migration batch under the current
  /// migration mode: transactional batches only contend on their commit
  /// flips (copies run outside the critical section), so the stop-and-copy
  /// constants are replaced by the far smaller txn commit shares.
  sim::Time migrate_serial_per_page(sim::Time stop_and_copy_share) const {
    if (cfg_.migration_mode != MigrationMode::kTransactional)
      return stop_and_copy_share;
    return cfg_.lock_model == LockModel::kRange
               ? cost_.txn_range_commit_serial_per_page
               : cost_.txn_commit_serial_per_page;
  }

  // Un-instrumented syscall bodies; the public entry points wrap them in a
  // span so early returns don't escape the timing.
  SyscallResult do_madvise(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                           Advice advice);
  SyscallResult do_mbind(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                         const vm::MemPolicy& policy, bool move_existing);
  SyscallResult do_mprotect(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                            vm::Prot prot, sim::CostKind attribute);
  SyscallResult do_move_pages_ranged(ThreadCtx& t,
                                     std::span<const MoveRange> ranges);
  SyscallResult do_move_pages_async(ThreadCtx& t,
                                    std::span<const MoveRange> ranges);
  SyscallResult do_migrate_pages(ThreadCtx& t, Pid target, topo::NodeMask from,
                                 topo::NodeMask to);

  /// Serialize a batch of `pages` migrations on the process migration
  /// pipeline (the cross-thread critical sections): reserves
  /// pages*per_page starting at `entry` and extends the thread clock to the
  /// grant's end if the pipeline is backed up. A single migrating thread is
  /// never extended.
  void serialize_migration(ThreadCtx& t, Process& p, sim::Time entry,
                           std::uint64_t pages, sim::Time per_page) {
    // Inline zero-page early-out: most accesses migrate nothing, and this
    // runs once per access/syscall on the hot path.
    if (pages == 0) return;
    do_serialize_migration(t, p, entry, pages, per_page);
  }
  void do_serialize_migration(ThreadCtx& t, Process& p, sim::Time entry,
                              std::uint64_t pages, sim::Time per_page);

  /// kRange replacement for serialize_migration: reserves an exclusive hold
  /// on the range locks covering [lo, hi) from `entry` for the pages'
  /// serialized work plus ONE coalesced TLB-shootdown round (instead of the
  /// per-page shootdowns baked into the coarse constants). Disjoint ranges
  /// never queue on each other; overlapping ones pay a lock bounce.
  void serialize_migration_ranged(ThreadCtx& t, Process& p, vm::Vaddr lo,
                                  vm::Vaddr hi, sim::Time entry,
                                  std::uint64_t pages, sim::Time per_page) {
    if (pages == 0) return;
    do_serialize_migration_ranged(t, p, lo, hi, entry, pages, per_page);
  }
  void do_serialize_migration_ranged(ThreadCtx& t, Process& p, vm::Vaddr lo,
                                     vm::Vaddr hi, sim::Time entry,
                                     std::uint64_t pages, sim::Time per_page);

  /// Reserve the range locks of every VMA overlapping [lo, hi) for `hold`
  /// starting no earlier than `start`. Returns the combined slot (start =
  /// earliest grant, finish = latest). Does not touch the thread clock.
  sim::Slot range_lock_reserve(ThreadCtx& t, Process& p, vm::Vaddr lo,
                               vm::Vaddr hi, sim::Time start, sim::Time hold,
                               bool exclusive);

  /// One coalesced shootdown round for a migrated run of `pages`: bumps the
  /// shootdown stats/histogram and returns its cost (the caller folds it
  /// into a serialized hold).
  sim::Time shootdown_round(std::uint64_t pages);

  /// kmigrated batch execution: validate-free walk of one range, performing
  /// the page moves with all time charged to `node`'s daemon timeline
  /// starting at `submit`. Returns pages queued.
  /// `defer_on_degrade`: in transactional mode, a page whose transaction
  /// degrades is skipped (to be retried by a later pass — numab promotion)
  /// instead of stop-and-copied on the daemon's timeline.
  std::uint64_t submit_kmigrated_batch(ThreadCtx& t, Process& p, vm::Vaddr addr,
                                       std::uint64_t len, topo::NodeId node,
                                       sim::Time submit,
                                       bool defer_on_degrade = false);

  /// Next-touch migrate-ahead (cfg_.nt_async_window > 0): after a next-touch
  /// fault migrates one page synchronously, hand up to `window` further
  /// contiguous NT-marked pages of the same VMA to `node`'s kmigrated daemon
  /// so they arrive before being touched.
  void nt_migrate_ahead(ThreadCtx& t, Process& p, const vm::Vma& vma,
                        vm::Vpn fault_vpn, topo::NodeId node);

  // --- automatic NUMA balancing internals (src/kern/numab.cpp) ------------------
  /// Scan clock, checked at the top of access()/access_strided() — the
  /// simulated analogue of task_numa_work running from task_work. One branch
  /// when balancing is off.
  void numab_tick(ThreadCtx& t, Process& p);
  /// One scan window: tag up to scan_size_pages present PTEs (sliding
  /// cursor over the VMAs) so their next access hint-faults.
  void numab_scan(ThreadCtx& t, Process& p);
  /// NUMA hint fault: record fault stats, rearm the PTE, and queue the page
  /// for promotion when the two-reference check confirms it.
  void numab_hint_fault(ThreadCtx& t, Process& p, const vm::Vma& vma,
                        vm::Pte& pte, vm::Vpn vpn);
  /// Hand the promotions confirmed during the current access to the
  /// kmigrated daemons, coalesced into contiguous same-target batches.
  void numab_flush_promotions(ThreadCtx& t, Process& p);

  void deliver_sigsegv(ThreadCtx& t, Process& p, const SigInfo& info,
                       AccessResult& res);

  void charge(ThreadCtx& t, sim::Time dur, sim::CostKind kind) {
    t.clock += dur;
    t.stats.add(kind, dur);
  }

  /// Soft-TLB invalidation: retire every cached extent descriptor of `p` by
  /// advancing its mapping generation. Called from every site that narrows a
  /// mapping (unmap, protection/flag surgery, migration commits, numab
  /// tagging, txn arming, policy changes). Over-calling is always safe —
  /// the cost is extra stlb misses, never wrong simulation.
  void stlb_invalidate(Process& p) {
    ++p.mapping_gen;
    ++kstats_.stlb_invalidations;
  }

  /// mm tracepoint: an instant event named after the legacy EventType. The
  /// hot-path cost with no sink attached is this one branch.
  void trace(const ThreadCtx& t, EventType type, vm::Vpn vpn, std::uint64_t pages,
             topo::NodeId from = topo::kInvalidNode,
             topo::NodeId to = topo::kInvalidNode) {
    if (!sinks_.empty()) trace_slow(t, type, vpn, pages, from, to);
  }
  void trace_slow(const ThreadCtx& t, EventType type, vm::Vpn vpn,
                  std::uint64_t pages, topo::NodeId from, topo::NodeId to);

  /// Fan an event out to every sink.
  void emit(const obs::TraceEvent& e) {
    for (obs::TraceSink* s : sinks_) s->record(e);
  }

  /// Record a lock-wait sample into kern.lock_wait_ns (host-side only).
  void note_lock_wait(sim::Time wait) {
    if (h_lock_wait_ != nullptr && wait > 0) h_lock_wait_->record(wait);
  }

  /// Reserve the process page-table lock; charges wait as kLockWait and the
  /// hold as `kind`.
  void with_pt_lock(ThreadCtx& t, Process& p, sim::Time hold, sim::CostKind kind);

  KernelConfig cfg_;  // owns the topology; declared first so hw_/phys_ may
                      // reference into it
  const topo::Topology& topo_{cfg_.topology};
  CostModel& cost_{cfg_.cost};
  HwState hw_;
  mem::PhysMem phys_;
  Kmigrated kmigrated_;
  MovePagesImpl move_impl_ = MovePagesImpl::kLinear;
  bool replication_ = false;
  EventLog* elog_ = nullptr;
  std::vector<obs::TraceSink*> sinks_;
  obs::Registry* metrics_ = nullptr;
  // Cached histogram slots of the attached registry (null = detached).
  obs::Histogram* h_fault_ = nullptr;
  obs::Histogram* h_migrate_page_ = nullptr;
  obs::Histogram* h_lock_wait_ = nullptr;
  obs::Histogram* h_shootdown_rounds_ = nullptr;
  obs::Histogram* h_kmigrated_batch_ = nullptr;
  obs::Histogram* h_numab_scan_ = nullptr;
  obs::Histogram* h_txn_retries_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::unique_ptr<FaultInjector> owned_injector_;  // from cfg_.fault_plan
  std::vector<std::unique_ptr<Process>> procs_;
  KernelStats kstats_;
  // Latest simulated instant any thread has shown the kernel; the
  // queue-depth gauge evaluates kmigrated in-flight batches against it.
  sim::Time kmig_now_ = 0;
};

}  // namespace numasim::kern
