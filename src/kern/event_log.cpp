#include "kern/event_log.hpp"

#include <sstream>

namespace numasim::kern {

std::string_view event_type_name(EventType t) {
  switch (t) {
    case EventType::kMinorFault: return "minor-fault";
    case EventType::kNextTouchMark: return "nt-mark";
    case EventType::kNextTouchMigrate: return "nt-migrate";
    case EventType::kMovePages: return "move_pages";
    case EventType::kMigrateProcess: return "migrate_pages";
    case EventType::kSigsegv: return "sigsegv";
    case EventType::kReplicaCreate: return "replica-create";
    case EventType::kReplicaCollapse: return "replica-collapse";
    case EventType::kMigrateRetry: return "migrate-retry";
    case EventType::kMigrateFail: return "migrate-fail";
    case EventType::kNextTouchDegraded: return "nt-degraded";
    case EventType::kShootdownRetry: return "shootdown-retry";
    case EventType::kSignalDelay: return "signal-delay";
    case EventType::kAllocStall: return "alloc-stall";
    case EventType::kKmigratedSubmit: return "kmigrated-submit";
    case EventType::kKmigratedComplete: return "kmigrated-complete";
    case EventType::kKmigratedDrop: return "kmigrated-drop";
    case EventType::kNumaScan: return "numab-scan";
    case EventType::kNumaHintFault: return "numab-hint-fault";
    case EventType::kNumaPromote: return "numab-promote";
    case EventType::kNumaTaskMigrate: return "numab-task-migrate";
    case EventType::kTxnCommit: return "txn-commit";
    case EventType::kTxnDirtyRetry: return "txn-dirty-retry";
    case EventType::kTxnDegraded: return "txn-degraded";
    case EventType::kTxnAbort: return "txn-abort";
    case EventType::kTierPromote: return "tier-promote";
    case EventType::kTierDemote: return "tier-demote";
  }
  return "?";
}

void EventLog::record(const obs::TraceEvent& e) {
  if (e.kind != obs::TraceEvent::Kind::kInstant) return;
  static constexpr EventType kAll[] = {
      EventType::kMinorFault,        EventType::kNextTouchMark,
      EventType::kNextTouchMigrate,  EventType::kMovePages,
      EventType::kMigrateProcess,    EventType::kSigsegv,
      EventType::kReplicaCreate,     EventType::kReplicaCollapse,
      EventType::kMigrateRetry,      EventType::kMigrateFail,
      EventType::kNextTouchDegraded, EventType::kShootdownRetry,
      EventType::kSignalDelay,       EventType::kAllocStall,
      EventType::kKmigratedSubmit,   EventType::kKmigratedComplete,
      EventType::kKmigratedDrop,     EventType::kNumaScan,
      EventType::kNumaHintFault,     EventType::kNumaPromote,
      EventType::kNumaTaskMigrate,   EventType::kTxnCommit,
      EventType::kTxnDirtyRetry,     EventType::kTxnDegraded,
      EventType::kTxnAbort,          EventType::kTierPromote,
      EventType::kTierDemote,
  };
  for (EventType t : kAll) {
    if (event_type_name(t) != e.name) continue;
    Event ev;
    ev.when = e.ts;
    ev.tid = e.tid;
    ev.type = t;
    for (std::size_t i = 0; i < e.nargs; ++i) {
      const obs::TraceArg& a = e.args[i];
      if (a.key == "vpn") {
        ev.vpn = static_cast<vm::Vpn>(a.value);
      } else if (a.key == "pages") {
        ev.pages = static_cast<std::uint64_t>(a.value);
      } else if (a.key == "from") {
        ev.from = a.value < 0 ? topo::kInvalidNode
                              : static_cast<topo::NodeId>(a.value);
      } else if (a.key == "to") {
        ev.to = a.value < 0 ? topo::kInvalidNode
                            : static_cast<topo::NodeId>(a.value);
      }
    }
    record(ev);
    return;
  }
}

std::string EventLog::render(std::size_t limit) const {
  std::ostringstream os;
  const std::size_t n = events_.size();
  const std::size_t first = n > limit ? n - limit : 0;
  for (std::size_t i = first; i < n; ++i) {
    const Event& e = events_[i];
    os << sim::format_time(e.when) << "  tid" << e.tid << "  "
       << event_type_name(e.type) << "  vpn=0x" << std::hex << e.vpn << std::dec;
    if (e.pages > 1) os << " pages=" << e.pages;
    if (e.from != topo::kInvalidNode) os << " from=N" << e.from;
    if (e.to != topo::kInvalidNode) os << " to=N" << e.to;
    os << '\n';
  }
  if (dropped_ > 0) os << "(" << dropped_ << " older events dropped)\n";
  return os.str();
}

std::string EventLog::to_csv() const {
  std::ostringstream os;
  os << "time_ns,tid,type,vpn,pages,from,to\n";
  for (const Event& e : events_) {
    os << e.when << ',' << e.tid << ',' << event_type_name(e.type) << ',' << e.vpn
       << ',' << e.pages << ',';
    if (e.from != topo::kInvalidNode) os << e.from;
    os << ',';
    if (e.to != topo::kInvalidNode) os << e.to;
    os << '\n';
  }
  return os.str();
}

std::uint64_t EventLog::count(EventType t) const {
  std::uint64_t n = 0;
  for (const Event& e : events_)
    if (e.type == t) ++n;
  return n;
}

}  // namespace numasim::kern
