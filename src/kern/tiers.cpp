// Memory-tier placement: promotion targeting, watermark-driven demotion, and
// the MPOL_PREFERRED_MANY node ranking (the kernel half of the tiering
// subsystem; the knobs live in kern/tiers.hpp, the topology grammar in
// topo::Topology::from_spec).
//
// Both loops reuse the existing engines rather than inventing new ones:
// promotion rides the AutoNUMA hint-fault pipeline (numab.cpp picks the
// target via tier_promote_target), demotion hands coalesced runs to the
// kmigrated daemons with the configured migration mode. Ranking is always
// (tier, hop distance, node id) — deterministic, no randomness.
#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {

namespace {

/// Composite placement rank: faster tier first, then closer, then lower id.
struct TierRank {
  topo::MemTier tier;
  unsigned hops;
  topo::NodeId id;
  bool operator<(const TierRank& o) const {
    if (tier != o.tier) return tier < o.tier;
    if (hops != o.hops) return hops < o.hops;
    return id < o.id;
  }
};

}  // namespace

bool Kernel::tier_pressured(topo::NodeId n) const {
  const std::uint64_t cap = phys_.capacity_frames(n);
  if (cap == 0) return true;
  return static_cast<double>(phys_.used_frames(n)) >=
         cfg_.tiers.high_watermark_frac * static_cast<double>(cap);
}

topo::NodeId Kernel::tier_promote_target(topo::NodeId page_node,
                                         topo::NodeId local) const {
  const topo::MemTier pt = topo_.tier_of(page_node);
  topo::NodeId best = topo::kInvalidNode;
  TierRank best_rank{};
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (topo_.tier_of(n) >= pt) continue;  // strictly faster tiers only
    // Without demotion a full fast node cannot make room, so promoting into
    // it would just burn a per-page ENOMEM; with demotion on, the direct
    // demotion path evicts cold pages to admit the hot one.
    if (!cfg_.tiers.demotion && tier_pressured(n)) continue;
    const TierRank r{topo_.tier_of(n), topo_.hops(local, n), n};
    if (best == topo::kInvalidNode || r < best_rank) {
      best = n;
      best_rank = r;
    }
  }
  if (best != topo::kInvalidNode) return best;
  // No faster tier can take the page. Fall back to plain migrate-on-fault
  // toward the faulting core — unless that would move a hot page *down* a
  // tier, in which case it stays put.
  return topo_.tier_of(local) > pt ? page_node : local;
}

topo::NodeId Kernel::tier_demote_target(topo::NodeId from) const {
  const topo::MemTier ft = topo_.tier_of(from);
  topo::NodeId best = topo::kInvalidNode;
  TierRank best_rank{};
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (topo_.tier_of(n) <= ft) continue;  // strictly slower tiers only
    // Headroom check: demotions are migrations (__GFP_THISNODE, no reserve),
    // so a node at its min watermark cannot absorb them.
    if (phys_.free_frames(n) <= phys_.min_watermark(n)) continue;
    const TierRank r{topo_.tier_of(n), topo_.hops(from, n), n};
    if (best == topo::kInvalidNode || r < best_rank) {
      best = n;
      best_rank = r;
    }
  }
  return best;
}

std::uint64_t Kernel::tier_demote(ThreadCtx& t, Process& p, topo::NodeId node,
                                  std::uint64_t want_pages, bool require_idle,
                                  sim::CostKind kind) {
  if (!cfg_.tiers.enabled || !cfg_.tiers.demotion || want_pages == 0) return 0;
  const topo::NodeId target = tier_demote_target(node);
  if (target == topo::kInvalidNode) return 0;

  // Victim walk in VPN order (the demotion analogue of an inactive-list
  // scan): ordinary mapped base pages resident on `node`. The daemon pass
  // (`require_idle`) takes only scan-confirmed cold pages; the direct path
  // under allocation pressure takes anything eligible.
  std::vector<vm::Vpn> victims;
  p.as.for_each([&](const vm::Vma& vma) {
    if (vma.huge || victims.size() >= want_pages) return;
    auto victim_run = [&](vm::ConstPageRun run) {
      vm::Vpn vpn = run.first;
      for (const vm::Pte& pte : run.ptes) {
        const vm::Vpn v = vpn++;
        if (!pte.present()) continue;
        if (pte.flags & (vm::Pte::kHuge | vm::Pte::kReplica | vm::Pte::kTxn |
                         vm::Pte::kNextTouch))
          continue;
        if (phys_.node_of(pte.frame) != node) continue;
        if (require_idle && !(pte.numa_hint() &&
                              pte.numa_idle >= cfg_.tiers.demote_after_windows))
          continue;
        victims.push_back(v);
        if (victims.size() >= want_pages) return false;
      }
      return true;
    };
    p.as.page_table().for_each_run(vm::vpn_of(vma.start), vm::vpn_of(vma.end),
                                   victim_run);
  });
  if (victims.empty()) return 0;
  charge(t, cost_.demote_scan_page * victims.size(), kind);

  // Coalesce contiguous victims and push each run through kmigrated. The
  // batch honors watermarks and fault injection like every migration path;
  // degraded transactional pages are stop-and-copied by the daemon
  // (defer_on_degrade=false) because demotion must actually free frames.
  std::uint64_t demoted = 0;
  std::size_t i = 0;
  while (i < victims.size()) {
    std::size_t j = i + 1;
    while (j < victims.size() && victims[j] == victims[j - 1] + 1) ++j;
    const vm::Vpn first = victims[i];
    const std::uint64_t npages = j - i;
    charge(t, cost_.demote_submit, kind);
    trace(t, EventType::kTierDemote, first, npages, node, target);
    demoted += submit_kmigrated_batch(t, p, vm::addr_of(first),
                                      npages * mem::kPageSize, target, t.clock,
                                      /*defer_on_degrade=*/false);
    // Soft-TLB note: the page moves themselves bumped mapping_gen inside
    // submit_kmigrated_batch; the hysteresis reset below touches only
    // numa_last/numa_idle (no mapping, flag, or permission change), so no
    // further invalidation is needed here.
    // Hysteresis: a freshly demoted page must re-earn its promotion with two
    // hint faults from the same node, so one stray touch inside the next
    // scan window cannot bounce it straight back up.
    auto reset_run = [&](vm::PageRun run) {
      for (vm::Pte& pte : run.ptes) {
        if (!pte.present() || phys_.node_of(pte.frame) != target) continue;
        pte.numa_last = vm::Pte::kNoNumaNode;
        pte.numa_idle = 0;
      }
    };
    p.as.page_table().for_each_run(first, first + npages, reset_run);
    i = j;
  }
  kstats_.tier_demotions += demoted;
  return demoted;
}

void Kernel::tier_demote_check(ThreadCtx& t, Process& p) {
  if (!cfg_.tiers.enabled || !cfg_.tiers.demotion) return;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (!tier_pressured(n)) continue;
    if (tier_demote_target(n) == topo::kInvalidNode) continue;
    ++kstats_.tier_demote_passes;
    charge(t, cost_.demote_scan_base, sim::CostKind::kNumaScan);
    tier_demote(t, p, n, cfg_.tiers.demote_batch_pages, /*require_idle=*/true,
                sim::CostKind::kNumaScan);
  }
}

topo::NodeId Kernel::preferred_many_target(topo::NodeMask mask,
                                           topo::NodeId local) const {
  topo::NodeId best = topo::kInvalidNode;       // best with admission headroom
  topo::NodeId best_any = topo::kInvalidNode;   // best regardless of pressure
  TierRank best_rank{}, best_any_rank{};
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (!topo::mask_contains(mask, n)) continue;
    const TierRank r{topo_.tier_of(n), topo_.hops(local, n), n};
    if (best_any == topo::kInvalidNode || r < best_any_rank) {
      best_any = n;
      best_any_rank = r;
    }
    if (cfg_.tiers.enabled && tier_pressured(n)) continue;
    if (best == topo::kInvalidNode || r < best_rank) {
      best = n;
      best_rank = r;
    }
  }
  // All members pressured: hand the best-ranked one to alloc_user_frame,
  // whose zonelist walk resolves the actual placement.
  return best != topo::kInvalidNode ? best : best_any;
}

std::int64_t Kernel::fast_occupancy_pct() const {
  const std::uint64_t cap = phys_.tier_capacity_frames(topo::MemTier::kFast);
  if (cap == 0) return 0;
  return static_cast<std::int64_t>(phys_.tier_used_frames(topo::MemTier::kFast) *
                                   100 / cap);
}

}  // namespace numasim::kern
