// Kernel event log: a bounded trace of memory-management events.
//
// Attach with Kernel::set_event_log(); the kernel then records faults,
// migrations, markings and signals with their simulated timestamps. Tools
// (examples, debugging sessions) render the trace as text or CSV — the
// simulated analogue of ftrace's mm events.
//
// The log is one obs::TraceSink among others: it subscribes to the kernel's
// tracepoint stream and keeps the instant events whose names match the
// legacy mm event types, ignoring spans and app annotations. Attaching via
// Kernel::add_trace_sink() is equivalent to set_event_log().
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "obs/trace.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "vm/page_table.hpp"

namespace numasim::kern {

enum class EventType : std::uint8_t {
  kMinorFault,       // first-touch population
  kNextTouchMark,    // madvise(MIGRATE_ON_NEXT_TOUCH)
  kNextTouchMigrate, // fault-path page migration
  kMovePages,        // move_pages syscall batch
  kMigrateProcess,   // migrate_pages syscall
  kSigsegv,          // signal delivered to user handler
  kReplicaCreate,
  kReplicaCollapse,
  // Degraded-mode events (fault injection / memory pressure):
  kMigrateRetry,       // transient copy failure; migration retried after backoff
  kMigrateFail,        // migration aborted (ENOMEM or permanent copy failure);
                       // the original frame stays mapped
  kNextTouchDegraded,  // next-touch fault could not migrate; page mapped in place
  kShootdownRetry,     // TLB-shootdown IPI lost and re-sent
  kSignalDelay,        // SIGSEGV delivery delayed
  kAllocStall,         // first-touch allocation stalled in (simulated) reclaim
  // Scalable-engine events (kmigrated daemons):
  kKmigratedSubmit,    // batch handed to a per-node kmigrated daemon
  kKmigratedComplete,  // daemon finished the batch (stamped at completion)
  kKmigratedDrop,      // batch dropped (fault injection)
  // Automatic NUMA balancing events:
  kNumaScan,         // one scan-clock window tagged `pages` PTEs for hinting
  kNumaHintFault,    // NUMA hint fault (from = page's node, to = faulting node)
  kNumaPromote,      // confirmed promotion batch submitted to kmigrated
  kNumaTaskMigrate,  // sched::Balancer moved a task (from/to = core ids)
  // Transactional migration events (kern/txn_migrate):
  kTxnCommit,      // clean verify; page committed by atomic PTE flip
  kTxnDirtyRetry,  // page dirtied during the copy window; re-copy after backoff
  kTxnDegraded,    // transaction gave up; caller stop-and-copied or deferred
  kTxnAbort,       // retry budget exhausted / permanent fault; shadow released
  // Memory-tier events (kern/tiers):
  kTierPromote,  // hint-confirmed batch headed to a faster tier via kmigrated
  kTierDemote,   // cold run demoted down-tier (daemon pass or direct)
};

std::string_view event_type_name(EventType t);

struct Event {
  sim::Time when = 0;
  std::uint32_t tid = 0;
  EventType type = EventType::kMinorFault;
  vm::Vpn vpn = 0;            ///< first page involved
  std::uint64_t pages = 0;    ///< pages affected
  topo::NodeId from = topo::kInvalidNode;
  topo::NodeId to = topo::kInvalidNode;
};

/// Bounded FIFO of events (oldest dropped when full).
class EventLog : public obs::TraceSink {
 public:
  explicit EventLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  /// TraceSink: keep instants whose name is a known mm event type; spans and
  /// unknown names (app annotations) pass through untouched.
  void record(const obs::TraceEvent& e) override;

  void record(const Event& e) {
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(e);
  }

  const std::deque<Event>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Human-readable rendering of the most recent `limit` events.
  std::string render(std::size_t limit = 32) const;

  /// CSV of the whole buffer (header + one row per event).
  std::string to_csv() const;

  /// Count of events of a given type currently buffered.
  std::uint64_t count(EventType t) const;

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::deque<Event> events_;
};

}  // namespace numasim::kern
