// Every timing constant of the simulated kernel and hardware, in one place.
//
// Defaults are calibrated against the paper's own measurements on the
// 4-socket Opteron 8347HE host (Section 4):
//   - move_pages:    ~160 us base overhead, ~600 MB/s plateau, control 38 %
//   - migrate_pages: ~400 us base overhead, ~780 MB/s plateau
//   - kernel next-touch: ~800 MB/s even for small buffers, control 20 %
//   - kernel page copy: ~1 GB/s (no SSE inside the kernel)
//   - user memcpy across nodes: ~1.8 GB/s
// Sensitivity ablation benches sweep individual constants.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace numasim::kern {

struct CostModel {
  using Time = sim::Time;

  // --- syscall and fault plumbing -----------------------------------------
  Time syscall_entry = 150;       ///< user->kernel->user trampoline
  Time pagefault_entry = 400;     ///< hw fault + kernel entry + VMA lookup
  Time signal_delivery = 1800;    ///< SIGSEGV frame setup + dispatch to handler
  Time sigreturn = 600;           ///< return path from a signal handler

  // --- address-space management ----------------------------------------------
  Time mmap_base = 2000;
  Time munmap_base = 2000;
  Time munmap_page = 80;

  // --- page table and TLB ---------------------------------------------------
  Time pte_update = 60;            ///< rewrite one PTE
  Time tlb_flush_local = 120;      ///< invlpg-style local flush
  Time tlb_shootdown_base = 2000;  ///< IPI broadcast setup
  Time tlb_shootdown_per_core = 350;

  // --- physical page management ---------------------------------------------
  Time page_alloc = 250;
  Time page_free = 180;
  double zero_rate_bytes_per_us = 4000.0;  ///< zero-fill on first touch

  // --- copy engines -----------------------------------------------------------
  double kernel_copy_bytes_per_us = 1000.0;  ///< migrate copies: 1 GB/s
  double user_copy_bytes_per_us = 1800.0;    ///< SSE memcpy
  Time user_memcpy_base = 2000;              ///< call + cache-warmup overhead
  double core_stream_bytes_per_us = 3500.0;  ///< one core's streaming load bw

  // --- move_pages -------------------------------------------------------------
  Time move_pages_base = 160'000;        ///< paper Sec. 4.2: ~160 us
  Time move_pages_base_locked = 100'000; ///< portion under mmap_sem
  Time move_pages_page_control = 2700;   ///< per-page bookkeeping (38 % of 6.8us)
  Time move_pages_page_locked = 1600;    ///< portion under the page-table lock
  /// Unpatched (pre-2.6.29) implementation: per processed page, the status /
  /// destination array is scanned linearly -> O(n^2) total.
  double quadratic_scan_ns_per_slot = 8.0;

  /// Range-based interface (the paper's proposed improvement): sequential
  /// walk, no per-page argument processing or status write-back.
  Time move_pages_range_page_control = 1900;
  Time move_pages_range_base = 60'000;

  // --- migrate_pages -----------------------------------------------------------
  Time migrate_pages_base = 400'000;      ///< whole-VA-space traversal setup
  Time migrate_pages_page_control = 1150; ///< cheaper: in-order walk, batched locks
  Time migrate_pages_page_locked = 700;

  // --- next-touch (the paper's kernel patch) -----------------------------------
  Time madvise_base = 1200;
  Time madvise_page_mark = 150;   ///< clear hw bits + set PTE next-touch flag
  Time nt_fault_control = 600;    ///< alloc + remap in the fault path
  Time nt_fault_locked = 450;     ///< portion under the page-table lock

  // --- replication (extension; paper future work) -------------------------------
  Time replica_control = 700;    ///< per-replica create/collapse bookkeeping

  // --- mprotect (drives the user-space next-touch of Fig. 1) -------------------
  Time mprotect_base = 1000;
  Time mprotect_page = 90;

  // --- degraded paths (memory pressure / fault injection) ----------------------
  /// Bounded retry of a transiently failed page copy: up to `copy_retry_max`
  /// re-attempts, backing off `copy_retry_backoff << attempt` between them
  /// (the migrate_pages -EAGAIN retry loop). Exhausting the budget aborts
  /// the migration and rolls back, leaving the original frame mapped.
  unsigned copy_retry_max = 3;
  Time copy_retry_backoff = 5'000;
  Time copy_backoff(unsigned attempt) const {
    return copy_retry_backoff << attempt;
  }
  // --- transactional migration (kern/txn_migrate, NOMAD-style) -----------------
  /// Bounded dirty-retry budget: a page found dirty after its shadow copy is
  /// re-copied up to `txn_retry_max` times, backing off
  /// `txn_retry_backoff << attempt` between attempts; exhaustion degrades
  /// the page to the stop-and-copy path.
  unsigned txn_retry_max = 4;
  Time txn_retry_backoff = 4'000;
  Time txn_backoff(unsigned attempt) const { return txn_retry_backoff << attempt; }
  /// Shadow-frame setup (alloc bookkeeping + copy kickoff, outside any lock).
  Time txn_shadow_control = 700;
  /// Dirty-bit verification after write-protecting the page.
  Time txn_verify = 250;
  /// The atomic PTE flip + local flush of a clean commit.
  Time txn_commit = 400;
  /// Serialized per-page share of a transactional batch: only the commit
  /// flips contend (the copies run outside the critical section), so these
  /// replace move_pages_serial_per_page / nt_serial_per_page (coarse) and
  /// range_serial_per_page / nt_range_serial_per_page (range) when
  /// migration_mode == kTransactional.
  Time txn_commit_serial_per_page = 900;
  Time txn_range_commit_serial_per_page = 700;

  /// Wait before re-sending a lost TLB-shootdown IPI (csd-lock timeout).
  Time tlb_shootdown_resend_wait = 10'000;
  /// Extra latency of a delayed SIGSEGV delivery (queued behind a context
  /// switch).
  Time signal_redelivery_delay = 20'000;
  /// Direct-reclaim stall charged when a first-touch allocation hits
  /// (injected) pressure before the reserve pool satisfies it.
  Time reclaim_stall = 50'000;

  // --- lock contention ----------------------------------------------------------
  /// Extra hold time when a lock's ownership moves between cores (cache-line
  /// bounce); applied to the coarse mmap_sem-style locks.
  Time lock_bounce = 1500;

  /// Serialized portion of migrating one page — the page-table-lock /
  /// LRU-lock / TLB-IPI critical section that concurrent migrations of the
  /// same process cannot overlap. A single thread is never limited by it
  /// (it is below the per-page total); with several threads it caps the
  /// aggregate at page_size/serial, reproducing Fig. 7's ceilings
  /// (~1.0 GB/s synchronous, ~1.3 GB/s lazy).
  Time move_pages_serial_per_page = 4100;
  Time nt_serial_per_page = 3150;
  Time migrate_pages_serial_per_page = 3600;

  // --- scalable engine (LockModel::kRange) --------------------------------------
  /// Serialized per-page cost under a per-VMA range lock: only the
  /// page-table-lock / LRU work of the page itself — the mmap_sem cache-line
  /// bounce and the full-broadcast IPI share of the coarse constants are
  /// gone, so disjoint ranges migrate in parallel up to the copy hardware.
  Time range_serial_per_page = 2500;
  Time nt_range_serial_per_page = 1900;
  /// Coalesced TLB shootdown: one IPI round per contiguous migrated run,
  /// plus a per-page invalidation at the receiving cores.
  Time tlb_shootdown_round_per_page = 80;
  Time tlb_shootdown_round(unsigned cores, std::uint64_t pages) const {
    return tlb_shootdown(cores) +
           tlb_shootdown_round_per_page * static_cast<Time>(pages);
  }

  // --- kmigrated (per-node asynchronous migration daemons) ----------------------
  Time kmigrated_submit = 1200;      ///< enqueue + daemon wakeup IPI (caller pays)
  Time kmigrated_wakeup = 8000;      ///< daemon schedule-in latency
  Time kmigrated_batch_base = 3000;  ///< dequeue + batch setup (daemon pays)

  // --- automatic NUMA balancing (task_numa_work-style sampling) -----------------
  Time numab_scan_base = 3000;   ///< one scan window: clock check + VMA walk setup
  Time numab_scan_page = 120;    ///< clear hw bits + set hint flag, per page
  Time numab_hint_fault = 600;   ///< hint-fault bookkeeping + rearm in the fault path
  Time numab_balance_eval = 4000;  ///< one sched::Balancer evaluation pass

  // --- memory tiering (promotion/demotion across device tiers) -----------------
  Time demote_scan_base = 2500;  ///< one watermark check + cold-walk setup
  Time demote_scan_page = 90;    ///< per candidate page examined by the walk
  Time demote_submit = 1500;     ///< hand one cold run to the demotion daemon
  /// Direct demotion: the allocating thread waits for the eviction to free a
  /// frame (the synchronous slow path Linux calls demotion in reclaim).
  Time demote_direct_stall = 30'000;

  // --- barriers / scheduling ------------------------------------------------------
  Time barrier_phase = 2500;     ///< one OpenMP-style barrier episode
  Time thread_spawn = 15'000;

  /// Shootdown of all cores' TLBs (mprotect/madvise over live mappings).
  Time tlb_shootdown(unsigned cores) const {
    return tlb_shootdown_base + tlb_shootdown_per_core * cores;
  }
};

}  // namespace numasim::kern
