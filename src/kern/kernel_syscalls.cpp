// The memory-management system-call surface (paper Sections 2.3 and 3).
#include <algorithm>
#include <cassert>

#include "kern/kernel.hpp"

namespace numasim::kern {

namespace {
/// Pages per page-table-lock acquisition inside a long syscall — the real
/// kernel's pagevec/migration-list batch size.
constexpr std::size_t kSyscallBatchPages = 64;
}  // namespace

vm::Vaddr Kernel::sys_mmap(ThreadCtx& t, std::uint64_t len, vm::Prot prot,
                           const vm::MemPolicy& policy, std::string name,
                           bool huge) {
  Process& p = proc(t.pid);
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  if (cfg_.lock_model == LockModel::kRange) {
    // Address-space surgery takes the whole-space lock exclusively even in
    // the scalable model — only migrations scale, not mmap itself.
    const sim::Slot slot = p.mmap_rw.reserve_exclusive(t.clock, cost_.mmap_base);
    if (slot.start > t.clock) {
      t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
      note_lock_wait(slot.start - t.clock);
    }
    t.stats.add(sim::CostKind::kSyscallEntry, slot.finish - slot.start);
    t.clock = slot.finish;
  } else {
    charge(t, cost_.mmap_base, sim::CostKind::kSyscallEntry);
  }
  stlb_invalidate(p);  // map site: address-space layout changed
  return p.as.map(len, prot, policy, std::move(name), huge);
}

SyscallResult Kernel::sys_munmap(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len) {
  Process& p = proc(t.pid);
  if (len == 0) return -kEINVAL;
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  if (cfg_.lock_model != LockModel::kRange)
    charge(t, cost_.munmap_base, sim::CostKind::kSyscallEntry);

  // Free the frames, then drop VMAs + PTEs.
  std::uint64_t present = 0;
  const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
  auto free_run = [&](vm::PageRun run) {
    vm::Vpn vpn = run.first;
    for (vm::Pte& pte : run.ptes) {
      const vm::Vpn v = vpn++;
      if (!pte.present()) continue;
      for (mem::FrameId f : p.replicas.take(v)) phys_.free(f);
      p.placement.dec(v, phys_.node_of(pte.frame));
      phys_.free(pte.frame);
      ++present;
    }
  };
  p.as.page_table().for_each_run(vm::vpn_of(addr), vend, free_run);
  p.as.unmap(addr, len);
  stlb_invalidate(p);  // unmap site: cached descriptors may cover freed pages
  if (cfg_.lock_model == LockModel::kRange) {
    // One exclusive whole-space hold covers base + teardown + shootdown.
    const sim::Time work = cost_.munmap_base + cost_.munmap_page * present +
                           shootdown_cost(t);
    const sim::Slot slot = p.mmap_rw.reserve_exclusive(t.clock, work);
    if (slot.start > t.clock) {
      t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
      note_lock_wait(slot.start - t.clock);
    }
    t.stats.add(sim::CostKind::kSyscallEntry, slot.finish - slot.start);
    t.clock = slot.finish;
  } else {
    charge(t, cost_.munmap_page * present + shootdown_cost(t),
           sim::CostKind::kSyscallEntry);
  }
  ++kstats_.tlb_shootdowns;
  return 0;
}

SyscallResult Kernel::sys_mprotect(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                                   vm::Prot prot, sim::CostKind attribute) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_mprotect(t, addr, len, prot, attribute);
  emit_span(t, "sys_mprotect", begin, "kern");
  return r;
}

SyscallResult Kernel::do_mprotect(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                                  vm::Prot prot, sim::CostKind attribute) {
  Process& p = proc(t.pid);
  if (len == 0) return -kEINVAL;
  if (!p.as.range_mapped(addr, len)) return -kENOMEM;
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);

  // mmap_sem (write) held across the VMA surgery and PTE rewrite.
  std::uint64_t present = 0;
  p.as.for_range(addr, addr + len, [&](vm::Vma& vma) {
    vma.prot = prot;
    auto rewrite_run = [&](vm::PageRun run) {
      vm::Vpn vpn = run.first;
      for (vm::Pte& pte : run.ptes) {
        const vm::Vpn v = vpn++;
        if (!pte.present()) continue;
        ++present;
        // An explicit protection change supersedes a pending next-touch or
        // NUMA-hint mark — and an in-flight transactional migration's write
        // protection (the migrator sees the cleared kTxn as a dirty hit and
        // retries or aborts). Granting write on a replicated page forces a
        // collapse (the per-node copies would otherwise go incoherent).
        pte.clear(vm::Pte::kNextTouch | vm::Pte::kNumaHint | vm::Pte::kTxn);
        if ((pte.flags & vm::Pte::kReplica) && prot_allows(prot, vm::Prot::kWrite))
          collapse_replicas(t, p, pte, v, topo_.node_of_core(t.core));
        pte.clear(vm::Pte::kHwRead | vm::Pte::kHwWrite);
        if (prot_allows(prot, vm::Prot::kRead)) pte.set(vm::Pte::kHwRead);
        if (prot_allows(prot, vm::Prot::kWrite)) pte.set(vm::Pte::kHwWrite);
      }
    };
    p.as.page_table().for_each_run(vm::vpn_of(vma.start), vm::vpn_of(vma.end),
                                   rewrite_run);
  });
  stlb_invalidate(p);  // protect site: hw permission bits rewritten

  const sim::Time work = cost_.mprotect_base + cost_.mprotect_page * present +
                         shootdown_cost(t);
  // Protection changes rewrite VMAs, so the scalable model still takes the
  // whole-space lock exclusively.
  const sim::Slot slot =
      cfg_.lock_model == LockModel::kRange
          ? p.mmap_rw.reserve_exclusive(t.clock, work)
          : p.mmap_lock.reserve(t.clock, work, t.core, cost_.lock_bounce);
  if (slot.start > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
    note_lock_wait(slot.start - t.clock);
  }
  t.stats.add(attribute, slot.finish - slot.start);
  t.clock = slot.finish;
  ++kstats_.tlb_shootdowns;
  return 0;
}

SyscallResult Kernel::sys_madvise(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                                  Advice advice) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_madvise(t, addr, len, advice);
  emit_span(t, "sys_madvise", begin, "kern");
  return r;
}

SyscallResult Kernel::do_madvise(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                                 Advice advice) {
  Process& p = proc(t.pid);
  if (len == 0) return -kEINVAL;
  if (!p.as.range_mapped(addr, len)) return -kENOMEM;
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);

  switch (advice) {
    case Advice::kNormal:
    case Advice::kWillNeed:
      charge(t, cost_.madvise_base, sim::CostKind::kMadvise);
      return 0;

    case Advice::kDontNeed: {
      // Drop the pages: the next touch zero-fill-allocates afresh.
      std::uint64_t dropped = 0;
      const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
      auto drop_run = [&](vm::PageRun run) {
        vm::Vpn vpn = run.first;
        for (vm::Pte& pte : run.ptes) {
          const vm::Vpn v = vpn++;
          if (!pte.present()) continue;
          for (mem::FrameId f : p.replicas.take(v)) phys_.free(f);
          p.placement.dec(v, phys_.node_of(pte.frame));
          phys_.free(pte.frame);
          pte = vm::Pte{};
          ++dropped;
        }
      };
      p.as.page_table().for_each_run(vm::vpn_of(addr), vend, drop_run);
      stlb_invalidate(p);  // remap site: PTEs dropped to not-present
      const sim::Time work = cost_.madvise_base + cost_.page_free * dropped +
                             shootdown_cost(t);
      charge(t, work, sim::CostKind::kMadvise);
      ++kstats_.tlb_shootdowns;
      return 0;
    }

    case Advice::kReplicate: {
      if (!replication_) return -kENOSYS;
      if (const vm::Vma* v = p.as.find(addr); v != nullptr && v->huge)
        return -kEINVAL;
      // Arm: clear the write bit so writes collapse; reads repopulate per
      // node lazily through the access path.
      std::uint64_t marked = 0;
      const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
      auto arm_run = [&](vm::PageRun run) {
        for (vm::Pte& pte : run.ptes) {
          if (!pte.present()) continue;
          pte.clear(vm::Pte::kHwWrite | vm::Pte::kNextTouch | vm::Pte::kNumaHint);
          pte.set(vm::Pte::kReplica);
          ++marked;
        }
      };
      p.as.page_table().for_each_run(vm::vpn_of(addr), vend, arm_run);
      stlb_invalidate(p);  // flag site: kReplica set / hw write cleared
      const sim::Time work = cost_.madvise_base + cost_.madvise_page_mark * marked +
                             shootdown_cost(t);
      charge(t, work, sim::CostKind::kMadvise);
      ++kstats_.tlb_shootdowns;
      return 0;
    }

    case Advice::kMigrateOnNextTouch: {
      // Huge pages cannot be migrated (paper Sec. 6: "LINUX does not
      // currently support their migration").
      if (const vm::Vma* v = p.as.find(addr); v != nullptr && v->huge)
        return -kEINVAL;
      // The paper's patch (Fig. 2): clear the hardware access bits of every
      // present PTE and set the next-touch flag, then shoot down all TLBs so
      // the next access from anywhere faults.
      std::uint64_t marked = 0;
      const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
      auto mark_run = [&](vm::PageRun run) {
        vm::Vpn vpn = run.first;
        for (vm::Pte& pte : run.ptes) {
          const vm::Vpn v = vpn++;
          if (!pte.present()) continue;
          // Replicated pages collapse before they can migrate as a unit.
          if (pte.flags & vm::Pte::kReplica)
            collapse_replicas(t, p, pte, v, topo_.node_of_core(t.core));
          pte.clear(vm::Pte::kHwRead | vm::Pte::kHwWrite | vm::Pte::kNumaHint);
          pte.set(vm::Pte::kNextTouch);
          ++marked;
        }
      };
      p.as.page_table().for_each_run(vm::vpn_of(addr), vend, mark_run);
      stlb_invalidate(p);  // flag site: kNextTouch armed, hw bits cleared
      trace(t, EventType::kNextTouchMark, vm::vpn_of(addr), marked);
      const sim::Time work = cost_.madvise_base + cost_.madvise_page_mark * marked +
                             shootdown_cost(t);
      sim::Slot slot;
      if (cfg_.lock_model == LockModel::kRange) {
        // Marking only rewrites PTE bits: mmap_sem is taken *shared* and the
        // serialization happens on the per-VMA range locks, so markers on
        // disjoint VMAs proceed in parallel.
        const sim::Slot rd = p.mmap_rw.reserve_shared(t.clock, 0);
        slot = range_lock_reserve(t, p, addr, addr + len, rd.start, work,
                                  /*exclusive=*/true);
      } else {
        slot = p.mmap_lock.reserve(t.clock, work, t.core, cost_.lock_bounce);
      }
      if (slot.start > t.clock) {
        t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
        note_lock_wait(slot.start - t.clock);
      }
      t.stats.add(sim::CostKind::kMadvise, slot.finish - slot.start);
      t.clock = slot.finish;
      ++kstats_.tlb_shootdowns;
      return 0;
    }
  }
  return -kEINVAL;
}

SyscallResult Kernel::sys_mbind(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                                const vm::MemPolicy& policy, bool move_existing) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_mbind(t, addr, len, policy, move_existing);
  emit_span(t, "sys_mbind", begin, "kern");
  return r;
}

SyscallResult Kernel::do_mbind(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                               const vm::MemPolicy& policy, bool move_existing) {
  Process& p = proc(t.pid);
  if (len == 0) return -kEINVAL;
  if (!p.as.range_mapped(addr, len)) return -kENOMEM;
  if (policy.mode != vm::PolicyMode::kDefault && policy.nodes == 0) return -kEINVAL;
  charge(t, cost_.syscall_entry + cost_.madvise_base, sim::CostKind::kSyscallEntry);
  p.as.for_range(addr, addr + len, [&](vm::Vma& vma) { vma.policy = policy; });
  stlb_invalidate(p);  // policy-change site (migrations below bump again)
  if (!move_existing) return 0;

  // MPOL_MF_MOVE: migrate already-present pages that violate the policy.
  const sim::Time entry = t.clock;
  CopyBatch copies;
  std::uint64_t moved = 0;
  const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
  const vm::Vma* vma = nullptr;  // cached across the walk
  auto move_run = [&](vm::PageRun run) {
    vm::Vpn vpn = run.first;
    for (vm::Pte& pte : run.ptes) {
      const vm::Vpn v = vpn++;
      if (!pte.present() || (pte.flags & vm::Pte::kHuge)) continue;
      if (vma == nullptr || !vma->contains(vm::addr_of(v)))
        vma = p.as.find(vm::addr_of(v));
      const topo::NodeId want = policy.target_node(
          vma->pgoff(v), phys_.node_of(pte.frame), topo_.num_nodes());
      if (want == topo::kInvalidNode || want == phys_.node_of(pte.frame)) continue;
      if (migrate_page(t, p, pte, v, want, cost_.move_pages_range_page_control,
                       sim::CostKind::kMovePagesControl,
                       sim::CostKind::kMovePagesCopy,
                       &copies) == MigrateResult::kOk) {
        ++moved;
        ++kstats_.pages_migrated_move;
      }
    }
  };
  p.as.page_table().for_each_run(vm::vpn_of(addr), vend, move_run);
  flush_copy_batch(t, copies, sim::CostKind::kMovePagesCopy);
  if (cfg_.lock_model == LockModel::kRange) {
    serialize_migration_ranged(t, p, addr, addr + len, entry, moved,
                               migrate_serial_per_page(cost_.range_serial_per_page));
  } else {
    serialize_migration(t, p, entry, moved,
                        migrate_serial_per_page(cost_.move_pages_serial_per_page));
  }
  return 0;
}

SyscallResult Kernel::sys_set_mempolicy(ThreadCtx& t, const vm::MemPolicy& policy) {
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  if (policy.mode != vm::PolicyMode::kDefault && policy.nodes == 0) return -kEINVAL;
  Process& p = proc(t.pid);
  p.task_policy = policy;
  stlb_invalidate(p);  // policy-change site
  return 0;
}

SyscallResult Kernel::sys_get_mempolicy(ThreadCtx& t, vm::MemPolicy& out) {
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  out = proc(t.pid).task_policy;
  return 0;
}

SyscallResult Kernel::sys_getcpu(ThreadCtx& t, topo::CoreId* core, topo::NodeId* node) {
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  if (core != nullptr) *core = t.core;
  if (node != nullptr) *node = topo_.node_of_core(t.core);
  return 0;
}

void Kernel::move_pages_enter(ThreadCtx& t, std::size_t total_pages) {
  (void)total_pages;
  Process& p = proc(t.pid);
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  // The ~160 us base: task lookup, argument copy-in, and down_read(mmap_sem)
  // work that serializes concurrent callers.
  assert(cost_.move_pages_base >= cost_.move_pages_base_locked);
  charge(t, cost_.move_pages_base - cost_.move_pages_base_locked,
         sim::CostKind::kMovePagesControl);
  // Scalable model: migrations only *read* the VMA tree, so mmap_sem is taken
  // shared — concurrent move_pages callers overlap here and serialize (if at
  // all) on the per-VMA range locks instead.
  const sim::Slot slot =
      cfg_.lock_model == LockModel::kRange
          ? p.mmap_rw.reserve_shared(t.clock, cost_.move_pages_base_locked)
          : p.mmap_lock.reserve(t.clock, cost_.move_pages_base_locked, t.core,
                                cost_.lock_bounce);
  if (slot.start > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
    note_lock_wait(slot.start - t.clock);
  }
  t.stats.add(sim::CostKind::kMovePagesControl, slot.finish - slot.start);
  t.clock = slot.finish;
}

void Kernel::move_pages_chunk(ThreadCtx& t, std::span<const vm::Vaddr> chunk,
                              std::span<const topo::NodeId> nodes,
                              std::span<int> status, std::size_t request_total) {
  Process& p = proc(t.pid);
  assert(nodes.empty() || nodes.size() == chunk.size());
  assert(status.size() == chunk.size());
  const bool query_only = nodes.empty();

  // Per-page unlocked control (vaddr lookup, isolation, status handling).
  // The unpatched implementation additionally scans the whole request array
  // once per page — the quadratic behaviour of Fig. 4.
  sim::Time unlocked = cost_.move_pages_page_control - cost_.move_pages_page_locked;
  if (move_impl_ == MovePagesImpl::kQuadratic) {
    unlocked += static_cast<sim::Time>(cost_.quadratic_scan_ns_per_slot *
                                       static_cast<double>(request_total));
  }

  struct Move {
    std::size_t i;
    vm::Pte* pte;  // resolved once; entries are chunk-stable for the table's life
    topo::NodeId from;
    topo::NodeId to;
    mem::FrameId nf = mem::kInvalidFrame;  // destination frame (post-alloc)
    unsigned copy_retries = 0;
    bool copy_ok = true;
  };
  std::vector<Move> moves;
  moves.reserve(chunk.size());
  const sim::Time entry = t.clock;
  sim::Time unlocked_total = 0;
  sim::Time locked_total = 0;
  vm::Vaddr span_lo = ~vm::Vaddr{0};  // chunk page-span for range locking
  vm::Vaddr span_hi = 0;

  const vm::Vma* vma = nullptr;  // cached: chunks rarely cross a mapping
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    unlocked_total += query_only ? cost_.pte_update : unlocked;
    span_lo = std::min(span_lo, vm::page_align_down(chunk[i]));
    span_hi = std::max(span_hi, vm::page_align_down(chunk[i]) + mem::kPageSize);
    if (vma == nullptr || !vma->contains(chunk[i])) vma = p.as.find(chunk[i]);
    vm::Pte* pte = p.as.page_table().find(vm::vpn_of(chunk[i]));
    if (vma == nullptr || pte == nullptr || !pte->present()) {
      status[i] = -kEFAULT;  // Linux: -ENOENT for absent pages; -EFAULT unmapped
      continue;
    }
    if (pte->flags & vm::Pte::kHuge) {
      status[i] = -kEINVAL;  // no huge-page migration in this era
      continue;
    }
    const topo::NodeId from = phys_.node_of(pte->frame);
    if (query_only) {
      status[i] = static_cast<int>(from);
      continue;
    }
    const topo::NodeId to = nodes[i];
    if (to >= topo_.num_nodes()) {
      status[i] = -kEINVAL;
      continue;
    }
    if (from == to) {
      status[i] = static_cast<int>(to);
      continue;
    }
    moves.push_back({i, pte, from, to});
    locked_total += cost_.move_pages_page_locked;
  }

  if (cfg_.lock_model == LockModel::kRange) {
    // Unlocked control happens outside any lock; the "locked" share is a
    // reservation on the range locks of the VMAs this chunk touches, so
    // chunks over disjoint VMAs overlap instead of convoying on mmap_sem.
    charge(t, unlocked_total, sim::CostKind::kMovePagesControl);
    if (locked_total > 0) {
      const sim::Slot slot = range_lock_reserve(t, p, span_lo, span_hi, t.clock,
                                                locked_total, /*exclusive=*/true);
      if (slot.start > t.clock) {
        t.stats.add(sim::CostKind::kLockWait, slot.start - t.clock);
        note_lock_wait(slot.start - t.clock);
      }
      t.stats.add(sim::CostKind::kMovePagesControl, slot.finish - slot.start);
      t.clock = slot.finish;
    }
  } else {
    charge(t, unlocked_total + locked_total, sim::CostKind::kMovePagesControl);
  }

  if (!query_only && cfg_.migration_mode == MigrationMode::kTransactional) {
    // Transactional engine: each page runs its own shadow-copy transaction,
    // with the copies outside any critical section. A degraded transaction
    // falls back to stop-and-copy inside migrate_page, so a retry-exhausted
    // or faulted page surfaces as its own per-page status — never as a
    // batch failure.
    for (const Move& m : moves) {
      const vm::Vpn vpn = vm::vpn_of(chunk[m.i]);
      vm::Pte* pte = m.pte;
      switch (migrate_page(t, p, *pte, vpn, m.to, 0,
                           sim::CostKind::kMovePagesControl,
                           sim::CostKind::kMovePagesCopy, nullptr)) {
        case MigrateResult::kOk:
          pte->clear(vm::Pte::kNextTouch);
          status[m.i] = static_cast<int>(phys_.node_of(pte->frame));
          ++kstats_.pages_migrated_move;
          break;
        case MigrateResult::kNoMem:
          status[m.i] = -kENOMEM;
          break;
        case MigrateResult::kCopyFail:
          status[m.i] = -kEAGAIN;
          break;
      }
    }
  } else {
  // Isolate→alloc: destination frames come strictly from the requested node
  // (as Linux's new_page_node with __GFP_THISNODE). A failed allocation
  // degrades this page to -ENOMEM *before* any copy bandwidth is spent; the
  // already-isolated page simply stays mapped on its source node.
  for (Move& m : moves) {
    m.nf = alloc_migration_frame(m.to);
    if (m.nf == mem::kInvalidFrame && cfg_.tiers.enabled && cfg_.tiers.demotion) {
      // Direct demotion (tiering): evict pages of the full destination node
      // down-tier, then retry once — move_pages into the fast tier degrades
      // to -ENOMEM only when no lower tier has room either.
      if (tier_demote(t, p, m.to, cfg_.tiers.demote_batch_pages,
                      /*require_idle=*/false,
                      sim::CostKind::kMovePagesControl) > 0) {
        charge(t, cost_.demote_direct_stall, sim::CostKind::kMovePagesControl);
        m.nf = alloc_migration_frame(m.to);
      }
    }
    if (m.nf == mem::kInvalidFrame) {
      status[m.i] = -kENOMEM;
      ++kstats_.migrations_failed;
      trace(t, EventType::kMigrateFail, vm::vpn_of(chunk[m.i]), 1, m.from, m.to);
    } else {
      const CopyOutcome oc = copy_outcome();
      m.copy_retries = oc.retries;
      m.copy_ok = oc.ok;
    }
  }

  // Copies happen outside the lock; coalesce same-route neighbours so the
  // hardware model sees streams, not 4 KiB droplets. Retried attempts
  // consumed the engine too, so each page contributes (retries+1) copies.
  std::size_t i = 0;
  while (i < moves.size()) {
    std::size_t j = i;
    std::uint64_t bytes = 0;
    while (j < moves.size() && moves[j].from == moves[i].from &&
           moves[j].to == moves[i].to) {
      if (moves[j].nf != mem::kInvalidFrame)
        bytes += (moves[j].copy_retries + 1ull) * mem::kPageSize;
      ++j;
    }
    if (bytes != 0) {
      const sim::Slot c = hw_.copy(t.clock, moves[i].from, moves[i].to, bytes,
                                   cost_.kernel_copy_bytes_per_us);
      t.stats.add(sim::CostKind::kMovePagesCopy, c.finish - t.clock);
      t.clock = c.finish;
    }
    i = j;
  }

  for (const Move& m : moves) {
    if (m.nf == mem::kInvalidFrame) continue;  // degraded to -ENOMEM above
    vm::Pte* pte = m.pte;
    for (unsigned r = 0; r < m.copy_retries; ++r) {
      charge(t, cost_.copy_backoff(r), sim::CostKind::kMovePagesControl);
      ++kstats_.migration_retries;
      trace(t, EventType::kMigrateRetry, vm::vpn_of(chunk[m.i]), 1, m.from, m.to);
    }
    if (!m.copy_ok) {
      // Permanent copy failure: roll back — free the destination frame and
      // leave the original mapping untouched (Linux: -EAGAIN after the
      // migrate_pages retry loop gives up).
      phys_.free(m.nf);
      status[m.i] = -kEAGAIN;
      ++kstats_.migrations_failed;
      trace(t, EventType::kMigrateFail, vm::vpn_of(chunk[m.i]), 1, m.from, m.to);
      continue;
    }
    if (std::byte* dst = phys_.data(m.nf)) {
      if (const std::byte* src = phys_.data(pte->frame))
        std::copy_n(src, mem::kPageSize, dst);
    }
    const topo::NodeId pfrom = phys_.node_of(pte->frame);
    phys_.free(pte->frame);
    pte->frame = m.nf;
    p.placement.move(vm::vpn_of(chunk[m.i]), pfrom, phys_.node_of(m.nf));
    pte->clear(vm::Pte::kNextTouch);
    status[m.i] = static_cast<int>(phys_.node_of(m.nf));
    ++kstats_.pages_migrated_move;
  }
  }  // stop-and-copy path
  if (!moves.empty()) {
    stlb_invalidate(p);  // migrate site: stop-and-copy commits flip frames here
    trace(t, EventType::kMovePages, vm::vpn_of(chunk[moves.front().i]), moves.size(),
          moves.front().from, moves.front().to);
  }
  if (cfg_.lock_model == LockModel::kRange) {
    serialize_migration_ranged(t, p, span_lo, span_hi, entry, moves.size(),
                               migrate_serial_per_page(cost_.range_serial_per_page));
  } else {
    serialize_migration(t, p, entry, moves.size(),
                        migrate_serial_per_page(cost_.move_pages_serial_per_page));
  }
  if (!sinks_.empty()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kSpan;
    e.ts = entry;
    e.dur = t.clock - entry;
    e.pid = t.pid;
    e.tid = t.tid;
    e.cat = "kern";
    e.name = "move_pages_chunk";
    e.add_arg("pages", static_cast<std::int64_t>(chunk.size()))
        .add_arg("moves", static_cast<std::int64_t>(moves.size()));
    emit(e);
  }
}

SyscallResult Kernel::sys_move_pages(ThreadCtx& t, std::span<const vm::Vaddr> pages,
                                     std::span<const topo::NodeId> nodes,
                                     std::span<int> status) {
  if (!nodes.empty() && nodes.size() != pages.size()) return -kEINVAL;
  if (status.size() != pages.size()) return -kEINVAL;
  const sim::Time begin = t.clock;
  if (pages.empty()) {
    // Linux's nr_pages == 0 fast path returns before taking mmap_sem; the
    // old model wrongly charged move_pages_base_locked under the lock here.
    charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
    emit_span(t, "sys_move_pages", begin, "kern");
    return 0;
  }
  move_pages_enter(t, pages.size());
  for (std::size_t off = 0; off < pages.size(); off += kSyscallBatchPages) {
    const std::size_t n = std::min(kSyscallBatchPages, pages.size() - off);
    move_pages_chunk(t, pages.subspan(off, n),
                     nodes.empty() ? nodes : nodes.subspan(off, n),
                     status.subspan(off, n), pages.size());
  }
  emit_span(t, "sys_move_pages", begin, "kern");
  return 0;
}

SyscallResult Kernel::sys_move_pages_ranged(ThreadCtx& t,
                                            std::span<const MoveRange> ranges) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_move_pages_ranged(t, ranges);
  emit_span(t, "sys_move_pages_ranged", begin, "kern");
  return r;
}

SyscallResult Kernel::do_move_pages_ranged(ThreadCtx& t,
                                           std::span<const MoveRange> ranges) {
  Process& p = proc(t.pid);
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  // One (cheaper) base: argument copy-in is O(ranges), not O(pages).
  const sim::Slot base =
      cfg_.lock_model == LockModel::kRange
          ? p.mmap_rw.reserve_shared(t.clock, cost_.move_pages_range_base)
          : p.mmap_lock.reserve(t.clock, cost_.move_pages_range_base, t.core,
                                cost_.lock_bounce);
  if (base.start > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, base.start - t.clock);
    note_lock_wait(base.start - t.clock);
  }
  t.stats.add(sim::CostKind::kMovePagesControl, base.finish - base.start);
  t.clock = base.finish;

  long moved = 0;
  for (const MoveRange& r : ranges) {
    if (r.len == 0) return -kEINVAL;
    if (r.node >= topo_.num_nodes()) return -kEINVAL;
    if (!p.as.range_mapped(r.addr, r.len)) return -kEFAULT;

    const sim::Time entry = t.clock;
    CopyBatch copies;
    std::uint64_t batch_moved = 0;
    const vm::Vpn vend = vm::vpn_of(vm::page_align_up(r.addr + r.len));
    auto range_run = [&](vm::PageRun run) {
      vm::Vpn vpn = run.first;
      for (vm::Pte& pte : run.ptes) {
        const vm::Vpn v = vpn++;
        if (!pte.present() || (pte.flags & vm::Pte::kHuge)) continue;
        charge(t, cost_.move_pages_range_page_control,
               sim::CostKind::kMovePagesControl);
        if (phys_.node_of(pte.frame) == r.node) continue;
        if (migrate_page(t, p, pte, v, r.node, 0,
                         sim::CostKind::kMovePagesControl,
                         sim::CostKind::kMovePagesCopy,
                         &copies) == MigrateResult::kOk) {
          ++batch_moved;
          ++kstats_.pages_migrated_move;
        }
      }
    };
    p.as.page_table().for_each_run(vm::vpn_of(r.addr), vend, range_run);
    flush_copy_batch(t, copies, sim::CostKind::kMovePagesCopy);
    if (cfg_.lock_model == LockModel::kRange) {
      serialize_migration_ranged(t, p, r.addr, r.addr + r.len, entry,
                                 batch_moved,
                                 migrate_serial_per_page(cost_.range_serial_per_page));
    } else {
      serialize_migration(t, p, entry, batch_moved,
                          migrate_serial_per_page(cost_.move_pages_serial_per_page));
    }
    moved += static_cast<long>(batch_moved);
    if (tracing() && batch_moved > 0)
      trace(t, EventType::kMovePages, vm::vpn_of(r.addr), batch_moved,
            topo::kInvalidNode, r.node);
  }
  return moved;
}

SyscallResult Kernel::sys_migrate_pages(ThreadCtx& t, Pid target,
                                        topo::NodeMask from, topo::NodeMask to) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_migrate_pages(t, target, from, to);
  emit_span(t, "sys_migrate_pages", begin, "kern");
  return r;
}

SyscallResult Kernel::do_migrate_pages(ThreadCtx& t, Pid target,
                                       topo::NodeMask from, topo::NodeMask to) {
  if (target >= procs_.size()) return -kESRCH;
  if (from == 0 || to == 0) return -kEINVAL;
  Process& p = proc(target);
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  charge(t, cost_.migrate_pages_base, sim::CostKind::kMigratePagesControl);

  // node-relative remapping: i-th node of `from` -> i-th node of `to`
  // (clamped to the last `to` node, as Linux does).
  std::vector<topo::NodeId> to_nodes;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n)
    if (topo::mask_contains(to, n)) to_nodes.push_back(n);
  if (to_nodes.empty()) return -kEINVAL;
  std::vector<topo::NodeId> dest_of(topo_.num_nodes(), topo::kInvalidNode);
  {
    std::size_t i = 0;
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (topo::mask_contains(from, n)) {
        dest_of[n] = to_nodes[std::min(i, to_nodes.size() - 1)];
        ++i;
      }
    }
  }

  long migrated = 0;
  struct Pending {
    vm::Vpn vpn;
    vm::Pte* pte;  // resolved by the traversal; entries are chunk-stable
    topo::NodeId dest;
  };
  std::vector<Pending> batch;
  auto flush_batch = [&] {
    if (batch.empty()) return;
    const sim::Time entry = t.clock;
    charge(t, cost_.migrate_pages_page_locked * batch.size(),
           sim::CostKind::kMigratePagesControl);

    // Destination allocation first (strict node): pages whose node is
    // exhausted degrade before any copy bandwidth is spent and simply stay
    // where they are (they are not counted as migrated).
    struct Item {
      vm::Vpn vpn;
      vm::Pte* pte;
      topo::NodeId from;
      topo::NodeId dest;
      mem::FrameId nf;
      unsigned copy_retries = 0;
      bool copy_ok = true;
    };
    std::vector<Item> items;
    items.reserve(batch.size());
    for (const Pending& b : batch) {
      Item it{b.vpn, b.pte, phys_.node_of(b.pte->frame), b.dest,
              alloc_migration_frame(b.dest)};
      if (it.nf == mem::kInvalidFrame) {
        ++kstats_.migrations_failed;
        trace(t, EventType::kMigrateFail, b.vpn, 1, it.from, b.dest);
      } else {
        const CopyOutcome oc = copy_outcome();
        it.copy_retries = oc.retries;
        it.copy_ok = oc.ok;
      }
      items.push_back(it);
    }

    std::size_t i = 0;
    while (i < items.size()) {
      std::size_t j = i;
      std::uint64_t bytes = 0;
      while (j < items.size() && items[j].from == items[i].from &&
             items[j].dest == items[i].dest) {
        if (items[j].nf != mem::kInvalidFrame)
          bytes += (items[j].copy_retries + 1ull) * mem::kPageSize;
        ++j;
      }
      if (bytes != 0) {
        const sim::Slot c = hw_.copy(t.clock, items[i].from, items[i].dest,
                                     bytes, cost_.kernel_copy_bytes_per_us);
        t.stats.add(sim::CostKind::kMigratePagesCopy, c.finish - t.clock);
        t.clock = c.finish;
      }
      i = j;
    }

    for (const Item& it : items) {
      if (it.nf == mem::kInvalidFrame) continue;
      for (unsigned r = 0; r < it.copy_retries; ++r) {
        charge(t, cost_.copy_backoff(r), sim::CostKind::kMigratePagesControl);
        ++kstats_.migration_retries;
        trace(t, EventType::kMigrateRetry, it.vpn, 1, it.from, it.dest);
      }
      if (!it.copy_ok) {
        phys_.free(it.nf);  // rollback: original mapping untouched
        ++kstats_.migrations_failed;
        trace(t, EventType::kMigrateFail, it.vpn, 1, it.from, it.dest);
        continue;
      }
      vm::Pte* pte = it.pte;
      if (std::byte* dst = phys_.data(it.nf)) {
        if (const std::byte* src = phys_.data(pte->frame))
          std::copy_n(src, mem::kPageSize, dst);
      }
      const topo::NodeId pfrom = phys_.node_of(pte->frame);
      phys_.free(pte->frame);
      pte->frame = it.nf;
      p.placement.move(it.vpn, pfrom, phys_.node_of(it.nf));
      ++migrated;
      ++kstats_.pages_migrated_process;
    }
    stlb_invalidate(p);  // migrate site: batch commit flipped frames above
    if (cfg_.lock_model == LockModel::kRange) {
      serialize_migration_ranged(t, p, vm::addr_of(batch.front().vpn),
                                 vm::addr_of(batch.back().vpn) + mem::kPageSize,
                                 entry, batch.size(), cost_.range_serial_per_page);
    } else {
      serialize_migration(t, p, entry, batch.size(),
                          cost_.migrate_pages_serial_per_page);
    }
    batch.clear();
  };

  // In-order traversal of the whole address space (hence the higher base
  // cost but better locality / throughput than move_pages — Sec. 4.2).
  // Run-batched: present pages are visited span-by-span; pages without an
  // established chunk cannot be present, so whole absent chunks are charged
  // in bulk (each missing page still costs one PTE lookup). Bulk charging is
  // exact because charge() is linear accumulation and the only flush points
  // (batch full) occur at present pages.
  std::vector<std::pair<vm::Vpn, vm::Vpn>> ranges;
  p.as.for_each([&](const vm::Vma& vma) {
    ranges.emplace_back(vm::vpn_of(vma.start), vm::vpn_of(vma.end));
  });
  for (auto [vbegin, vend] : ranges) {
    vm::Vpn next = vbegin;  // first VPN not yet charged
    auto proc_run = [&](vm::PageRun run) {
      if (run.first > next)
        charge(t, cost_.pte_update * (run.first - next),
               sim::CostKind::kMigratePagesControl);
      vm::Vpn vpn = run.first;
      for (vm::Pte& pte : run.ptes) {
        const vm::Vpn v = vpn++;
        if (!pte.present()) {
          charge(t, cost_.pte_update, sim::CostKind::kMigratePagesControl);
          continue;
        }
        charge(t, cost_.migrate_pages_page_control - cost_.migrate_pages_page_locked,
               sim::CostKind::kMigratePagesControl);
        if (pte.flags & vm::Pte::kHuge) continue;
        const topo::NodeId n = phys_.node_of(pte.frame);
        if (dest_of[n] == topo::kInvalidNode || dest_of[n] == n) continue;
        batch.push_back({v, &pte, dest_of[n]});
        if (batch.size() >= kSyscallBatchPages) flush_batch();
      }
      next = vpn;
    };
    p.as.page_table().for_each_run(vbegin, vend, proc_run);
    if (next < vend)
      charge(t, cost_.pte_update * (vend - next),
             sim::CostKind::kMigratePagesControl);
  }
  flush_batch();
  trace(t, EventType::kMigrateProcess, 0, static_cast<std::uint64_t>(migrated));
  return migrated;
}

}  // namespace numasim::kern
