// Deterministic fault injection for the simulated kernel.
//
// A FaultPlan describes *which* failures to produce (per-node allocation
// ENOMEM, "fail the Nth allocation on node X", node capacity caps, transient
// or permanent page-copy failures, dropped TLB-shootdown IPIs, delayed
// SIGSEGV delivery); a seed fixes *when* they fire. Every decision is drawn
// from a private xoshiro Rng in call order, so an identical (plan, seed)
// pair replays an identical failure schedule bit-for-bit — the fuzzer uses
// this to turn any crash into a deterministic reproducer. With no injector
// attached (or an empty plan) the kernel consumes no randomness and charges
// exactly the same costs as before, so injection-off runs stay byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace numasim::kern {

/// Declarative description of the failures to inject. Parsed from a compact
/// spec string (see docs/failure-semantics.md):
///
///   alloc:p=0.05[,node=1]    random destination-alloc ENOMEM (optionally
///                            restricted to one node)
///   alloc:nth=5,node=1       fail exactly the 5th allocation attempt on node 1
///   cap:node=2,frames=100    cap node 2's usable frames at 100 (exhaustion)
///   copy:pt=0.1,pp=0.01      per-copy transient / permanent failure odds
///   shootdown:p=0.01         TLB-shootdown IPI lost; initiator re-sends
///   signal:p=0.02            SIGSEGV delivery delayed by the redelivery cost
///   kmigrated:p=0.05         async migration batch dropped on the daemon
///                            queue (pages stay where they are; the caller
///                            sees it only through counters/events)
///
/// Clauses are ';'-separated; later clauses override earlier ones except
/// `alloc:nth` and `cap`, which accumulate.
struct FaultPlan {
  struct NthAlloc {
    topo::NodeId node = topo::kInvalidNode;  ///< kInvalidNode = any node
    std::uint64_t nth = 0;                   ///< 1-based attempt index
  };
  struct NodeCap {
    topo::NodeId node = topo::kInvalidNode;
    std::uint64_t frames = 0;
  };

  double alloc_fail_p = 0.0;
  topo::NodeId alloc_fail_node = topo::kInvalidNode;  ///< kInvalidNode = any
  std::vector<NthAlloc> nth_allocs;
  std::vector<NodeCap> node_caps;
  double copy_transient_p = 0.0;
  double copy_permanent_p = 0.0;
  double shootdown_drop_p = 0.0;
  double signal_delay_p = 0.0;
  double kmigrated_drop_p = 0.0;

  /// True when the plan injects nothing (the injector then never draws
  /// randomness, preserving byte-identical baseline runs).
  bool empty() const {
    return alloc_fail_p == 0.0 && nth_allocs.empty() && node_caps.empty() &&
           copy_transient_p == 0.0 && copy_permanent_p == 0.0 &&
           shootdown_drop_p == 0.0 && signal_delay_p == 0.0 &&
           kmigrated_drop_p == 0.0;
  }

  /// Parse the spec format above. Throws std::invalid_argument on a
  /// malformed clause so fuzz drivers fail loudly, not silently.
  static FaultPlan parse(std::string_view spec);

  /// Round-trippable rendering (diagnostics, reproducer logs).
  std::string to_string() const;
};

/// Outcome of one injected page-copy attempt.
enum class CopyVerdict : std::uint8_t {
  kOk,         ///< copy succeeds
  kTransient,  ///< copy fails; caller may back off and retry
  kPermanent,  ///< copy fails for good; caller must roll back
};

class FaultInjector {
 public:
  /// Counters of decisions taken (diagnostics and replay audits).
  struct Counters {
    std::uint64_t allocs_checked = 0;
    std::uint64_t allocs_failed = 0;
    std::uint64_t copies_checked = 0;
    std::uint64_t copies_transient = 0;
    std::uint64_t copies_permanent = 0;
    std::uint64_t shootdowns_dropped = 0;
    std::uint64_t signals_delayed = 0;
    std::uint64_t kmigrated_dropped = 0;
  };

  FaultInjector() = default;
  FaultInjector(const FaultPlan& plan, std::uint64_t seed) { arm(plan, seed); }

  /// (Re)arm with a plan and seed; resets all counters and the decision
  /// stream, so arming twice with the same pair replays the same schedule.
  void arm(const FaultPlan& plan, std::uint64_t seed);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }
  const Counters& counters() const { return counters_; }

  /// Should this migration-destination allocation on `node` report ENOMEM?
  /// Counts every attempt (the "fail Nth alloc on node X" bookkeeping).
  bool fail_alloc(topo::NodeId node);

  /// Verdict for one page-copy attempt.
  CopyVerdict copy_verdict();

  /// Was this TLB-shootdown IPI lost (forcing a re-send)?
  bool drop_shootdown();

  /// Is this SIGSEGV delivery delayed?
  bool delay_signal();

  /// Is this kmigrated batch dropped from the daemon's work queue?
  bool drop_kmigrated();

  /// Caps from the plan, for the kernel to apply to the frame allocator.
  const std::vector<FaultPlan::NodeCap>& node_caps() const {
    return plan_.node_caps;
  }

 private:
  FaultPlan plan_;
  std::uint64_t seed_ = 0;
  sim::Rng rng_;
  Counters counters_;
  std::vector<std::uint64_t> alloc_attempts_;  ///< per node (index = NodeId)
  std::uint64_t alloc_attempts_any_ = 0;
};

}  // namespace numasim::kern
