// Dynamic hardware contention state: DRAM controllers, HT links, locks.
//
// Topology describes the machine; HwState carries the timeline resources
// that make concurrent simulated threads contend for it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/resource.hpp"
#include "topo/topology.hpp"

namespace numasim::kern {

/// A Timeline that models cache-line bouncing: when consecutive reservations
/// come from different owners (cores), an extra `bounce` penalty is added to
/// the hold time. This is the mechanism that keeps multi-threaded migration
/// from scaling linearly (paper Fig. 7, "lock contention in the kernel").
class OwnedTimeline {
 public:
  sim::Slot reserve(sim::Time now, sim::Time hold, std::uint32_t owner,
                    sim::Time bounce) {
    if (owner != last_owner_ && last_owner_ != kNoOwner) hold += bounce;
    last_owner_ = owner;
    return line_.reserve(now, hold);
  }
  sim::Time free_at() const { return line_.free_at(); }
  void reset() {
    line_.reset();
    last_owner_ = kNoOwner;
  }

 private:
  static constexpr std::uint32_t kNoOwner = static_cast<std::uint32_t>(-1);
  sim::Timeline line_;
  std::uint32_t last_owner_ = kNoOwner;
};

/// Interval-granular lock over one VMA's page range (LockModel::kRange).
///
/// A reservation claims [lo, hi) (page numbers) for `hold` ns starting no
/// earlier than `now`. It queues behind every outstanding hold that overlaps
/// the interval and conflicts (writer vs anything; readers pass each other),
/// and pays one cache-line `bounce` when the nearest conflicting hold came
/// from a different owner — the same penalty OwnedTimeline charges, but only
/// on true range collisions. Holds from the same owner/mode that touch are
/// coalesced, so the live set stays proportional to the number of concurrent
/// claimants rather than the number of operations.
class RangeLock {
 public:
  sim::Slot reserve(sim::Time now, sim::Time hold, std::uint64_t lo,
                    std::uint64_t hi, bool exclusive, std::uint32_t owner,
                    sim::Time bounce) {
    sim::Time start = now;
    bool bounced = false;
    for (const Hold& h : holds_) {
      if (h.hi <= lo || h.lo >= hi) continue;        // disjoint range
      if (!exclusive && !h.exclusive) continue;      // reader/reader overlap
      if (h.free_at > start) start = h.free_at;
      if (h.owner != owner) bounced = true;
    }
    if (bounced) hold += bounce;
    const sim::Time finish = start + hold;
    // Coalesce with same-owner/same-mode holds that touch [lo, hi).
    Hold merged{lo, hi, finish, owner, exclusive};
    for (std::size_t i = holds_.size(); i-- > 0;) {
      const Hold& h = holds_[i];
      if (h.owner != owner || h.exclusive != exclusive) continue;
      if (h.hi < merged.lo || h.lo > merged.hi) continue;  // not touching
      if (h.lo < merged.lo) merged.lo = h.lo;
      if (h.hi > merged.hi) merged.hi = h.hi;
      if (h.free_at > merged.free_at) merged.free_at = h.free_at;
      holds_.erase(holds_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    holds_.push_back(merged);
    prune(start);
    return {start, finish};
  }

  std::size_t live_holds() const { return holds_.size(); }

  void reset() { holds_.clear(); }

 private:
  struct Hold {
    std::uint64_t lo, hi;  // page-number interval [lo, hi)
    sim::Time free_at;
    std::uint32_t owner;
    bool exclusive;
  };

  // Drop holds that expired before every in-flight thread's possible arrival.
  // `start` is monotone per owner but not globally, so only prune holds that
  // are stale by a wide margin; coalescing already bounds growth.
  void prune(sim::Time start) {
    if (holds_.size() < 64) return;
    sim::Time min_free = holds_.front().free_at;
    for (const Hold& h : holds_)
      if (h.free_at < min_free) min_free = h.free_at;
    if (min_free >= start) return;
    std::erase_if(holds_, [&](const Hold& h) { return h.free_at == min_free; });
  }

  std::vector<Hold> holds_;
};

/// Outcome of a hardware data stream: when the requester could start, when
/// the data had fully moved.
struct StreamResult {
  sim::Slot slot;
  std::uint64_t bytes = 0;
};

/// Direction of a memory access relative to the device. NVM-like tiers
/// (topo::MemTier::kFar) sustain fewer write bytes per microsecond than read
/// bytes; symmetric nodes treat both identically (and take the exact same
/// arithmetic path, keeping flat machines byte-identical).
enum class MemDir : std::uint8_t { kRead, kWrite };

class HwState {
 public:
  explicit HwState(const topo::Topology& topo) : topo_(topo) {
    dram_.reserve(topo.num_nodes());
    wr_scale_.reserve(topo.num_nodes());
    wr_rate_.reserve(topo.num_nodes());
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      const auto& spec = topo.node_spec(n);
      dram_.emplace_back(spec.dram_bytes_per_us, 0);
      // Asymmetric write bandwidth is modeled on the single read-rated DRAM
      // resource by stretching write transfers: a write of B bytes occupies
      // the controller like a read of B * (read_bw / write_bw) bytes.
      const bool asym = spec.dram_write_bytes_per_us > 0 &&
                        spec.dram_write_bytes_per_us != spec.dram_bytes_per_us;
      wr_scale_.push_back(
          asym ? spec.dram_bytes_per_us / spec.dram_write_bytes_per_us : 1.0);
      wr_rate_.push_back(asym ? spec.dram_write_bytes_per_us
                              : spec.dram_bytes_per_us);
    }
    links_.reserve(topo.num_links());
    for (topo::LinkId l = 0; l < topo.num_links(); ++l) {
      links_.emplace_back(topo.link_spec(l).bytes_per_us, 0);
    }
    // Per-pair stream-rate inputs, precomputed so path_rate is O(1): the
    // local/remote latency ratio and the first-hop link bandwidth cap.
    // Same-node entries are never read (path_rate short-circuits).
    const std::size_t nn = std::size_t{topo.num_nodes()} * topo.num_nodes();
    path_scale_.assign(nn, 1.0);
    path_linkcap_.assign(nn, 0.0);
    for (topo::NodeId c = 0; c < topo.num_nodes(); ++c) {
      for (topo::NodeId m = 0; m < topo.num_nodes(); ++m) {
        if (c == m) continue;
        const double local = static_cast<double>(topo.node_spec(c).dram_latency);
        const double remote = static_cast<double>(topo.access_latency(c, m));
        path_scale_[pidx(c, m)] = local / remote;
        path_linkcap_[pidx(c, m)] = topo.link_spec(topo.route(c, m)[0]).bytes_per_us;
      }
    }
  }

  /// Stream `bytes` between DRAM on `mem_node` and a core on `core_node`,
  /// rate-capped at `max_rate` bytes/us (the requester's engine: a core's
  /// load unit, the kernel copy loop, an SSE memcpy...). Reserves the DRAM
  /// controller and every HT link on the route for their own service times
  /// (simultaneous resource possession). Returns the requester-visible slot:
  /// finish covers the slowest of requester time and resource service.
  /// `dir` is the direction at the device (kWrite streams pay the node's
  /// write bandwidth on asymmetric tiers).
  sim::Slot stream(sim::Time now, topo::NodeId core_node, topo::NodeId mem_node,
                   std::uint64_t bytes, double max_rate,
                   MemDir dir = MemDir::kRead);

  /// Copy `bytes` from DRAM on `from` to DRAM on `to` (page migration /
  /// memcpy between buffers): both controllers plus the route are busy.
  /// The source side is a read, the destination a write — a copy into an
  /// asymmetric far tier runs at the destination's write rate.
  sim::Slot copy(sim::Time now, topo::NodeId from, topo::NodeId to,
                 std::uint64_t bytes, double engine_rate);

  sim::BandwidthResource& dram(topo::NodeId n) { return dram_[n]; }
  sim::BandwidthResource& link(topo::LinkId l) { return links_[l]; }
  const topo::Topology& topo() const { return topo_; }

  /// Effective uncontended streaming rate (bytes/us) between a core on
  /// `core_node` and memory on `mem_node`: the per-hop latency penalty lowers
  /// a single stream's sustainable bandwidth (this realizes the NUMA factor).
  double path_rate(topo::NodeId core_node, topo::NodeId mem_node,
                   double engine_rate, MemDir dir = MemDir::kRead) const;

 private:
  /// Controller-occupancy bytes for a transfer of `bytes` in direction
  /// `dir` at node `n`. The symmetric case returns `bytes` untouched (no
  /// floating-point round trip), so flat machines stay byte-identical.
  std::uint64_t device_bytes(topo::NodeId n, std::uint64_t bytes,
                             MemDir dir) const {
    if (dir == MemDir::kRead || wr_scale_[n] == 1.0) return bytes;
    return static_cast<std::uint64_t>(static_cast<double>(bytes) *
                                          wr_scale_[n] +
                                      0.5);
  }

  std::size_t pidx(topo::NodeId a, topo::NodeId b) const {
    return std::size_t{a} * topo_.num_nodes() + b;
  }

  const topo::Topology& topo_;
  std::vector<sim::BandwidthResource> dram_;
  std::vector<sim::BandwidthResource> links_;
  std::vector<double> wr_scale_;  ///< read_bw / write_bw per node (1.0 = sym)
  std::vector<double> wr_rate_;   ///< effective write bandwidth per node
  std::vector<double> path_scale_;    ///< n x n local/remote latency ratio
  std::vector<double> path_linkcap_;  ///< n x n first-hop link bytes/us
};

}  // namespace numasim::kern
