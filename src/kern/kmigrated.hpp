// Per-node asynchronous migration daemons ("kmigrated").
//
// Each NUMA node runs one daemon thread that drains a work queue of
// migration batches. Submitters (sys_move_pages_async, the next-touch
// migrate-ahead window) pay only a small enqueue cost; the page-table
// surgery and copies are charged to the daemon's own timeline, so the
// submitting thread returns immediately while the batch completes in the
// background of simulated time — the NOMAD-style decoupling of page copies
// from the faulting thread.
//
// Like every other resource in the simulator, a daemon is a Timeline: a
// batch submitted at `t` starts no earlier than `t + wakeup` and no earlier
// than the daemon's previous batch finished. The kernel applies the
// page-table mutations eagerly (the simulation has no host concurrency) but
// stamps their completion at the daemon's slot end, which is what the
// queue-depth gauge, the batch-latency histogram and kmigrated_drain()
// observe.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/resource.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace numasim::kern {

class Kmigrated {
 public:
  explicit Kmigrated(unsigned num_nodes)
      : daemons_(num_nodes), inflight_(num_nodes) {}

  unsigned num_nodes() const { return static_cast<unsigned>(daemons_.size()); }

  /// Earliest instant node `n`'s daemon can start a new batch.
  sim::Time node_free_at(topo::NodeId n) const { return daemons_[n].free_at(); }

  /// Claim node `node`'s daemon from `start` (which must be >= both the
  /// submit instant and node_free_at) for `service` ns. Returns the slot.
  sim::Slot submit(topo::NodeId node, sim::Time start, sim::Time service) {
    const sim::Slot slot = daemons_[node].reserve(start, service);
    inflight_[node].push_back(slot.finish);
    return slot;
  }

  /// Instant at which every daemon is idle.
  sim::Time drained_at() const {
    sim::Time t = 0;
    for (const sim::Timeline& d : daemons_)
      if (d.free_at() > t) t = d.free_at();
    return t;
  }

  /// Batches of node `node` still completing after `now`.
  unsigned queue_depth(topo::NodeId node, sim::Time now) const {
    auto& v = inflight_[node];
    std::erase_if(v, [now](sim::Time f) { return f <= now; });
    return static_cast<unsigned>(v.size());
  }

  /// Batches on any node still completing after `now`.
  unsigned total_inflight(sim::Time now) const {
    unsigned total = 0;
    for (topo::NodeId n = 0; n < num_nodes(); ++n) total += queue_depth(n, now);
    return total;
  }

  void reset() {
    for (sim::Timeline& d : daemons_) d.reset();
    for (auto& v : inflight_) v.clear();
  }

 private:
  std::vector<sim::Timeline> daemons_;
  // Completion instants of submitted batches; pruned lazily by queue_depth.
  mutable std::vector<std::vector<sim::Time>> inflight_;
};

}  // namespace numasim::kern
