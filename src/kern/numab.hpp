// Automatic NUMA balancing: configuration and per-process sampling state.
//
// Models Linux's AutoNUMA machinery. A per-process scan clock (task_numa_work)
// periodically unmaps the hardware access bits over a sliding window of the
// address space and tags the PTEs with a hint flag; the next ordinary access
// takes a *NUMA hint fault*, which records where the task touched memory and
// — after two-reference confirmation, like numa_migrate_prep — promotes the
// page toward the faulting node through the kmigrated daemons.
//
// The kernel side (this file + the hooks in Kernel) only observes and moves
// pages. Task placement lives above the kernel in sched::Balancer, which
// consumes the decayed per-node fault scores exposed by
// Kernel::numab_task_faults / numab_preferred_node.
//
// Everything here is configuration and plain state; the logic is in
// src/kern/numab.cpp. With `enabled == false` no code path charges time,
// mutates a PTE, or emits an event — runs are event-for-event identical to a
// kernel without the subsystem.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "vm/address_space.hpp"

namespace numasim::kern {

using ThreadId = std::uint32_t;

/// Task-placement policy applied by sched::Balancer.
enum class NumaPolicy : std::uint8_t {
  kNone = 0,           ///< page placement only; never move threads
  kPreferredNode = 1,  ///< move each thread toward its hottest node
  kInterchange = 2,    ///< IMAR-style: swap the pair with the best gain
};

const char* numa_policy_name(NumaPolicy p);

struct NumaBalancingConfig {
  /// Master switch. Off (the default) means the subsystem is inert: no scan
  /// ticks, no hint bits, no extra cost — byte-identical to a pre-AutoNUMA
  /// kernel.
  bool enabled = false;

  /// Scan clock period: one scan window fires per process at most once per
  /// period, driven from task context on the access path (task_numa_work).
  sim::Time scan_period = sim::microseconds(200);

  /// Pages tagged per scan window (sysctl numa_balancing_scan_size, which is
  /// in MB on Linux; pages here since the simulated spaces are small).
  std::uint64_t scan_size_pages = 256;

  /// Require two consecutive hint faults from the same node before promoting
  /// a remote page (numa_migrate_prep's last-CPU check). Off = migrate on
  /// first remote fault.
  bool two_reference = true;

  /// Fraction of a task's decayed fault mass its top node must hold before
  /// the balancer considers it the preferred node.
  double hot_threshold = 0.40;

  /// Minimum interval between two balancer evaluation passes.
  sim::Time balance_period = sim::microseconds(800);

  /// Task-placement policy (page placement is always on when enabled).
  NumaPolicy policy = NumaPolicy::kNone;
};

/// Decaying per-node hint-fault scores of one task (numa_faults_memory).
struct NumabTaskStats {
  /// Score per node; halved once per elapsed scan period (lazy decay).
  std::vector<double> faults;
  /// Instant up to which `faults` has been decayed.
  sim::Time decayed_to = 0;
  /// Lifetime (undecayed) hint-fault count.
  std::uint64_t total_faults = 0;
};

/// Per-process AutoNUMA state, embedded in kern::Process.
struct NumabState {
  /// The scan clock arms on the first access after enablement; the first
  /// window fires one scan_period later (mirrors task_numa_work, which
  /// delays the initial scan rather than stalling the first fault).
  bool scan_armed = false;
  sim::Time next_scan_at = 0;
  /// Resume address of the sliding scan window (mm->numa_scan_offset).
  vm::Vaddr scan_cursor = 0;
  /// Per-task fault statistics, keyed by tid (ordered: deterministic).
  std::map<ThreadId, NumabTaskStats> tasks;
  /// Promotions confirmed by the fault path, flushed to kmigrated in
  /// contiguous same-target batches at the end of the access that found them.
  std::vector<std::pair<vm::Vpn, topo::NodeId>> pending;
};

}  // namespace numasim::kern
