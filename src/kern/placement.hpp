// Compressed per-process page-placement metadata.
//
// For every established page-table chunk (512 pages) this keeps one small
// row of per-node present-page counts. The kernel bumps the counters at the
// handful of sites that map, remap, or unmap a frame, and range placement
// queries (pages_on_node and friends) then read one row per fully-covered
// chunk instead of touching every PTE — O(chunks + edge pages) instead of
// O(pages) over million-page address spaces. Kernel::validate() recomputes
// the rows from the page table and cross-checks, so a missed update site is
// an immediate test failure, not a silently wrong answer.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/topology.hpp"
#include "vm/page_table.hpp"

namespace numasim::kern {

class PlacementCounts {
 public:
  /// Size the per-chunk rows; must run before the first inc().
  void init(unsigned num_nodes) { nodes_ = num_nodes; }

  /// A page became present on `node`.
  void inc(vm::Vpn vpn, topo::NodeId node) { ++row(vpn)[node]; }

  /// A present page went away (munmap, madvise-dontneed, teardown).
  void dec(vm::Vpn vpn, topo::NodeId node) { --row(vpn)[node]; }

  /// A present page's home frame moved between nodes (any migration path).
  void move(vm::Vpn vpn, topo::NodeId from, topo::NodeId to) {
    if (from == to) return;
    std::uint32_t* r = row(vpn);
    --r[from];
    ++r[to];
  }

  /// Present pages on `node` in the chunk with key `chunk_key`
  /// (vpn >> PageTable::kChunkBits). Chunks never touched count zero.
  std::uint32_t chunk_count(std::uint64_t chunk_key, topo::NodeId node) const {
    const auto it = rows_.find(chunk_key);
    return it == rows_.end() ? 0u : it->second[node];
  }

  unsigned num_nodes() const { return nodes_; }

  /// Visit every tracked chunk row (audit support).
  template <typename Fn>
  void for_each_row(Fn&& fn) const {
    for (const auto& [key, counts] : rows_) fn(key, counts);
  }

 private:
  std::uint32_t* row(vm::Vpn vpn) {
    const std::uint64_t key = vpn >> vm::PageTable::kChunkBits;
    // One-entry cache: faults and migrations sweep pages in order, so the
    // same chunk row is hit hundreds of times in a row. Row storage lives in
    // map nodes (address-stable across rehash) and is sized exactly once, so
    // the cached data pointer stays valid.
    if (key == cached_key_ && cached_row_ != nullptr) return cached_row_;
    std::vector<std::uint32_t>& r = rows_[key];
    if (r.empty()) r.assign(nodes_, 0);
    cached_key_ = key;
    cached_row_ = r.data();
    return cached_row_;
  }

  unsigned nodes_ = 0;
  std::uint64_t cached_key_ = ~0ull;
  std::uint32_t* cached_row_ = nullptr;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> rows_;
};

}  // namespace numasim::kern
