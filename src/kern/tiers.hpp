// Memory-tier policy knobs (KernelConfig::tiers).
//
// A tiered machine (topo::MemTier on at least one node) gets two extra
// placement loops on top of AutoNUMA:
//
//  * promotion — numab hint faults on a page sitting on a slower tier pick a
//    faster-tier target (two-reference confirmed, flushed through kmigrated
//    with the configured migration engine, preferably transactional);
//  * demotion — cold pages (kNumaHint set but no refault for
//    `demote_after_windows` scan windows) walk down one tier when a fast
//    node crosses its high watermark, and directly when a migration
//    allocation on a full fast node would otherwise return ENOMEM.
//
// With `enabled == false` (the default) every tier code path is skipped and
// flat-DRAM machines behave byte-identically to the pre-tier simulator.
// See docs/memory-tiers.md for the full state machine.
#pragma once

#include <cstdint>

namespace numasim::kern {

struct TierConfig {
  /// Master switch for tier-aware promotion/demotion. Off by default;
  /// turning it on without a tiered topology is a no-op.
  bool enabled = false;

  /// Enable demotion (both the watermark-driven daemon pass and direct
  /// demotion under allocation pressure). With demotion off, a full fast
  /// node fails migrations into it with per-page ENOMEM — the contrast leg
  /// of bench/ablation_tiering.
  bool demotion = true;

  /// Occupancy fraction of a fast node that triggers a demotion pass at the
  /// next numab scan tick (the "high watermark" of the demotion daemon).
  double high_watermark_frac = 0.90;

  /// Scan windows a page must sit untouched (kNumaHint armed, no refault)
  /// before the daemon pass considers it cold enough to demote.
  unsigned demote_after_windows = 2;

  /// Upper bound on pages demoted per pass (daemon tick or one direct
  /// demotion episode) — keeps a single allocation from stalling behind an
  /// unbounded eviction walk.
  std::uint64_t demote_batch_pages = 64;
};

}  // namespace numasim::kern
