// Per-thread software TLB: memoized extent descriptors with generation-based
// invalidation.
//
// Kernel::access() / access_strided() walk every PTE of the touched extent on
// every call — correct, but at million-page scale the host-side walk dominates
// even when nothing changed since the last touch (the same observation Mitosis
// makes about real page walks). The SoftTlb caches the *result* of a walk that
// found a fully-mapped, same-node, flag-quiet extent as one descriptor; a
// later access covered by a valid descriptor skips the walk and charges one
// stream through the identical flush_run arithmetic, so simulated cost and
// AccessResult are bit-identical to the slow path.
//
// Coherence is generation-based: each Process carries a `mapping_gen` counter
// bumped (via Kernel::stlb_invalidate) at every site that can narrow what a
// cached descriptor promises — map/unmap/remap, mprotect, madvise surgery,
// policy changes, every migration commit path, numab tagging scans, and
// txn-migration arming. A descriptor is valid only while its stamped
// generation equals the process's current one, so stale entries miss without
// any walk-back; over-bumping costs only extra misses, never correctness.
// Kernel::validate(const ThreadCtx&) audits every current-generation entry
// against the page table and throws on drift, so a forgotten bump site fails
// loudly in any test that validates.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "topo/topology.hpp"
#include "vm/pte.hpp"
#include "vm/page_table.hpp"

namespace numasim::kern {

/// Small set-associative cache of extent descriptors, one per ThreadCtx.
/// Host-side bookkeeping only: lookups/insertions charge nothing and draw no
/// randomness, so simulated behaviour is independent of hits and misses.
///
/// The set array is allocated on first insert: ThreadCtx objects are created
/// in bulk (fork-join workers, daemon scratch contexts, per-call test
/// contexts) and most never access memory repeatedly, so an empty cache must
/// cost one null pointer, not ~2 KB of zeroed ways per construction.
class SoftTlb {
 public:
  SoftTlb() = default;
  SoftTlb(SoftTlb&&) noexcept = default;
  SoftTlb& operator=(SoftTlb&&) noexcept = default;
  SoftTlb(const SoftTlb& o) { *this = o; }
  SoftTlb& operator=(const SoftTlb& o) {
    if (this == &o) return *this;
    if (o.sets_ == nullptr) {
      sets_.reset();
    } else {
      if (sets_ == nullptr) sets_ = std::make_unique<Set[]>(kSets);
      std::copy(o.sets_.get(), o.sets_.get() + kSets, sets_.get());
    }
    return *this;
  }

  static constexpr std::size_t kSets = 16;
  static constexpr std::size_t kWays = 4;

  struct Entry {
    vm::Vpn first = 0;          ///< first page of the cached extent
    std::uint32_t pages = 0;    ///< extent length; 0 marks an empty way
    std::uint32_t pid = 0;      ///< owning process (ThreadCtx outlives procs)
    std::uint64_t gen = 0;      ///< Process::mapping_gen at fill time
    topo::NodeId node = 0;      ///< home node of every page in the extent
    std::uint8_t prot = 0;      ///< kReadOk / kWriteOk bits proven by the walk
  };

  static constexpr std::uint8_t kReadOk = 1u << 0;
  static constexpr std::uint8_t kWriteOk = 1u << 1;

  static constexpr std::uint8_t prot_bits(vm::Prot want) {
    std::uint8_t b = 0;
    if (vm::prot_allows(want, vm::Prot::kRead)) b |= kReadOk;
    if (vm::prot_allows(want, vm::Prot::kWrite)) b |= kWriteOk;
    return b;
  }

  /// Descriptor covering [vpn, vpn_end) for process `pid` at generation
  /// `gen` whose proven permissions include `want`; nullptr on miss.
  const Entry* lookup(std::uint32_t pid, std::uint64_t gen, vm::Vpn vpn,
                      vm::Vpn vpn_end, vm::Prot want) const {
    if (sets_ == nullptr) return nullptr;
    const std::uint8_t need = prot_bits(want);
    const Set& s = sets_[set_of(vpn)];
    for (const Entry& e : s.ways) {
      if (e.pages != 0 && e.pid == pid && e.gen == gen && e.first <= vpn &&
          vpn_end <= e.first + e.pages && (e.prot & need) == need) {
        return &e;
      }
    }
    return nullptr;
  }

  /// Install a descriptor (round-robin victim; an entry with the same pid and
  /// start is overwritten in place so re-proving a wider prot upgrades it).
  void insert(const Entry& e) {
    if (sets_ == nullptr) sets_ = std::make_unique<Set[]>(kSets);
    Set& s = sets_[set_of(e.first)];
    for (Entry& w : s.ways) {
      if (w.pages != 0 && w.pid == e.pid && w.first == e.first) {
        w = e;
        return;
      }
    }
    s.ways[s.victim % kWays] = e;
    ++s.victim;
  }

  /// Visit every cached entry (the validate() audit).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (sets_ == nullptr) return;
    for (std::size_t i = 0; i < kSets; ++i)
      for (const Entry& e : sets_[i].ways)
        if (e.pages != 0) fn(e);
  }

  void clear() { sets_.reset(); }

 private:
  struct Set {
    Entry ways[kWays];
    std::uint32_t victim = 0;
  };

  static constexpr std::size_t set_of(vm::Vpn vpn) {
    // Fibonacci hash of the extent's start page; repeated accesses to the
    // same extent index the same set, distinct hot extents spread out.
    return static_cast<std::size_t>((vpn * 0x9E3779B97F4A7C15ull) >> 60) %
           kSets;
  }

  std::unique_ptr<Set[]> sets_;
};

}  // namespace numasim::kern
