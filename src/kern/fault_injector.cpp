#include "kern/fault_injector.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace numasim::kern {

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view clause) {
  throw std::invalid_argument{"FaultPlan: " + std::string(what) + " in clause '" +
                              std::string(clause) + "'"};
}

double parse_double(std::string_view v, std::string_view clause) {
  // std::from_chars<double> is available on gcc>=11; fall back via stod copy.
  try {
    std::size_t used = 0;
    std::string s(v);
    const double d = std::stod(s, &used);
    if (used != s.size()) bad_spec("trailing junk in number", clause);
    return d;
  } catch (const std::invalid_argument&) {
    bad_spec("malformed number", clause);
  } catch (const std::out_of_range&) {
    bad_spec("number out of range", clause);
  }
}

std::uint64_t parse_u64(std::string_view v, std::string_view clause) {
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size())
    bad_spec("malformed integer", clause);
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Split `text` on `sep`, trimming surrounding whitespace from each part.
std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    parts.push_back(trim(text.substr(0, pos)));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (std::string_view clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) bad_spec("missing ':'", clause);
    const std::string_view kind = clause.substr(0, colon);

    // key=value pairs after the kind.
    double p = -1.0, pt = -1.0, pp = -1.0;
    std::uint64_t nth = 0, frames = 0;
    topo::NodeId node = topo::kInvalidNode;
    bool have_frames = false;
    for (std::string_view kv : split(clause.substr(colon + 1), ',')) {
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) bad_spec("missing '='", clause);
      const std::string_view key = kv.substr(0, eq);
      const std::string_view val = kv.substr(eq + 1);
      if (key == "p") p = parse_double(val, clause);
      else if (key == "pt") pt = parse_double(val, clause);
      else if (key == "pp") pp = parse_double(val, clause);
      else if (key == "nth") nth = parse_u64(val, clause);
      else if (key == "node") node = static_cast<topo::NodeId>(parse_u64(val, clause));
      else if (key == "frames") { frames = parse_u64(val, clause); have_frames = true; }
      else bad_spec("unknown key", clause);
    }

    if (kind == "alloc") {
      if (nth != 0) {
        plan.nth_allocs.push_back({node, nth});
      } else if (p >= 0.0) {
        plan.alloc_fail_p = p;
        plan.alloc_fail_node = node;
      } else {
        bad_spec("alloc needs p= or nth=", clause);
      }
    } else if (kind == "cap") {
      if (node == topo::kInvalidNode || !have_frames)
        bad_spec("cap needs node= and frames=", clause);
      plan.node_caps.push_back({node, frames});
    } else if (kind == "copy") {
      if (pt < 0.0 && pp < 0.0) bad_spec("copy needs pt= and/or pp=", clause);
      if (pt >= 0.0) plan.copy_transient_p = pt;
      if (pp >= 0.0) plan.copy_permanent_p = pp;
    } else if (kind == "shootdown") {
      if (p < 0.0) bad_spec("shootdown needs p=", clause);
      plan.shootdown_drop_p = p;
    } else if (kind == "signal") {
      if (p < 0.0) bad_spec("signal needs p=", clause);
      plan.signal_delay_p = p;
    } else if (kind == "kmigrated") {
      if (p < 0.0) bad_spec("kmigrated needs p=", clause);
      plan.kmigrated_drop_p = p;
    } else {
      bad_spec("unknown fault point", clause);
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[96];
  auto append = [&out](const char* s) {
    if (!out.empty()) out += ';';
    out += s;
  };
  if (alloc_fail_p > 0.0) {
    if (alloc_fail_node != topo::kInvalidNode)
      std::snprintf(buf, sizeof buf, "alloc:p=%g,node=%u", alloc_fail_p,
                    alloc_fail_node);
    else
      std::snprintf(buf, sizeof buf, "alloc:p=%g", alloc_fail_p);
    append(buf);
  }
  for (const NthAlloc& n : nth_allocs) {
    if (n.node != topo::kInvalidNode)
      std::snprintf(buf, sizeof buf, "alloc:nth=%llu,node=%u",
                    static_cast<unsigned long long>(n.nth), n.node);
    else
      std::snprintf(buf, sizeof buf, "alloc:nth=%llu",
                    static_cast<unsigned long long>(n.nth));
    append(buf);
  }
  for (const NodeCap& c : node_caps) {
    std::snprintf(buf, sizeof buf, "cap:node=%u,frames=%llu", c.node,
                  static_cast<unsigned long long>(c.frames));
    append(buf);
  }
  if (copy_transient_p > 0.0 || copy_permanent_p > 0.0) {
    std::snprintf(buf, sizeof buf, "copy:pt=%g,pp=%g", copy_transient_p,
                  copy_permanent_p);
    append(buf);
  }
  if (shootdown_drop_p > 0.0) {
    std::snprintf(buf, sizeof buf, "shootdown:p=%g", shootdown_drop_p);
    append(buf);
  }
  if (signal_delay_p > 0.0) {
    std::snprintf(buf, sizeof buf, "signal:p=%g", signal_delay_p);
    append(buf);
  }
  if (kmigrated_drop_p > 0.0) {
    std::snprintf(buf, sizeof buf, "kmigrated:p=%g", kmigrated_drop_p);
    append(buf);
  }
  return out;
}

void FaultInjector::arm(const FaultPlan& plan, std::uint64_t seed) {
  plan_ = plan;
  seed_ = seed;
  rng_.reseed(seed);
  counters_ = Counters{};
  alloc_attempts_.clear();
  alloc_attempts_any_ = 0;
}

bool FaultInjector::fail_alloc(topo::NodeId node) {
  ++counters_.allocs_checked;
  ++alloc_attempts_any_;
  if (node != topo::kInvalidNode) {
    if (alloc_attempts_.size() <= node) alloc_attempts_.resize(node + 1, 0);
    ++alloc_attempts_[node];
  }

  bool fail = false;
  for (const FaultPlan::NthAlloc& n : plan_.nth_allocs) {
    if (n.nth == 0) continue;
    const std::uint64_t count = n.node == topo::kInvalidNode
                                    ? alloc_attempts_any_
                                    : (node == n.node ? alloc_attempts_[node] : 0);
    if (count == n.nth) fail = true;
  }
  if (plan_.alloc_fail_p > 0.0 &&
      (plan_.alloc_fail_node == topo::kInvalidNode ||
       plan_.alloc_fail_node == node)) {
    // Draw even when already failing via nth so the decision stream depends
    // only on the call sequence, not on which rule fired first.
    if (rng_.chance(plan_.alloc_fail_p)) fail = true;
  }
  if (fail) ++counters_.allocs_failed;
  return fail;
}

CopyVerdict FaultInjector::copy_verdict() {
  if (plan_.copy_transient_p == 0.0 && plan_.copy_permanent_p == 0.0)
    return CopyVerdict::kOk;
  ++counters_.copies_checked;
  const double u = rng_.uniform();
  if (u < plan_.copy_permanent_p) {
    ++counters_.copies_permanent;
    return CopyVerdict::kPermanent;
  }
  if (u < plan_.copy_permanent_p + plan_.copy_transient_p) {
    ++counters_.copies_transient;
    return CopyVerdict::kTransient;
  }
  return CopyVerdict::kOk;
}

bool FaultInjector::drop_shootdown() {
  if (plan_.shootdown_drop_p == 0.0) return false;
  const bool drop = rng_.chance(plan_.shootdown_drop_p);
  if (drop) ++counters_.shootdowns_dropped;
  return drop;
}

bool FaultInjector::delay_signal() {
  if (plan_.signal_delay_p == 0.0) return false;
  const bool delay = rng_.chance(plan_.signal_delay_p);
  if (delay) ++counters_.signals_delayed;
  return delay;
}

bool FaultInjector::drop_kmigrated() {
  if (plan_.kmigrated_drop_p == 0.0) return false;
  const bool drop = rng_.chance(plan_.kmigrated_drop_p);
  if (drop) ++counters_.kmigrated_dropped;
  return drop;
}

}  // namespace numasim::kern
