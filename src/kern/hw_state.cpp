#include "kern/hw_state.hpp"

#include <algorithm>

namespace numasim::kern {

double HwState::path_rate(topo::NodeId core_node, topo::NodeId mem_node,
                          double engine_rate, MemDir dir) const {
  // A single request stream sustains fewer bytes per unit time the farther
  // the memory is: outstanding-request capacity divided by round-trip
  // latency. We scale the requester's local rate by the latency ratio
  // (local / remote), which yields exactly the paper's NUMA factor of
  // 1.2-1.4 for one and two hops on the default machine. The ratio and the
  // first-hop link cap are precomputed per node pair (pidx) — this runs
  // once per stream, i.e. per contiguous access run and per fault.
  double rate = engine_rate;
  if (core_node != mem_node) {
    const std::size_t i = pidx(core_node, mem_node);
    rate = engine_rate * path_scale_[i];
    rate = std::min(rate, path_linkcap_[i]);
  }
  const double device = dir == MemDir::kWrite
                            ? wr_rate_[mem_node]
                            : topo_.node_spec(mem_node).dram_bytes_per_us;
  return std::min(rate, device);
}

sim::Slot HwState::stream(sim::Time now, topo::NodeId core_node,
                          topo::NodeId mem_node, std::uint64_t bytes,
                          double max_rate, MemDir dir) {
  const double rate = path_rate(core_node, mem_node, max_rate, dir);
  const sim::Time requester = static_cast<sim::Time>(
      static_cast<double>(bytes) * 1000.0 / rate + 0.5);

  // Gather involved resources, find the common start, reserve each for its
  // own service time.
  sim::Time start = now;
  start = std::max(start, dram_[mem_node].free_at());
  const auto route = topo_.route(core_node, mem_node);
  for (topo::LinkId l : route) start = std::max(start, links_[l].free_at());

  sim::Time finish = start + requester;
  {
    const std::uint64_t dev = device_bytes(mem_node, bytes, dir);
    const sim::Time svc = dram_[mem_node].duration(dev);
    dram_[mem_node].transfer(start, dev);  // advances its free_at
    finish = std::max(finish, start + svc);
  }
  for (topo::LinkId l : route) {
    const sim::Time svc = links_[l].duration(bytes);
    links_[l].transfer(start, bytes);
    finish = std::max(finish, start + svc);
  }
  return {start, finish};
}

sim::Slot HwState::copy(sim::Time now, topo::NodeId from, topo::NodeId to,
                        std::uint64_t bytes, double engine_rate) {
  double rate = engine_rate;
  rate = std::min(rate, topo_.node_spec(from).dram_bytes_per_us);
  rate = std::min(rate, wr_rate_[to]);  // destination side is a write
  const auto route = topo_.route(from, to);
  for (topo::LinkId l : route) rate = std::min(rate, topo_.link_spec(l).bytes_per_us);
  const sim::Time requester =
      static_cast<sim::Time>(static_cast<double>(bytes) * 1000.0 / rate + 0.5);

  sim::Time start = now;
  start = std::max(start, dram_[from].free_at());
  if (to != from) start = std::max(start, dram_[to].free_at());
  for (topo::LinkId l : route) start = std::max(start, links_[l].free_at());

  sim::Time finish = start + requester;
  dram_[from].transfer(start, bytes);
  finish = std::max(finish, start + dram_[from].duration(bytes));
  if (to != from) {
    const std::uint64_t dev = device_bytes(to, bytes, MemDir::kWrite);
    dram_[to].transfer(start, dev);
    finish = std::max(finish, start + dram_[to].duration(dev));
  }
  for (topo::LinkId l : route) {
    links_[l].transfer(start, bytes);
    finish = std::max(finish, start + links_[l].duration(bytes));
  }
  return {start, finish};
}

}  // namespace numasim::kern
