// Linux-style error returns for the simulated system calls.
//
// Syscalls return 0 (or a positive count) on success and -E* on failure,
// exactly like the real ABI, so user-level code ports over unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace numasim::kern {

/// Thrown when a simulated thread takes an unhandleable SIGSEGV (no handler
/// registered, fault inside a handler, or a retry storm) — the equivalent of
/// the process being killed.
class SegfaultError : public std::runtime_error {
 public:
  explicit SegfaultError(std::uint64_t addr)
      : std::runtime_error("simulated SIGSEGV at address " + std::to_string(addr)),
        fault_addr(addr) {}
  std::uint64_t fault_addr;
};

inline constexpr int kEPERM = 1;
inline constexpr int kESRCH = 3;
inline constexpr int kEIO = 5;
inline constexpr int kEAGAIN = 11;
inline constexpr int kENOMEM = 12;
inline constexpr int kEACCES = 13;
inline constexpr int kEFAULT = 14;
inline constexpr int kEBUSY = 16;
inline constexpr int kEINVAL = 22;
inline constexpr int kENOSYS = 38;

/// Per-page status codes reported by move_pages (positive = node id).
inline constexpr int kStatusNotPresent = -kEFAULT;

}  // namespace numasim::kern
