// Linux-style error returns for the simulated system calls.
//
// Syscalls return 0 (or a positive count) on success and -E* on failure,
// exactly like the real ABI, so user-level code ports over unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace numasim::kern {

/// Thrown when a simulated thread takes an unhandleable SIGSEGV (no handler
/// registered, fault inside a handler, or a retry storm) — the equivalent of
/// the process being killed.
class SegfaultError : public std::runtime_error {
 public:
  explicit SegfaultError(std::uint64_t addr)
      : std::runtime_error("simulated SIGSEGV at address " + std::to_string(addr)),
        fault_addr(addr) {}
  std::uint64_t fault_addr;
};

inline constexpr int kEPERM = 1;
inline constexpr int kESRCH = 3;
inline constexpr int kEIO = 5;
inline constexpr int kEAGAIN = 11;
inline constexpr int kENOMEM = 12;
inline constexpr int kEACCES = 13;
inline constexpr int kEFAULT = 14;
inline constexpr int kEBUSY = 16;
inline constexpr int kEINVAL = 22;
inline constexpr int kENOSYS = 38;

/// Per-page status codes reported by move_pages (positive = node id).
inline constexpr int kStatusNotPresent = -kEFAULT;

/// Typed syscall return value, unifying the historical int-vs-long mix.
///
/// The simulated syscalls keep the Linux ABI encoding — a single signed
/// word that is either a non-negative success count or a negated E* code —
/// but wrap it so call sites stop decoding the convention by hand:
///
///     auto r = k.sys_move_pages(t, pages, nodes, status);
///     if (!r.ok()) return r.error();   // positive errno, e.g. kEINVAL
///     use(r.count());                  // pages moved (0 for void-ish calls)
///
/// Conversions are implicit in both directions (raw long <-> SyscallResult)
/// so the type threads through existing `== 0` / `== -kEINVAL` comparisons
/// and raw-long code unchanged.
class SyscallResult {
 public:
  constexpr SyscallResult(long raw = 0) : v_(raw) {}  // NOLINT: ABI adapter

  /// True on success (raw value >= 0).
  constexpr bool ok() const { return v_ >= 0; }
  /// Positive errno on failure, 0 on success.
  constexpr int error() const { return v_ < 0 ? static_cast<int>(-v_) : 0; }
  /// Success count (pages moved, bytes, ...); 0 on failure.
  constexpr long count() const { return v_ >= 0 ? v_ : 0; }

  /// Raw Linux ABI value (negative errno or count).
  constexpr operator long() const { return v_; }  // NOLINT: ABI adapter

 private:
  long v_;
};

}  // namespace numasim::kern
