// Transactional shadow-copy page migration (NOMAD-style).
//
// The stop-and-copy paths isolate a page, copy it, and remap it while the
// owning task stalls on the migration critical section. The transactional
// migrator instead copies the page to a *shadow frame* while the mapping
// stays fully accessible, then write-protects it, re-verifies that the page
// stayed clean (the simulated dirty bit: a write-generation stamp
// snapshotted at the copy), and commits with an atomic PTE flip + local
// flush. A page dirtied during the copy window is re-copied under a bounded
// retry budget with exponential backoff in simulated time; exhausting the
// budget (or a permanent injected copy fault) releases the shadow frame and
// degrades gracefully to the existing stop-and-copy path — or defers the
// page entirely, for numab promotion — instead of failing the batch.
//
//     kShadowCopy ──► kWriteProtect ──► kVerifyClean ──► kCommitFlip ──► kCommitted
//          ▲                                 │ dirty          │ dirty
//          └────────────── kDirtyRetry ◄─────┴────────────────┘
//                               │ budget exhausted / permanent fault
//                               ▼
//                            kAbort ──► kDegraded
//
// The state machine is exposed step-wise so tests can interleave a racing
// writer between any two states; Kernel::do_migrate_page_txn drives it to a
// terminal state in one call. A write fault on a kTxn-protected page clears
// the protection immediately (the writer never waits); the verify step then
// observes the bumped write generation and loops through kDirtyRetry.
#pragma once

#include <cstdint>

#include "mem/phys.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"
#include "vm/page_table.hpp"

namespace numasim::kern {

class Kernel;
struct ThreadCtx;

/// Which engine Kernel's migration paths use. Selected via
/// KernelConfig::migration_mode; kStopAndCopy is the paper-faithful default
/// and runs event-for-event identical to kernels predating this module.
enum class MigrationMode : std::uint8_t {
  kStopAndCopy,    ///< isolate -> copy -> remap, task stalls (default)
  kTransactional,  ///< shadow copy while mapped, verify, atomic flip
};

const char* migration_mode_name(MigrationMode m);

/// States of one transactional page migration.
enum class TxnState : std::uint8_t {
  kShadowCopy,    ///< admission + shadow-frame alloc + first copy
  kWriteProtect,  ///< clear the hw write bit, arm kTxn
  kVerifyClean,   ///< dirty-bit check against the copy-window snapshot
  kCommitFlip,    ///< re-check + atomic PTE flip + local flush
  kDirtyRetry,    ///< backoff, then re-copy (bounded by txn_retry_max)
  kAbort,         ///< shadow frame released, protection restored
  kCommitted,     ///< terminal: page now on the target node
  kDegraded,      ///< terminal: caller must stop-and-copy or defer
};

/// One transactional page migration, exposed step-wise. Construct with the
/// owning kernel and the page's identity; call step() until state() is
/// terminal (kCommitted or kDegraded), or run() to drive it in one go. The
/// PTE pointer is resolved once and re-validated (present/flag checks) at
/// every step — chunk storage never moves — so a racing thread may still
/// fault, write, or unmap the page between steps and be observed.
class TxnMigrator {
 public:
  TxnMigrator(Kernel& k, std::uint32_t pid, vm::Vpn vpn, topo::NodeId target,
              sim::CostKind control_kind, sim::CostKind copy_kind);

  /// Advance the machine by one state; returns the new state.
  TxnState step(ThreadCtx& t);
  /// step() until a terminal state; returns it.
  TxnState run(ThreadCtx& t);

  TxnState state() const { return state_; }
  unsigned retries() const { return retries_; }
  /// Shadow frame currently held (kInvalidFrame outside the copy window).
  mem::FrameId shadow_frame() const { return shadow_; }

 private:
  void do_shadow_copy(ThreadCtx& t);
  void do_write_protect(ThreadCtx& t);
  void do_verify(ThreadCtx& t);
  void do_commit(ThreadCtx& t);
  void do_dirty_retry(ThreadCtx& t);
  void do_abort(ThreadCtx& t);

  /// Charge one shadow-copy pass and snapshot the dirty-detection state.
  void copy_pass(ThreadCtx& t, vm::Pte& pte, topo::NodeId from);
  /// Has the page been written (or otherwise invalidated) since copy_pass?
  bool dirty_since_copy(const vm::Pte& pte) const;
  /// The page stopped being a plain migratable mapping mid-flight: unmapped,
  /// turned replica/huge, or its next-touch/NUMA-hint marks changed under us
  /// (an madvise or scan raced the transaction). Grounds for kAbort.
  bool invalidated(const vm::Pte* pte) const {
    return pte == nullptr || !pte->present() ||
           (pte->flags & (vm::Pte::kReplica | vm::Pte::kHuge)) ||
           (pte->flags & (vm::Pte::kNextTouch | vm::Pte::kNumaHint)) != marks_;
  }
  vm::Pte* find_pte();

  Kernel& k_;
  std::uint32_t pid_;
  vm::Vpn vpn_;
  topo::NodeId target_;
  sim::CostKind control_kind_;
  sim::CostKind copy_kind_;

  TxnState state_ = TxnState::kShadowCopy;
  mem::FrameId shadow_ = mem::kInvalidFrame;
  unsigned retries_ = 0;
  vm::Pte* pte_ = nullptr;  ///< resolved once; entries are chunk-stable
  // Dirty-detection snapshot, taken at each copy pass.
  std::uint32_t gen_ = 0;
  bool injected_dirty_ = false;    ///< injector verdict: transient copy fault
  bool injected_permanent_ = false;
  std::uint16_t hw_bits_ = 0;  ///< hw permission bits to restore on exit
  std::uint16_t marks_ = 0;    ///< next-touch/NUMA-hint marks at admission
};

}  // namespace numasim::kern
