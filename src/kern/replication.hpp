// Read-only page replication (the paper's first "future work" item):
// "we will study the idea of replicating read-only pages among NUMA nodes
//  so as to achieve local access performance from anywhere."
//
// A range armed with madvise(kReplicate) serves reads from a per-node
// replica, created lazily on each node's first read fault. The home PTE
// keeps its write bit cleared; the first write fault collapses every
// replica back to a single page on the writer's node (the copy-on-write-
// style invalidation real replication designs need for coherence).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/phys.hpp"
#include "vm/page_table.hpp"

namespace numasim::kern {

/// Per-process replica bookkeeping, keyed by virtual page number.
class ReplicaTable {
 public:
  explicit ReplicaTable(unsigned num_nodes = 0) : num_nodes_(num_nodes) {}

  void set_num_nodes(unsigned n) { num_nodes_ = n; }

  /// Frame of `vpn`'s replica on `node`, or kInvalidFrame.
  mem::FrameId replica_on(vm::Vpn vpn, topo::NodeId node) const {
    auto it = table_.find(vpn);
    if (it == table_.end()) return mem::kInvalidFrame;
    return it->second[node];
  }

  /// Record a replica (one per node at most).
  void add(vm::Vpn vpn, topo::NodeId node, mem::FrameId frame) {
    auto it = table_.find(vpn);
    if (it == table_.end())
      it = table_.emplace(vpn, std::vector<mem::FrameId>(num_nodes_, mem::kInvalidFrame))
               .first;
    it->second[node] = frame;
  }

  /// Remove and return every replica frame of `vpn` (for collapse/unmap).
  std::vector<mem::FrameId> take(vm::Vpn vpn) {
    std::vector<mem::FrameId> out;
    auto it = table_.find(vpn);
    if (it == table_.end()) return out;
    for (mem::FrameId f : it->second)
      if (f != mem::kInvalidFrame) out.push_back(f);
    table_.erase(it);
    return out;
  }

  bool has(vm::Vpn vpn) const { return table_.count(vpn) != 0; }

  std::uint64_t replica_count(vm::Vpn vpn) const {
    auto it = table_.find(vpn);
    if (it == table_.end()) return 0;
    std::uint64_t n = 0;
    for (mem::FrameId f : it->second)
      if (f != mem::kInvalidFrame) ++n;
    return n;
  }

  std::uint64_t total_replicas() const {
    std::uint64_t n = 0;
    for (const auto& [vpn, v] : table_)
      for (mem::FrameId f : v)
        if (f != mem::kInvalidFrame) ++n;
    return n;
  }

 private:
  unsigned num_nodes_;
  std::unordered_map<vm::Vpn, std::vector<mem::FrameId>> table_;
};

}  // namespace numasim::kern
