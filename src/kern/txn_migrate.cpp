// Transactional shadow-copy migration: the TxnMigrator state machine and
// Kernel::do_migrate_page_txn, the one-call driver the migration paths use.
#include "kern/txn_migrate.hpp"

#include <cstring>

#include "kern/kernel.hpp"

namespace numasim::kern {

const char* migration_mode_name(MigrationMode m) {
  switch (m) {
    case MigrationMode::kStopAndCopy: return "stop_and_copy";
    case MigrationMode::kTransactional: return "transactional";
  }
  return "?";
}

TxnMigrator::TxnMigrator(Kernel& k, std::uint32_t pid, vm::Vpn vpn,
                         topo::NodeId target, sim::CostKind control_kind,
                         sim::CostKind copy_kind)
    : k_(k),
      pid_(pid),
      vpn_(vpn),
      target_(target),
      control_kind_(control_kind),
      copy_kind_(copy_kind) {}

vm::Pte* TxnMigrator::find_pte() {
  // Resolved once: chunk storage is arena-backed and never freed, so the
  // pointer stays valid for the table's lifetime. A racing fault only grows
  // other chunks; a munmap zeroes the entry in place (seen as !present by
  // the per-step validity checks).
  if (pte_ == nullptr) pte_ = k_.proc(pid_).as.page_table().find(vpn_);
  return pte_;
}

void TxnMigrator::copy_pass(ThreadCtx& t, vm::Pte& pte, topo::NodeId from) {
  gen_ = pte.write_gen;
  injected_dirty_ = false;
  const sim::Slot c = k_.hw_.copy(t.clock, from, target_, mem::kPageSize,
                                  k_.cost_.kernel_copy_bytes_per_us);
  t.stats.add(copy_kind_, c.finish - t.clock);
  t.clock = c.finish;
  if (k_.injector_ != nullptr) {
    switch (k_.injector_->copy_verdict()) {
      case CopyVerdict::kOk:
        break;
      case CopyVerdict::kTransient:
        // The copy raced a write it could not see: treat as a dirty hit so
        // the fault lands in the bounded retry loop, not as a batch abort.
        injected_dirty_ = true;
        break;
      case CopyVerdict::kPermanent:
        injected_permanent_ = true;
        break;
    }
  }
}

bool TxnMigrator::dirty_since_copy(const vm::Pte& pte) const {
  // A write fault mid-transaction clears kTxn (the writer never waits), so
  // a missing flag is as conclusive as a bumped generation.
  return injected_dirty_ || !(pte.flags & vm::Pte::kTxn) ||
         pte.write_gen != gen_;
}

void TxnMigrator::do_shadow_copy(ThreadCtx& t) {
  vm::Pte* pte = find_pte();
  if (pte == nullptr || !pte->present() ||
      (pte->flags & (vm::Pte::kReplica | vm::Pte::kHuge))) {
    state_ = TxnState::kDegraded;
    return;
  }
  // Shadow-frame admission control: the transaction doubles the page's
  // footprint until commit, so below the low watermark we yield the frame
  // budget to stop-and-copy (which frees the source as it lands).
  if (k_.phys_.under_pressure(target_)) {
    state_ = TxnState::kDegraded;
    return;
  }
  shadow_ = k_.alloc_migration_frame(target_);
  if (shadow_ == mem::kInvalidFrame) {
    state_ = TxnState::kDegraded;
    return;
  }
  k_.phys_.mark_shadow(shadow_);
  hw_bits_ = pte->flags & (vm::Pte::kHwRead | vm::Pte::kHwWrite);
  marks_ = pte->flags & (vm::Pte::kNextTouch | vm::Pte::kNumaHint);
  k_.charge(t, k_.cost_.txn_shadow_control, control_kind_);
  copy_pass(t, *pte, k_.phys_.node_of(pte->frame));
  state_ = TxnState::kWriteProtect;
}

void TxnMigrator::do_write_protect(ThreadCtx& t) {
  vm::Pte* pte = find_pte();
  if (invalidated(pte)) {
    state_ = TxnState::kAbort;
    return;
  }
  k_.charge(t, k_.cost_.pte_update + k_.cost_.tlb_flush_local, control_kind_);
  pte->clear(vm::Pte::kHwWrite);
  pte->set(vm::Pte::kTxn);
  // Txn-arm site — and the linchpin of the soft-TLB's write_gen argument:
  // from here on a cached write descriptor could let a fast-path write skip
  // the ++write_gen this migrator's dirty check watches. Bumping the mapping
  // generation HERE guarantees every write between arm and commit/abort
  // misses the cache and takes the slow path (faulting on the cleared
  // kHwWrite), which bumps write_gen as the dirty check requires.
  k_.stlb_invalidate(k_.proc(pid_));
  state_ = TxnState::kVerifyClean;
}

void TxnMigrator::do_verify(ThreadCtx& t) {
  k_.charge(t, k_.cost_.txn_verify, control_kind_);
  vm::Pte* pte = find_pte();
  if (invalidated(pte) || injected_permanent_) {
    state_ = TxnState::kAbort;
    return;
  }
  state_ = dirty_since_copy(*pte) ? TxnState::kDirtyRetry : TxnState::kCommitFlip;
}

void TxnMigrator::do_commit(ThreadCtx& t) {
  vm::Pte* pte = find_pte();
  if (invalidated(pte)) {
    state_ = TxnState::kAbort;
    return;
  }
  // One last check right under the flip: a write may have slipped in
  // between verify and commit.
  if (dirty_since_copy(*pte)) {
    state_ = TxnState::kDirtyRetry;
    return;
  }
  k_.charge(t, k_.cost_.txn_commit, control_kind_);
  const topo::NodeId from = k_.phys_.node_of(pte->frame);
  if (std::byte* dst = k_.phys_.data(shadow_)) {
    if (const std::byte* src = k_.phys_.data(pte->frame))
      std::memcpy(dst, src, mem::kPageSize);
  }
  k_.phys_.free(pte->frame);
  k_.phys_.clear_shadow(shadow_);
  pte->frame = shadow_;
  k_.proc(pid_).placement.move(vpn_, from, k_.phys_.node_of(shadow_));
  shadow_ = mem::kInvalidFrame;
  pte->clear(vm::Pte::kTxn | vm::Pte::kHwRead | vm::Pte::kHwWrite);
  pte->set(hw_bits_);
  k_.stlb_invalidate(k_.proc(pid_));  // migrate site: frame flipped above
  ++k_.kstats_.txn_commits;
  if (k_.h_txn_retries_ != nullptr) k_.h_txn_retries_->record(retries_);
  k_.trace(t, EventType::kTxnCommit, vpn_, 1, from, target_);
  state_ = TxnState::kCommitted;
}

void TxnMigrator::do_dirty_retry(ThreadCtx& t) {
  vm::Pte* pte = find_pte();
  if (retries_ >= k_.cost_.txn_retry_max || invalidated(pte)) {
    state_ = TxnState::kAbort;
    return;
  }
  k_.charge(t, k_.cost_.txn_backoff(retries_), control_kind_);
  ++retries_;
  ++k_.kstats_.txn_dirty_retries;
  k_.trace(t, EventType::kTxnDirtyRetry, vpn_, 1, k_.phys_.node_of(pte->frame),
           target_);
  copy_pass(t, *pte, k_.phys_.node_of(pte->frame));
  state_ = TxnState::kWriteProtect;
}

void TxnMigrator::do_abort(ThreadCtx& t) {
  if (shadow_ != mem::kInvalidFrame) {
    k_.phys_.free(shadow_);  // free() also drops the shadow mark
    shadow_ = mem::kInvalidFrame;
  }
  if (vm::Pte* pte = find_pte();
      pte != nullptr && pte->present() && (pte->flags & vm::Pte::kTxn)) {
    k_.charge(t, k_.cost_.pte_update, control_kind_);
    pte->clear(vm::Pte::kTxn | vm::Pte::kHwRead | vm::Pte::kHwWrite);
    pte->set(hw_bits_);
    // Restoring hw bits only widens, but bump anyway: cheap, and keeps the
    // rule simple — every txn state that rewrites a PTE invalidates.
    k_.stlb_invalidate(k_.proc(pid_));
  }
  ++k_.kstats_.txn_aborted;
  k_.trace(t, EventType::kTxnAbort, vpn_, 1, topo::kInvalidNode, target_);
  state_ = TxnState::kDegraded;
}

TxnState TxnMigrator::step(ThreadCtx& t) {
  switch (state_) {
    case TxnState::kShadowCopy: do_shadow_copy(t); break;
    case TxnState::kWriteProtect: do_write_protect(t); break;
    case TxnState::kVerifyClean: do_verify(t); break;
    case TxnState::kCommitFlip: do_commit(t); break;
    case TxnState::kDirtyRetry: do_dirty_retry(t); break;
    case TxnState::kAbort: do_abort(t); break;
    case TxnState::kCommitted:
    case TxnState::kDegraded: break;  // terminal
  }
  return state_;
}

TxnState TxnMigrator::run(ThreadCtx& t) {
  while (state_ != TxnState::kCommitted && state_ != TxnState::kDegraded) step(t);
  return state_;
}

Kernel::TxnResult Kernel::do_migrate_page_txn(ThreadCtx& t, Process& p,
                                              vm::Vpn vpn, topo::NodeId target,
                                              sim::CostKind control_kind,
                                              sim::CostKind copy_kind) {
  const sim::Time begin = t.clock;
  TxnMigrator txn(*this, p.pid, vpn, target, control_kind, copy_kind);
  const TxnState end = txn.run(t);
  if (!sinks_.empty()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kSpan;
    e.ts = begin;
    e.dur = t.clock - begin;
    e.pid = t.pid;
    e.tid = t.tid;
    e.cat = "kern";
    e.name = "txn-migrate";
    e.add_arg("vpn", static_cast<std::int64_t>(vpn))
        .add_arg("to", static_cast<std::int64_t>(target))
        .add_arg("retries", static_cast<std::int64_t>(txn.retries()))
        .add_arg("committed", end == TxnState::kCommitted ? 1 : 0);
    emit(e);
  }
  return end == TxnState::kCommitted ? TxnResult::kCommitted
                                     : TxnResult::kDegraded;
}

}  // namespace numasim::kern
