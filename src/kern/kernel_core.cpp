// Kernel core: process management, the MMU emulation (access / faults),
// page population and migration primitives, and timing-free inspection.
#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "kern/kernel.hpp"

namespace numasim::kern {

namespace {
constexpr unsigned kMaxFaultRetries = 8;
}

Kernel::Kernel(KernelConfig cfg)
    : cfg_(std::move(cfg)),
      hw_(cfg_.topology),
      phys_(cfg_.topology, cfg_.backing, cfg_.max_frames_per_node),
      kmigrated_(cfg_.topology.num_nodes()),
      move_impl_(cfg_.move_pages_impl),
      replication_(cfg_.replication) {
  if (!cfg_.fault_plan.empty()) {
    owned_injector_ = std::make_unique<FaultInjector>(cfg_.fault_plan,
                                                      cfg_.fault_seed);
    set_fault_injector(owned_injector_.get());
  }
}

Kernel::~Kernel() {
  // Async kmigrated batches still in flight die with the kernel; account
  // them before detaching so an attached registry folds the count into
  // "kern.kmigrated.dropped" instead of losing it silently.
  kstats_.kmigrated_dropped_at_teardown += kmigrated_.total_inflight(kmig_now_);
  set_metrics(nullptr);
}

void Kernel::add_trace_sink(obs::TraceSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end())
    sinks_.push_back(sink);
}

void Kernel::remove_trace_sink(obs::TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  if (sink == elog_) elog_ = nullptr;
}

void Kernel::set_event_log(EventLog* log) {
  if (elog_ != nullptr && elog_ != log) remove_trace_sink(elog_);
  elog_ = log;
  add_trace_sink(log);
}

void Kernel::set_metrics(obs::Registry* reg) {
  if (metrics_ != nullptr && metrics_ != reg) {
    // Fold our bound KernelStats values into the registry's own counters so
    // the totals survive this kernel; drop the gauges (they capture `this`).
    metrics_->retire("kern.");
    metrics_->retire("mem.");
  }
  metrics_ = reg;
  h_fault_ = h_migrate_page_ = h_lock_wait_ = h_shootdown_rounds_ =
      h_kmigrated_batch_ = h_numab_scan_ = h_txn_retries_ = nullptr;
  if (reg == nullptr) return;

  reg->bind_counter("kern.minor_faults", &kstats_.minor_faults);
  reg->bind_counter("kern.protection_faults", &kstats_.protection_faults);
  reg->bind_counter("kern.nexttouch_faults", &kstats_.nexttouch_faults);
  reg->bind_counter("kern.pages_migrated_move", &kstats_.pages_migrated_move);
  reg->bind_counter("kern.pages_migrated_process", &kstats_.pages_migrated_process);
  reg->bind_counter("kern.pages_migrated_nexttouch",
                    &kstats_.pages_migrated_nexttouch);
  reg->bind_counter("kern.tlb_shootdowns", &kstats_.tlb_shootdowns);
  reg->bind_counter("kern.signals_delivered", &kstats_.signals_delivered);
  reg->bind_counter("kern.replica_pages", &kstats_.replica_pages);
  reg->bind_counter("kern.replica_collapses", &kstats_.replica_collapses);
  reg->bind_counter("kern.migrations_failed", &kstats_.migrations_failed);
  reg->bind_counter("kern.migration_retries", &kstats_.migration_retries);
  reg->bind_counter("kern.nexttouch_degraded", &kstats_.nexttouch_degraded);
  reg->bind_counter("kern.shootdown_retries", &kstats_.shootdown_retries);
  reg->bind_counter("kern.signals_delayed", &kstats_.signals_delayed);
  reg->bind_counter("kern.alloc_stalls", &kstats_.alloc_stalls);
  reg->bind_counter("kern.kmigrated.batches", &kstats_.kmigrated_batches);
  reg->bind_counter("kern.kmigrated.pages", &kstats_.kmigrated_pages);
  reg->bind_counter("kern.kmigrated.batches_dropped",
                    &kstats_.kmigrated_batches_dropped);
  reg->bind_counter("kern.kmigrated.pages_failed",
                    &kstats_.kmigrated_pages_failed);
  reg->bind_counter("kern.kmigrated.dropped",
                    &kstats_.kmigrated_dropped_at_teardown);
  reg->bind_counter("kern.migrate.txn.commits", &kstats_.txn_commits);
  reg->bind_counter("kern.migrate.txn.dirty_retries",
                    &kstats_.txn_dirty_retries);
  reg->bind_counter("kern.migrate.txn.degraded", &kstats_.txn_degraded);
  reg->bind_counter("kern.migrate.txn.aborted", &kstats_.txn_aborted);
  reg->bind_counter("kern.numab.scans", &kstats_.numab_scans);
  reg->bind_counter("kern.numab.pages_scanned", &kstats_.numab_pages_scanned);
  reg->bind_counter("kern.numab.hint_faults", &kstats_.numab_hint_faults);
  reg->bind_counter("kern.numab.hint_faults_local",
                    &kstats_.numab_hint_faults_local);
  reg->bind_counter("kern.numab.promotions_deferred",
                    &kstats_.numab_promotions_deferred);
  reg->bind_counter("kern.numab.pages_promoted", &kstats_.numab_pages_promoted);
  reg->bind_counter("kern.numab.task_migrations", &kstats_.numab_task_migrations);
  reg->bind_counter("kern.numab.task_swaps", &kstats_.numab_task_swaps);
  reg->bind_counter("kern.tier.promotions", &kstats_.tier_promotions);
  reg->bind_counter("kern.tier.demotions", &kstats_.tier_demotions);
  reg->bind_counter("kern.tier.demote_passes", &kstats_.tier_demote_passes);
  reg->bind_counter("kern.stlb.hits", &kstats_.stlb_hits);
  reg->bind_counter("kern.stlb.misses", &kstats_.stlb_misses);
  reg->bind_counter("kern.stlb.invalidations", &kstats_.stlb_invalidations);
  reg->bind_gauge("kern.tier.fast_occupancy", [this] { return fast_occupancy_pct(); });

  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    reg->bind_gauge("mem.used_frames.node" + std::to_string(n), [this, n] {
      return static_cast<std::int64_t>(phys_.used_frames(n));
    });
    reg->bind_gauge("kern.kmigrated.queue_depth.node" + std::to_string(n),
                    [this, n] {
                      return static_cast<std::int64_t>(
                          kmigrated_.queue_depth(n, kmig_now_));
                    });
  }

  h_fault_ = &reg->histogram("kern.fault_service_ns");
  h_migrate_page_ = &reg->histogram("kern.migrate_page_ns");
  h_lock_wait_ = &reg->histogram("kern.lock_wait_ns");
  h_shootdown_rounds_ = &reg->histogram("kern.shootdown_rounds");
  h_kmigrated_batch_ = &reg->histogram("kern.kmigrated.batch_latency_ns");
  h_numab_scan_ = &reg->histogram("kern.numab.scan_pages");
  h_txn_retries_ = &reg->histogram("kern.migrate.txn.retries");
}

void Kernel::trace_slow(const ThreadCtx& t, EventType type, vm::Vpn vpn,
                        std::uint64_t pages, topo::NodeId from, topo::NodeId to) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kInstant;
  e.ts = t.clock;
  e.pid = t.pid;
  e.tid = t.tid;
  e.cat = "kern";
  e.name = event_type_name(type);
  e.add_arg("vpn", static_cast<std::int64_t>(vpn))
      .add_arg("pages", static_cast<std::int64_t>(pages))
      .add_arg("from",
               from == topo::kInvalidNode ? -1 : static_cast<std::int64_t>(from))
      .add_arg("to",
               to == topo::kInvalidNode ? -1 : static_cast<std::int64_t>(to));
  emit(e);
}

void Kernel::emit_instant(const ThreadCtx& t, std::string_view name,
                          std::string_view cat) {
  if (sinks_.empty()) return;
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kInstant;
  e.ts = t.clock;
  e.pid = t.pid;
  e.tid = t.tid;
  e.cat = cat;
  e.name = name;
  emit(e);
}

void Kernel::emit_span(const ThreadCtx& t, std::string_view name, sim::Time begin,
                       std::string_view cat) {
  if (sinks_.empty()) return;
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kSpan;
  e.ts = begin;
  e.dur = t.clock >= begin ? t.clock - begin : 0;
  e.pid = t.pid;
  e.tid = t.tid;
  e.cat = cat;
  e.name = name;
  emit(e);
}

Pid Kernel::create_process(std::string name) {
  auto p = std::make_unique<Process>();
  p->pid = static_cast<Pid>(procs_.size());
  p->name = std::move(name);
  p->replicas.set_num_nodes(topo_.num_nodes());
  p->placement.init(topo_.num_nodes());
  procs_.push_back(std::move(p));
  return procs_.back()->pid;
}

Kernel::Process& Kernel::proc(Pid pid) {
  if (pid >= procs_.size()) throw std::out_of_range{"Kernel: bad pid"};
  return *procs_[pid];
}

const Kernel::Process& Kernel::proc(Pid pid) const {
  if (pid >= procs_.size()) throw std::out_of_range{"Kernel: bad pid"};
  return *procs_[pid];
}

void Kernel::set_sigsegv_handler(Pid pid, SegvHandler handler) {
  proc(pid).segv = std::move(handler);
}

void Kernel::set_fault_injector(FaultInjector* inj) {
  // Plan specs are untrusted (fuzzer/CLI strings): a cap naming a node this
  // topology doesn't have is ignored — there is nothing to exhaust.
  const auto valid = [this](const FaultPlan::NodeCap& c) {
    return c.node < topo_.num_nodes();
  };
  if (injector_ != nullptr && inj == nullptr) {
    // Detach: restore the capacities the old plan's caps may have clamped.
    for (const FaultPlan::NodeCap& c : injector_->node_caps())
      if (valid(c)) phys_.set_node_capacity(c.node, ~std::uint64_t{0});
  }
  injector_ = inj;
  if (injector_ != nullptr) {
    for (const FaultPlan::NodeCap& c : injector_->node_caps())
      if (valid(c)) phys_.set_node_capacity(c.node, c.frames);
  }
}

Kernel::CopyOutcome Kernel::copy_outcome() {
  CopyOutcome o;
  if (injector_ == nullptr) return o;
  while (true) {
    switch (injector_->copy_verdict()) {
      case CopyVerdict::kOk:
        return o;
      case CopyVerdict::kPermanent:
        o.ok = false;
        return o;
      case CopyVerdict::kTransient:
        if (o.retries >= cost_.copy_retry_max) {  // retry budget exhausted
          o.ok = false;
          return o;
        }
        ++o.retries;
        break;
    }
  }
}

mem::FrameId Kernel::alloc_migration_frame(topo::NodeId node) {
  if (injector_ != nullptr && injector_->fail_alloc(node))
    return mem::kInvalidFrame;
  // Strict __GFP_THISNODE, no reserves: migration targets fail rather than
  // land on the wrong node (Linux's new_page_node()).
  return phys_.alloc_on(node);
}

mem::FrameId Kernel::alloc_user_frame(ThreadCtx& t, vm::Vpn vpn,
                                      topo::NodeId target) {
  if (injector_ != nullptr && injector_->fail_alloc(target)) {
    // A user fault does not see ENOMEM: it direct-reclaims (charged as a
    // stall) and then succeeds from the zonelist or the reserve pool.
    charge(t, cost_.reclaim_stall, sim::CostKind::kAllocZero);
    ++kstats_.alloc_stalls;
    trace(t, EventType::kAllocStall, vpn, 1, topo::kInvalidNode, target);
  }
  const mem::FrameId f = phys_.alloc_near(target);
  if (f != mem::kInvalidFrame) return f;
  return phys_.alloc_near(target, /*use_reserve=*/true);
}

sim::Time Kernel::shootdown_cost(const ThreadCtx& t) {
  sim::Time c = cost_.tlb_shootdown(topo_.num_cores());
  std::uint64_t rounds = 1;
  if (injector_ != nullptr && injector_->drop_shootdown()) {
    // One IPI was lost: wait out the acknowledgement timeout, re-broadcast.
    c += cost_.tlb_shootdown_resend_wait + cost_.tlb_shootdown(topo_.num_cores());
    ++kstats_.shootdown_retries;
    ++rounds;
    trace(t, EventType::kShootdownRetry, 0, 1);
  }
  if (h_shootdown_rounds_ != nullptr) h_shootdown_rounds_->record(rounds);
  return c;
}

void Kernel::set_task_policy(Pid pid, const vm::MemPolicy& pol) {
  Process& p = proc(pid);
  p.task_policy = pol;
  stlb_invalidate(p);  // policy-change site (uniform with sys_set_mempolicy)
}

void Kernel::with_pt_lock(ThreadCtx& t, Process& p, sim::Time hold,
                          sim::CostKind kind) {
  const sim::Slot slot = p.pt_lock.reserve(t.clock, hold, t.core, cost_.lock_bounce);
  const sim::Time wait = slot.start - t.clock;
  if (wait > 0) t.stats.add(sim::CostKind::kLockWait, wait);
  note_lock_wait(wait);
  t.stats.add(kind, slot.finish - slot.start);
  t.clock = slot.finish;
}

void Kernel::populate_page(ThreadCtx& t, Process& p, const vm::Vma& vma,
                           vm::Vpn vpn, vm::Pte& pte) {
  const topo::NodeId local = topo_.node_of_core(t.core);
  const vm::MemPolicy& eff =
      vma.policy.mode != vm::PolicyMode::kDefault ? vma.policy : p.task_policy;
  topo::NodeId target = eff.mode == vm::PolicyMode::kPreferredMany
                            ? preferred_many_target(eff.nodes, local)
                            : eff.target_node(vma.pgoff(vpn), local, topo_.num_nodes());
  if (target == topo::kInvalidNode) target = local;

  const mem::FrameId frame = alloc_user_frame(t, vpn, target);
  if (frame == mem::kInvalidFrame) throw std::runtime_error{"simulated OOM"};

  // Allocation + zero-fill through the target node's DRAM.
  charge(t, cost_.page_alloc + cost_.pte_update, sim::CostKind::kAllocZero);
  const sim::Slot z = hw_.stream(t.clock, topo_.node_of_core(t.core),
                                 phys_.node_of(frame), mem::kPageSize,
                                 cost_.zero_rate_bytes_per_us, MemDir::kWrite);
  t.stats.add(sim::CostKind::kAllocZero, z.finish - t.clock);
  t.clock = z.finish;

  if (std::byte* d = phys_.data(frame)) std::memset(d, 0, mem::kPageSize);

  pte.frame = frame;
  pte.flags = vm::Pte::kPresent | vm::Pte::kAccessed;
  pte.restore_hw(vma.prot);
  p.placement.inc(vpn, phys_.node_of(frame));
  ++kstats_.minor_faults;
  trace(t, EventType::kMinorFault, vpn, 1, topo::kInvalidNode, phys_.node_of(frame));
}

void Kernel::do_serialize_migration(ThreadCtx& t, Process& p, sim::Time entry,
                                    std::uint64_t pages, sim::Time per_page) {
  const sim::Slot slot = p.migration_pipeline.reserve(entry, pages * per_page);
  if (slot.finish > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, slot.finish - t.clock);
    note_lock_wait(slot.finish - t.clock);
    t.clock = slot.finish;
  }
}

sim::Slot Kernel::range_lock_reserve(ThreadCtx& t, Process& p, vm::Vaddr lo,
                                     vm::Vaddr hi, sim::Time start,
                                     sim::Time hold, bool exclusive) {
  // Two-phase over every VMA overlapping [lo, hi): each VMA's lock is
  // reserved independently; the work runs once the *last* grant arrives and
  // the combined hold ends at the latest finish.
  sim::Slot out{start, start + hold};
  vm::Vaddr cur = vm::page_align_down(lo);
  const vm::Vaddr end = vm::page_align_up(hi);
  while (cur < end) {
    const vm::Vma* vma = p.as.find(cur);
    if (vma == nullptr) {  // unmapped hole: skip page by page
      cur += mem::kPageSize;
      continue;
    }
    const vm::Vaddr seg_end = std::min(end, vma->end);
    const sim::Slot s = p.vma_locks[vma->lock_id].reserve(
        start, hold, vm::vpn_of(cur), vm::vpn_of(seg_end - 1) + 1, exclusive,
        t.core, cost_.lock_bounce);
    out.start = std::max(out.start, s.start);
    out.finish = std::max(out.finish, s.finish);
    cur = seg_end;
  }
  return out;
}

sim::Time Kernel::shootdown_round(std::uint64_t pages) {
  sim::Time c = cost_.tlb_shootdown_round(topo_.num_cores(), pages);
  std::uint64_t rounds = 1;
  if (injector_ != nullptr && injector_->drop_shootdown()) {
    c += cost_.tlb_shootdown_resend_wait + cost_.tlb_shootdown(topo_.num_cores());
    ++kstats_.shootdown_retries;
    ++rounds;
  }
  ++kstats_.tlb_shootdowns;
  if (h_shootdown_rounds_ != nullptr) h_shootdown_rounds_->record(rounds);
  return c;
}

void Kernel::do_serialize_migration_ranged(ThreadCtx& t, Process& p,
                                           vm::Vaddr lo, vm::Vaddr hi,
                                           sim::Time entry, std::uint64_t pages,
                                           sim::Time per_page) {
  // The run's serialized work plus one coalesced shootdown round, held on
  // the range locks only — disjoint runs never see each other.
  const sim::Time hold = pages * per_page + shootdown_round(pages);
  const sim::Slot slot =
      range_lock_reserve(t, p, lo, hi, entry, hold, /*exclusive=*/true);
  if (slot.finish > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, slot.finish - t.clock);
    note_lock_wait(slot.finish - t.clock);
    t.clock = slot.finish;
  }
}

void Kernel::flush_copy_batch(ThreadCtx& t, CopyBatch& batch, sim::CostKind kind) {
  for (const CopyBatch::Run& r : batch.runs) {
    const sim::Slot c =
        hw_.copy(t.clock, r.from, r.to, r.bytes, cost_.kernel_copy_bytes_per_us);
    t.stats.add(kind, c.finish - t.clock);
    t.clock = c.finish;
  }
  batch.runs.clear();
}

Kernel::MigrateResult Kernel::migrate_page(ThreadCtx& t, Process& p, vm::Pte& pte,
                                           vm::Vpn vpn, topo::NodeId target,
                                           sim::Time control_cost,
                                           sim::CostKind control_kind,
                                           sim::CostKind copy_kind,
                                           CopyBatch* copies) {
  const sim::Time begin = t.clock;
  const topo::NodeId from = phys_.node_of(pte.frame);
  MigrateResult r;
  if (txn_eligible(pte)) {
    // Transactional engine first; a degraded transaction released its
    // shadow frame and left the page untouched, so it falls through to the
    // stop-and-copy pipeline below (the degradation ladder).
    if (do_migrate_page_txn(t, p, vpn, target, control_kind, copy_kind) ==
        TxnResult::kCommitted) {
      r = MigrateResult::kOk;
    } else {
      ++kstats_.txn_degraded;
      trace(t, EventType::kTxnDegraded, vpn, 1, from, target);
      r = do_migrate_page(t, p, pte, vpn, target, control_cost, control_kind,
                          copy_kind, copies);
    }
  } else {
    r = do_migrate_page(t, p, pte, vpn, target, control_cost, control_kind,
                        copy_kind, copies);
  }
  // Per-page pipeline latency. Batched callers defer the copy into `copies`,
  // so their samples cover the control path only (the copy is attributed to
  // the batch flush); inline callers include it.
  if (h_migrate_page_ != nullptr) h_migrate_page_->record(t.clock - begin);
  if (!sinks_.empty()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kSpan;
    e.ts = begin;
    e.dur = t.clock - begin;
    e.pid = t.pid;
    e.tid = t.tid;
    e.cat = "kern";
    e.name = "migrate-page";
    e.add_arg("vpn", static_cast<std::int64_t>(vpn))
        .add_arg("from", static_cast<std::int64_t>(from))
        .add_arg("to", static_cast<std::int64_t>(target))
        .add_arg("ok", r == MigrateResult::kOk ? 1 : 0);
    emit(e);
  }
  return r;
}

Kernel::MigrateResult Kernel::do_migrate_page(ThreadCtx& t, Process& p,
                                              vm::Pte& pte, vm::Vpn vpn,
                                              topo::NodeId target,
                                              sim::Time control_cost,
                                              sim::CostKind control_kind,
                                              sim::CostKind copy_kind,
                                              CopyBatch* copies) {
  const mem::FrameId old_frame = pte.frame;
  const topo::NodeId from = phys_.node_of(old_frame);

  // Isolate→alloc: the destination frame must come from the target node.
  mem::FrameId new_frame = alloc_migration_frame(target);
  if (new_frame == mem::kInvalidFrame && cfg_.tiers.enabled &&
      cfg_.tiers.demotion) {
    // Direct demotion (tiering): push cold — or, failing that, any eligible —
    // pages of `target` down-tier to make room, then retry once. The chain is
    // monotonic down the tier order, so it terminates at the slowest tier.
    if (tier_demote(t, p, target, cfg_.tiers.demote_batch_pages,
                    /*require_idle=*/false, control_kind) > 0) {
      charge(t, cost_.demote_direct_stall, control_kind);
      new_frame = alloc_migration_frame(target);
    }
  }
  if (new_frame == mem::kInvalidFrame) {
    ++kstats_.migrations_failed;
    trace(t, EventType::kMigrateFail, vpn, 1, from, target);
    return MigrateResult::kNoMem;
  }

  // Control path: isolation, PTE rewrite, local flush. The cross-thread
  // serialization is applied per batch via serialize_migration().
  charge(t, control_cost, control_kind);

  const topo::NodeId to = phys_.node_of(new_frame);
  auto charge_one_copy = [&] {
    if (copies != nullptr) {
      copies->add(from, to, mem::kPageSize);
    } else {
      const sim::Slot c = hw_.copy(t.clock, from, to, mem::kPageSize,
                                   cost_.kernel_copy_bytes_per_us);
      t.stats.add(copy_kind, c.finish - t.clock);
      t.clock = c.finish;
    }
  };

  // Copy, retrying transient failures with exponential backoff. A failed
  // attempt still consumed the copy engine, so it is charged too.
  const CopyOutcome oc = copy_outcome();
  for (unsigned r = 0; r < oc.retries; ++r) {
    charge_one_copy();
    charge(t, cost_.copy_backoff(r), control_kind);
    ++kstats_.migration_retries;
    trace(t, EventType::kMigrateRetry, vpn, 1, from, to);
  }
  if (!oc.ok) {
    // Abort + rollback: release the destination frame; the original frame
    // was never unmapped, so the page stays resident and valid.
    charge_one_copy();  // the final, failed attempt
    phys_.free(new_frame);
    ++kstats_.migrations_failed;
    trace(t, EventType::kMigrateFail, vpn, 1, from, to);
    return MigrateResult::kCopyFail;
  }
  charge_one_copy();

  if (std::byte* dst = phys_.data(new_frame)) {
    if (const std::byte* src = phys_.data(old_frame))
      std::memcpy(dst, src, mem::kPageSize);
  }
  phys_.free(old_frame);
  pte.frame = new_frame;
  p.placement.move(vpn, from, phys_.node_of(new_frame));
  stlb_invalidate(p);  // the page changed nodes under any cached descriptor
  return MigrateResult::kOk;
}

void Kernel::populate_huge_block(ThreadCtx& t, Process& p, const vm::Vma& vma,
                                 vm::Vpn vpn) {
  constexpr std::uint64_t kHugePages = (2ull << 20) >> mem::kPageShift;
  const vm::Vpn block = vpn & ~(kHugePages - 1);
  const topo::NodeId local = topo_.node_of_core(t.core);
  const vm::MemPolicy& eff =
      vma.policy.mode != vm::PolicyMode::kDefault ? vma.policy : p.task_policy;
  topo::NodeId target = eff.mode == vm::PolicyMode::kPreferredMany
                            ? preferred_many_target(eff.nodes, local)
                            : eff.target_node(vma.pgoff(block), local, topo_.num_nodes());
  if (target == topo::kInvalidNode) target = local;

  // One fault maps the whole block: one PTE-level update, one 2 MiB
  // zero-fill, one allocation episode (the huge frame).
  charge(t, cost_.page_alloc + cost_.pte_update, sim::CostKind::kAllocZero);
  const sim::Slot z = hw_.stream(t.clock, local, target, 2ull << 20,
                                 cost_.zero_rate_bytes_per_us, MemDir::kWrite);
  t.stats.add(sim::CostKind::kAllocZero, z.finish - t.clock);
  t.clock = z.finish;

  for (vm::Vpn v = block; v < block + kHugePages; ++v) {
    vm::Pte& pte = p.as.page_table().ensure(v);
    if (pte.present()) continue;
    const mem::FrameId f = alloc_user_frame(t, v, target);
    if (f == mem::kInvalidFrame) throw std::runtime_error{"simulated OOM (huge)"};
    if (std::byte* d = phys_.data(f)) std::memset(d, 0, mem::kPageSize);
    pte.frame = f;
    pte.flags = vm::Pte::kPresent | vm::Pte::kAccessed | vm::Pte::kHuge;
    pte.restore_hw(vma.prot);
    p.placement.inc(v, phys_.node_of(f));
  }
  ++kstats_.minor_faults;
}

topo::NodeId Kernel::resolve_replica(ThreadCtx& t, Process& p, vm::Pte& pte,
                                     vm::Vpn vpn, topo::NodeId reader,
                                     CopyBatch* copies) {
  const topo::NodeId home = phys_.node_of(pte.frame);
  if (reader == home) return home;
  const mem::FrameId existing = p.replicas.replica_on(vpn, reader);
  if (existing != mem::kInvalidFrame) return reader;

  // First read from this node: create the local replica (alloc + copy from
  // the home page; cheap bookkeeping, like a COW fault without the write).
  const mem::FrameId f = phys_.alloc_on(reader);
  if (f == mem::kInvalidFrame) return home;  // node full: keep reading remote
  charge(t, cost_.page_alloc + cost_.replica_control, sim::CostKind::kReplicaControl);
  if (copies != nullptr) {
    copies->add(home, reader, mem::kPageSize);
  } else {
    const sim::Slot c =
        hw_.copy(t.clock, home, reader, mem::kPageSize, cost_.kernel_copy_bytes_per_us);
    t.stats.add(sim::CostKind::kReplicaCopy, c.finish - t.clock);
    t.clock = c.finish;
  }
  if (std::byte* dst = phys_.data(f)) {
    if (const std::byte* src = phys_.data(pte.frame))
      std::memcpy(dst, src, mem::kPageSize);
  }
  p.replicas.add(vpn, reader, f);
  ++kstats_.replica_pages;
  trace(t, EventType::kReplicaCreate, vpn, 1, home, reader);
  return reader;
}

void Kernel::collapse_replicas(ThreadCtx& t, Process& p, vm::Pte& pte, vm::Vpn vpn,
                               topo::NodeId writer) {
  const std::vector<mem::FrameId> frames = p.replicas.take(vpn);
  for (mem::FrameId f : frames) {
    charge(t, cost_.page_free + cost_.replica_control, sim::CostKind::kReplicaControl);
    phys_.free(f);
  }
  // Home page moves to the writer if it is elsewhere (write locality) —
  // best-effort: under pressure the collapse still succeeds, just without
  // the locality gain.
  if (phys_.node_of(pte.frame) != writer) {
    migrate_page(t, p, pte, vpn, writer, cost_.nt_fault_control,
                 sim::CostKind::kReplicaControl, sim::CostKind::kReplicaCopy,
                 nullptr);
  }
  charge(t, shootdown_cost(t), sim::CostKind::kTlbShootdown);
  ++kstats_.tlb_shootdowns;
  ++kstats_.replica_collapses;
  trace(t, EventType::kReplicaCollapse, vpn, frames.size(), topo::kInvalidNode, writer);
  pte.clear(vm::Pte::kReplica);
  pte.set(vm::Pte::kHwWrite | vm::Pte::kHwRead);
}

void Kernel::deliver_sigsegv(ThreadCtx& t, Process& p, const SigInfo& info,
                             AccessResult& res) {
  if (!p.segv || t.signal_depth > 0) throw SegfaultError{info.fault_addr};
  if (injector_ != nullptr && injector_->delay_signal()) {
    // The signal is queued behind a context switch: delivery is late but
    // never lost (the faulting access stays blocked, so no re-fault storm).
    charge(t, cost_.signal_redelivery_delay, sim::CostKind::kSignalDelivery);
    ++kstats_.signals_delayed;
    trace(t, EventType::kSignalDelay, vm::vpn_of(info.fault_addr), 1);
  }
  charge(t, cost_.signal_delivery, sim::CostKind::kSignalDelivery);
  ++kstats_.signals_delivered;
  ++res.sigsegv_delivered;
  trace(t, EventType::kSigsegv, vm::vpn_of(info.fault_addr), 1);
  ++t.signal_depth;
  const sim::Time handler_begin = t.clock;
  p.segv(t, info);
  --t.signal_depth;
  emit_span(t, "sigsegv-handler", handler_begin, "kern");
  charge(t, cost_.sigreturn, sim::CostKind::kSignalDelivery);
}

bool Kernel::handle_fault(ThreadCtx& t, Process& p, vm::Vaddr addr, vm::Prot want,
                          AccessResult& res, CopyBatch* copies) {
  const sim::Time begin = t.clock;
  const bool retry = do_handle_fault(t, p, addr, want, res, copies);
  if (h_fault_ != nullptr) h_fault_->record(t.clock - begin);
  if (!sinks_.empty()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kSpan;
    e.ts = begin;
    e.dur = t.clock - begin;
    e.pid = t.pid;
    e.tid = t.tid;
    e.cat = "kern";
    e.name = "fault";
    e.add_arg("vpn", static_cast<std::int64_t>(vm::vpn_of(addr)));
    emit(e);
  }
  return retry;
}

bool Kernel::do_handle_fault(ThreadCtx& t, Process& p, vm::Vaddr addr,
                             vm::Prot want, AccessResult& res, CopyBatch* copies) {
  charge(t, cost_.pagefault_entry, sim::CostKind::kPageFault);

  vm::Vma* vma = p.as.find(addr);
  if (vma == nullptr || !prot_allows(vma->prot, want)) {
    ++kstats_.protection_faults;
    deliver_sigsegv(t, p, SigInfo{addr, want}, res);
    return true;  // retry: the handler may have repaired the mapping
  }

  vm::Pte& pte = p.as.page_table().ensure(vm::vpn_of(addr));
  if (!pte.present()) {
    if (vma->huge) {
      populate_huge_block(t, p, *vma, vm::vpn_of(addr));
    } else {
      populate_page(t, p, *vma, vm::vpn_of(addr), pte);
    }
    ++res.minor_faults;
    return false;
  }

  if (pte.flags & vm::Pte::kReplica) {
    charge(t, cost_.pte_update, sim::CostKind::kReplicaControl);
    if (prot_allows(want, vm::Prot::kWrite)) {
      collapse_replicas(t, p, pte, vm::vpn_of(addr), topo_.node_of_core(t.core));
    } else {
      // First read after arming: restore the read bit; per-node replicas are
      // materialized lazily by the access fast path.
      resolve_replica(t, p, pte, vm::vpn_of(addr), topo_.node_of_core(t.core), copies);
      pte.set(vm::Pte::kHwRead);
    }
    return false;
  }

  if (pte.flags & vm::Pte::kTxn) {
    // Write fault on a page mid-transaction: drop the protection and let
    // the writer proceed immediately — it never waits for the migration.
    // The writer's access then bumps the write generation, so the verify
    // step sees the page dirty and loops through the retry path.
    charge(t, cost_.pte_update + cost_.tlb_flush_local, sim::CostKind::kPageFault);
    pte.clear(vm::Pte::kTxn);
    pte.restore_hw(vma->prot);
    return false;
  }

  if (pte.next_touch()) {
    ++kstats_.nexttouch_faults;
    const topo::NodeId local = topo_.node_of_core(t.core);
    if (phys_.node_of(pte.frame) != local) {
      const topo::NodeId was = phys_.node_of(pte.frame);
      if (migrate_page(t, p, pte, vm::vpn_of(addr), local, cost_.nt_fault_control,
                       sim::CostKind::kNextTouchControl,
                       sim::CostKind::kNextTouchCopy,
                       copies) == MigrateResult::kOk) {
        ++res.nexttouch_migrations;
        ++kstats_.pages_migrated_nexttouch;
        trace(t, EventType::kNextTouchMigrate, vm::vpn_of(addr), 1, was, local);
      } else {
        // Degraded next-touch: the local node cannot take the page (ENOMEM
        // or copy failure). Map it where it is — the touch must never
        // crash; only the locality optimization is lost.
        ++kstats_.nexttouch_degraded;
        trace(t, EventType::kNextTouchDegraded, vm::vpn_of(addr), 1, was, local);
      }
    } else {
      // Already local: just rearm the permissions.
      charge(t, cost_.pte_update + cost_.tlb_flush_local,
             sim::CostKind::kNextTouchControl);
      ++res.nexttouch_hits_local;
    }
    pte.clear(vm::Pte::kNextTouch);
    pte.set(vm::Pte::kAccessed);
    pte.restore_hw(vma->prot);
    if (cfg_.nt_async_window > 0)
      nt_migrate_ahead(t, p, *vma, vm::vpn_of(addr), local);
    return false;
  }

  if (pte.numa_hint() && cfg_.numa_balancing.enabled) {
    // NUMA hint fault (do_numa_page): the scan clock unmapped this page so
    // we learn who touches it. Records fault stats, rearms the PTE, and may
    // queue a confirmed remote page for promotion.
    numab_hint_fault(t, p, *vma, pte, vm::vpn_of(addr));
    return false;
  }

  // Present, VMA permits, but hardware bits are narrower (e.g. after an
  // mprotect widening): re-derive them from the VMA.
  charge(t, cost_.pte_update + cost_.tlb_flush_local, sim::CostKind::kPageFault);
  pte.restore_hw(vma->prot);
  return false;
}

AccessResult Kernel::access(ThreadCtx& t, vm::Vaddr addr, std::uint64_t len,
                            vm::Prot want, double stream_rate_bytes_per_us) {
  AccessResult res;
  if (len == 0) return res;
  Process& p = proc(t.pid);
  vm::PageTable& pt = p.as.page_table();
  const topo::NodeId core_node = topo_.node_of_core(t.core);
  numab_tick(t, p);
  const sim::Time entry = t.clock;
  CopyBatch copies;

  const vm::Vaddr end = addr + len;
  vm::Vpn vpn = vm::vpn_of(addr);
  const vm::Vpn vpn_end = vm::vpn_of(end - 1) + 1;

  // Contiguous same-node runs are charged as one stream.
  const MemDir dir =
      prot_allows(want, vm::Prot::kWrite) ? MemDir::kWrite : MemDir::kRead;
  topo::NodeId run_node = topo::kInvalidNode;
  std::uint64_t run_bytes = 0;
  auto flush_run = [&] {
    if (run_bytes == 0 || stream_rate_bytes_per_us <= 0.0) {
      run_bytes = 0;
      return;
    }
    const sim::Slot s = hw_.stream(t.clock, core_node, run_node, run_bytes,
                                   stream_rate_bytes_per_us, dir);
    const sim::Time lat = topo_.access_latency(core_node, run_node);
    t.stats.add(sim::CostKind::kMemAccess, s.finish + lat - t.clock);
    t.clock = s.finish + lat;
    run_bytes = 0;
  };

  const bool writing = prot_allows(want, vm::Prot::kWrite);

  // Soft-TLB fast path: a current-generation descriptor covering the whole
  // extent proves every page is mapped, same-node, flag-quiet, and (for
  // writes) already dirty — so the walk below would charge exactly one
  // stream of `len` bytes from that node and change nothing. Charge that
  // stream through the identical flush_run arithmetic and return. All other
  // AccessResult fields stay zero, as the slow path would leave them, and
  // the tail (copy batch, migration serialization, numab flush) is a no-op
  // on such an extent by construction.
  if (cfg_.stlb) {
    if (const SoftTlb::Entry* e =
            t.stlb.lookup(t.pid, p.mapping_gen, vpn, vpn_end, want)) {
      ++kstats_.stlb_hits;
      run_node = e->node;
      run_bytes = len;  // per-page (hi - lo) over a contiguous extent sums to len
      flush_run();
      res.pages = vpn_end - vpn;
      if (!p.numab.pending.empty()) numab_flush_promotions(t, p);
      return res;
    }
    ++kstats_.stlb_misses;
  }

  // Soft-TLB fill: the walk doubles as the proof. Track whether this extent
  // came out fault-free, single-node, and flag-quiet, and which hardware
  // permissions (plus the dirty bit, for write reuse) held on every page.
  const vm::Vpn vpn0 = vpn;
  bool stlb_elig = cfg_.stlb;
  bool stlb_read_ok = true;
  bool stlb_write_ok = true;
  topo::NodeId stlb_node = topo::kInvalidNode;

  // PTEs are walked by pointer within each 512-entry chunk (arena-backed,
  // address-stable even when a fault grows the table): one find() per
  // chunk/fault instead of one per page. Fault handling and the per-page
  // stream accounting happen in exactly the per-page order of old code.
  while (vpn < vpn_end) {
    vm::Pte* pte = pt.find(vpn);
    unsigned retries = 0;
    while (pte == nullptr || !pte->hw_allows(want)) {
      flush_run();
      stlb_elig = false;  // a faulting extent is not walk-free reusable
      if (++retries > kMaxFaultRetries)
        throw SegfaultError{std::max(addr, vm::addr_of(vpn))};
      handle_fault(t, p, std::max(addr, vm::addr_of(vpn)), want, res, &copies);
      pte = pt.find(vpn);
    }
    const vm::Vpn chunk_end =
        std::min(vpn_end, (vpn | (vm::PageTable::kChunkPages - 1)) + 1);
    for (;;) {
      const vm::Vaddr page_start = vm::addr_of(vpn);
      const vm::Vaddr lo = std::max(addr, page_start);
      const vm::Vaddr hi = std::min(end, page_start + mem::kPageSize);
      if (stlb_elig) {
        const std::uint16_t fl = pte->flags;  // pre-mutation flags
        if (fl & vm::Pte::kStlbExcluded) stlb_elig = false;
        stlb_read_ok = stlb_read_ok && (fl & vm::Pte::kHwRead) != 0;
        stlb_write_ok = stlb_write_ok && (fl & vm::Pte::kHwWrite) != 0 &&
                        (writing || (fl & vm::Pte::kDirty) != 0);
      }
      if (writing) {
        pte->set(vm::Pte::kDirty);
        ++pte->write_gen;
      }
      topo::NodeId node = phys_.node_of(pte->frame);
      if ((pte->flags & vm::Pte::kReplica) && !writing)
        node = resolve_replica(t, p, *pte, vpn, core_node, &copies);
      if (stlb_node == topo::kInvalidNode) {
        stlb_node = node;
      } else if (node != stlb_node) {
        stlb_elig = false;  // extent spans nodes: one-stream replay is wrong
      }
      if (node != run_node) flush_run();
      run_node = node;
      run_bytes += hi - lo;
      ++res.pages;
      ++vpn;
      if (vpn == chunk_end) break;
      ++pte;
      if (!pte->hw_allows(want)) break;  // back to the fault path
    }
  }
  flush_run();
  if (stlb_elig && (stlb_read_ok || stlb_write_ok) &&
      vpn_end - vpn0 <= std::numeric_limits<std::uint32_t>::max()) {
    std::uint8_t prot = 0;
    if (stlb_read_ok) prot |= SoftTlb::kReadOk;
    if (stlb_write_ok) prot |= SoftTlb::kWriteOk;
    t.stlb.insert({vpn0, static_cast<std::uint32_t>(vpn_end - vpn0), t.pid,
                   p.mapping_gen, stlb_node, prot});
  }
  flush_copy_batch(t, copies, sim::CostKind::kNextTouchCopy);
  if (cfg_.lock_model == LockModel::kRange) {
    serialize_migration_ranged(t, p, addr, end, entry, res.nexttouch_migrations,
                               migrate_serial_per_page(cost_.nt_range_serial_per_page));
  } else {
    serialize_migration(t, p, entry, res.nexttouch_migrations,
                        migrate_serial_per_page(cost_.nt_serial_per_page));
  }
  if (!p.numab.pending.empty()) numab_flush_promotions(t, p);
  return res;
}

void Kernel::charge_stream(ThreadCtx& t, topo::NodeId mem_node,
                           std::uint64_t bytes, double rate, MemDir dir) {
  const topo::NodeId core_node = topo_.node_of_core(t.core);
  const sim::Slot s = hw_.stream(t.clock, core_node, mem_node, bytes, rate, dir);
  const sim::Time lat = topo_.access_latency(core_node, mem_node);
  t.stats.add(sim::CostKind::kMemAccess, s.finish + lat - t.clock);
  t.clock = s.finish + lat;
}

AccessResult Kernel::access_strided(ThreadCtx& t, vm::Vaddr base,
                                    std::uint64_t rows, std::uint64_t row_bytes,
                                    std::uint64_t stride_bytes, vm::Prot want,
                                    double stream_rate_bytes_per_us,
                                    double traffic_scale,
                                    std::vector<std::uint64_t>* bytes_by_node) {
  AccessResult res;
  if (rows == 0 || row_bytes == 0) return res;
  Process& p = proc(t.pid);
  vm::PageTable& pt = p.as.page_table();
  const topo::NodeId core_node = topo_.node_of_core(t.core);
  numab_tick(t, p);
  const sim::Time entry = t.clock;
  CopyBatch copies;

  // Per-node byte buckets, charged in bulk at the end.
  std::vector<std::uint64_t> bytes_from(topo_.num_nodes(), 0);

  const bool writing = prot_allows(want, vm::Prot::kWrite);
  for (std::uint64_t r = 0; r < rows; ++r) {
    const vm::Vaddr row_start = base + r * stride_bytes;
    const vm::Vaddr row_end = row_start + row_bytes;
    const vm::Vpn rv0 = vm::vpn_of(row_start);
    const vm::Vpn rv_end = vm::vpn_of(row_end - 1) + 1;

    // Each row is one contiguous extent: same soft-TLB contract as access().
    // A hit fills the same per-node bucket the per-page walk would (the
    // (hi - lo) shares of one row sum to row_bytes).
    if (cfg_.stlb) {
      if (const SoftTlb::Entry* e =
              t.stlb.lookup(t.pid, p.mapping_gen, rv0, rv_end, want)) {
        ++kstats_.stlb_hits;
        bytes_from[e->node] += row_bytes;
        res.pages += rv_end - rv0;
        continue;
      }
      ++kstats_.stlb_misses;
    }
    bool stlb_elig = cfg_.stlb;
    bool stlb_read_ok = true;
    bool stlb_write_ok = true;
    topo::NodeId stlb_node = topo::kInvalidNode;

    for (vm::Vpn vpn = rv0; vpn < rv_end; ++vpn) {
      const vm::Vaddr page_start = vm::addr_of(vpn);
      const vm::Vaddr lo = std::max(row_start, page_start);
      const vm::Vaddr hi = std::min(row_end, page_start + mem::kPageSize);

      vm::Pte* pte = pt.find(vpn);
      unsigned retries = 0;
      while (pte == nullptr || !pte->hw_allows(want)) {
        stlb_elig = false;
        if (++retries > kMaxFaultRetries) throw SegfaultError{lo};
        handle_fault(t, p, lo, want, res, &copies);
        pte = pt.find(vpn);
      }
      if (stlb_elig) {
        const std::uint16_t fl = pte->flags;  // pre-mutation flags
        if (fl & vm::Pte::kStlbExcluded) stlb_elig = false;
        stlb_read_ok = stlb_read_ok && (fl & vm::Pte::kHwRead) != 0;
        stlb_write_ok = stlb_write_ok && (fl & vm::Pte::kHwWrite) != 0 &&
                        (writing || (fl & vm::Pte::kDirty) != 0);
      }
      if (writing) {
        pte->set(vm::Pte::kDirty);
        ++pte->write_gen;
      }
      topo::NodeId node = phys_.node_of(pte->frame);
      if ((pte->flags & vm::Pte::kReplica) && !writing)
        node = resolve_replica(t, p, *pte, vpn, core_node, &copies);
      if (stlb_node == topo::kInvalidNode) {
        stlb_node = node;
      } else if (node != stlb_node) {
        stlb_elig = false;
      }
      bytes_from[node] += hi - lo;
      ++res.pages;
    }
    if (stlb_elig && (stlb_read_ok || stlb_write_ok) &&
        rv_end - rv0 <= std::numeric_limits<std::uint32_t>::max()) {
      std::uint8_t prot = 0;
      if (stlb_read_ok) prot |= SoftTlb::kReadOk;
      if (stlb_write_ok) prot |= SoftTlb::kWriteOk;
      t.stlb.insert({rv0, static_cast<std::uint32_t>(rv_end - rv0), t.pid,
                     p.mapping_gen, stlb_node, prot});
    }
  }

  if (bytes_by_node != nullptr) {
    bytes_by_node->assign(topo_.num_nodes(), 0);
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n)
      (*bytes_by_node)[n] = bytes_from[n];
  }
  if (stream_rate_bytes_per_us > 0.0) {
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (bytes_from[n] == 0) continue;
      const auto scaled = static_cast<std::uint64_t>(
          static_cast<double>(bytes_from[n]) * traffic_scale + 0.5);
      charge_stream(t, n, scaled, stream_rate_bytes_per_us,
                    prot_allows(want, vm::Prot::kWrite) ? MemDir::kWrite
                                                        : MemDir::kRead);
    }
  }
  flush_copy_batch(t, copies, sim::CostKind::kNextTouchCopy);
  if (cfg_.lock_model == LockModel::kRange) {
    serialize_migration_ranged(t, p, base,
                               base + (rows - 1) * stride_bytes + row_bytes,
                               entry, res.nexttouch_migrations,
                               migrate_serial_per_page(cost_.nt_range_serial_per_page));
  } else {
    serialize_migration(t, p, entry, res.nexttouch_migrations,
                        migrate_serial_per_page(cost_.nt_serial_per_page));
  }
  if (!p.numab.pending.empty()) numab_flush_promotions(t, p);
  return res;
}

int Kernel::read_bytes(ThreadCtx& t, vm::Vaddr addr, std::span<std::byte> out) {
  access(t, addr, out.size(), vm::Prot::kRead, cost_.core_stream_bytes_per_us);
  if (!peek(t.pid, addr, out) && phys_.backing() == mem::Backing::kMaterialized)
    return -kEFAULT;
  return 0;
}

int Kernel::write_bytes(ThreadCtx& t, vm::Vaddr addr, std::span<const std::byte> in) {
  access(t, addr, in.size(), vm::Prot::kWrite, cost_.core_stream_bytes_per_us);
  if (!poke(t.pid, addr, in) && phys_.backing() == mem::Backing::kMaterialized)
    return -kEFAULT;
  return 0;
}

int Kernel::user_memcpy(ThreadCtx& t, vm::Vaddr dst, vm::Vaddr src,
                        std::uint64_t len) {
  if (len == 0) return 0;
  Process& p = proc(t.pid);
  if (!p.as.range_mapped(src, len) || !p.as.range_mapped(dst, len)) return -kEFAULT;

  // Fault both ranges in (no data-plane charge; the copy itself is charged
  // below at the SSE rate between the actual frame locations).
  charge(t, cost_.user_memcpy_base, sim::CostKind::kMemAccess);
  access(t, src, len, vm::Prot::kRead, 0.0);
  access(t, dst, len, vm::Prot::kWrite, 0.0);

  vm::PageTable& pt = p.as.page_table();
  const vm::Vaddr end = src + len;
  vm::Vpn svpn = vm::vpn_of(src);
  const vm::Vpn svpn_end = vm::vpn_of(end - 1) + 1;

  topo::NodeId run_from = topo::kInvalidNode;
  topo::NodeId run_to = topo::kInvalidNode;
  std::uint64_t run_bytes = 0;
  auto flush = [&] {
    if (run_bytes == 0) return;
    const sim::Slot s =
        hw_.copy(t.clock, run_from, run_to, run_bytes, cost_.user_copy_bytes_per_us);
    t.stats.add(sim::CostKind::kMemAccess, s.finish - t.clock);
    t.clock = s.finish;
    run_bytes = 0;
  };

  for (; svpn < svpn_end; ++svpn) {
    const vm::Vaddr page_start = vm::addr_of(svpn);
    const vm::Vaddr lo = std::max(src, page_start);
    const vm::Vaddr hi = std::min(end, page_start + mem::kPageSize);
    const vm::Vaddr doff = dst + (lo - src);

    const vm::Pte* spte = pt.find(svpn);
    const vm::Pte* dpte = pt.find(vm::vpn_of(doff));
    assert(spte != nullptr && dpte != nullptr);
    const topo::NodeId f = phys_.node_of(spte->frame);
    const topo::NodeId to = phys_.node_of(dpte->frame);
    if (f != run_from || to != run_to) flush();
    run_from = f;
    run_to = to;
    run_bytes += hi - lo;
  }
  flush();

  if (phys_.backing() == mem::Backing::kMaterialized) {
    std::vector<std::byte> tmp(len);
    if (!peek(t.pid, src, tmp)) return -kEFAULT;
    if (!poke(t.pid, dst, tmp)) return -kEFAULT;
  }
  return 0;
}

void Kernel::teardown_unmap(Pid pid, vm::Vaddr addr, std::uint64_t len) {
  if (len == 0) return;
  Process& p = proc(pid);
  const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
  auto teardown_run = [&](vm::PageRun run) {
    vm::Vpn vpn = run.first;
    for (vm::Pte& pte : run.ptes) {
      const vm::Vpn v = vpn++;
      if (!pte.present()) continue;
      for (mem::FrameId f : p.replicas.take(v)) phys_.free(f);
      p.placement.dec(v, phys_.node_of(pte.frame));
      phys_.free(pte.frame);
    }
  };
  p.as.page_table().for_each_run(vm::vpn_of(addr), vend, teardown_run);
  p.as.unmap(addr, len);
  stlb_invalidate(p);
}

topo::NodeId Kernel::page_node(Pid pid, vm::Vaddr addr) const {
  const vm::Pte* pte = proc(pid).as.page_table().find(vm::vpn_of(addr));
  if (pte == nullptr || !pte->present()) return topo::kInvalidNode;
  return phys_.node_of(pte->frame);
}

bool Kernel::peek(Pid pid, vm::Vaddr addr, std::span<std::byte> out) const {
  const Process& p = proc(pid);
  std::uint64_t done = 0;
  while (done < out.size()) {
    const vm::Vaddr a = addr + done;
    const vm::Pte* pte = p.as.page_table().find(vm::vpn_of(a));
    if (pte == nullptr || !pte->present()) return false;
    const std::byte* data = phys_.data(pte->frame);
    if (data == nullptr) return false;
    const std::uint64_t off = a & (mem::kPageSize - 1);
    const std::uint64_t n = std::min<std::uint64_t>(mem::kPageSize - off,
                                                    out.size() - done);
    std::memcpy(out.data() + done, data + off, n);
    done += n;
  }
  return true;
}

bool Kernel::poke(Pid pid, vm::Vaddr addr, std::span<const std::byte> in) {
  Process& p = proc(pid);
  std::uint64_t done = 0;
  while (done < in.size()) {
    const vm::Vaddr a = addr + done;
    vm::Pte* pte = p.as.page_table().find(vm::vpn_of(a));
    if (pte == nullptr || !pte->present()) return false;
    // Timing-free, but still a write: the transactional migrator's dirty
    // check must see it (tests poke pages mid-transaction).
    ++pte->write_gen;
    std::byte* data = phys_.data(pte->frame);
    if (data == nullptr) return false;
    const std::uint64_t off = a & (mem::kPageSize - 1);
    const std::uint64_t n = std::min<std::uint64_t>(mem::kPageSize - off,
                                                    in.size() - done);
    std::memcpy(data + off, in.data() + done, n);
    done += n;
  }
  return true;
}

std::uint64_t Kernel::pages_on_node(Pid pid, vm::Vaddr addr, std::uint64_t len,
                                    topo::NodeId node) const {
  const Process& p = proc(pid);
  std::uint64_t count = 0;
  const vm::Vpn vbegin = vm::vpn_of(addr);
  const vm::Vpn vend = vm::vpn_of(addr + len - 1) + 1;
  auto scan = [&](vm::Vpn a, vm::Vpn b) {
    p.as.page_table().for_each_run(a, b, [&](vm::ConstPageRun run) {
      for (const vm::Pte& pte : run.ptes)
        if (pte.present() && phys_.node_of(pte.frame) == node) ++count;
    });
  };
  // Fully-covered chunks read one maintained counter each; only the partial
  // chunks at the range edges fall back to the per-PTE walk.
  constexpr vm::Vpn kC = vm::PageTable::kChunkPages;
  const vm::Vpn full_lo = (vbegin + kC - 1) & ~(kC - 1);
  const vm::Vpn full_hi = vend & ~(kC - 1);
  if (full_lo >= full_hi) {
    scan(vbegin, vend);
    return count;
  }
  scan(vbegin, full_lo);
  for (std::uint64_t key = full_lo >> vm::PageTable::kChunkBits;
       key < (full_hi >> vm::PageTable::kChunkBits); ++key)
    count += p.placement.chunk_count(key, node);
  scan(full_hi, vend);
  return count;
}

void Kernel::validate(Pid pid) const {
  const Process& p = proc(pid);
  std::uint64_t referenced = 0;
  std::unordered_set<mem::FrameId> seen;
  auto claim = [&seen](mem::FrameId f, const char* what) {
    if (!seen.insert(f).second)
      throw std::logic_error{std::string{"validate: frame double-mapped ("} +
                             what + ")"};
  };
  p.as.for_each([&](const vm::Vma& vma) {
    auto check_run = [&](vm::ConstPageRun run) {
      vm::Vpn vpn = run.first;
      for (const vm::Pte& pte : run.ptes) {
        const vm::Vpn v = vpn++;
        if (!pte.present()) continue;
        ++referenced;
        if (!phys_.is_live(pte.frame))
          throw std::logic_error{"validate: present PTE references a dead frame"};
        claim(pte.frame, "pte");
        if (pte.next_touch() && pte.hw_allows(vm::Prot::kRead))
          throw std::logic_error{"validate: next-touch PTE with live hw read bit"};
        if (pte.numa_hint() && pte.hw_allows(vm::Prot::kRead))
          throw std::logic_error{"validate: numa-hint PTE with live hw read bit"};
        if (pte.numa_hint() && pte.next_touch())
          throw std::logic_error{"validate: PTE both numa-hint and next-touch"};
        if ((pte.flags & vm::Pte::kTxn) && pte.hw_allows(vm::Prot::kWrite))
          throw std::logic_error{"validate: txn-protected PTE with live hw write bit"};
        const std::uint64_t nrep = p.replicas.replica_count(v);
        if (nrep != 0 && !(pte.flags & vm::Pte::kReplica))
          throw std::logic_error{"validate: replicas without kReplica flag"};
        referenced += nrep;
        for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
          const mem::FrameId rf = p.replicas.replica_on(v, n);
          if (rf == mem::kInvalidFrame) continue;
          if (!phys_.is_live(rf))
            throw std::logic_error{"validate: replica references a dead frame"};
          if (rf == pte.frame)
            throw std::logic_error{"validate: replica aliases the home frame"};
          if (phys_.node_of(rf) != n)
            throw std::logic_error{"validate: replica on the wrong node"};
          claim(rf, "replica");
        }
      }
    };
    p.as.page_table().for_each_run(vm::vpn_of(vma.start), vm::vpn_of(vma.end),
                                   check_run);
  });
  // Single-process kernels: everything allocated must be referenced — plus
  // any shadow frames held by in-flight transactional migrations, which by
  // design have no PTE pointing at them yet.
  const std::uint64_t shadow = phys_.total_shadow_frames();
  if (procs_.size() == 1 && referenced + shadow != phys_.total_used_frames())
    throw std::logic_error{"validate: frame leak or double-use (" +
                           std::to_string(referenced) + " referenced + " +
                           std::to_string(shadow) + " shadow vs " +
                           std::to_string(phys_.total_used_frames()) + " used)"};
  // Placement-count audit: recompute the per-chunk per-node rows from the
  // page table and compare against the maintained counters. A mismatch means
  // a map/remap/unmap site forgot to update Process::placement.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> fresh;
  p.as.for_each([&](const vm::Vma& vma) {
    p.as.page_table().for_each_run(
        vm::vpn_of(vma.start), vm::vpn_of(vma.end), [&](vm::ConstPageRun run) {
          vm::Vpn vpn = run.first;
          for (const vm::Pte& pte : run.ptes) {
            const vm::Vpn v = vpn++;
            if (!pte.present()) continue;
            std::vector<std::uint32_t>& row =
                fresh[v >> vm::PageTable::kChunkBits];
            if (row.empty()) row.assign(topo_.num_nodes(), 0);
            ++row[phys_.node_of(pte.frame)];
          }
        });
  });
  auto placement_mismatch = [](std::uint64_t key, topo::NodeId n,
                               std::uint32_t want, std::uint32_t got) {
    throw std::logic_error{"validate: placement count drift (chunk " +
                           std::to_string(key) + " node " + std::to_string(n) +
                           ": counted " + std::to_string(got) + ", page table " +
                           "has " + std::to_string(want) + ")"};
  };
  for (const auto& [key, row] : fresh)
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n)
      if (p.placement.chunk_count(key, n) != row[n])
        placement_mismatch(key, n, row[n], p.placement.chunk_count(key, n));
  p.placement.for_each_row([&](std::uint64_t key,
                               const std::vector<std::uint32_t>& row) {
    const auto it = fresh.find(key);
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
      const std::uint32_t want = it == fresh.end() ? 0u : it->second[n];
      if (row[n] != want) placement_mismatch(key, n, want, row[n]);
    }
  });
  // Per-tier occupancy bookkeeping must agree with the per-node pools.
  phys_.audit_tiers();
}

void Kernel::validate(const ThreadCtx& t) const {
  validate(t.pid);
  // Soft-TLB audit: re-resolve every current-generation descriptor against
  // the page table. Each covered page must still deliver exactly what the
  // fast path replays without walking: present, on the descriptor's node,
  // free of the excluded flags, readable/writable in hardware as recorded,
  // and dirty wherever a write descriptor would skip the dirty-set. A
  // violation means some mapping mutation forgot its stlb_invalidate().
  t.stlb.for_each([&](const SoftTlb::Entry& e) {
    const Process& p = proc(e.pid);
    if (e.gen != p.mapping_gen) return;  // stale by design: misses harmlessly
    const vm::PageTable& pt = p.as.page_table();
    for (vm::Vpn v = e.first; v < e.first + e.pages; ++v) {
      const vm::Pte* pte = pt.find(v);
      if (pte == nullptr || !pte->present())
        throw std::logic_error{"validate: stlb descriptor covers absent page"};
      if (phys_.node_of(pte->frame) != e.node)
        throw std::logic_error{"validate: stlb descriptor node drift"};
      if (pte->flags & vm::Pte::kStlbExcluded)
        throw std::logic_error{"validate: stlb descriptor over flagged page"};
      if ((e.prot & SoftTlb::kReadOk) && !(pte->flags & vm::Pte::kHwRead))
        throw std::logic_error{"validate: stlb read descriptor lost hw read"};
      if ((e.prot & SoftTlb::kWriteOk) &&
          (!(pte->flags & vm::Pte::kHwWrite) || !(pte->flags & vm::Pte::kDirty)))
        throw std::logic_error{
            "validate: stlb write descriptor over clean/protected page"};
    }
  });
}

std::string Kernel::meminfo() const {
  std::ostringstream os;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const std::uint64_t cap = phys_.capacity_frames(n);
    const std::uint64_t used = phys_.used_frames(n);
    os << "node " << n << ": " << (cap * mem::kPageSize >> 20) << " MB total, "
       << (used * mem::kPageSize >> 10) << " KB used, "
       << ((cap - used) * mem::kPageSize >> 20) << " MB free";
    if (topo_.tiered()) os << " [" << topo::mem_tier_name(topo_.tier_of(n)) << "]";
    os << "\n";
  }
  return os.str();
}

std::string Kernel::numa_maps(Pid pid) const {
  const Process& p = proc(pid);
  std::ostringstream os;
  p.as.for_each([&](const vm::Vma& vma) {
    os << std::hex << vma.start << std::dec << " ";
    switch (vma.policy.mode) {
      case vm::PolicyMode::kDefault: os << "default"; break;
      case vm::PolicyMode::kBind: os << "bind"; break;
      case vm::PolicyMode::kInterleave: os << "interleave"; break;
      case vm::PolicyMode::kPreferred: os << "prefer"; break;
      case vm::PolicyMode::kPreferredMany: os << "prefer (many)"; break;
    }
    std::vector<std::uint64_t> per_node(topo_.num_nodes(), 0);
    std::uint64_t present = 0;
    p.as.page_table().for_each_run(
        vm::vpn_of(vma.start), vm::vpn_of(vma.end), [&](vm::ConstPageRun run) {
          for (const vm::Pte& pte : run.ptes) {
            if (!pte.present()) continue;
            ++present;
            ++per_node[phys_.node_of(pte.frame)];
          }
        });
    os << " anon=" << present;
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (per_node[n] != 0) os << " N" << n << "=" << per_node[n];
    }
    if (!vma.name.empty()) os << " [" << vma.name << "]";
    os << "\n";
  });
  return os.str();
}

}  // namespace numasim::kern
