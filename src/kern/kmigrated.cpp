// Kernel-side entry points of the kmigrated async migration engine: batch
// submission, execution on the daemon timelines, draining, and the
// next-touch migrate-ahead window.
#include <algorithm>
#include <cstring>

#include "kern/kernel.hpp"

namespace numasim::kern {

SyscallResult Kernel::sys_move_pages_async(ThreadCtx& t,
                                           std::span<const MoveRange> ranges) {
  const sim::Time begin = t.clock;
  const SyscallResult r = do_move_pages_async(t, ranges);
  emit_span(t, "sys_move_pages_async", begin, "kern");
  return r;
}

SyscallResult Kernel::do_move_pages_async(ThreadCtx& t,
                                          std::span<const MoveRange> ranges) {
  Process& p = proc(t.pid);
  charge(t, cost_.syscall_entry, sim::CostKind::kSyscallEntry);
  // Validate every range up front (the whole call fails before anything is
  // queued, matching sys_move_pages_ranged).
  for (const MoveRange& r : ranges) {
    if (r.len == 0) return -kEINVAL;
    if (r.node >= topo_.num_nodes()) return -kEINVAL;
    if (!p.as.range_mapped(r.addr, r.len)) return -kEFAULT;
  }
  long queued = 0;
  for (const MoveRange& r : ranges) {
    charge(t, cost_.kmigrated_submit, sim::CostKind::kMovePagesControl);
    queued += static_cast<long>(
        submit_kmigrated_batch(t, p, r.addr, r.len, r.node, t.clock));
  }
  return queued;
}

std::uint64_t Kernel::submit_kmigrated_batch(ThreadCtx& t, Process& p,
                                             vm::Vaddr addr, std::uint64_t len,
                                             topo::NodeId node,
                                             sim::Time submit,
                                             bool defer_on_degrade) {
  if (kmig_now_ < submit) kmig_now_ = submit;
  const std::uint64_t npages =
      vm::vpn_of(vm::page_align_up(addr + len)) - vm::vpn_of(addr);
  if (injector_ != nullptr && injector_->drop_kmigrated()) {
    // The batch is lost on the queue: pages stay where they are; the caller
    // only ever learns through the counters/events (fire-and-forget).
    ++kstats_.kmigrated_batches_dropped;
    trace(t, EventType::kKmigratedDrop, vm::vpn_of(addr), npages,
          topo::kInvalidNode, node);
    return 0;
  }
  trace(t, EventType::kKmigratedSubmit, vm::vpn_of(addr), npages,
        topo::kInvalidNode, node);

  // The daemon wakes after the IPI latency and no earlier than its previous
  // batch finished.
  const sim::Time start =
      std::max(submit + cost_.kmigrated_wakeup, kmigrated_.node_free_at(node));

  // Page-table mutations are applied eagerly (the simulation has no host
  // concurrency to race with), but every nanosecond is charged to the
  // daemon's slot — the submitter's clock never moves here.
  sim::Time service = cost_.kmigrated_batch_base;
  sim::Time copy_cursor = start;
  std::uint64_t moved = 0;
  // Daemon execution context for the transactional engine: TxnMigrator bills
  // a ThreadCtx, so the daemon gets a scratch one whose clock is the batch
  // slot. Its stats are discarded — nothing here bills the submitter.
  const bool txn = cfg_.migration_mode == MigrationMode::kTransactional;
  ThreadCtx dt;
  dt.tid = t.tid;
  dt.pid = p.pid;
  dt.core = t.core;
  dt.clock = start + cost_.kmigrated_batch_base;
  const vm::Vpn vend = vm::vpn_of(vm::page_align_up(addr + len));
  // Run-batched walk: one chunk lookup per 512 pages; pages without an
  // established chunk cannot be present and are skipped wholesale. The VMA
  // of resolved next-touch pages is cached across iterations — a batch
  // rarely crosses a mapping.
  const vm::Vma* nt_vma = nullptr;
  auto batch_run = [&](vm::PageRun run) {
    vm::Vpn vpn = run.first - 1;
    for (vm::Pte& run_pte : run.ptes) {
      ++vpn;
      vm::Pte* pte = &run_pte;
      if (!pte->present() || (pte->flags & vm::Pte::kHuge))
        continue;
      const bool was_nt = pte->next_touch();
      const topo::NodeId from = phys_.node_of(pte->frame);
      if (from != node && txn) {
        if (do_migrate_page_txn(dt, p, vpn, node,
                                sim::CostKind::kMovePagesControl,
                                sim::CostKind::kMovePagesCopy) ==
            TxnResult::kCommitted) {
          ++moved;
          ++kstats_.kmigrated_pages;
        } else {
          ++kstats_.txn_degraded;
          trace(dt, EventType::kTxnDegraded, vpn, 1, from, node);
          if (defer_on_degrade) continue;  // left in place for a later pass
          switch (do_migrate_page(dt, p, *pte, vpn, node,
                                  cost_.move_pages_range_page_control,
                                  sim::CostKind::kMovePagesControl,
                                  sim::CostKind::kMovePagesCopy, nullptr)) {
            case MigrateResult::kOk:
              ++moved;
              ++kstats_.kmigrated_pages;
              break;
            case MigrateResult::kNoMem:
            case MigrateResult::kCopyFail:
              // do_migrate_page already counted migrations_failed + traced.
              ++kstats_.kmigrated_pages_failed;
              break;
          }
        }
      } else if (from != node) {
        mem::FrameId nf = alloc_migration_frame(node);
        if (nf == mem::kInvalidFrame && cfg_.tiers.enabled && cfg_.tiers.demotion) {
          // Direct demotion (tiering): the daemon evicts pages of the full
          // destination node down-tier and retries once, so an up-tier batch
          // degrades to per-page ENOMEM only when every lower tier is full
          // too. Demotion work bills the daemon (dt / service), never the
          // submitter.
          if (tier_demote(dt, p, node, cfg_.tiers.demote_batch_pages,
                          /*require_idle=*/false,
                          sim::CostKind::kMovePagesControl) > 0) {
            service += cost_.demote_direct_stall;
            nf = alloc_migration_frame(node);
          }
        }
        if (nf == mem::kInvalidFrame) {
          // Per-page ENOMEM degrades just this page; the original mapping is
          // untouched, so there is nothing to roll back.
          ++kstats_.kmigrated_pages_failed;
          ++kstats_.migrations_failed;
          trace(t, EventType::kMigrateFail, vpn, 1, from, node);
        } else {
          service += cost_.move_pages_range_page_control;
          const sim::Slot c = hw_.copy(copy_cursor, from, node, mem::kPageSize,
                                       cost_.kernel_copy_bytes_per_us);
          copy_cursor = c.finish;
          if (std::byte* dst = phys_.data(nf)) {
            if (const std::byte* src = phys_.data(pte->frame))
              std::memcpy(dst, src, mem::kPageSize);
          }
          phys_.free(pte->frame);
          pte->frame = nf;
          p.placement.move(vpn, from, phys_.node_of(nf));
          ++moved;
          ++kstats_.kmigrated_pages;
        }
      }
      if (was_nt) {
        // The daemon resolves the pending next-touch mark so the eventual
        // touch is an ordinary access, not a fault.
        if (nt_vma == nullptr || !nt_vma->contains(vm::addr_of(vpn)))
          nt_vma = p.as.find(vm::addr_of(vpn));
        if (nt_vma != nullptr) {
          pte->clear(vm::Pte::kNextTouch);
          pte->set(vm::Pte::kAccessed);
          pte->restore_hw(nt_vma->prot);
        }
      }
    }
  };
  p.as.page_table().for_each_run(vm::vpn_of(addr), vend, batch_run);
  if (moved > 0) {
    // Migrate site: the stop-and-copy arm flips frames inline above (the
    // txn arm already bumped per commit). The next-touch resolution alone
    // needs no bump — NT pages cannot sit under a current-generation
    // descriptor, since arming them bumped the generation.
    stlb_invalidate(p);
    // One coalesced shootdown round for the whole batch. (Each transactional
    // commit only flushed locally; the remote round lands here.)
    const sim::Time round = cost_.tlb_shootdown_round(topo_.num_cores(), moved);
    if (txn) dt.clock += round;
    else service += round;
    ++kstats_.tlb_shootdowns;
  }

  const sim::Time busy_until =
      txn ? dt.clock : std::max(start + service, copy_cursor);
  const sim::Slot slot = kmigrated_.submit(node, start, busy_until - start);
  ++kstats_.kmigrated_batches;
  if (h_kmigrated_batch_ != nullptr)
    h_kmigrated_batch_->record(slot.finish - submit);
  if (!sinks_.empty()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kInstant;
    e.ts = slot.finish;  // stamped at completion, on the daemon's timeline
    e.pid = t.pid;
    e.tid = t.tid;
    e.cat = "kern";
    e.name = event_type_name(EventType::kKmigratedComplete);
    e.add_arg("vpn", static_cast<std::int64_t>(vm::vpn_of(addr)))
        .add_arg("pages", static_cast<std::int64_t>(moved))
        .add_arg("from", -1)
        .add_arg("to", static_cast<std::int64_t>(node));
    emit(e);
  }
  return moved;
}

void Kernel::kmigrated_drain(ThreadCtx& t) {
  if (kmig_now_ < t.clock) kmig_now_ = t.clock;
  const sim::Time done = kmigrated_.drained_at();
  if (done > t.clock) {
    t.stats.add(sim::CostKind::kLockWait, done - t.clock);
    note_lock_wait(done - t.clock);
    t.clock = done;
    kmig_now_ = done;
  }
}

void Kernel::nt_migrate_ahead(ThreadCtx& t, Process& p, const vm::Vma& vma,
                              vm::Vpn fault_vpn, topo::NodeId node) {
  // Contiguous run of still-marked next-touch pages right behind the fault,
  // clipped to the VMA and the configured window.
  const vm::Vpn vma_end = vm::vpn_of(vma.end);
  const vm::Vpn first = fault_vpn + 1;
  const vm::Vpn limit = std::min(vma_end, first + cfg_.nt_async_window);
  vm::Vpn last = first;
  auto window_run = [&](vm::ConstPageRun run) {
    if (run.first != last) return false;  // absent chunk: the run ends here
    for (const vm::Pte& pte : run.ptes) {
      if (!pte.present() || !pte.next_touch()) return false;
      ++last;
    }
    return true;
  };
  p.as.page_table().for_each_run(first, limit, window_run);
  if (last == first) return;
  charge(t, cost_.kmigrated_submit, sim::CostKind::kNextTouchControl);
  submit_kmigrated_batch(t, p, vm::addr_of(first),
                         (last - first) * mem::kPageSize, node, t.clock);
}

}  // namespace numasim::kern
