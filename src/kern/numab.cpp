// Automatic NUMA balancing: the scan clock, hint-fault accounting, and
// migrate-on-fault page promotion (the kernel half of the subsystem; task
// placement is sched::Balancer, built on the accessors at the bottom).
//
// Modeled on Linux: task_numa_work walks a sliding window of the address
// space clearing access bits (change_prot_numa), do_numa_page records the
// fault in a decaying per-task histogram and promotes confirmed remote pages
// (numa_migrate_prep's two-reference check). Promotions are batched through
// the kmigrated daemons, so they honor memory-pressure watermarks and fault
// injection like every other migration path.
#include <algorithm>
#include <cmath>

#include "kern/kernel.hpp"

namespace numasim::kern {

namespace {

/// Lazy exponential decay: halve the scores once per elapsed scan period.
/// Deterministic (pure IEEE-double halving) and O(1) amortized.
void decay_task_stats(NumabTaskStats& ts, sim::Time now, sim::Time period) {
  if (period == 0 || now <= ts.decayed_to) return;
  const sim::Time elapsed = now - ts.decayed_to;
  const std::uint64_t steps = elapsed / period;
  if (steps == 0) return;
  if (steps >= 64) {
    // Beyond 64 halvings every double underflows to noise: forget outright.
    std::fill(ts.faults.begin(), ts.faults.end(), 0.0);
  } else {
    const double factor = std::ldexp(1.0, -static_cast<int>(steps));
    for (double& f : ts.faults) f *= factor;
  }
  ts.decayed_to += steps * period;
}

}  // namespace

const char* numa_policy_name(NumaPolicy p) {
  switch (p) {
    case NumaPolicy::kNone: return "none";
    case NumaPolicy::kPreferredNode: return "preferred-node";
    case NumaPolicy::kInterchange: return "interchange";
  }
  return "?";
}

void Kernel::numab_tick(ThreadCtx& t, Process& p) {
  const NumaBalancingConfig& nb = cfg_.numa_balancing;
  if (!nb.enabled) return;
  if (!p.numab.scan_armed) {
    // First access after enablement: arm the clock, scan one period later.
    p.numab.scan_armed = true;
    p.numab.next_scan_at = t.clock + nb.scan_period;
    return;
  }
  if (t.clock < p.numab.next_scan_at) return;
  // No catch-up bursts: a late task runs one window, not one per missed
  // period (task_numa_work reschedules relative to now).
  p.numab.next_scan_at = t.clock + nb.scan_period;
  numab_scan(t, p);
}

void Kernel::numab_scan(ThreadCtx& t, Process& p) {
  const NumaBalancingConfig& nb = cfg_.numa_balancing;
  const sim::Time begin = t.clock;
  ++kstats_.numab_scans;
  charge(t, cost_.numab_scan_base, sim::CostKind::kNumaScan);

  // Snapshot the scannable VMAs (the walk mutates PTE bits only). Huge
  // mappings are not migratable and unreadable VMAs (e.g. armed user
  // next-touch regions) must keep faulting to their own handler.
  struct Seg {
    vm::Vaddr start, end;
  };
  std::vector<Seg> segs;
  p.as.for_each([&](const vm::Vma& vma) {
    if (vma.huge || !vm::prot_allows(vma.prot, vm::Prot::kRead)) return;
    segs.push_back({vma.start, vma.end});
  });

  std::uint64_t marked = 0;
  vm::Vaddr window_start = p.numab.scan_cursor;
  if (!segs.empty()) {
    // Sliding window: resume at the cursor's segment, wrap once over the
    // space, stop after tagging scan_size_pages.
    const std::size_t n = segs.size();
    std::size_t si = 0;
    while (si < n && segs[si].end <= p.numab.scan_cursor) ++si;
    if (si == n) si = 0;  // cursor past the last VMA: wrap
    vm::Vaddr pos = std::max(p.numab.scan_cursor, segs[si].start);
    if (pos >= segs[si].end) pos = segs[si].start;
    window_start = pos;

    for (std::size_t k = 0; k < n && marked < nb.scan_size_pages; ++k) {
      const Seg& s = segs[(si + k) % n];
      if (k > 0) pos = s.start;
      vm::Vpn vpn = vm::vpn_of(std::max(pos, s.start));
      const vm::Vpn vend = vm::vpn_of(s.end);
      // Run-batched window walk: one chunk lookup per 512 pages; pages with
      // no established chunk cannot be present, so skipping whole absent
      // chunks matches the per-page semantics. When the window fills, the
      // cursor rests one past the last page tagged, exactly where the
      // per-page loop used to halt.
      bool full = false;
      auto scan_run = [&](vm::PageRun run) {
        vm::Vpn v = run.first;
        for (vm::Pte& pte : run.ptes) {
          ++v;
          if (!pte.present()) continue;
          // kTxn pages are mid-transaction: marking them would invalidate
          // the migrator's hw-bit snapshot, so the scanner leaves them
          // alone.
          if (pte.flags & (vm::Pte::kHuge | vm::Pte::kReplica |
                           vm::Pte::kNextTouch | vm::Pte::kNumaHint |
                           vm::Pte::kTxn)) {
            // A page still carrying kNumaHint from an earlier window was
            // never touched since: one more window of cold-page evidence
            // for the tier demotion pass.
            if (cfg_.tiers.enabled && pte.numa_hint() &&
                !(pte.flags & (vm::Pte::kHuge | vm::Pte::kReplica |
                               vm::Pte::kNextTouch | vm::Pte::kTxn)) &&
                pte.numa_idle < 255)
              ++pte.numa_idle;
            continue;
          }
          pte.clear(vm::Pte::kHwRead | vm::Pte::kHwWrite);
          pte.set(vm::Pte::kNumaHint);
          if (++marked >= nb.scan_size_pages) {
            vpn = v;
            full = true;
            return false;
          }
        }
        return true;
      };
      p.as.page_table().for_each_run(vpn, vend, scan_run);
      if (!full) vpn = vend;
      pos = vm::addr_of(vpn);
    }
    p.numab.scan_cursor = pos;
  }

  kstats_.numab_pages_scanned += marked;
  if (marked > 0) {
    // Tagging site: kNumaHint set / hw bits cleared on the marked pages, so
    // cached soft-TLB descriptors covering them must stop hitting.
    stlb_invalidate(p);
    charge(t, cost_.numab_scan_page * marked, sim::CostKind::kNumaScan);
    // change_prot_numa flushes the TLBs once per window, not per page.
    charge(t, shootdown_round(marked), sim::CostKind::kTlbShootdown);
  }
  if (h_numab_scan_ != nullptr) h_numab_scan_->record(marked);
  trace(t, EventType::kNumaScan, vm::vpn_of(window_start), marked);
  tier_demote_check(t, p);
  emit_span(t, "numab-scan", begin, "kern");
}

void Kernel::numab_hint_fault(ThreadCtx& t, Process& p, const vm::Vma& vma,
                              vm::Pte& pte, vm::Vpn vpn) {
  const topo::NodeId local = topo_.node_of_core(t.core);
  const topo::NodeId page_node = phys_.node_of(pte.frame);
  charge(t, cost_.numab_hint_fault, sim::CostKind::kNumaHint);
  ++kstats_.numab_hint_faults;
  if (page_node == local) ++kstats_.numab_hint_faults_local;

  // task_numa_fault: account the access against the node *holding* the page
  // (numa_faults_memory), decayed so stale phases fade.
  if (t.numab_ts == nullptr) t.numab_ts = &p.numab.tasks[t.tid];
  NumabTaskStats& ts = *t.numab_ts;
  if (ts.faults.size() != topo_.num_nodes()) {
    ts.faults.assign(topo_.num_nodes(), 0.0);
    ts.decayed_to = t.clock;
  }
  decay_task_stats(ts, t.clock, cfg_.numa_balancing.scan_period);
  ts.faults[page_node] += 1.0;
  ++ts.total_faults;

  trace(t, EventType::kNumaHintFault, vpn, 1, page_node, local);

  // Migrate-on-fault: promote a remote page toward the faulting node, but
  // only once two consecutive hint faults came from that node
  // (numa_migrate_prep's two-reference confirmation) — a single stray
  // access must not bounce the page. On a tiered machine the target is the
  // best strictly-faster-tier node instead of the faulting node, so a hot
  // local page on a slow tier still moves up.
  const topo::NodeId target = cfg_.tiers.enabled
                                  ? tier_promote_target(page_node, local)
                                  : local;
  if (target != page_node) {
    const bool confirmed = !cfg_.numa_balancing.two_reference ||
                           pte.numa_last == static_cast<std::uint8_t>(local);
    if (confirmed) {
      p.numab.pending.emplace_back(vpn, target);
    } else {
      ++kstats_.numab_promotions_deferred;
    }
  }
  pte.numa_last = static_cast<std::uint8_t>(local);
  pte.numa_idle = 0;

  // Rearm: restore the hardware bits so the access proceeds; the next scan
  // window re-samples the page.
  pte.clear(vm::Pte::kNumaHint);
  pte.set(vm::Pte::kAccessed);
  pte.restore_hw(vma.prot);
}

void Kernel::numab_flush_promotions(ThreadCtx& t, Process& p) {
  // Collapse the confirmed (vpn, node) promotions of this access into
  // contiguous same-target runs; each run is one kmigrated batch, so
  // promotion rides the async engine (watermarks, fault injection, one
  // coalesced shootdown per batch) instead of stalling the faulting task.
  auto& pend = p.numab.pending;
  std::size_t i = 0;
  while (i < pend.size()) {
    std::size_t j = i + 1;
    while (j < pend.size() && pend[j].second == pend[i].second &&
           pend[j].first == pend[j - 1].first + 1)
      ++j;
    const vm::Vpn first = pend[i].first;
    const std::uint64_t npages = j - i;
    const topo::NodeId target = pend[i].second;
    // Snapshot the source node before the batch runs: an up-tier move is a
    // tier promotion, counted and traced separately from plain locality
    // promotion.
    topo::NodeId from = topo::kInvalidNode;
    if (cfg_.tiers.enabled) {
      if (const vm::Pte* pte = p.as.page_table().find(first);
          pte != nullptr && pte->present())
        from = phys_.node_of(pte->frame);
    }
    charge(t, cost_.kmigrated_submit, sim::CostKind::kNumaHint);
    trace(t, EventType::kNumaPromote, first, npages, topo::kInvalidNode, target);
    // A degraded transaction defers the page: the next scan pass will see the
    // hint fault again and re-promote, so there is no point stop-and-copying
    // a page the balancer only *suspects* is hot.
    const std::uint64_t moved =
        submit_kmigrated_batch(t, p, vm::addr_of(first),
                               npages * mem::kPageSize, target, t.clock,
                               /*defer_on_degrade=*/true);
    kstats_.numab_pages_promoted += moved;
    if (moved > 0 && from != topo::kInvalidNode &&
        topo_.tier_of(target) < topo_.tier_of(from)) {
      kstats_.tier_promotions += moved;
      trace(t, EventType::kTierPromote, first, moved, from, target);
    }
    i = j;
  }
  pend.clear();
}

std::vector<double> Kernel::numab_task_faults(Pid pid, ThreadId tid,
                                              sim::Time now) {
  Process& p = proc(pid);
  auto it = p.numab.tasks.find(tid);
  if (it == p.numab.tasks.end()) return {};
  decay_task_stats(it->second, now, cfg_.numa_balancing.scan_period);
  return it->second.faults;
}

topo::NodeId Kernel::numab_preferred_node(Pid pid, ThreadId tid, sim::Time now) {
  const std::vector<double> scores = numab_task_faults(pid, tid, now);
  if (scores.empty()) return topo::kInvalidNode;
  double total = 0.0;
  topo::NodeId best = 0;
  for (topo::NodeId n = 0; n < scores.size(); ++n) {
    total += scores[n];
    if (scores[n] > scores[best]) best = n;
  }
  if (total <= 0.0 ||
      scores[best] < cfg_.numa_balancing.hot_threshold * total)
    return topo::kInvalidNode;
  return best;
}

void Kernel::numab_note_task_migration(const ThreadCtx& t, topo::CoreId from,
                                       topo::CoreId to) {
  ++kstats_.numab_task_migrations;
  trace(t, EventType::kNumaTaskMigrate, 0, 1, topo_.node_of_core(from),
        topo_.node_of_core(to));
}

void Kernel::numab_note_task_swap() { ++kstats_.numab_task_swaps; }

}  // namespace numasim::kern
