// sched::Balancer — the task-placement half of automatic NUMA balancing.
//
// The kernel's hint-fault sampling (kern/numab) tells us *where* each thread's
// memory lives; the Balancer closes the loop by moving threads toward their
// memory. It is cooperative and deterministic: worker threads call tick() at
// natural synchronization points (loop iterations, barriers); at most one
// evaluation pass runs per balance_period, in the calling thread's context
// (like task_numa_placement running from task work, not a daemon), and each
// thread applies its own pending core move on its next tick.
//
// Policies (KernelConfig::numa_balancing.policy):
//   kNone          — page placement only; tick() is a no-op
//   kPreferredNode — move each thread to the least-loaded core of its
//                    preferred node (hottest node holding >= hot_threshold
//                    of the decayed fault mass)
//   kInterchange   — IMAR-style: among all thread pairs on different nodes,
//                    swap the one whose exchange removes the most
//                    remote-access mass; at most one pair per evaluation
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rt/machine.hpp"
#include "rt/thread.hpp"
#include "sim/task.hpp"

namespace numasim::sched {

class Balancer {
 public:
  /// Reads the policy and periods from the machine's
  /// KernelConfig::numa_balancing at construction.
  explicit Balancer(rt::Machine& m);

  /// Register a worker for placement decisions. Registration order is the
  /// evaluation order (keep it deterministic: register in spawn order).
  void add_thread(rt::Thread& th);

  struct Stats {
    std::uint64_t evaluations = 0;  ///< evaluation passes run
    std::uint64_t migrations = 0;   ///< core moves applied via tick()
    std::uint64_t swaps = 0;        ///< interchange pairs chosen
  };
  const Stats& stats() const { return stats_; }

  /// Cooperative balance point. Runs an evaluation pass if balance_period
  /// elapsed (charged to the caller as kNumaBalance), then applies the
  /// caller's own pending core move, if any. No-op (beyond one branch) when
  /// the policy is kNone or balancing is disabled.
  sim::Task<void> tick(rt::Thread& self);

 private:
  struct Pending {
    topo::CoreId core = 0;
    bool swap = false;
  };

  void evaluate(sim::Time now);
  topo::CoreId planned_core(const rt::Thread& th) const;

  rt::Machine& m_;
  kern::NumaBalancingConfig cfg_;
  std::vector<rt::Thread*> threads_;
  sim::Time next_eval_at_ = 0;
  std::map<kern::ThreadId, Pending> pending_;
  Stats stats_;
};

}  // namespace numasim::sched
