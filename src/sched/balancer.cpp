#include "sched/balancer.hpp"

#include <limits>

namespace numasim::sched {

Balancer::Balancer(rt::Machine& m)
    : m_(m), cfg_(m.kernel().config().numa_balancing) {}

void Balancer::add_thread(rt::Thread& th) { threads_.push_back(&th); }

topo::CoreId Balancer::planned_core(const rt::Thread& th) const {
  const auto it = pending_.find(th.ctx().tid);
  return it != pending_.end() ? it->second.core : th.core();
}

sim::Task<void> Balancer::tick(rt::Thread& self) {
  if (!cfg_.enabled || cfg_.policy == kern::NumaPolicy::kNone) co_return;

  if (self.now() >= next_eval_at_) {
    next_eval_at_ = self.now() + cfg_.balance_period;
    const sim::Time begin = self.now();
    // The pass runs in the calling task's context and on its dime
    // (task_numa_placement runs from task work, not a separate daemon).
    self.ctx().clock += m_.cost().numab_balance_eval;
    self.ctx().stats.add(sim::CostKind::kNumaBalance,
                         m_.cost().numab_balance_eval);
    evaluate(self.now());
    m_.kernel().emit_span(self.ctx(), "numab-balance", begin, "sched");
  }

  const auto it = pending_.find(self.ctx().tid);
  if (it == pending_.end()) {
    co_await self.sync();
    co_return;
  }
  const topo::CoreId target = it->second.core;
  pending_.erase(it);
  const topo::CoreId from = self.core();
  if (target != from) {
    co_await self.migrate_to_core(target);
    m_.kernel().numab_note_task_migration(self.ctx(), from, target);
    ++stats_.migrations;
  } else {
    co_await self.sync();
  }
}

void Balancer::evaluate(sim::Time now) {
  ++stats_.evaluations;
  kern::Kernel& k = m_.kernel();
  const topo::Topology& topo = m_.topology();

  if (cfg_.policy == kern::NumaPolicy::kPreferredNode) {
    // Greedy, in registration order: send each thread whose preferred node
    // differs from its (planned) node to the least-loaded core there.
    // Occupancy counts registered threads only — the balancer places its own
    // flock, it does not model foreign load.
    std::map<topo::CoreId, unsigned> occ;
    for (const rt::Thread* th : threads_) ++occ[planned_core(*th)];
    for (rt::Thread* th : threads_) {
      const topo::NodeId pref =
          k.numab_preferred_node(m_.pid(), th->ctx().tid, now);
      if (pref == topo::kInvalidNode) continue;
      const topo::CoreId cur = planned_core(*th);
      if (topo.node_of_core(cur) == pref) continue;
      topo::CoreId best = std::numeric_limits<topo::CoreId>::max();
      unsigned best_occ = std::numeric_limits<unsigned>::max();
      for (const topo::CoreId c : topo.cores_of_node(pref)) {
        if (occ[c] < best_occ) {
          best_occ = occ[c];
          best = c;  // cores_of_node is id-ordered: first win = lowest id
        }
      }
      if (best == std::numeric_limits<topo::CoreId>::max()) continue;
      --occ[cur];
      ++occ[best];
      pending_[th->ctx().tid] = {best, false};
    }
    return;
  }

  // kInterchange: pick the single pair (a, b) on different nodes whose swap
  // maximizes gain = remote mass removed - local mass given up
  //   (Fa[node_b] + Fb[node_a]) - (Fa[node_a] + Fb[node_b])
  // and queue both moves. Ties resolve to the earliest-registered pair.
  std::vector<std::vector<double>> faults(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i)
    faults[i] = k.numab_task_faults(m_.pid(), threads_[i]->ctx().tid, now);
  double best_gain = 0.0;
  std::size_t bi = 0, bj = 0;
  bool found = false;
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (faults[i].empty()) continue;
    const topo::NodeId ni = topo.node_of_core(planned_core(*threads_[i]));
    for (std::size_t j = i + 1; j < threads_.size(); ++j) {
      if (faults[j].empty()) continue;
      const topo::NodeId nj = topo.node_of_core(planned_core(*threads_[j]));
      if (ni == nj) continue;
      const double gain =
          (faults[i][nj] + faults[j][ni]) - (faults[i][ni] + faults[j][nj]);
      if (gain > best_gain) {
        best_gain = gain;
        bi = i;
        bj = j;
        found = true;
      }
    }
  }
  if (found) {
    const topo::CoreId ci = planned_core(*threads_[bi]);
    const topo::CoreId cj = planned_core(*threads_[bj]);
    pending_[threads_[bi]->ctx().tid] = {cj, true};
    pending_[threads_[bj]->ctx().tid] = {ci, true};
    k.numab_note_task_swap();
    ++stats_.swaps;
  }
}

}  // namespace numasim::sched
