// Tests for the sparse solver workload: numeric correctness under
// migration + replication, policy timing shapes, partition wrap-around.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/spmv.hpp"

namespace numasim::apps {
namespace {

SpmvResult run_spmv(SpmvConfig cfg, mem::Backing backing,
                    std::vector<double>* ref = nullptr,
                    std::vector<double>* got = nullptr) {
  rt::Machine::Config mc;
  mc.backing = backing;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);
  Spmv app(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
  if (ref != nullptr) *ref = app.reference_y();
  if (got != nullptr) *got = app.simulated_y();
  return app.result();
}

TEST(Spmv, NumericallyCorrectUnderStatic) {
  SpmvConfig cfg;
  cfg.n = 512;
  cfg.nnz_per_row = 8;
  cfg.iterations = 1;
  cfg.numeric = true;
  std::vector<double> ref, got;
  run_spmv(cfg, mem::Backing::kMaterialized, &ref, &got);
  ASSERT_EQ(ref.size(), 512u);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(got[i], ref[i], 1e-12) << i;
}

TEST(Spmv, NumericallyCorrectUnderNextTouchAndReplication) {
  SpmvConfig cfg;
  cfg.n = 512;
  cfg.nnz_per_row = 8;
  cfg.iterations = 3;
  cfg.repartition_every = 1;
  cfg.policy = SpmvConfig::Policy::kNextTouchReplX;
  cfg.numeric = true;
  std::vector<double> ref, got;
  const SpmvResult r = run_spmv(cfg, mem::Backing::kMaterialized, &ref, &got);
  EXPECT_GT(r.pages_migrated, 0u);
  EXPECT_GT(r.replicas_created, 0u);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(got[i], ref[i], 1e-12) << i;
}

TEST(Spmv, ReplicatingSharedVectorHelps) {
  SpmvConfig cfg;
  cfg.n = 1u << 15;
  cfg.nnz_per_row = 16;
  cfg.iterations = 6;
  cfg.repartition_every = 2;

  cfg.policy = SpmvConfig::Policy::kNextTouch;
  const sim::Time nt = run_spmv(cfg, mem::Backing::kPhantom).solve_time;
  cfg.policy = SpmvConfig::Policy::kNextTouchReplX;
  const sim::Time repl = run_spmv(cfg, mem::Backing::kPhantom).solve_time;
  EXPECT_LT(repl, nt);
}

TEST(Spmv, NextTouchBeatsStaticWhenPartitionDrifts) {
  SpmvConfig cfg;
  cfg.n = 1u << 15;
  cfg.nnz_per_row = 16;
  cfg.iterations = 8;
  cfg.repartition_every = 2;

  cfg.policy = SpmvConfig::Policy::kStatic;
  const sim::Time stat = run_spmv(cfg, mem::Backing::kPhantom).solve_time;
  cfg.policy = SpmvConfig::Policy::kNextTouch;
  const SpmvResult nt = run_spmv(cfg, mem::Backing::kPhantom);
  EXPECT_GT(nt.pages_migrated, 0u);
  EXPECT_LT(nt.solve_time, stat);
}

TEST(Spmv, RejectsBadConfigs) {
  rt::Machine m;
  rt::Team team = rt::Team::all_cores(m);
  SpmvConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(Spmv(m, team, cfg), std::invalid_argument);
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine phantom(mc);
  rt::Team pteam = rt::Team::all_cores(phantom);
  SpmvConfig nc;
  nc.numeric = true;
  EXPECT_THROW(Spmv(phantom, pteam, nc), std::invalid_argument);
}

TEST(Spmv, DeterministicAcrossRuns) {
  SpmvConfig cfg;
  cfg.n = 1u << 13;
  cfg.iterations = 4;
  cfg.policy = SpmvConfig::Policy::kNextTouch;
  const sim::Time a = run_spmv(cfg, mem::Backing::kPhantom).solve_time;
  const sim::Time b = run_spmv(cfg, mem::Backing::kPhantom).solve_time;
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace numasim::apps
