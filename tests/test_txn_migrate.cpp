// Transactional shadow-copy migration: the TxnMigrator state machine
// (stepwise, so a racing writer can be interleaved between any two states),
// the mode dispatch through move_pages / the async daemons / numab
// promotion, the degradation ladder (txn -> stop-and-copy -> in-place /
// defer), and the kmigrated teardown accounting.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "kern/fault_injector.hpp"
#include "kern/kernel.hpp"
#include "kern/txn_migrate.hpp"
#include "obs/metrics.hpp"

namespace numasim::kern {
namespace {

KernelConfig txn_config(LockModel lock = LockModel::kCoarse) {
  KernelConfig cfg;
  cfg.topology = topo::Topology::quad_opteron();
  cfg.backing = mem::Backing::kMaterialized;
  cfg.lock_model = lock;
  cfg.migration_mode = MigrationMode::kTransactional;
  cfg.max_frames_per_node = 512;
  return cfg;
}

class TxnMigrateTest : public ::testing::TestWithParam<LockModel> {
 protected:
  TxnMigrateTest() : k_(txn_config(GetParam())) { pid_ = k_.create_process("txn"); }

  ThreadCtx ctx_on(topo::CoreId core, ThreadId tid = 0) {
    ThreadCtx t;
    t.pid = pid_;
    t.tid = tid;
    t.core = core;
    return t;
  }

  vm::Vaddr make_region(ThreadCtx& t, std::uint64_t pages, topo::NodeId node) {
    const std::uint64_t len = pages * mem::kPageSize;
    const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite,
                                    vm::MemPolicy::bind(topo::node_mask_of(node)));
    k_.access(t, a, len, vm::Prot::kWrite, 0.0);
    EXPECT_EQ(k_.pages_on_node(pid_, a, len, node), pages);
    return a;
  }

  std::vector<int> move_all(ThreadCtx& t, vm::Vaddr a, std::uint64_t pages,
                            topo::NodeId dest) {
    std::vector<vm::Vaddr> addrs;
    for (std::uint64_t i = 0; i < pages; ++i)
      addrs.push_back(a + i * mem::kPageSize);
    std::vector<topo::NodeId> nodes(addrs.size(), dest);
    std::vector<int> status(addrs.size(), 0);
    EXPECT_EQ(k_.sys_move_pages(t, addrs, nodes, status), 0);
    return status;
  }

  void scribble(vm::Vaddr addr, std::byte v) {
    const std::byte buf[4] = {v, v, v, v};
    ASSERT_TRUE(k_.poke(pid_, addr, buf));
  }

  Kernel k_;
  Pid pid_ = 0;
};

INSTANTIATE_TEST_SUITE_P(LockModels, TxnMigrateTest,
                         ::testing::Values(LockModel::kCoarse,
                                           LockModel::kRange),
                         [](const auto& pinfo) {
                           return pinfo.param == LockModel::kCoarse ? "Coarse"
                                                                    : "Range";
                         });

// --- full-syscall paths ------------------------------------------------------

TEST_P(TxnMigrateTest, CleanPagesCommitWithoutRetries) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 8, 0);
  scribble(a, std::byte{0x5a});

  const std::vector<int> status = move_all(t, a, 8, 1);
  for (int s : status) EXPECT_EQ(s, 1);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 1), 8u);
  EXPECT_EQ(k_.stats().txn_commits, 8u);
  EXPECT_EQ(k_.stats().txn_dirty_retries, 0u);
  EXPECT_EQ(k_.stats().txn_degraded, 0u);
  EXPECT_EQ(k_.stats().txn_aborted, 0u);

  // Data survives the shadow-copy round trip.
  std::byte got[4];
  ASSERT_TRUE(k_.peek(pid_, a, got));
  EXPECT_EQ(got[0], std::byte{0x5a});
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, WatermarkPressureDegradesToStopAndCopy) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 4, 0);
  // Low watermark above the node size: permanently "under pressure", but
  // min stays 0 so the stop-and-copy fallback can still allocate.
  k_.phys().set_node_watermarks(1, 0, 1 << 20);
  ASSERT_TRUE(k_.phys().under_pressure(1));

  const std::vector<int> status = move_all(t, a, 4, 1);
  for (int s : status) EXPECT_EQ(s, 1);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 4 * mem::kPageSize, 1), 4u);
  EXPECT_EQ(k_.stats().txn_commits, 0u);
  EXPECT_EQ(k_.stats().txn_degraded, 4u);
  EXPECT_EQ(k_.stats().migrations_failed, 0u);
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, KmigratedBatchRunsTransactionally) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 16, 0);
  const Kernel::MoveRange r{a, 16 * mem::kPageSize, 1};
  EXPECT_EQ(k_.sys_move_pages_async(t, {&r, 1}), 16);
  k_.kmigrated_drain(t);

  EXPECT_EQ(k_.stats().kmigrated_pages, 16u);
  EXPECT_EQ(k_.stats().txn_commits, 16u);
  EXPECT_EQ(k_.stats().kmigrated_pages_failed, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 16 * mem::kPageSize, 1), 16u);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  k_.validate(pid_);
}

// --- stepwise state machine --------------------------------------------------

TEST_P(TxnMigrateTest, DirtyRetryConvergesAgainstRacingWriter) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 1, 0);

  TxnMigrator txn(k_, pid_, vm::vpn_of(a), 1, sim::CostKind::kMovePagesControl,
                  sim::CostKind::kMovePagesCopy);
  EXPECT_EQ(txn.step(t), TxnState::kWriteProtect);  // shadow copied

  // Mid-flight: the shadow frame is accounted and the kernel still validates.
  EXPECT_NE(txn.shadow_frame(), mem::kInvalidFrame);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 1u);
  k_.validate(pid_);

  // A writer dirties the page while the copy window is open.
  scribble(a, std::byte{0x11});

  EXPECT_EQ(txn.step(t), TxnState::kVerifyClean);  // protection armed
  EXPECT_EQ(txn.step(t), TxnState::kDirtyRetry);   // dirty hit detected
  EXPECT_EQ(txn.step(t), TxnState::kWriteProtect); // re-copied under backoff
  EXPECT_EQ(txn.step(t), TxnState::kVerifyClean);
  EXPECT_EQ(txn.step(t), TxnState::kCommitFlip);   // second pass clean
  EXPECT_EQ(txn.step(t), TxnState::kCommitted);

  EXPECT_EQ(txn.retries(), 1u);
  EXPECT_EQ(k_.stats().txn_commits, 1u);
  EXPECT_EQ(k_.stats().txn_dirty_retries, 1u);
  EXPECT_EQ(k_.page_node(pid_, a), 1);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);

  std::byte got[4];
  ASSERT_TRUE(k_.peek(pid_, a, got));
  EXPECT_EQ(got[0], std::byte{0x11});  // the racing write was not lost
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, WriteFaultOnProtectedPageNeverStallsWriter) {
  ThreadCtx t = ctx_on(0);
  ThreadCtx w = ctx_on(4, 1);  // writer on node 1
  const vm::Vaddr a = make_region(t, 1, 0);
  w.clock = t.clock;

  TxnMigrator txn(k_, pid_, vm::vpn_of(a), 1, sim::CostKind::kMovePagesControl,
                  sim::CostKind::kMovePagesCopy);
  EXPECT_EQ(txn.step(t), TxnState::kWriteProtect);
  EXPECT_EQ(txn.step(t), TxnState::kVerifyClean);  // kTxn armed, hw write off

  // The writer faults on the protected page; the handler drops the
  // protection immediately (one page-fault charge, not a migration stall).
  const sim::Time before = w.clock;
  k_.access(w, a, mem::kPageSize, vm::Prot::kWrite, 0.0);
  EXPECT_GT(w.stats.get(sim::CostKind::kPageFault), 0u);
  EXPECT_EQ(w.stats.get(sim::CostKind::kLockWait), 0u);
  EXPECT_GT(w.clock, before);  // charged a fault, nothing more

  EXPECT_EQ(txn.step(t), TxnState::kDirtyRetry);  // cleared kTxn == dirty
  const TxnState end = txn.run(t);
  EXPECT_EQ(end, TxnState::kCommitted);
  EXPECT_EQ(k_.page_node(pid_, a), 1);
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, RetryBudgetExhaustionAbortsCleanly) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 1, 0);
  scribble(a, std::byte{0x77});

  TxnMigrator txn(k_, pid_, vm::vpn_of(a), 1, sim::CostKind::kMovePagesControl,
                  sim::CostKind::kMovePagesCopy);
  // Dirty the page before every verify: the transaction can never win.
  while (txn.state() != TxnState::kCommitted &&
         txn.state() != TxnState::kDegraded) {
    if (txn.state() == TxnState::kVerifyClean) scribble(a, std::byte{0x78});
    txn.step(t);
  }
  EXPECT_EQ(txn.state(), TxnState::kDegraded);
  EXPECT_EQ(txn.retries(), k_.cost().txn_retry_max);
  EXPECT_EQ(k_.stats().txn_aborted, 1u);
  EXPECT_EQ(k_.stats().txn_dirty_retries,
            static_cast<std::uint64_t>(k_.cost().txn_retry_max));

  // Aborted: shadow frame released, page untouched on its home node, hw
  // protection restored (the next write is an ordinary access).
  EXPECT_EQ(txn.shadow_frame(), mem::kInvalidFrame);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  EXPECT_EQ(k_.page_node(pid_, a), 0);
  const sim::Time faults_before = t.stats.get(sim::CostKind::kPageFault);
  k_.access(t, a, mem::kPageSize, vm::Prot::kWrite, 0.0);
  EXPECT_EQ(t.stats.get(sim::CostKind::kPageFault), faults_before);
  std::byte got[4];
  ASSERT_TRUE(k_.peek(pid_, a, got));
  EXPECT_EQ(got[0], std::byte{0x78});
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, UnmapMidFlightAbortsWithoutLeak) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 1, 0);

  TxnMigrator txn(k_, pid_, vm::vpn_of(a), 1, sim::CostKind::kMovePagesControl,
                  sim::CostKind::kMovePagesCopy);
  EXPECT_EQ(txn.step(t), TxnState::kWriteProtect);
  EXPECT_EQ(k_.sys_munmap(t, a, mem::kPageSize), 0);
  EXPECT_EQ(txn.run(t), TxnState::kDegraded);
  EXPECT_EQ(k_.stats().txn_aborted, 1u);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  k_.validate(pid_);
}

// --- fault injection ---------------------------------------------------------

TEST_P(TxnMigrateTest, InjectedCopyFaultsDegradePerPageNotPerBatch) {
  // Every copy attempt reports a transient fault: each transaction exhausts
  // its retry budget, aborts, and falls back to stop-and-copy — which also
  // fails its (bounded) retries. The *batch* still succeeds; the damage is
  // per-page -EAGAIN, exactly like the stop-and-copy engine.
  FaultInjector inj(FaultPlan::parse("copy:pt=1.0"), 7);
  k_.set_fault_injector(&inj);
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 4, 0);

  const std::vector<int> status = move_all(t, a, 4, 1);
  k_.set_fault_injector(nullptr);
  for (int s : status) EXPECT_EQ(s, -kEAGAIN);
  EXPECT_EQ(k_.stats().txn_aborted, 4u);
  EXPECT_EQ(k_.stats().txn_commits, 0u);
  EXPECT_EQ(k_.stats().txn_degraded, 4u);
  EXPECT_EQ(k_.stats().txn_dirty_retries,
            4u * k_.cost().txn_retry_max);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 4 * mem::kPageSize, 0), 4u);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  k_.validate(pid_);
}

TEST_P(TxnMigrateTest, MixedInjectedFaultsNeverFailTheBatch) {
  FaultInjector inj(FaultPlan::parse("copy:pt=0.2,pp=0.05"), 42);
  k_.set_fault_injector(&inj);
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 32, 0);

  const std::vector<int> status = move_all(t, a, 32, 1);
  k_.set_fault_injector(nullptr);
  for (int s : status) EXPECT_TRUE(s == 1 || s == -kEAGAIN || s == -kENOMEM);
  EXPECT_EQ(k_.phys().total_shadow_frames(), 0u);
  k_.validate(pid_);
}

// --- determinism -------------------------------------------------------------

TEST(TxnMigrateDeterminism, SamePlanSameSeedSameSchedule) {
  auto run = [] {
    KernelConfig cfg = txn_config(LockModel::kCoarse);
    cfg.fault_plan = FaultPlan::parse("copy:pt=0.2,pp=0.05; shootdown:p=0.05");
    cfg.fault_seed = 99;
    Kernel k(cfg);
    const Pid pid = k.create_process();
    ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = 64 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                   vm::MemPolicy::bind(topo::node_mask_of(0)));
    k.access(t, a, len, vm::Prot::kWrite, 0.0);
    std::vector<vm::Vaddr> addrs;
    for (std::uint64_t i = 0; i < 64; ++i) addrs.push_back(a + i * mem::kPageSize);
    std::vector<topo::NodeId> nodes(64, 1);
    std::vector<int> status(64, 0);
    k.sys_move_pages(t, addrs, nodes, status);
    k.validate(pid);
    const KernelStats& s = k.stats();
    return std::tuple(t.clock, s.txn_commits, s.txn_dirty_retries,
                      s.txn_degraded, s.txn_aborted, s.migrations_failed,
                      status);
  };
  EXPECT_EQ(run(), run());
}

TEST(TxnMigrateMode, StopAndCopyModeTouchesNoTxnCounters) {
  KernelConfig cfg = txn_config();
  cfg.migration_mode = MigrationMode::kStopAndCopy;
  Kernel k(cfg);
  const Pid pid = k.create_process();
  ThreadCtx t;
  t.pid = pid;
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, a, len, vm::Prot::kWrite, 0.0);
  std::vector<vm::Vaddr> addrs;
  for (std::uint64_t i = 0; i < 16; ++i) addrs.push_back(a + i * mem::kPageSize);
  std::vector<topo::NodeId> nodes(16, 1);
  std::vector<int> status(16, 0);
  EXPECT_EQ(k.sys_move_pages(t, addrs, nodes, status), 0);
  EXPECT_EQ(k.stats().txn_commits, 0u);
  EXPECT_EQ(k.stats().txn_dirty_retries, 0u);
  EXPECT_EQ(k.stats().txn_degraded, 0u);
  EXPECT_EQ(k.stats().txn_aborted, 0u);
  EXPECT_EQ(k.phys().total_shadow_frames(), 0u);
  k.validate(pid);
}

// --- numab promotion defers instead of stop-and-copying ----------------------

TEST(TxnMigrateNumab, PromotionDefersUnderPressureThenLands) {
  KernelConfig cfg = txn_config();
  cfg.backing = mem::Backing::kPhantom;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(100);
  cfg.numa_balancing.scan_size_pages = 1024;
  cfg.numa_balancing.two_reference = false;
  Kernel k(cfg);
  const Pid pid = k.create_process();
  ThreadCtx t0;
  t0.pid = pid;
  t0.core = 0;
  ThreadCtx t4;
  t4.pid = pid;
  t4.core = 4;  // node 1
  t4.tid = 1;

  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k.access(t0, a, len, vm::Prot::kWrite, 0.0);  // first-touch node 0, arms
  ASSERT_EQ(k.pages_on_node(pid, a, len, 0), 8u);

  // Promotion target under pressure: every transaction degrades and the
  // page is *deferred* — not stop-and-copied, not counted as failed.
  k.phys().set_node_watermarks(1, 0, 1 << 20);
  t4.clock = t0.clock + sim::microseconds(100);
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  EXPECT_GT(k.stats().numab_hint_faults, 0u);
  EXPECT_GE(k.stats().txn_degraded, 8u);
  EXPECT_EQ(k.stats().kmigrated_pages, 0u);
  EXPECT_EQ(k.stats().kmigrated_pages_failed, 0u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 0), 8u);

  // Pressure gone: the next scan pass re-promotes and the pages land.
  k.phys().set_node_watermarks(1, 0, 0);
  t4.clock += sim::microseconds(100);
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  t4.clock += sim::microseconds(100);
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  k.kmigrated_drain(t4);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 1), 8u);
  EXPECT_GT(k.stats().txn_commits, 0u);
  k.validate(pid);
}

// --- kmigrated teardown accounting -------------------------------------------

TEST(KmigratedTeardown, InflightBatchesAreCountedNotSilentlyDropped) {
  obs::Registry reg;
  {
    KernelConfig cfg;
    cfg.topology = topo::Topology::quad_opteron();
    cfg.backing = mem::Backing::kPhantom;
    Kernel k(cfg);
    k.set_metrics(&reg);
    const Pid pid = k.create_process();
    ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = 32 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                   vm::MemPolicy::bind(topo::node_mask_of(0)));
    k.access(t, a, len, vm::Prot::kWrite, 0.0);
    const Kernel::MoveRange r{a, len, 1};
    EXPECT_GT(k.sys_move_pages_async(t, {&r, 1}), 0);
    // Destroyed with the batch still completing on the daemon's timeline:
    // the kernel must account it, not lose it.
  }
  EXPECT_GE(reg.snapshot().counters.at("kern.kmigrated.dropped"), 1u);
}

TEST(KmigratedTeardown, DrainedKernelDropsNothing) {
  obs::Registry reg;
  {
    KernelConfig cfg;
    cfg.topology = topo::Topology::quad_opteron();
    cfg.backing = mem::Backing::kPhantom;
    Kernel k(cfg);
    k.set_metrics(&reg);
    const Pid pid = k.create_process();
    ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = 8 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                   vm::MemPolicy::bind(topo::node_mask_of(0)));
    k.access(t, a, len, vm::Prot::kWrite, 0.0);
    const Kernel::MoveRange r{a, len, 1};
    EXPECT_GT(k.sys_move_pages_async(t, {&r, 1}), 0);
    k.kmigrated_drain(t);
  }
  EXPECT_EQ(reg.snapshot().counters.at("kern.kmigrated.dropped"), 0u);
}

}  // namespace
}  // namespace numasim::kern
