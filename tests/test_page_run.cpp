// Unit tests for the PageRun span walk (PageTable::for_each_run): chunk
// segmentation, absent-chunk skipping, early stop, equivalence with the
// per-page find() walk it replaced, pointer stability while the table grows,
// and the VMA/flag-boundary overlays the kernel walks layer on top.
#include <gtest/gtest.h>

#include <vector>

#include "vm/address_space.hpp"

namespace numasim::vm {
namespace {

constexpr Vpn kChunk = PageTable::kChunkPages;

TEST(PageRun, YieldsOneClippedRunPerExistingChunk) {
  PageTable pt;
  pt.ensure(5).set(Pte::kPresent);            // chunk 0
  pt.ensure(kChunk + 20).set(Pte::kPresent);  // chunk 1
  // chunk 2 never established, chunk 3 established empty
  pt.ensure(3 * kChunk + 1);

  std::vector<std::pair<Vpn, std::size_t>> runs;
  pt.for_each_run(3, 4 * kChunk - 7, [&](PageRun run) {
    runs.push_back({run.first, run.ptes.size()});
  });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (std::pair<Vpn, std::size_t>{3, kChunk - 3}));
  EXPECT_EQ(runs[1], (std::pair<Vpn, std::size_t>{kChunk, kChunk}));
  // Chunk 2 is skipped wholesale; chunk 3 is clipped on the right.
  EXPECT_EQ(runs[2], (std::pair<Vpn, std::size_t>{3 * kChunk, kChunk - 7}));
}

TEST(PageRun, MatchesPerPageFindWalk) {
  PageTable pt;
  // Scattered residency over several chunks, with chunk 2 left absent.
  for (Vpn v = 0; v < 5 * kChunk; v += 7) {
    if (v / kChunk == 2) continue;
    pt.ensure(v).set(v % 3 == 0 ? Pte::kPresent : std::uint16_t{0});
  }
  std::vector<Vpn> via_find;
  for (Vpn v = 10; v < 5 * kChunk - 10; ++v) {
    const Pte* pte = pt.find(v);
    if (pte != nullptr && pte->present()) via_find.push_back(v);
  }
  std::vector<Vpn> via_runs;
  pt.for_each_run(10, 5 * kChunk - 10, [&](ConstPageRun run) {
    Vpn v = run.first;
    for (const Pte& pte : run.ptes) {
      if (pte.present()) via_runs.push_back(v);
      ++v;
    }
  });
  EXPECT_EQ(via_runs, via_find);
}

TEST(PageRun, BoolCallbackStopsTheWalk) {
  PageTable pt;
  for (Vpn v = 0; v < 4 * kChunk; v += kChunk) pt.ensure(v);
  std::size_t runs = 0;
  pt.for_each_run(0, 4 * kChunk, [&](PageRun) { return ++runs < 2; });
  EXPECT_EQ(runs, 2u);
}

TEST(PageRun, ConstOverloadAndImplicitConversion) {
  PageTable pt;
  pt.ensure(42).set(Pte::kPresent);
  const PageTable& cpt = pt;
  std::uint64_t present = 0;
  cpt.for_each_run(0, kChunk, [&](ConstPageRun run) {
    for (const Pte& pte : run.ptes) present += pte.present();
  });
  EXPECT_EQ(present, 1u);
  // A read-only callback also binds to the mutable walk via the implicit
  // PageRun -> ConstPageRun conversion.
  present = 0;
  pt.for_each_run(0, kChunk, [&](ConstPageRun run) {
    for (const Pte& pte : run.ptes) present += pte.present();
  });
  EXPECT_EQ(present, 1u);
}

TEST(PageRun, EntriesStayValidWhileTheTableGrows) {
  PageTable pt;
  pt.ensure(1).set(Pte::kPresent);
  Pte* pinned = pt.find(1);
  ASSERT_NE(pinned, nullptr);
  // Grow the table hard enough to force many fresh arena blocks.
  for (Vpn v = kChunk; v < 200 * kChunk; v += kChunk) pt.ensure(v);
  EXPECT_EQ(pt.find(1), pinned);
  EXPECT_TRUE(pinned->present());
  // Creating PTEs from inside a walk is equally safe: the current run's span
  // points into an arena-pinned chunk.
  pt.for_each_run(0, kChunk, [&](PageRun run) {
    pt.ensure(500 * kChunk);  // new chunk mid-walk
    EXPECT_TRUE(run.ptes[1].present());
  });
}

TEST(PageRun, VmaBoundaryOverlay) {
  // The kernel's per-VMA walks clip for_each_run to each mapping, so a run
  // never crosses a VMA even when both share a chunk. Emulate do_mprotect.
  AddressSpace as;
  const Vaddr a = as.map(10 * mem::kPageSize, Prot::kReadWrite, {});
  const Vaddr b = as.map(10 * mem::kPageSize, Prot::kRead, {});
  for (Vpn v = vpn_of(a); v < vpn_of(a) + 10; ++v)
    as.page_table().ensure(v).set(Pte::kPresent);
  for (Vpn v = vpn_of(b); v < vpn_of(b) + 10; ++v)
    as.page_table().ensure(v).set(Pte::kPresent);

  std::vector<std::pair<Vpn, Vpn>> seen;  // [first, last) per run, per VMA
  as.for_range(a, b + 10 * mem::kPageSize, [&](Vma& vma) {
    as.page_table().for_each_run(
        vpn_of(vma.start), vpn_of(vma.end), [&](PageRun run) {
          seen.push_back({run.first, run.first + run.ptes.size()});
        });
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<Vpn, Vpn>{vpn_of(a), vpn_of(a) + 10}));
  EXPECT_EQ(seen[1], (std::pair<Vpn, Vpn>{vpn_of(b), vpn_of(b) + 10}));
}

TEST(PageRun, FlagBoundarySegmentation) {
  // Migration walks segment runs further at per-page flag transitions (txn
  // bits, policy marks). Verify a span walk reconstructs those boundaries.
  PageTable pt;
  for (Vpn v = 0; v < 100; ++v) {
    Pte& pte = pt.ensure(v);
    pte.set(Pte::kPresent);
    if (v >= 30 && v < 60) pte.set(Pte::kTxn);
  }
  std::vector<std::pair<Vpn, Vpn>> segments;  // maximal same-flag spans
  bool cur_txn = false;
  pt.for_each_run(0, 100, [&](ConstPageRun run) {
    Vpn v = run.first;
    for (const Pte& pte : run.ptes) {
      const bool txn = (pte.flags & Pte::kTxn) != 0;
      if (segments.empty() || segments.back().second != v || txn != cur_txn) {
        segments.push_back({v, v + 1});
        cur_txn = txn;
      } else {
        segments.back().second = v + 1;
      }
      ++v;
    }
  });
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], (std::pair<Vpn, Vpn>{0, 30}));
  EXPECT_EQ(segments[1], (std::pair<Vpn, Vpn>{30, 60}));
  EXPECT_EQ(segments[2], (std::pair<Vpn, Vpn>{60, 100}));
}

TEST(Pte, StaysWithinCompactBudget) {
  // Tentpole (d): per-page metadata is compressed so million-page address
  // spaces stay cache-resident. write_gen subsumes the old last_write stamp.
  EXPECT_LE(sizeof(Pte), 16u);
}

}  // namespace
}  // namespace numasim::vm
