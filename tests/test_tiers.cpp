// Heterogeneous memory tiers: the spec grammar and its structured errors,
// asymmetric device write bandwidth, numab promotion up-tier, the watermark
// demotion daemon (cold-page selection, hysteresis against promote/demote
// ping-pong, fault-injection drops), direct demotion under allocation
// pressure vs. per-page ENOMEM with demotion off, the MPOL_PREFERRED_MANY
// tier policy, and validate()'s tier-occupancy audit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/fault_injector.hpp"
#include "kern/kernel.hpp"
#include "lib/numalib.hpp"
#include "topo/topology.hpp"

namespace numasim {
namespace {

using kern::Kernel;
using kern::KernelConfig;
using kern::ThreadCtx;

// Two nodes (one fast, one DRAM), two cores each, 1 MB fast tier = 256
// frames. Cores 0-1 sit on the fast node, 2-3 on the DRAM node.
constexpr std::uint64_t kFastFrames = 256;

KernelConfig tiered_config(const char* spec =
                               "nodes=2 cores=2 shape=line "
                               "tiers=fast:1,dram:1 fast_mb=1") {
  KernelConfig cfg;
  cfg.topology = topo::Topology::from_spec(spec);
  cfg.backing = mem::Backing::kPhantom;
  cfg.tiers.enabled = true;
  return cfg;
}

ThreadCtx ctx_on(kern::Pid pid, topo::CoreId core, kern::ThreadId tid = 0) {
  ThreadCtx t;
  t.pid = pid;
  t.core = core;
  t.tid = tid;
  return t;
}

// --- spec grammar ------------------------------------------------------------

TEST(TierSpec, GrammarAssignsTiersInListedOrder) {
  const topo::Topology t =
      topo::Topology::from_spec("nodes=4 cores=1 tiers=fast:1,dram:2,far:1");
  EXPECT_TRUE(t.tiered());
  EXPECT_EQ(t.tier_of(0), topo::MemTier::kFast);
  EXPECT_EQ(t.tier_of(1), topo::MemTier::kDram);
  EXPECT_EQ(t.tier_of(2), topo::MemTier::kDram);
  EXPECT_EQ(t.tier_of(3), topo::MemTier::kFar);
  EXPECT_EQ(t.nodes_of_tier(topo::MemTier::kFast).size(), 1u);
  EXPECT_EQ(t.nodes_of_tier(topo::MemTier::kDram).size(), 2u);
  EXPECT_EQ(t.nodes_of_tier(topo::MemTier::kFar).size(), 1u);

  // Tier defaults derive from the dram numbers: fast = 3x bandwidth, far
  // writes at half the far read rate.
  const double dram_bw = t.node_spec(1).dram_bytes_per_us;
  EXPECT_DOUBLE_EQ(t.node_spec(0).dram_bytes_per_us, 3.0 * dram_bw);
  EXPECT_DOUBLE_EQ(t.node_spec(3).dram_write_bytes_per_us,
                   t.node_spec(3).dram_bytes_per_us / 2.0);
  EXPECT_EQ(t.node_spec(0).dram_capacity_bytes, 64ull << 20);
}

TEST(TierSpec, FlatSpecStaysUntiered) {
  const topo::Topology t = topo::Topology::from_spec("nodes=4 cores=2");
  EXPECT_FALSE(t.tiered());
  for (topo::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(t.tier_of(n), topo::MemTier::kDram);
    EXPECT_DOUBLE_EQ(t.node_spec(n).dram_write_bytes_per_us, 0.0);
  }
}

TEST(TierSpec, SpecErrorCarriesKeyAndToken) {
  // Counts must sum to `nodes`.
  try {
    topo::Topology::from_spec("nodes=4 cores=1 tiers=fast:1,dram:1");
    FAIL() << "expected SpecError";
  } catch (const topo::SpecError& e) {
    EXPECT_EQ(e.key, "tiers");
    EXPECT_FALSE(std::string(e.what()).empty());
  }
  // Unknown tier name: the offending token is isolated.
  try {
    topo::Topology::from_spec("nodes=2 cores=1 tiers=hbm:2");
    FAIL() << "expected SpecError";
  } catch (const topo::SpecError& e) {
    EXPECT_EQ(e.key, "tiers");
    EXPECT_FALSE(e.token.empty());
  }
  // SpecError still satisfies pre-existing std::invalid_argument catches.
  EXPECT_THROW(topo::Topology::from_spec("nodes=2 cores=1 tiers=fast:x"),
               std::invalid_argument);
}

// --- asymmetric device bandwidth ---------------------------------------------

TEST(TierHw, FarWritesStreamSlowerThanReads) {
  // kFar reads at 1000 B/us but writes at 250 B/us; the same streams on the
  // DRAM node stay symmetric. 4 MB per access swamps the 1 MB L3.
  KernelConfig cfg;
  cfg.topology = topo::Topology::from_spec(
      "nodes=2 cores=2 shape=line tiers=dram:1,far:1 "
      "far_bw=1000 far_wr_bw=250 l3_mb=1");
  cfg.backing = mem::Backing::kPhantom;
  cfg.tiers.enabled = true;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();

  const std::uint64_t len = 1024 * mem::kPageSize;
  const auto timed = [&](topo::CoreId core, topo::NodeId node,
                         vm::Prot want) {
    ThreadCtx t = ctx_on(pid, core);
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                   vm::MemPolicy::bind(topo::node_mask_of(node)));
    k.access(t, a, len, vm::Prot::kWrite, 3500.0);  // populate
    const sim::Time begin = t.clock;
    k.access(t, a, len, want, 3500.0);
    return t.clock - begin;
  };

  const sim::Time far_rd = timed(2, 1, vm::Prot::kRead);
  const sim::Time far_wr = timed(2, 1, vm::Prot::kWrite);
  EXPECT_GT(far_wr, far_rd);  // stretched by the read/write bandwidth ratio

  const sim::Time dram_rd = timed(0, 0, vm::Prot::kRead);
  const sim::Time dram_wr = timed(0, 0, vm::Prot::kWrite);
  EXPECT_EQ(dram_wr, dram_rd);  // symmetric tier: scale == 1 fast path
}

// --- promotion ---------------------------------------------------------------

TEST(TierPromotion, NumabPromotesUpTierAfterTwoReferences) {
  KernelConfig cfg = tiered_config(
      "nodes=2 cores=2 shape=line tiers=fast:1,dram:1 fast_mb=64");
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(100);
  cfg.numa_balancing.scan_size_pages = 1024;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0);  // fast node 0

  // Buffer lives down-tier on DRAM; the fast-node thread hammers it.
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(1)));
  k.access(t, a, len, vm::Prot::kWrite, 0.0);  // arms the scan clock
  ASSERT_EQ(k.pages_on_node(pid, a, len, 1), 16u);

  // Window 1: remote hint faults defer (first reference).
  t.clock += cfg.numa_balancing.scan_period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_promotions_deferred, 16u);
  EXPECT_EQ(k.stats().tier_promotions, 0u);

  // Window 2: confirmed — promoted up-tier through kmigrated.
  t.clock += cfg.numa_balancing.scan_period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().tier_promotions, 16u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 0), 16u);
  EXPECT_GT(k.stats().kmigrated_pages, 0u);
  k.validate(pid);
}

TEST(TierPromotion, CounterGatedOnTierConfig) {
  // Same machine and workload, but tiers.enabled=false: classic AutoNUMA
  // still pulls the pages to the faulting node, yet no tier counter moves.
  KernelConfig cfg = tiered_config(
      "nodes=2 cores=2 shape=line tiers=fast:1,dram:1 fast_mb=64");
  cfg.tiers.enabled = false;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(100);
  cfg.numa_balancing.scan_size_pages = 1024;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(1)));
  k.access(t, a, len, vm::Prot::kWrite, 0.0);
  t.clock += cfg.numa_balancing.scan_period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  t.clock += cfg.numa_balancing.scan_period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 0), 16u);
  EXPECT_EQ(k.stats().tier_promotions, 0u);
  EXPECT_EQ(k.stats().tier_demote_passes, 0u);
}

// --- watermark demotion ------------------------------------------------------

// Fills the fast node past its high watermark with pages that then go cold,
// and drives the scan clock from the DRAM node so no promotions interfere.
struct DemotionRig {
  explicit DemotionRig(KernelConfig cfg) : k(std::move(cfg)) {
    pid = k.create_process("tiers");
    t = ctx_on(pid, /*core=*/2);  // DRAM node 1: hint faults stay local
    const std::uint64_t flen = 240 * mem::kPageSize;
    filler = k.sys_mmap(t, flen, vm::Prot::kReadWrite,
                        vm::MemPolicy::bind(topo::node_mask_of(0)));
    k.access(t, filler, flen, vm::Prot::kWrite, 0.0);
    const std::uint64_t dlen = 16 * mem::kPageSize;
    drv = k.sys_mmap(t, dlen, vm::Prot::kReadWrite,
                     vm::MemPolicy::bind(topo::node_mask_of(1)));
    k.access(t, drv, dlen, vm::Prot::kWrite, 0.0);
  }

  /// One scan window: only the small DRAM-local driver region is touched,
  /// so the filler ages (numa_idle) instead of refaulting.
  void window() {
    t.clock += sim::microseconds(100);
    k.access(t, drv, 16 * mem::kPageSize, vm::Prot::kRead, 0.0);
  }

  Kernel k;
  kern::Pid pid = 0;
  ThreadCtx t;
  vm::Vaddr filler = 0;
  vm::Vaddr drv = 0;
};

KernelConfig demotion_config() {
  KernelConfig cfg = tiered_config();  // 256 fast frames, watermark 230
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(100);
  cfg.numa_balancing.scan_size_pages = 1024;
  return cfg;
}

TEST(TierDemotion, WatermarkPassDemotesColdPages) {
  DemotionRig rig(demotion_config());
  ASSERT_EQ(rig.k.fast_occupancy_pct(), 240 * 100 / kFastFrames);

  // Window 1 tags the filler; windows 2-3 age it to demote_after_windows.
  // The pass at the end of window 3 demotes one batch down-tier, dropping
  // the fast node back under its watermark, after which passes stop.
  for (int i = 0; i < 4; ++i) rig.window();
  const kern::KernelStats& s = rig.k.stats();
  EXPECT_GE(s.tier_demote_passes, 1u);
  EXPECT_EQ(s.tier_demotions, 64u);  // one demote_batch_pages batch
  EXPECT_EQ(rig.k.pages_on_node(rig.pid, rig.filler, 240 * mem::kPageSize, 1),
            64u);
  EXPECT_LT(rig.k.fast_occupancy_pct(), 90);
  rig.k.validate(rig.pid);
}

TEST(TierDemotion, HysteresisBlocksPingPongWithinScanPeriod) {
  DemotionRig rig(demotion_config());
  for (int i = 0; i < 4; ++i) rig.window();
  ASSERT_EQ(rig.k.stats().tier_demotions, 64u);

  // A fast-node thread immediately re-touches everything. The demoted pages'
  // two-reference state was reset on demotion, so the first remote fault
  // only defers — nothing promotes back within the same scan period. (The
  // driver region itself may have been promoted up-tier during the windows,
  // hence the snapshot rather than an absolute zero.)
  const std::uint64_t promos = rig.k.stats().tier_promotions;
  const std::uint64_t deferred = rig.k.stats().numab_promotions_deferred;
  ThreadCtx hot = ctx_on(rig.pid, /*core=*/0, /*tid=*/1);
  hot.clock = rig.t.clock;
  rig.k.access(hot, rig.filler, 240 * mem::kPageSize, vm::Prot::kRead, 0.0);
  EXPECT_EQ(rig.k.stats().tier_promotions, promos);
  EXPECT_GT(rig.k.stats().numab_promotions_deferred, deferred);
  EXPECT_EQ(rig.k.stats().tier_demotions, 64u);  // and nothing re-demoted
  rig.k.validate(rig.pid);
}

TEST(TierDemotion, HonorsFaultInjectorKmigratedDrop) {
  // Every kmigrated batch is lost on the daemon queue: the demotion pass
  // runs (and is counted) but no page actually moves down-tier.
  kern::FaultInjector inj(kern::FaultPlan::parse("kmigrated:p=1"), 7);
  DemotionRig rig(demotion_config());
  rig.k.set_fault_injector(&inj);
  for (int i = 0; i < 4; ++i) rig.window();
  const kern::KernelStats& s = rig.k.stats();
  EXPECT_GE(s.tier_demote_passes, 1u);
  EXPECT_EQ(s.tier_demotions, 0u);
  EXPECT_GT(s.kmigrated_batches_dropped, 0u);
  EXPECT_EQ(rig.k.pages_on_node(rig.pid, rig.filler, 240 * mem::kPageSize, 0),
            240u);
  rig.k.validate(rig.pid);
}

// --- direct demotion under allocation pressure -------------------------------

std::vector<int> move_all(Kernel& k, ThreadCtx& t, vm::Vaddr a,
                          std::uint64_t pages, topo::NodeId dest) {
  std::vector<vm::Vaddr> addrs;
  for (std::uint64_t i = 0; i < pages; ++i)
    addrs.push_back(a + i * mem::kPageSize);
  std::vector<topo::NodeId> nodes(addrs.size(), dest);
  std::vector<int> status(addrs.size(), 0);
  EXPECT_EQ(k.sys_move_pages(t, addrs, nodes, status), 0);
  return status;
}

TEST(TierDemotion, DirectDemotionKeepsMovePagesSucceeding) {
  Kernel k(tiered_config());
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 2);
  const vm::Vaddr filler =
      k.sys_mmap(t, 240 * mem::kPageSize, vm::Prot::kReadWrite,
                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, filler, 240 * mem::kPageSize, vm::Prot::kWrite, 0.0);
  const vm::Vaddr buf =
      k.sys_mmap(t, 64 * mem::kPageSize, vm::Prot::kReadWrite,
                 vm::MemPolicy::bind(topo::node_mask_of(1)));
  k.access(t, buf, 64 * mem::kPageSize, vm::Prot::kWrite, 0.0);

  // 64 pages into a node with ~16 free frames: the shortfall is covered by
  // evicting filler pages (lower VPNs, walked first) down to DRAM.
  const std::vector<int> status = move_all(k, t, buf, 64, 0);
  for (const int s : status) EXPECT_EQ(s, 0);
  EXPECT_EQ(k.pages_on_node(pid, buf, 64 * mem::kPageSize, 0), 64u);
  EXPECT_EQ(k.stats().migrations_failed, 0u);
  EXPECT_GT(k.stats().tier_demotions, 0u);
  EXPECT_GE(k.stats().tier_demote_passes, 0u);
  k.validate(pid);
}

TEST(TierDemotion, DemotionOffDegradesToPerPageEnomem) {
  KernelConfig cfg = tiered_config();
  cfg.tiers.demotion = false;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 2);
  const vm::Vaddr filler =
      k.sys_mmap(t, 240 * mem::kPageSize, vm::Prot::kReadWrite,
                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, filler, 240 * mem::kPageSize, vm::Prot::kWrite, 0.0);
  const vm::Vaddr buf =
      k.sys_mmap(t, 64 * mem::kPageSize, vm::Prot::kReadWrite,
                 vm::MemPolicy::bind(topo::node_mask_of(1)));
  k.access(t, buf, 64 * mem::kPageSize, vm::Prot::kWrite, 0.0);

  const std::vector<int> status = move_all(k, t, buf, 64, 0);
  std::uint64_t enomem = 0;
  for (const int s : status)
    if (s == -kern::kENOMEM) ++enomem;
  EXPECT_GT(enomem, 0u);
  EXPECT_GT(k.stats().migrations_failed, 0u);
  EXPECT_EQ(k.stats().tier_demotions, 0u);
  // The failed pages stay where they were — nothing is torn down.
  EXPECT_EQ(k.pages_on_node(pid, buf, 64 * mem::kPageSize, 1), enomem);
  EXPECT_EQ(k.pages_on_node(pid, filler, 240 * mem::kPageSize, 0), 240u);
  k.validate(pid);
}

// --- tier-preference policy --------------------------------------------------

TEST(TierPolicy, PreferredManyFillsFastThenSpillsDownTier) {
  Kernel k(tiered_config());
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0);

  const vm::MemPolicy pol = lib::tier_preferred(k.topo());
  EXPECT_EQ(pol.mode, vm::PolicyMode::kPreferredMany);

  // Twice the fast tier's capacity: allocation must never hard-fail — the
  // fast node fills to its admission watermark and the rest spills to DRAM.
  const std::uint64_t pages = 2 * kFastFrames;
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite, pol);
  k.access(t, a, len, vm::Prot::kWrite, 0.0);

  const std::uint64_t on_fast = k.pages_on_node(pid, a, len, 0);
  const std::uint64_t on_dram = k.pages_on_node(pid, a, len, 1);
  EXPECT_EQ(on_fast + on_dram, pages);
  EXPECT_GT(on_fast, 0u);
  EXPECT_LE(on_fast, kFastFrames);
  EXPECT_GT(on_dram, 0u);
  k.validate(pid);
}

// --- occupancy audit ---------------------------------------------------------

TEST(TierAudit, ValidateAuditsTierOccupancyThroughChurn) {
  DemotionRig rig(demotion_config());
  EXPECT_GE(rig.k.fast_occupancy_pct(), 0);
  EXPECT_LE(rig.k.fast_occupancy_pct(), 100);
  for (int i = 0; i < 4; ++i) {
    rig.window();
    rig.k.validate(rig.pid);  // audit_tiers() after every demotion pass
  }
  // Promote some pages back up, then unmap everything: the incremental
  // tier_used accounting must agree with the pools at every step.
  ThreadCtx hot = ctx_on(rig.pid, 0, 1);
  hot.clock = rig.t.clock;
  for (int i = 0; i < 3; ++i) {
    hot.clock += sim::microseconds(100);
    rig.k.access(hot, rig.filler, 240 * mem::kPageSize, vm::Prot::kRead, 0.0);
  }
  rig.k.validate(rig.pid);
  rig.k.sys_munmap(rig.t, rig.filler, 240 * mem::kPageSize);
  rig.k.validate(rig.pid);
  EXPECT_LT(rig.k.fast_occupancy_pct(), 50);
}

}  // namespace
}  // namespace numasim
