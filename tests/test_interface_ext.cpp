// Tests for the syscall-interface extensions: the range-based move_pages
// (the paper's proposed overhead reduction), mbind(MPOL_MF_MOVE), meminfo.
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

class InterfaceExtTest : public ::testing::Test {
 protected:
  InterfaceExtTest()
      : topo_(topo::Topology::quad_opteron()), k_(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom}) {
    pid_ = k_.create_process();
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  vm::Vaddr make_buffer(ThreadCtx& t, std::uint64_t npages) {
    const vm::Vaddr a =
        k_.sys_mmap(t, npages * mem::kPageSize, vm::Prot::kReadWrite);
    k_.access(t, a, npages * mem::kPageSize, vm::Prot::kWrite, 3500.0);
    return a;
  }

  topo::Topology topo_;
  kern::Kernel k_;
  Pid pid_ = 0;
};

TEST_F(InterfaceExtTest, RangedMovePagesMigratesRanges) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_buffer(t, 64);
  const vm::Vaddr b = make_buffer(t, 32);

  std::vector<Kernel::MoveRange> ranges{
      {a, 64 * mem::kPageSize, 1},
      {b, 32 * mem::kPageSize, 2},
  };
  EXPECT_EQ(k_.sys_move_pages_ranged(t, ranges), 96);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 64 * mem::kPageSize, 1), 64u);
  EXPECT_EQ(k_.pages_on_node(pid_, b, 32 * mem::kPageSize, 2), 32u);
}

TEST_F(InterfaceExtTest, RangedInterfaceIsFasterThanPerPage) {
  // Same migration through both interfaces: the ranged one must beat the
  // classic array-based call (lower base, cheaper per-page control).
  const std::uint64_t npages = 2048;

  ThreadCtx t1 = ctx_on(0);
  const vm::Vaddr a = make_buffer(t1, npages);
  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < npages; ++i)
    pages.push_back(a + i * mem::kPageSize);
  std::vector<topo::NodeId> nodes(npages, 1);
  std::vector<int> status(npages, 0);
  const sim::Time c0 = t1.clock;
  k_.sys_move_pages(t1, pages, nodes, status);
  const sim::Time classic = t1.clock - c0;

  kern::Kernel k2(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  const Pid pid2 = k2.create_process();
  ThreadCtx t2;
  t2.pid = pid2;
  t2.core = 0;
  const vm::Vaddr b = k2.sys_mmap(t2, npages * mem::kPageSize, vm::Prot::kReadWrite);
  k2.access(t2, b, npages * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  const std::vector<Kernel::MoveRange> ranges{{b, npages * mem::kPageSize, 1}};
  const sim::Time r0 = t2.clock;
  EXPECT_EQ(k2.sys_move_pages_ranged(t2, ranges), static_cast<long>(npages));
  const sim::Time ranged = t2.clock - r0;

  EXPECT_LT(ranged, classic);
}

TEST_F(InterfaceExtTest, RangedMovePagesValidation) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_buffer(t, 4);
  std::vector<Kernel::MoveRange> zero{{a, 0, 1}};
  EXPECT_EQ(k_.sys_move_pages_ranged(t, zero), -kEINVAL);
  std::vector<Kernel::MoveRange> bad_node{{a, mem::kPageSize, 99}};
  EXPECT_EQ(k_.sys_move_pages_ranged(t, bad_node), -kEINVAL);
  std::vector<Kernel::MoveRange> unmapped{{0x100, mem::kPageSize, 1}};
  EXPECT_EQ(k_.sys_move_pages_ranged(t, unmapped), -kEFAULT);
}

TEST_F(InterfaceExtTest, RangedMovePagesSkipsHugePages) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t huge = 2ull << 20;
  const vm::Vaddr h = k_.sys_mmap(t, huge, vm::Prot::kReadWrite, {}, "h", true);
  k_.access(t, h, 8, vm::Prot::kWrite, 3500.0);
  const std::vector<Kernel::MoveRange> ranges{{h, huge, 1}};
  EXPECT_EQ(k_.sys_move_pages_ranged(t, ranges), 0);  // nothing migratable
  EXPECT_EQ(k_.pages_on_node(pid_, h, huge, 0), huge / mem::kPageSize);
}

TEST_F(InterfaceExtTest, MbindMoveExistingMigratesToPolicy) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = make_buffer(t, 16);  // first-touch: node 0
  ASSERT_EQ(k_.pages_on_node(pid_, a, len, 0), 16u);

  // Rebind to interleave WITHOUT move: placement unchanged.
  EXPECT_EQ(k_.sys_mbind(t, a, len, vm::MemPolicy::interleave(0b1111)), 0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), 16u);

  // With MPOL_MF_MOVE: pages redistribute to match the interleave.
  EXPECT_EQ(k_.sys_mbind(t, a, len, vm::MemPolicy::interleave(0b1111), true), 0);
  for (topo::NodeId n = 0; n < 4; ++n)
    EXPECT_EQ(k_.pages_on_node(pid_, a, len, n), 4u);
}

TEST_F(InterfaceExtTest, MbindMoveToBindNode) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = make_buffer(t, 8);
  EXPECT_EQ(k_.sys_mbind(t, a, len, vm::MemPolicy::bind(topo::node_mask_of(3)), true),
            0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 3), 8u);
}

TEST_F(InterfaceExtTest, MeminfoReportsUsage) {
  ThreadCtx t = ctx_on(0);
  make_buffer(t, 16);
  const std::string info = k_.meminfo();
  EXPECT_NE(info.find("node 0:"), std::string::npos);
  EXPECT_NE(info.find("node 3:"), std::string::npos);
  EXPECT_NE(info.find("64 KB used"), std::string::npos);
  EXPECT_NE(info.find("8192 MB total"), std::string::npos);
}

}  // namespace
}  // namespace numasim::kern
