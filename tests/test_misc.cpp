// Coverage for surfaces not exercised elsewhere: HwState contention
// primitives, OwnedTimeline bouncing, Thread syscall wrappers, and
// multi-process kernel isolation.
#include <gtest/gtest.h>

#include <vector>

#include "kern/hw_state.hpp"
#include "kern/kernel.hpp"
#include "rt/team.hpp"

namespace numasim {
namespace {

TEST(HwState, PathRateRealizesNumaFactor) {
  const topo::Topology t = topo::Topology::quad_opteron();
  kern::HwState hw(t);
  const double local = hw.path_rate(0, 0, 3500.0);
  const double one_hop = hw.path_rate(0, 1, 3500.0);
  const double two_hop = hw.path_rate(0, 3, 3500.0);
  EXPECT_DOUBLE_EQ(local, 3500.0);
  // Remote single-stream rate = min(latency-scaled core rate, link bw).
  // On the default machine the 2.2 GB/s HT link is the binding term.
  EXPECT_DOUBLE_EQ(one_hop, 2200.0);
  EXPECT_DOUBLE_EQ(two_hop, 2200.0);
  // With a slower requester the latency scaling shows through instead.
  EXPECT_NEAR(hw.path_rate(0, 1, 1000.0), 1000.0 * 75.0 / 90.0, 1.0);
  EXPECT_NEAR(hw.path_rate(0, 3, 1000.0), 1000.0 * 75.0 / 105.0, 1.0);
}

TEST(HwState, StreamQueuesOnSharedDram) {
  const topo::Topology t = topo::Topology::quad_opteron();
  kern::HwState hw(t);
  const sim::Slot a = hw.stream(0, 0, 0, 1 << 20, 3500.0);
  const sim::Slot b = hw.stream(0, 1, 0, 1 << 20, 3500.0);  // same DRAM node
  EXPECT_GT(b.start, a.start);  // queued behind a's DRAM occupancy
}

TEST(HwState, CopyReservesBothControllersAndRoute) {
  const topo::Topology t = topo::Topology::quad_opteron();
  kern::HwState hw(t);
  const sim::Slot c = hw.copy(0, 0, 3, 1 << 20, 1000.0);
  // Requester-bound at 1 GB/s: ~1.05 ms for 1 MiB.
  EXPECT_NEAR(static_cast<double>(c.finish), 1048576.0, 2000.0);
  // Another copy on the same route starts after the first's link occupancy.
  const sim::Slot d = hw.copy(0, 0, 3, 1 << 20, 1000.0);
  EXPECT_GT(d.start, 0u);
}

TEST(OwnedTimeline, BounceOnlyOnOwnerChange) {
  kern::OwnedTimeline tl;
  const sim::Slot a = tl.reserve(0, 100, /*owner=*/1, /*bounce=*/50);
  EXPECT_EQ(a.finish - a.start, 100u);  // first owner: no bounce
  const sim::Slot b = tl.reserve(0, 100, 1, 50);
  EXPECT_EQ(b.finish - b.start, 100u);  // same owner: no bounce
  const sim::Slot c = tl.reserve(0, 100, 2, 50);
  EXPECT_EQ(c.finish - c.start, 150u);  // ownership migrated: bounce
  tl.reset();
  const sim::Slot d = tl.reserve(0, 100, 3, 50);
  EXPECT_EQ(d.start, 0u);
  EXPECT_EQ(d.finish - d.start, 100u);
}

TEST(ThreadWrappers, MemcpyProtectPolicyRoundtrip) {
  rt::Machine m;  // materialized
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = 8 * mem::kPageSize;
    const vm::Vaddr src = co_await th.mmap(len);
    const vm::Vaddr dst = co_await th.mmap(len);
    co_await th.touch(src, len);
    std::vector<std::byte> data(len);
    for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::byte>(i / 3);
    co_await th.write(src, data);

    EXPECT_EQ(co_await th.memcpy_user(dst, src, len), 0);
    std::vector<std::byte> out(len);
    EXPECT_EQ(co_await th.read(dst, out), 0);
    EXPECT_EQ(out, data);

    EXPECT_EQ(co_await th.mprotect(src, len, vm::Prot::kRead), 0);
    EXPECT_EQ(co_await th.set_mempolicy(vm::MemPolicy::preferred(2)), 0);
    EXPECT_EQ(co_await th.mbind(dst, len, vm::MemPolicy::bind(0b0100)), 0);
    EXPECT_EQ(co_await th.munmap(src, len), 0);
    co_return;
  });
}

TEST(ThreadWrappers, MovePagesArgumentErrors) {
  rt::Machine m;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    std::vector<vm::Vaddr> pages{0x1000};
    std::vector<topo::NodeId> nodes{0, 1};  // size mismatch
    std::vector<int> status(1);
    EXPECT_EQ(co_await th.move_pages(pages, nodes, status), -kern::kEINVAL);
    std::vector<int> short_status;
    EXPECT_EQ(co_await th.move_pages(pages, {}, short_status), -kern::kEINVAL);
  });
}

TEST(Kernel, ProcessesAreIsolated) {
  const topo::Topology topo = topo::Topology::quad_opteron();
  kern::Kernel k(kern::KernelConfig{.topology = topo,
                                    .backing = mem::Backing::kMaterialized});
  const kern::Pid p1 = k.create_process("one");
  const kern::Pid p2 = k.create_process("two");

  kern::ThreadCtx t1;
  t1.pid = p1;
  kern::ThreadCtx t2;
  t2.pid = p2;
  const vm::Vaddr a1 = k.sys_mmap(t1, 4 * mem::kPageSize, vm::Prot::kReadWrite);
  const vm::Vaddr a2 = k.sys_mmap(t2, 4 * mem::kPageSize, vm::Prot::kReadWrite);
  EXPECT_EQ(a1, a2);  // same virtual layout, separate address spaces

  k.access(t1, a1, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  // p2 never touched its range: still unmapped physically.
  EXPECT_EQ(k.pages_on_node(p2, a2, 4 * mem::kPageSize, 0), 0u);
  k.access(t2, a2, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);

  std::vector<std::byte> d1(16, std::byte{0x11}), d2(16, std::byte{0x22});
  ASSERT_TRUE(k.poke(p1, a1, d1));
  ASSERT_TRUE(k.poke(p2, a2, d2));
  std::vector<std::byte> out(16);
  ASSERT_TRUE(k.peek(p1, a1, out));
  EXPECT_EQ(out, d1);
  ASSERT_TRUE(k.peek(p2, a2, out));
  EXPECT_EQ(out, d2);

  // Per-process signal handlers don't leak across.
  k.set_sigsegv_handler(p1, [](kern::ThreadCtx&, const kern::SigInfo&) {});
  EXPECT_THROW(k.access(t2, 0x40, 8, vm::Prot::kRead, 3500.0), kern::SegfaultError);
}

TEST(Kernel, ValidatePassesOnHealthyState) {
  const topo::Topology topo = topo::Topology::quad_opteron();
  kern::Kernel k(kern::KernelConfig{.topology = topo,
                                    .backing = mem::Backing::kPhantom});
  k.set_replication_enabled(true);
  const kern::Pid pid = k.create_process();
  kern::ThreadCtx t;
  t.pid = pid;
  const vm::Vaddr a = k.sys_mmap(t, 16 * mem::kPageSize, vm::Prot::kReadWrite);
  k.access(t, a, 16 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  k.sys_madvise(t, a, 16 * mem::kPageSize, kern::Advice::kReplicate);
  kern::ThreadCtx r;
  r.pid = pid;
  r.core = 4;
  r.clock = t.clock;
  k.access(r, a, 16 * mem::kPageSize, vm::Prot::kRead, 3500.0);
  EXPECT_NO_THROW(k.validate(pid));
}

TEST(EngineMisc, LiveRootsAndEventCount) {
  sim::Engine e;
  e.start([](sim::Engine& eng) -> sim::Task<void> { co_await eng.advance(5); }(e));
  e.start([](sim::Engine& eng) -> sim::Task<void> { co_await eng.advance(9); }(e));
  EXPECT_EQ(e.live_roots(), 2u);
  e.run();
  EXPECT_EQ(e.live_roots(), 0u);
  EXPECT_GE(e.events_processed(), 2u);
  EXPECT_THROW((void)e.finished(99), std::out_of_range);
}

}  // namespace
}  // namespace numasim
