// Reproduction assertions: the paper's headline quantitative claims, checked
// on every test run so a regression in any modelled mechanism fails CI.
// Each test is a compact version of the corresponding bench/ harness.
#include <gtest/gtest.h>

#include <vector>

#include "apps/lu.hpp"
#include "apps/matmul_batch.hpp"
#include "lib/user_next_touch.hpp"
#include "rt/team.hpp"

namespace numasim {
namespace {

struct Probe {
  topo::Topology topo = topo::Topology::quad_opteron();
  kern::Kernel k{kern::KernelConfig{.topology = topo,
                                    .backing = mem::Backing::kPhantom}};
  kern::Pid pid = k.create_process();
  kern::ThreadCtx owner;    // node 0
  kern::ThreadCtx toucher;  // node 1
  vm::Vaddr buf = 0;
  std::uint64_t len = 0;

  explicit Probe(std::uint64_t npages) : len(npages * mem::kPageSize) {
    owner.pid = pid;
    owner.core = 0;
    toucher.pid = pid;
    toucher.core = 4;
    buf = k.sys_mmap(owner, len, vm::Prot::kReadWrite, {}, "buf");
    k.access(owner, buf, len, vm::Prot::kWrite, 3500.0);
    toucher.clock = owner.clock;
  }

  double move_pages_mbps(kern::MovePagesImpl impl) {
    k.set_move_pages_impl(impl);
    std::vector<vm::Vaddr> pages;
    for (std::uint64_t i = 0; i < len; i += mem::kPageSize) pages.push_back(buf + i);
    std::vector<topo::NodeId> nodes(pages.size(), 1);
    std::vector<int> status(pages.size(), 0);
    const sim::Time t0 = owner.clock;
    k.sys_move_pages(owner, pages, nodes, status);
    k.set_move_pages_impl(kern::MovePagesImpl::kLinear);
    return sim::mb_per_second(len, owner.clock - t0);
  }

  double kernel_nt_mbps() {
    k.sys_madvise(toucher, buf, len, kern::Advice::kMigrateOnNextTouch);
    const sim::Time t0 = toucher.clock - /*madvise already counted*/ 0;
    for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
      k.access(toucher, buf + i, 8, vm::Prot::kReadWrite, 0.0);
    (void)t0;
    return sim::mb_per_second(len, toucher.clock - owner.clock);
  }
};

// --- Fig. 4 ------------------------------------------------------------------

TEST(ReproFig4, PatchedMovePagesPlateausNear600MBs) {
  EXPECT_NEAR(Probe(4096).move_pages_mbps(kern::MovePagesImpl::kLinear), 600, 60);
  EXPECT_NEAR(Probe(16384).move_pages_mbps(kern::MovePagesImpl::kLinear), 600, 60);
}

TEST(ReproFig4, MovePagesBaseOverheadNear160us) {
  Probe p(1);
  const sim::Time t0 = p.owner.clock;
  p.move_pages_mbps(kern::MovePagesImpl::kLinear);
  const double us = sim::to_microseconds(p.owner.clock - t0);
  EXPECT_GT(us, 140);
  EXPECT_LT(us, 200);
}

TEST(ReproFig4, UnpatchedCollapsesQuadratically) {
  const double small = Probe(128).move_pages_mbps(kern::MovePagesImpl::kQuadratic);
  const double large = Probe(8192).move_pages_mbps(kern::MovePagesImpl::kQuadratic);
  EXPECT_GT(small, 350);  // fine at small sizes
  EXPECT_LT(large, 100);  // collapsed
}

TEST(ReproFig4, MigratePagesFasterPlateauHigherBase) {
  Probe p(8192);
  const sim::Time t0 = p.owner.clock;
  p.k.sys_migrate_pages(p.owner, p.pid, topo::node_mask_of(0), topo::node_mask_of(1));
  const double mbps = sim::mb_per_second(p.len, p.owner.clock - t0);
  EXPECT_NEAR(mbps, 780, 60);

  Probe q(1);
  const sim::Time t1 = q.owner.clock;
  q.k.sys_migrate_pages(q.owner, q.pid, topo::node_mask_of(0), topo::node_mask_of(1));
  EXPECT_GT(sim::to_microseconds(q.owner.clock - t1), 350);  // ~400 us base
}

// --- Fig. 5 ------------------------------------------------------------------

TEST(ReproFig5, KernelNextTouchNear800EvenSmall) {
  EXPECT_GT(Probe(64).kernel_nt_mbps(), 700);
  EXPECT_NEAR(Probe(2048).kernel_nt_mbps(), 800, 60);
}

TEST(ReproFig5, KernelNextTouchBeatsUserNextTouch) {
  for (std::uint64_t npages : {16u, 256u, 2048u}) {
    Probe user(npages);
    lib::UserNextTouch unt(user.k, user.pid);
    const sim::Time t0 = user.toucher.clock;
    unt.mark(user.toucher, user.buf, user.len);
    for (std::uint64_t i = 0; i < user.len; i += mem::kPageSize)
      user.k.access(user.toucher, user.buf + i, 8, vm::Prot::kReadWrite, 0.0);
    const double user_mbps = sim::mb_per_second(user.len, user.toucher.clock - t0);

    const double kernel_mbps = Probe(npages).kernel_nt_mbps();
    EXPECT_GT(kernel_mbps, user_mbps) << npages << " pages";
  }
}

// --- Fig. 6 ------------------------------------------------------------------

TEST(ReproFig6, CostShares) {
  // Kernel NT at 4096 pages: copy ~80 %, control ~20 % (paper Sec. 4.3).
  Probe p(4096);
  p.toucher.stats.reset();
  p.kernel_nt_mbps();
  const auto& s = p.toucher.stats;
  EXPECT_NEAR(s.fraction(sim::CostKind::kNextTouchCopy), 0.80, 0.06);
  const double control = s.fraction(sim::CostKind::kNextTouchControl) +
                         s.fraction(sim::CostKind::kPageFault);
  EXPECT_NEAR(control, 0.20, 0.06);

  // User NT: move_pages control ~38 % of the total cost.
  Probe u(4096);
  lib::UserNextTouch unt(u.k, u.pid);
  u.toucher.stats.reset();
  unt.mark(u.toucher, u.buf, u.len);
  for (std::uint64_t i = 0; i < u.len; i += mem::kPageSize)
    u.k.access(u.toucher, u.buf + i, 8, vm::Prot::kReadWrite, 0.0);
  const double mv_control = u.toucher.stats.fraction(sim::CostKind::kMovePagesControl);
  EXPECT_NEAR(mv_control, 0.38, 0.06);
}

// --- Fig. 7 ------------------------------------------------------------------

sim::Time fig7_span(std::uint64_t npages, unsigned nthreads, bool lazy) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  sim::Time span = 0;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(len, vm::Prot::kReadWrite,
                                           vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);
    rt::Team team = rt::Team::node_cores(m, 1, nthreads);
    const std::uint64_t per = len / nthreads;
    rt::Team::WorkerFn worker = [&, lazy, per, buf](unsigned tid,
                                                    rt::Thread& w) -> sim::Task<void> {
      const vm::Vaddr lo = buf + tid * per;
      if (lazy) {
        co_await w.madvise(lo, per, kern::Advice::kMigrateOnNextTouch);
        co_await w.touch_pages_sparse(lo, per);
      } else {
        co_await w.move_range(lo, per, 1);
      }
    };
    co_await team.parallel(th, std::move(worker));
    span = team.last_span();
  });
  return span;
}

TEST(ReproFig7, FourThreadGainsMatchPaper) {
  const std::uint64_t npages = 8192;
  const double sync1 = sim::mb_per_second(npages * mem::kPageSize, fig7_span(npages, 1, false));
  const double sync4 = sim::mb_per_second(npages * mem::kPageSize, fig7_span(npages, 4, false));
  const double lazy4 = sim::mb_per_second(npages * mem::kPageSize, fig7_span(npages, 4, true));

  const double sync_gain = sync4 / sync1 - 1.0;
  EXPECT_GT(sync_gain, 0.40);  // paper: +50-60 %
  EXPECT_LT(sync_gain, 0.90);
  EXPECT_GT(lazy4, sync4);          // lazy scales better
  EXPECT_NEAR(lazy4, 1300, 150);    // paper: up to 1.3 GB/s
}

TEST(ReproFig7, NoSyncGainBelowOneMegabyte) {
  const std::uint64_t npages = 64;
  const sim::Time t1 = fig7_span(npages, 1, false);
  const sim::Time t4 = fig7_span(npages, 4, false);
  // Within 20 % of each other: parallelism buys nothing this small.
  EXPECT_LT(static_cast<double>(t1) / static_cast<double>(t4), 1.2);
}

// --- Table 1 / Fig. 8 ---------------------------------------------------------

sim::Time lu_time(std::uint64_t n, std::uint64_t bs, bool nt) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);
  apps::LuConfig cfg;
  cfg.n = n;
  cfg.bs = bs;
  cfg.next_touch = nt;
  apps::LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });
  return lu.result().factor_time;
}

TEST(ReproTable1, NextTouchLosesBelow512Blocks) {
  EXPECT_GT(lu_time(2048, 64, true), lu_time(2048, 64, false));
  EXPECT_GT(lu_time(2048, 128, true), lu_time(2048, 128, false));
}

TEST(ReproTable1, NextTouchWinsAt512Blocks) {
  const sim::Time stat = lu_time(4096, 512, false);
  const sim::Time nt = lu_time(4096, 512, true);
  EXPECT_LT(nt, stat);
  EXPECT_GT(static_cast<double>(stat) / static_cast<double>(nt), 1.2);
}

sim::Time fig8_time(std::uint64_t n, apps::MatmulBatchConfig::Mode mode) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);
  apps::MatmulBatchConfig cfg;
  cfg.n = n;
  cfg.mode = mode;
  apps::MatmulBatch app(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
  return app.result().compute_time;
}

TEST(ReproFig8, CrossoverAt512) {
  using Mode = apps::MatmulBatchConfig::Mode;
  // Below the cache threshold: static wins, user NT is the worst.
  EXPECT_LT(fig8_time(128, Mode::kStatic), fig8_time(128, Mode::kKernelNextTouch));
  EXPECT_LT(fig8_time(128, Mode::kKernelNextTouch), fig8_time(128, Mode::kUserNextTouch));
  // At and above 512: both NT variants clearly beat static; kernel NT leads.
  const sim::Time stat = fig8_time(512, Mode::kStatic);
  const sim::Time knt = fig8_time(512, Mode::kKernelNextTouch);
  const sim::Time unt = fig8_time(512, Mode::kUserNextTouch);
  EXPECT_LT(knt, stat);
  EXPECT_LT(unt, stat);
  EXPECT_LE(knt, unt);
}

}  // namespace
}  // namespace numasim
