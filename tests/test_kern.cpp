// Unit tests for the simulated kernel: policies, faults, move_pages,
// migrate_pages, madvise(MIGRATE_ON_NEXT_TOUCH), mprotect + SIGSEGV.
//
// The kernel API is synchronous (the coroutine runtime sits above it), so
// these tests drive it directly with hand-built ThreadCtx objects.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : topo_(topo::Topology::quad_opteron()),
        k_(KernelConfig{.topology = topo_, .backing = mem::Backing::kMaterialized}) {
    pid_ = k_.create_process("test");
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  std::vector<vm::Vaddr> pages_of(vm::Vaddr addr, std::uint64_t len) {
    std::vector<vm::Vaddr> v;
    for (vm::Vpn p = vm::vpn_of(addr); p < vm::vpn_of(addr + len - 1) + 1; ++p)
      v.push_back(vm::addr_of(p));
    return v;
  }

  topo::Topology topo_;
  Kernel k_;
  Pid pid_ = 0;
};

TEST_F(KernelTest, FirstTouchAllocatesOnLocalNode) {
  ThreadCtx t = ctx_on(4);  // node 1
  const vm::Vaddr a = k_.sys_mmap(t, 8 * mem::kPageSize, vm::Prot::kReadWrite);
  EXPECT_EQ(k_.page_node(pid_, a), topo::kInvalidNode);  // lazy

  const AccessResult r =
      k_.access(t, a, 8 * mem::kPageSize, vm::Prot::kReadWrite, 3500.0);
  EXPECT_EQ(r.pages, 8u);
  EXPECT_EQ(r.minor_faults, 8u);
  for (vm::Vaddr p : pages_of(a, 8 * mem::kPageSize))
    EXPECT_EQ(k_.page_node(pid_, p), 1u);
  EXPECT_GT(t.clock, 0u);
  EXPECT_EQ(k_.stats().minor_faults, 8u);
}

TEST_F(KernelTest, InterleavePolicySpreadsPagesDeterministically) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a =
      k_.sys_mmap(t, 8 * mem::kPageSize, vm::Prot::kReadWrite,
                  vm::MemPolicy::interleave(topo_.all_nodes_mask()));
  k_.access(t, a, 8 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  for (unsigned i = 0; i < 8; ++i)
    EXPECT_EQ(k_.page_node(pid_, a + i * mem::kPageSize), i % 4);
}

TEST_F(KernelTest, BindPolicyPinsToNode) {
  ThreadCtx t = ctx_on(0);  // node 0
  const vm::Vaddr a = k_.sys_mmap(t, 4 * mem::kPageSize, vm::Prot::kReadWrite,
                                  vm::MemPolicy::bind(topo::node_mask_of(3)));
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 4 * mem::kPageSize, 3), 4u);
}

TEST_F(KernelTest, TaskPolicyAppliesWhenVmaIsDefault) {
  ThreadCtx t = ctx_on(0);
  k_.sys_set_mempolicy(t, vm::MemPolicy::preferred(2));
  const vm::Vaddr a = k_.sys_mmap(t, 2 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, 2 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 2 * mem::kPageSize, 2), 2u);

  vm::MemPolicy out;
  k_.sys_get_mempolicy(t, out);
  EXPECT_EQ(out.mode, vm::PolicyMode::kPreferred);
}

TEST_F(KernelTest, GetcpuReportsCoreAndNode) {
  ThreadCtx t = ctx_on(9);
  topo::CoreId core = 0;
  topo::NodeId node = 0;
  EXPECT_EQ(k_.sys_getcpu(t, &core, &node), 0);
  EXPECT_EQ(core, 9u);
  EXPECT_EQ(node, 2u);
}

TEST_F(KernelTest, MovePagesMigratesAndPreservesData) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);

  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i) payload[i] = static_cast<std::byte>(i * 7);
  ASSERT_TRUE(k_.poke(pid_, a, payload));

  const auto pages = pages_of(a, len);
  std::vector<topo::NodeId> nodes(pages.size(), 2);
  std::vector<int> status(pages.size(), -1);
  EXPECT_EQ(k_.sys_move_pages(t, pages, nodes, status), 0);
  for (int s : status) EXPECT_EQ(s, 2);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 16u);
  EXPECT_EQ(k_.stats().pages_migrated_move, 16u);

  std::vector<std::byte> readback(len);
  ASSERT_TRUE(k_.peek(pid_, a, readback));
  EXPECT_EQ(readback, payload);
}

TEST_F(KernelTest, MovePagesQueryModeReportsLocations) {
  ThreadCtx t = ctx_on(12);  // node 3
  const vm::Vaddr a = k_.sys_mmap(t, 4 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);

  const auto pages = pages_of(a, 4 * mem::kPageSize);
  std::vector<int> status(pages.size(), -1);
  EXPECT_EQ(k_.sys_move_pages(t, pages, {}, status), 0);
  for (int s : status) EXPECT_EQ(s, 3);
}

TEST_F(KernelTest, MovePagesReportsEfaultForUnmappedAndAbsent) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 2 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, mem::kPageSize, vm::Prot::kWrite, 3500.0);  // only first page

  const std::vector<vm::Vaddr> pages{a, a + mem::kPageSize, 0x10};
  std::vector<topo::NodeId> nodes(3, 1);
  std::vector<int> status(3, 0);
  EXPECT_EQ(k_.sys_move_pages(t, pages, nodes, status), 0);
  EXPECT_EQ(status[0], 1);
  EXPECT_EQ(status[1], -kEFAULT);  // never touched
  EXPECT_EQ(status[2], -kEFAULT);  // unmapped
}

TEST_F(KernelTest, MovePagesArgumentValidation) {
  ThreadCtx t = ctx_on(0);
  std::vector<vm::Vaddr> pages{0x1000};
  std::vector<topo::NodeId> nodes{0, 1};
  std::vector<int> status(1);
  EXPECT_EQ(k_.sys_move_pages(t, pages, nodes, status), -kEINVAL);
  std::vector<topo::NodeId> bad{99};
  EXPECT_EQ(k_.sys_move_pages(t, pages, bad, status), 0);
  EXPECT_EQ(status[0], -kEFAULT);  // unmapped wins over bad node here
}

TEST_F(KernelTest, QuadraticImplIsSlowerOnLargeRequests) {
  // Same end state, radically different cost — the Fig. 4 pathology.
  auto run = [&](MovePagesImpl impl) {
    ThreadCtx t = ctx_on(0);
    const std::uint64_t len = 2048 * mem::kPageSize;
    const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
    k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
    k_.set_move_pages_impl(impl);
    const auto pages = pages_of(a, len);
    std::vector<topo::NodeId> nodes(pages.size(), 1);
    std::vector<int> status(pages.size(), 0);
    const sim::Time t0 = t.clock;
    EXPECT_EQ(k_.sys_move_pages(t, pages, nodes, status), 0);
    k_.set_move_pages_impl(MovePagesImpl::kLinear);
    EXPECT_EQ(k_.pages_on_node(pid_, a, len, 1), 2048u);
    return t.clock - t0;
  };
  const sim::Time linear = run(MovePagesImpl::kLinear);
  const sim::Time quadratic = run(MovePagesImpl::kQuadratic);
  EXPECT_GT(quadratic, 2 * linear);
}

TEST_F(KernelTest, MigratePagesMovesWholeProcess) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 32 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  const vm::Vaddr b = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  k_.access(t, b, len, vm::Prot::kWrite, 3500.0);
  ASSERT_EQ(k_.pages_on_node(pid_, a, len, 0), 32u);

  const SyscallResult moved = k_.sys_migrate_pages(
      t, pid_, topo::node_mask_of(0), topo::node_mask_of(2));
  EXPECT_TRUE(moved.ok());
  EXPECT_EQ(moved.count(), 64);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 32u);
  EXPECT_EQ(k_.pages_on_node(pid_, b, len, 2), 32u);
  EXPECT_EQ(k_.stats().pages_migrated_process, 64u);
}

TEST_F(KernelTest, MigratePagesRelativeNodeMapping) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a =
      k_.sys_mmap(t, 8 * mem::kPageSize, vm::Prot::kReadWrite,
                  vm::MemPolicy::interleave(0b0011));  // nodes 0,1
  k_.access(t, a, 8 * mem::kPageSize, vm::Prot::kWrite, 3500.0);

  // {0,1} -> {2,3}: 0->2, 1->3.
  EXPECT_EQ(k_.sys_migrate_pages(t, pid_, 0b0011, 0b1100), 8);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 2), 4u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 3), 4u);
}

TEST_F(KernelTest, NextTouchMigratesToTouchingNode) {
  ThreadCtx t0 = ctx_on(0);  // node 0
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k_.access(t0, a, len, vm::Prot::kWrite, 3500.0);
  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i) payload[i] = static_cast<std::byte>(i);
  ASSERT_TRUE(k_.poke(pid_, a, payload));

  EXPECT_EQ(k_.sys_madvise(t0, a, len, Advice::kMigrateOnNextTouch), 0);

  ThreadCtx t2 = ctx_on(8);  // node 2
  const AccessResult r = k_.access(t2, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.nexttouch_migrations, 8u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 8u);

  std::vector<std::byte> readback(len);
  ASSERT_TRUE(k_.peek(pid_, a, readback));
  EXPECT_EQ(readback, payload);

  // Flag is one-shot: a later touch from elsewhere does not migrate.
  ThreadCtx t1 = ctx_on(4);
  const AccessResult r2 = k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r2.nexttouch_migrations, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 8u);
}

TEST_F(KernelTest, NextTouchLocalTouchJustRearms) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  k_.sys_madvise(t, a, len, Advice::kMigrateOnNextTouch);

  const AccessResult r = k_.access(t, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.nexttouch_migrations, 0u);
  EXPECT_EQ(r.nexttouch_hits_local, 4u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), 4u);
}

TEST_F(KernelTest, NextTouchOnUntouchedPagesIsFirstTouch) {
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t0, len, vm::Prot::kReadWrite);
  // Nothing present yet; madvise marks nothing.
  EXPECT_EQ(k_.sys_madvise(t0, a, len, Advice::kMigrateOnNextTouch), 0);
  ThreadCtx t3 = ctx_on(12);
  const AccessResult r = k_.access(t3, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(r.minor_faults, 4u);
  EXPECT_EQ(r.nexttouch_migrations, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 3), 4u);
}

TEST_F(KernelTest, MadviseDontNeedDropsPages) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  const std::uint64_t used = k_.phys().total_used_frames();
  EXPECT_EQ(k_.sys_madvise(t, a, len, Advice::kDontNeed), 0);
  EXPECT_EQ(k_.phys().total_used_frames(), used - 4);
  EXPECT_EQ(k_.page_node(pid_, a), topo::kInvalidNode);
  // Next touch zero-fills afresh.
  const AccessResult r = k_.access(t, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.minor_faults, 4u);
}

TEST_F(KernelTest, MprotectNoneRaisesSegvAndHandlerRepairs) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 2 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.sys_mprotect(t, a, len, vm::Prot::kNone), 0);

  unsigned handler_calls = 0;
  k_.set_sigsegv_handler(pid_, [&](ThreadCtx& ht, const SigInfo& info) {
    ++handler_calls;
    EXPECT_EQ(info.fault_addr, a);
    k_.sys_mprotect(ht, a, len, vm::Prot::kReadWrite,
                    sim::CostKind::kMprotectRestore);
  });

  const AccessResult r = k_.access(t, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(handler_calls, 1u);
  EXPECT_EQ(r.sigsegv_delivered, 1u);
  EXPECT_GT(t.stats.get(sim::CostKind::kSignalDelivery), 0u);
}

TEST_F(KernelTest, UnhandledSegvThrows) {
  ThreadCtx t = ctx_on(0);
  EXPECT_THROW(k_.access(t, 0x10, 8, vm::Prot::kRead, 3500.0), SegfaultError);
}

TEST_F(KernelTest, HandlerThatDoesNotRepairThrowsAfterRetries) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, mem::kPageSize, vm::Prot::kRead);
  k_.set_sigsegv_handler(pid_, [](ThreadCtx&, const SigInfo&) {});
  EXPECT_THROW(k_.access(t, a, 8, vm::Prot::kWrite, 3500.0), SegfaultError);
}

TEST_F(KernelTest, ReadWriteBytesRoundtripAcrossPages) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 3 * mem::kPageSize, vm::Prot::kReadWrite);
  std::vector<std::byte> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::byte>(i * 13);
  const vm::Vaddr mid = a + mem::kPageSize - 100;  // crosses two boundaries
  EXPECT_EQ(k_.write_bytes(t, mid, data), 0);
  std::vector<std::byte> out(5000);
  EXPECT_EQ(k_.read_bytes(t, mid, out), 0);
  EXPECT_EQ(out, data);
}

TEST_F(KernelTest, UserMemcpyCopiesAndFaultsDestination) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr src = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  const vm::Vaddr dst = k_.sys_mmap(t, len, vm::Prot::kReadWrite,
                                    vm::MemPolicy::bind(topo::node_mask_of(1)));
  k_.access(t, src, len, vm::Prot::kWrite, 3500.0);
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::byte>(i ^ 0x5a);
  ASSERT_TRUE(k_.poke(pid_, src, data));

  EXPECT_EQ(k_.user_memcpy(t, dst, src, len), 0);
  EXPECT_EQ(k_.pages_on_node(pid_, dst, len, 1), 8u);
  std::vector<std::byte> out(len);
  ASSERT_TRUE(k_.peek(pid_, dst, out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(k_.user_memcpy(t, dst, src + len, mem::kPageSize), -kEFAULT);
}

TEST_F(KernelTest, MunmapFreesFramesAndUnmaps) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 6 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  const std::uint64_t used = k_.phys().total_used_frames();
  EXPECT_EQ(k_.sys_munmap(t, a, len), 0);
  EXPECT_EQ(k_.phys().total_used_frames(), used - 6);
  EXPECT_THROW(k_.access(t, a, 8, vm::Prot::kRead, 3500.0), SegfaultError);
}

TEST_F(KernelTest, NumaMapsReportsPolicyAndPlacement) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a =
      k_.sys_mmap(t, 4 * mem::kPageSize, vm::Prot::kReadWrite,
                  vm::MemPolicy::interleave(topo_.all_nodes_mask()), "heap");
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  const std::string maps = k_.numa_maps(pid_);
  EXPECT_NE(maps.find("interleave"), std::string::npos);
  EXPECT_NE(maps.find("anon=4"), std::string::npos);
  EXPECT_NE(maps.find("N0=1"), std::string::npos);
  EXPECT_NE(maps.find("N3=1"), std::string::npos);
  EXPECT_NE(maps.find("[heap]"), std::string::npos);
}

TEST_F(KernelTest, RemoteStreamSlowerThanLocal) {
  ThreadCtx local = ctx_on(0);
  ThreadCtx remote = ctx_on(12);  // node 3, two hops from node 0
  const std::uint64_t len = 64 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(local, len, vm::Prot::kReadWrite,
                                  vm::MemPolicy::bind(topo::node_mask_of(0)));
  k_.access(local, a, len, vm::Prot::kWrite, 3500.0);

  local.clock = sim::seconds(100);  // hardware idle by then
  local.stats.reset();
  k_.access(local, a, len, vm::Prot::kRead, 3500.0);
  const sim::Time local_time = local.clock - sim::seconds(100);

  remote.clock = sim::seconds(200);
  k_.access(remote, a, len, vm::Prot::kRead, 3500.0);
  const sim::Time remote_time = remote.clock - sim::seconds(200);
  EXPECT_GT(remote_time, local_time);
  // Within an order of magnitude of the NUMA factor.
  EXPECT_LT(remote_time, 2 * local_time);
}

TEST_F(KernelTest, AccessStridedFaultsAndCharges) {
  ThreadCtx t = ctx_on(0);
  // 16 rows of 1 KiB with a 16 KiB stride: touches 16 distinct pages.
  const std::uint64_t stride = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, 16 * stride, vm::Prot::kReadWrite);
  const AccessResult r =
      k_.access_strided(t, a, 16, 1024, stride, vm::Prot::kWrite, 3500.0, 1.0);
  EXPECT_EQ(r.minor_faults, 16u);
  EXPECT_GT(t.stats.get(sim::CostKind::kMemAccess), 0u);

  // traffic_scale multiplies the data-plane charge. Start each probe at an
  // instant where the hardware timelines are idle so queueing doesn't skew it.
  ThreadCtx t2 = ctx_on(0);
  t2.clock = sim::seconds(100);
  k_.access_strided(t2, a, 16, 1024, stride, vm::Prot::kRead, 3500.0, 1.0);
  ThreadCtx t3 = ctx_on(0);
  t3.clock = sim::seconds(200);
  k_.access_strided(t3, a, 16, 1024, stride, vm::Prot::kRead, 3500.0, 8.0);
  EXPECT_GT(t3.stats.get(sim::CostKind::kMemAccess),
            4 * t2.stats.get(sim::CostKind::kMemAccess));
}

TEST_F(KernelTest, AllocationFallsBackWhenNodeFull) {
  Kernel small(KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom,
                           .max_frames_per_node = 4});
  const Pid pid = small.create_process();
  ThreadCtx t;
  t.pid = pid;
  t.core = 0;
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = small.sys_mmap(t, len, vm::Prot::kReadWrite,
                                     vm::MemPolicy::bind(topo::node_mask_of(0)));
  small.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(small.pages_on_node(pid, a, len, 0), 4u);
  EXPECT_GT(small.phys().fallback_allocs(), 0u);
}

TEST_F(KernelTest, SyscallErrorReturns) {
  ThreadCtx t = ctx_on(0);
  EXPECT_EQ(k_.sys_munmap(t, 0x1000, 0), -kEINVAL);
  EXPECT_EQ(k_.sys_madvise(t, 0x100, mem::kPageSize, Advice::kNormal), -kENOMEM);
  EXPECT_EQ(k_.sys_mbind(t, 0x100, mem::kPageSize, vm::MemPolicy::bind(1)), -kENOMEM);
  const vm::Vaddr a = k_.sys_mmap(t, mem::kPageSize, vm::Prot::kReadWrite);
  EXPECT_EQ(k_.sys_mbind(t, a, mem::kPageSize, vm::MemPolicy{vm::PolicyMode::kBind, 0}),
            -kEINVAL);
  EXPECT_EQ(k_.sys_set_mempolicy(t, vm::MemPolicy{vm::PolicyMode::kInterleave, 0}),
            -kEINVAL);
  EXPECT_EQ(k_.sys_migrate_pages(t, 999, 1, 2), -kESRCH);
  EXPECT_EQ(k_.sys_migrate_pages(t, pid_, 0, 2), -kEINVAL);
}

TEST_F(KernelTest, MbindAffectsFuturePlacement) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  EXPECT_EQ(k_.sys_mbind(t, a, len, vm::MemPolicy::bind(topo::node_mask_of(2))), 0);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 4u);
}

// Property sweep: for any request size, linear move_pages lands every page
// on its requested node and preserves contents.
class MovePagesProperty : public KernelTest,
                          public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(MovePagesProperty, MigrationIsCorrectAtAnySize) {
  const std::uint64_t npages = GetParam();
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);

  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i)
    payload[i] = static_cast<std::byte>((i * 2654435761u) >> 3);
  ASSERT_TRUE(k_.poke(pid_, a, payload));

  // Scatter: page i goes to node i % 4.
  const auto pages = pages_of(a, len);
  std::vector<topo::NodeId> nodes(pages.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    nodes[i] = static_cast<topo::NodeId>(i % 4);
  std::vector<int> status(pages.size(), -1);
  ASSERT_EQ(k_.sys_move_pages(t, pages, nodes, status), 0);
  for (std::size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(status[i], static_cast<int>(i % 4));
    EXPECT_EQ(k_.page_node(pid_, pages[i]), i % 4);
  }
  std::vector<std::byte> readback(len);
  ASSERT_TRUE(k_.peek(pid_, a, readback));
  EXPECT_EQ(readback, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MovePagesProperty,
                         ::testing::Values(1, 3, 63, 64, 65, 128, 1000));

// Property sweep: next-touch marking + touching from every node always ends
// with the pages local to the toucher.
class NextTouchProperty
    : public KernelTest,
      public ::testing::WithParamInterface<std::tuple<std::uint64_t, unsigned>> {};

TEST_P(NextTouchProperty, PagesFollowTheToucher) {
  const auto [npages, core] = GetParam();
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k_.access(t0, a, len, vm::Prot::kWrite, 3500.0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len, Advice::kMigrateOnNextTouch), 0);

  ThreadCtx t = ctx_on(core);
  k_.access(t, a, len, vm::Prot::kReadWrite, 3500.0);
  const topo::NodeId node = topo_.node_of_core(core);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, node), npages);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCores, NextTouchProperty,
    ::testing::Combine(::testing::Values(1, 7, 64, 200),
                       ::testing::Values(0u, 2u, 5u, 10u, 15u)));

// --- move_pages nr_pages == 0 fast path --------------------------------------

TEST_F(KernelTest, MovePagesEmptyArrayReturnsBeforeMmapSem) {
  // Linux's sys_move_pages returns for nr_pages == 0 before taking mmap_sem;
  // the simulation must charge only the syscall entry, never
  // move_pages_base_locked (which the old model wrongly billed here).
  ThreadCtx t = ctx_on(0);
  const sim::Time t0 = t.clock;
  const SyscallResult r = k_.sys_move_pages(t, {}, {}, {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.count(), 0);
  EXPECT_EQ(t.clock - t0, k_.cost().syscall_entry);
}

// --- compressed placement counts ---------------------------------------------

TEST_F(KernelTest, PlacementCountsMatchPerPageWalkAcrossChunks) {
  // Span several 512-page chunks with ragged edges so pages_on_node exercises
  // both the per-chunk counter path and the edge walks, then cross-check every
  // answer against a per-page page_node() count through a lifecycle of
  // first-touch, explicit migration, dontneed, and partial munmap. validate()
  // audits the maintained counters against the page table at every step.
  ThreadCtx t = ctx_on(0);
  const std::uint64_t npages = 3 * vm::PageTable::kChunkPages + 77;
  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr a =
      k_.sys_mmap(t, len, vm::Prot::kReadWrite,
                  vm::MemPolicy::interleave(topo_.all_nodes_mask()));
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);

  auto manual = [&](vm::Vaddr addr, std::uint64_t l, topo::NodeId n) {
    std::uint64_t c = 0;
    for (vm::Vaddr p : pages_of(addr, l))
      if (k_.page_node(pid_, p) == n) ++c;
    return c;
  };
  auto check_all = [&](vm::Vaddr addr, std::uint64_t l) {
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n)
      EXPECT_EQ(k_.pages_on_node(pid_, addr, l, n), manual(addr, l, n));
    k_.validate(pid_);
  };
  check_all(a, len);
  // Misaligned sub-range straddling chunk boundaries.
  check_all(a + 13 * mem::kPageSize, len - 200 * mem::kPageSize);

  // Migrate a stripe crossing the first chunk boundary.
  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 500; i < 530; ++i)
    pages.push_back(a + i * mem::kPageSize);
  const std::vector<topo::NodeId> nodes(pages.size(), 3);
  std::vector<int> status(pages.size());
  ASSERT_TRUE(k_.sys_move_pages(t, pages, nodes, status).ok());
  check_all(a, len);

  // Drop a middle stripe, then unmap a ragged tail.
  ASSERT_EQ(k_.sys_madvise(t, a + 600 * mem::kPageSize, 100 * mem::kPageSize,
                           Advice::kDontNeed),
            0);
  check_all(a, len);
  ASSERT_EQ(k_.sys_munmap(t, a + (npages - 300) * mem::kPageSize,
                          300 * mem::kPageSize),
            0);
  check_all(a, (npages - 300) * mem::kPageSize);
}

}  // namespace
}  // namespace numasim::kern
