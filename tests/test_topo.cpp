// Unit tests for the NUMA topology model.
#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace numasim::topo {
namespace {

TEST(Topology, QuadOpteronShape) {
  const Topology t = Topology::quad_opteron();
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.cores_per_node(), 4u);
  EXPECT_EQ(t.num_links(), 4u);
  for (CoreId c = 0; c < 16; ++c) EXPECT_EQ(t.node_of_core(c), c / 4);
  EXPECT_EQ(t.cores_of_node(2).size(), 4u);
  EXPECT_EQ(t.cores_of_node(2)[0], 8u);
}

TEST(Topology, QuadOpteronRouting) {
  const Topology t = Topology::quad_opteron();
  // Square 0-1, 1-3, 3-2, 2-0: adjacent pairs 1 hop, diagonals 2 hops.
  EXPECT_EQ(t.hops(0, 0), 0u);
  EXPECT_EQ(t.hops(0, 1), 1u);
  EXPECT_EQ(t.hops(0, 2), 1u);
  EXPECT_EQ(t.hops(0, 3), 2u);
  EXPECT_EQ(t.hops(1, 2), 2u);
  EXPECT_EQ(t.hops(3, 0), 2u);
  EXPECT_TRUE(t.route(0, 0).empty());
  EXPECT_EQ(t.route(0, 3).size(), 2u);
}

TEST(Topology, NumaFactorMatchesPaperRange) {
  const Topology t = Topology::quad_opteron();
  EXPECT_DOUBLE_EQ(t.numa_factor(0, 0), 1.0);
  const double one_hop = t.numa_factor(0, 1);
  const double two_hop = t.numa_factor(0, 3);
  // Paper: local/remote ratio between 1.2 and 1.4 on this machine.
  EXPECT_GE(one_hop, 1.2);
  EXPECT_LE(one_hop, 1.4);
  EXPECT_GE(two_hop, one_hop);
  EXPECT_LE(two_hop, 1.7);
}

TEST(Topology, AccessLatencyAddsHops) {
  const Topology t = Topology::quad_opteron();
  const sim::Time local = t.access_latency(0, 0);
  const sim::Time remote1 = t.access_latency(0, 1);
  const sim::Time remote2 = t.access_latency(0, 3);
  EXPECT_EQ(local, t.node_spec(0).dram_latency);
  EXPECT_EQ(remote1, local + t.link_spec(0).hop_latency);
  EXPECT_EQ(remote2, local + 2 * t.link_spec(0).hop_latency);
}

TEST(Topology, DualNode) {
  const Topology t = Topology::dual_node(2);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_cores(), 4u);
  EXPECT_EQ(t.hops(0, 1), 1u);
}

TEST(Topology, NodeMaskHelpers) {
  EXPECT_EQ(node_mask_of(0), 1u);
  EXPECT_EQ(node_mask_of(3), 8u);
  EXPECT_TRUE(mask_contains(0b1010, 1));
  EXPECT_FALSE(mask_contains(0b1010, 2));
  const Topology t = Topology::quad_opteron();
  EXPECT_EQ(t.all_nodes_mask(), 0b1111u);
}

TEST(Topology, RejectsBadConfigs) {
  EXPECT_THROW(Topology::build(0, 1, {}, {}, {}), std::invalid_argument);
  EXPECT_THROW(Topology::build(2, 0, {}, {}, {}), std::invalid_argument);
  // Unconnected graph.
  EXPECT_THROW(Topology::build(3, 1, {}, {}, {{0, 1}}), std::invalid_argument);
  // Self link.
  EXPECT_THROW(Topology::build(2, 1, {}, {}, {{0, 0}}), std::invalid_argument);
  // Endpoint out of range.
  EXPECT_THROW(Topology::build(2, 1, {}, {}, {{0, 5}}), std::invalid_argument);
}

TEST(Topology, DescribeMentionsEveryNode) {
  const Topology t = Topology::quad_opteron();
  const std::string d = t.describe();
  EXPECT_NE(d.find("available: 4 nodes"), std::string::npos);
  EXPECT_NE(d.find("node 3 cpus:"), std::string::npos);
  EXPECT_NE(d.find("8192 MB"), std::string::npos);
}

TEST(Topology, CoreSpecPeak) {
  const Topology t = Topology::quad_opteron();
  EXPECT_DOUBLE_EQ(t.core_spec().peak_gflops(), 1.9 * 4);
}

TEST(Topology, LargerMeshRoutes) {
  // 8-node ring.
  std::vector<LinkSpec> links;
  for (NodeId n = 0; n < 8; ++n) links.push_back({n, static_cast<NodeId>((n + 1) % 8)});
  const Topology t = Topology::build(8, 2, {}, {}, std::move(links));
  EXPECT_EQ(t.hops(0, 4), 4u);
  EXPECT_EQ(t.hops(0, 7), 1u);
  EXPECT_EQ(t.hops(2, 6), 4u);
}

}  // namespace
}  // namespace numasim::topo
