// Tests for the simulated-thread runtime: Machine, Thread ops, Team
// scheduling, determinism, and multi-thread contention behaviour.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rt/team.hpp"

namespace numasim::rt {
namespace {

Machine::Config small_config() {
  Machine::Config cfg;
  cfg.backing = mem::Backing::kMaterialized;
  return cfg;
}

TEST(Machine, RunsMainThreadBody) {
  Machine m(small_config());
  bool ran = false;
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    EXPECT_EQ(th.core(), 0u);
    EXPECT_EQ(th.node(), 0u);
    co_await th.compute(1000);
    EXPECT_EQ(th.now(), m.engine().now());
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(Machine, SpawnRejectsBadCore) {
  Machine m(small_config());
  EXPECT_THROW(m.spawn(99, [](Thread&) -> sim::Task<void> { co_return; }),
               std::invalid_argument);
}

TEST(Thread, MmapTouchPlacesPagesLocally) {
  Machine m(small_config());
  m.run_main(5, [&](Thread& th) -> sim::Task<void> {  // core 5 -> node 1
    const vm::Vaddr a = co_await th.mmap(64 * mem::kPageSize);
    const kern::AccessResult r = co_await th.touch(a, 64 * mem::kPageSize);
    EXPECT_EQ(r.minor_faults, 64u);
    EXPECT_EQ(m.kernel().pages_on_node(m.pid(), a, 64 * mem::kPageSize, 1), 64u);
  });
}

TEST(Thread, MoveRangeMigrates) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    const std::uint64_t len = 100 * mem::kPageSize;
    const vm::Vaddr a = co_await th.mmap(len);
    co_await th.touch(a, len);
    const kern::SyscallResult moved = co_await th.move_range(a, len, 3);
    EXPECT_TRUE(moved.ok());
    EXPECT_EQ(moved.count(), 100);
    EXPECT_EQ(m.kernel().pages_on_node(m.pid(), a, len, 3), 100u);
  });
}

TEST(Thread, SparseTouchFaultsEveryPage) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    const std::uint64_t len = 33 * mem::kPageSize;
    const vm::Vaddr a = co_await th.mmap(len);
    const kern::AccessResult r = co_await th.touch_pages_sparse(a, len);
    EXPECT_EQ(r.minor_faults, 33u);
    EXPECT_EQ(r.pages, 33u);
  });
}

TEST(Thread, MigrateToCoreChangesNode) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    EXPECT_EQ(th.node(), 0u);
    co_await th.migrate_to_core(13);
    EXPECT_EQ(th.core(), 13u);
    EXPECT_EQ(th.node(), 3u);
    // First-touch now lands on node 3.
    const vm::Vaddr a = co_await th.mmap(4 * mem::kPageSize);
    co_await th.touch(a, 4 * mem::kPageSize);
    EXPECT_EQ(m.kernel().pages_on_node(m.pid(), a, 4 * mem::kPageSize, 3), 4u);
  });
}

TEST(Thread, ReadWriteRoundtrip) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    const vm::Vaddr a = co_await th.mmap(2 * mem::kPageSize);
    std::vector<std::byte> data(6000);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<std::byte>(i);
    EXPECT_EQ(co_await th.write(a + 100, data), 0);
    std::vector<std::byte> out(6000);
    EXPECT_EQ(co_await th.read(a + 100, out), 0);
    EXPECT_EQ(out, data);
  });
}

TEST(Engine2Threads, InterleaveDeterministically) {
  auto run_once = [] {
    Machine m(small_config());
    std::vector<std::pair<unsigned, sim::Time>> log;
    for (unsigned i = 0; i < 2; ++i) {
      m.spawn(i, [&log, i](Thread& th) -> sim::Task<void> {
        for (int step = 0; step < 5; ++step) {
          co_await th.compute(1000 + 300 * i);
          log.emplace_back(i, th.now());
        }
      });
    }
    m.run();
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bit-identical schedules
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(a[0].first, 0u);  // faster thread logs first
}

TEST(Team, ParallelForksAndJoins) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    Team team = Team::all_cores(m);
    EXPECT_EQ(team.size(), 16u);
    std::set<topo::CoreId> seen;
    std::vector<sim::Time> finishes;
    Team::WorkerFn worker = [&](unsigned tid, Thread& w) -> sim::Task<void> {
      seen.insert(w.core());
      co_await w.compute(1000 * (tid + 1));
      finishes.push_back(w.now());
    };  // named: GCC 12 coroutine workaround (see team.cpp)
    co_await team.parallel(th, std::move(worker));
    EXPECT_EQ(seen.size(), 16u);
    // Join advanced the caller past every worker.
    for (sim::Time f : finishes) EXPECT_GE(th.now(), f);
    EXPECT_GT(team.last_span(), 0u);
    EXPECT_GT(team.last_stats().get(sim::CostKind::kCompute), 0u);
  });
}

TEST(Team, StaticScheduleIsContiguousPartition) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    Team team(m, {0, 1, 2, 3});
    std::vector<int> owner(40, -1);
    Team::IndexFn body = [&](unsigned tid, Thread&, std::uint64_t i) -> sim::Task<void> {
      owner[i] = static_cast<int>(tid);
      co_return;
    };
    co_await team.parallel_for(th, 0, 40, Schedule::kStatic, std::move(body));
    for (int i = 0; i < 40; ++i) EXPECT_EQ(owner[i], i / 10);
  });
}

TEST(Team, DynamicScheduleCoversAllExactlyOnce) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    Team team(m, {0, 4, 8, 12});
    std::vector<unsigned> count(101, 0);
    Team::IndexFn body = [&](unsigned, Thread& w, std::uint64_t i) -> sim::Task<void> {
      ++count[i];
      co_await w.compute(100 + (i % 7) * 50);
    };
    co_await team.parallel_for(th, 0, 101, Schedule::kDynamic, std::move(body),
                               /*chunk=*/3);
    for (unsigned c : count) EXPECT_EQ(c, 1u);
  });
}

TEST(Team, NodeCoresSelectsOneNode) {
  Machine m(small_config());
  Team team = Team::node_cores(m, 2, 3);
  EXPECT_EQ(team.size(), 3u);
  for (topo::CoreId c : team.cores()) EXPECT_EQ(m.topology().node_of_core(c), 2u);
  EXPECT_THROW(Team::node_cores(m, 1, 5), std::invalid_argument);
}

TEST(Team, BarrierSynchronizesWorkers) {
  Machine m(small_config());
  m.run_main(0, [&](Thread& th) -> sim::Task<void> {
    Team team(m, {0, 1, 2});
    sim::Barrier bar(m.engine(), 3, m.cost().barrier_phase);
    std::vector<sim::Time> after(3);
    Team::WorkerFn worker = [&](unsigned tid, Thread& w) -> sim::Task<void> {
      co_await w.compute(500 * (tid + 1));
      co_await w.barrier(bar);
      after[tid] = w.now();
    };
    co_await team.parallel(th, std::move(worker));
    EXPECT_EQ(after[0], after[1]);
    EXPECT_EQ(after[1], after[2]);
  });
}

// The Fig. 7 mechanism in miniature: 4 threads migrating disjoint chunks of
// a large buffer finish faster than 1 thread migrating it all, but nowhere
// near 4x (page-table lock serializes control).
TEST(Contention, ParallelMovePagesScalesSublinearly) {
  auto run = [](unsigned nthreads) {
    Machine m(small_config());
    sim::Time span = 0;
    m.run_main(0, [&](Thread& th) -> sim::Task<void> {
      const std::uint64_t npages = 4096;
      const std::uint64_t len = npages * mem::kPageSize;
      const vm::Vaddr a = co_await th.mmap(len, vm::Prot::kReadWrite,
                                           vm::MemPolicy::bind(1));  // node 0
      co_await th.touch(a, len);
      Team team = Team::node_cores(m, 1, nthreads);
      const std::uint64_t per = len / nthreads;
      Team::WorkerFn worker = [&](unsigned tid, Thread& w) -> sim::Task<void> {
        co_await w.move_range(a + tid * per, per, 1);
      };
      co_await team.parallel(th, std::move(worker));
      span = team.last_span();
      EXPECT_EQ(m.kernel().pages_on_node(m.pid(), a, len, 1), npages);
    });
    return span;
  };
  const sim::Time t1 = run(1);
  const sim::Time t4 = run(4);
  EXPECT_LT(t4, t1);          // some speedup...
  EXPECT_GT(t4, t1 / 4);      // ...but far from linear
}

TEST(Contention, SharedLinkSlowsConcurrentStreams) {
  // Two remote readers crossing the same HT link take longer per byte than
  // one; aggregate throughput is capped by the link.
  auto run = [](unsigned nthreads) {
    Machine m(small_config());
    sim::Time span = 0;
    m.run_main(0, [&](Thread& th) -> sim::Task<void> {
      const std::uint64_t len = 4096 * mem::kPageSize;  // 16 MiB on node 0
      const vm::Vaddr a = co_await th.mmap(len, vm::Prot::kReadWrite,
                                           vm::MemPolicy::bind(1));
      co_await th.touch(a, len);
      Team team = Team::node_cores(m, 1, nthreads);  // readers on node 1
      const std::uint64_t per = len / nthreads;
      Team::WorkerFn worker = [&](unsigned tid, Thread& w) -> sim::Task<void> {
        co_await w.touch(a + tid * per, per, vm::Prot::kRead);
      };
      co_await team.parallel(th, std::move(worker));
      span = team.last_span();
    });
    return span;
  };
  const sim::Time t1 = run(1);
  const sim::Time t2 = run(2);
  // Each thread reads half the bytes, so with no contention t2 would be
  // ~t1/2; the shared link keeps it above that.
  EXPECT_LT(t2, t1);
  EXPECT_GT(t2, t1 / 2);
}

TEST(Machine, ThreadExceptionPropagates) {
  Machine m(small_config());
  m.spawn(0, [](Thread& th) -> sim::Task<void> {
    co_await th.compute(10);
    throw std::logic_error{"worker failed"};
  });
  EXPECT_THROW(m.run(), std::logic_error);
}

}  // namespace
}  // namespace numasim::rt
