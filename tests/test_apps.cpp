// Integration tests for the workload applications: LU numeric correctness
// under migration, and the qualitative shapes the paper reports.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/blas1_sweep.hpp"
#include "apps/lu.hpp"
#include "apps/matmul_batch.hpp"

namespace numasim::apps {
namespace {

double test_fill(std::uint64_t r, std::uint64_t c) {
  if (r == c) return 96.0;
  return std::sin(static_cast<double>(r * 31 + c * 17)) * 0.8;
}

/// Host-side unblocked LU (no pivoting) for reference.
std::vector<double> host_lu(std::vector<double> a, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) {
    for (std::uint64_t i = k + 1; i < n; ++i) {
      a[i * n + k] /= a[k * n + k];
      for (std::uint64_t j = k + 1; j < n; ++j)
        a[i * n + j] -= a[i * n + k] * a[k * n + j];
    }
  }
  return a;
}

TEST(LuFactorization, NumericallyCorrectStatic) {
  rt::Machine m;
  LuConfig cfg;
  cfg.n = 64;
  cfg.bs = 16;
  cfg.next_touch = false;
  cfg.blas.numeric = true;
  cfg.fill = test_fill;
  rt::Team team = rt::Team::all_cores(m);
  LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });

  std::vector<double> ref(64 * 64);
  for (std::uint64_t r = 0; r < 64; ++r)
    for (std::uint64_t c = 0; c < 64; ++c) ref[r * 64 + c] = test_fill(r, c);
  ref = host_lu(std::move(ref), 64);

  const auto got = blas::dump_matrix(m, lu.matrix());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], ref[i], 1e-6 * (1.0 + std::abs(ref[i]))) << "at " << i;
}

TEST(LuFactorization, NumericallyCorrectWithNextTouchMigration) {
  // Same factorization while next-touch migrates pages underneath —
  // migration must be invisible to the numerics.
  rt::Machine m;
  LuConfig cfg;
  cfg.n = 64;
  cfg.bs = 16;
  cfg.next_touch = true;
  cfg.blas.numeric = true;
  cfg.fill = test_fill;
  rt::Team team = rt::Team::all_cores(m);
  LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });
  EXPECT_GT(lu.result().madvise_calls, 0u);

  std::vector<double> ref(64 * 64);
  for (std::uint64_t r = 0; r < 64; ++r)
    for (std::uint64_t c = 0; c < 64; ++c) ref[r * 64 + c] = test_fill(r, c);
  ref = host_lu(std::move(ref), 64);

  const auto got = blas::dump_matrix(m, lu.matrix());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_NEAR(got[i], ref[i], 1e-6 * (1.0 + std::abs(ref[i]))) << "at " << i;
}

TEST(LuFactorization, RejectsBadBlocking) {
  rt::Machine m;
  rt::Team team = rt::Team::all_cores(m);
  LuConfig cfg;
  cfg.n = 100;
  cfg.bs = 32;  // does not divide
  EXPECT_THROW(LuFactorization(m, team, cfg), std::invalid_argument);
}

TEST(LuFactorization, NextTouchMigratesDuringFactorization) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  LuConfig cfg;
  cfg.n = 2048;
  cfg.bs = 512;
  cfg.next_touch = true;
  rt::Team team = rt::Team::all_cores(m);
  LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });
  EXPECT_EQ(lu.result().madvise_calls, 4u);
  EXPECT_GT(lu.result().nexttouch_migrations, 0u);
  EXPECT_GT(lu.result().factor_time, 0u);
}

// Fig. 8's crossover as a test: out-of-cache matrices benefit from kernel
// next-touch; cache-resident ones don't.
TEST(MatmulBatch, NextTouchWinsAboveCacheThreshold) {
  auto run = [](std::uint64_t n, MatmulBatchConfig::Mode mode) {
    rt::Machine::Config mc;
    mc.backing = mem::Backing::kPhantom;
    rt::Machine m(mc);
    rt::Team team = rt::Team::all_cores(m);
    MatmulBatchConfig cfg;
    cfg.n = n;
    cfg.mode = mode;
    MatmulBatch app(m, team, cfg);
    m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
    return app.result();
  };

  // 1024^2 doubles: far above L3 -> next-touch should clearly win.
  const auto big_static = run(1024, MatmulBatchConfig::Mode::kStatic);
  const auto big_nt = run(1024, MatmulBatchConfig::Mode::kKernelNextTouch);
  EXPECT_GT(big_nt.pages_migrated, 0u);
  EXPECT_LT(big_nt.compute_time, big_static.compute_time);

  // 128^2: cache-resident compute; migration is pure overhead.
  const auto small_static = run(128, MatmulBatchConfig::Mode::kStatic);
  const auto small_nt = run(128, MatmulBatchConfig::Mode::kKernelNextTouch);
  EXPECT_GE(small_nt.compute_time, small_static.compute_time);
}

TEST(MatmulBatch, UserNextTouchCostsMoreAtSmallGranularity) {
  // Paper Sec. 4.5: the user-space implementation's overhead (signal
  // round-trip, two mprotect shootdowns, move_pages base cost) "makes it
  // unusable for small granularities". At n=64 the multiply itself is cheap,
  // so the migration machinery dominates the span.
  auto run = [](MatmulBatchConfig::Mode mode) {
    rt::Machine::Config mc;
    mc.backing = mem::Backing::kPhantom;
    rt::Machine m(mc);
    rt::Team team = rt::Team::all_cores(m);
    MatmulBatchConfig cfg;
    cfg.n = 64;
    cfg.mode = mode;
    MatmulBatch app(m, team, cfg);
    m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
    return app.result();
  };
  const auto kernel_nt = run(MatmulBatchConfig::Mode::kKernelNextTouch);
  const auto user_nt = run(MatmulBatchConfig::Mode::kUserNextTouch);
  EXPECT_GT(kernel_nt.pages_migrated, 0u);
  EXPECT_GT(user_nt.pages_migrated, 0u);
  EXPECT_GT(user_nt.compute_time, kernel_nt.compute_time);
}

// The paper's Sec. 4.5 BLAS1 observation: with few passes, migration never
// pays off; with many passes, it eventually does.
TEST(Blas1Sweep, MigrationDoesNotPayForFewPasses) {
  auto run = [](Blas1Config::Mode mode, unsigned passes) {
    rt::Machine::Config mc;
    mc.backing = mem::Backing::kPhantom;
    rt::Machine m(mc);
    Blas1Config cfg;
    cfg.n = 1u << 19;  // 4 MiB vectors
    cfg.passes = passes;
    cfg.mode = mode;
    Blas1Sweep app(m, cfg);
    // Worker on node 1.
    m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
      co_await app.run(th, /*worker_core=*/4);
    });
    return app.result().total_time;
  };

  EXPECT_LT(run(Blas1Config::Mode::kRemote, 2),
            run(Blas1Config::Mode::kSyncMigrate, 2));
  EXPECT_GT(run(Blas1Config::Mode::kRemote, 64),
            run(Blas1Config::Mode::kSyncMigrate, 64));
  // Lazy is never worse than sync for equal passes (touch-driven copies).
  EXPECT_LE(run(Blas1Config::Mode::kLazyMigrate, 2),
            run(Blas1Config::Mode::kSyncMigrate, 2));
}

}  // namespace
}  // namespace numasim::apps
