// Tests for the kernel event-log trace subsystem.
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  EventLogTest()
      : topo_(topo::Topology::quad_opteron()), k_(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom}) {
    pid_ = k_.create_process();
    k_.set_event_log(&log_);
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  topo::Topology topo_;
  kern::Kernel k_;
  EventLog log_;
  Pid pid_ = 0;
};

TEST_F(EventLogTest, RecordsFirstTouchFaults) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 4 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(log_.count(EventType::kMinorFault), 4u);
  const Event& e = log_.events().front();
  EXPECT_EQ(e.type, EventType::kMinorFault);
  EXPECT_EQ(e.to, 0u);
  EXPECT_EQ(e.vpn, vm::vpn_of(a));
}

TEST_F(EventLogTest, RecordsNextTouchLifecycle) {
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k_.access(t0, a, len, vm::Prot::kWrite, 3500.0);
  k_.sys_madvise(t0, a, len, Advice::kMigrateOnNextTouch);
  EXPECT_EQ(log_.count(EventType::kNextTouchMark), 1u);

  ThreadCtx t1 = ctx_on(4);
  t1.clock = t0.clock;
  k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(log_.count(EventType::kNextTouchMigrate), 8u);
  bool found = false;
  for (const Event& e : log_.events()) {
    if (e.type == EventType::kNextTouchMigrate) {
      EXPECT_EQ(e.from, 0u);
      EXPECT_EQ(e.to, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EventLogTest, RecordsMovePagesAndSignals) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);

  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < len; i += mem::kPageSize) pages.push_back(a + i);
  std::vector<topo::NodeId> nodes(4, 2);
  std::vector<int> status(4, 0);
  k_.sys_move_pages(t, pages, nodes, status);
  EXPECT_EQ(log_.count(EventType::kMovePages), 1u);  // one batch

  k_.sys_mprotect(t, a, len, vm::Prot::kNone);
  k_.set_sigsegv_handler(pid_, [&](ThreadCtx& ht, const SigInfo&) {
    k_.sys_mprotect(ht, a, len, vm::Prot::kReadWrite);
  });
  k_.access(t, a, 8, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(log_.count(EventType::kSigsegv), 1u);
}

TEST_F(EventLogTest, RenderAndCsv) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 2 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, 2 * mem::kPageSize, vm::Prot::kWrite, 3500.0);

  const std::string text = log_.render();
  EXPECT_NE(text.find("minor-fault"), std::string::npos);
  EXPECT_NE(text.find("to=N0"), std::string::npos);

  const std::string csv = log_.to_csv();
  EXPECT_NE(csv.find("time_ns,tid,type,vpn,pages,from,to"), std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 3);
}

TEST_F(EventLogTest, BoundedCapacityDropsOldest) {
  EventLog small(4);
  k_.set_event_log(&small);
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 10 * mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, 10 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(small.events().size(), 4u);
  EXPECT_EQ(small.dropped(), 6u);
  EXPECT_NE(small.render().find("older events dropped"), std::string::npos);
  small.clear();
  EXPECT_TRUE(small.events().empty());
  EXPECT_EQ(small.dropped(), 0u);
}

TEST_F(EventLogTest, DetachedLogRecordsNothing) {
  k_.set_event_log(nullptr);
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, mem::kPageSize, vm::Prot::kReadWrite);
  k_.access(t, a, mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_TRUE(log_.events().empty());
}

}  // namespace
}  // namespace numasim::kern
