// Unit tests for physical frames and the per-node allocator.
#include <gtest/gtest.h>

#include <cstring>

#include "mem/phys.hpp"
#include "topo/topology.hpp"

namespace numasim::mem {
namespace {

class PhysMemTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::Topology::quad_opteron();
};

TEST_F(PhysMemTest, AllocOnExactNode) {
  PhysMem pm(topo_, Backing::kPhantom, 16);
  const FrameId f = pm.alloc_on(2);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(pm.node_of(f), 2u);
  EXPECT_EQ(pm.used_frames(2), 1u);
  EXPECT_EQ(pm.used_frames(0), 0u);
  pm.free(f);
  EXPECT_EQ(pm.used_frames(2), 0u);
  EXPECT_EQ(pm.total_frees(), 1u);
}

TEST_F(PhysMemTest, CapacityEnforced) {
  PhysMem pm(topo_, Backing::kPhantom, 2);
  EXPECT_NE(pm.alloc_on(0), kInvalidFrame);
  EXPECT_NE(pm.alloc_on(0), kInvalidFrame);
  EXPECT_EQ(pm.alloc_on(0), kInvalidFrame);
  EXPECT_EQ(pm.free_frames(0), 0u);
}

TEST_F(PhysMemTest, FallbackPrefersNearNodes) {
  PhysMem pm(topo_, Backing::kPhantom, 1);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 0u);
  // Node 0 full: next nearest are 1-hop neighbours (1 and 2), id order.
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 1u);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 2u);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 3u);
  EXPECT_EQ(pm.alloc_near(0), kInvalidFrame);  // machine full
  EXPECT_EQ(pm.fallback_allocs(), 3u);
}

TEST_F(PhysMemTest, FreeListReusesFrames) {
  PhysMem pm(topo_, Backing::kPhantom, 4);
  const FrameId a = pm.alloc_on(1);
  pm.free(a);
  const FrameId b = pm.alloc_on(1);
  EXPECT_EQ(a, b);
}

TEST_F(PhysMemTest, MaterializedFramesHaveData) {
  PhysMem pm(topo_, Backing::kMaterialized, 4);
  const FrameId f = pm.alloc_on(0);
  ASSERT_NE(pm.data(f), nullptr);
  std::memset(pm.data(f), 0xAB, kPageSize);
  EXPECT_EQ(static_cast<unsigned char>(pm.data(f)[4095]), 0xABu);
}

TEST_F(PhysMemTest, PhantomFramesHaveNoData) {
  PhysMem pm(topo_, Backing::kPhantom, 4);
  const FrameId f = pm.alloc_on(0);
  EXPECT_EQ(pm.data(f), nullptr);
}

TEST_F(PhysMemTest, CapacityFromTopologyWhenUnclamped) {
  PhysMem pm(topo_, Backing::kPhantom);
  EXPECT_EQ(pm.capacity_frames(0), (8ull << 30) >> kPageShift);
}

TEST_F(PhysMemTest, CountersTrackTotals) {
  PhysMem pm(topo_, Backing::kPhantom, 8);
  std::vector<FrameId> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(pm.alloc_near(3));
  EXPECT_EQ(pm.total_used_frames(), 5u);
  EXPECT_EQ(pm.total_allocs(), 5u);
  for (FrameId f : frames) pm.free(f);
  EXPECT_EQ(pm.total_used_frames(), 0u);
}

TEST_F(PhysMemTest, MinWatermarkReservesFramesForReserveAllocs) {
  PhysMem pm(topo_, Backing::kPhantom, 8);
  pm.set_node_watermarks(0, /*min_frames=*/2, /*low_frames=*/4);
  std::vector<FrameId> frames;
  for (int i = 0; i < 6; ++i) {
    const FrameId f = pm.alloc_on(0);
    ASSERT_NE(f, kInvalidFrame);
    frames.push_back(f);
  }
  // 2 frames left, all reserve: normal allocations fail and are counted...
  EXPECT_EQ(pm.alloc_on(0), kInvalidFrame);
  EXPECT_EQ(pm.watermark_blocks(0), 1u);
  // ...while reserve allocations dip into the pool until truly empty.
  EXPECT_NE(pm.alloc_on(0, /*use_reserve=*/true), kInvalidFrame);
  EXPECT_NE(pm.alloc_on(0, /*use_reserve=*/true), kInvalidFrame);
  EXPECT_EQ(pm.alloc_on(0, /*use_reserve=*/true), kInvalidFrame);
  EXPECT_EQ(pm.reserve_allocs(0), 2u);
}

TEST_F(PhysMemTest, LowWatermarkFlagsPressure) {
  PhysMem pm(topo_, Backing::kPhantom, 8);
  pm.set_watermarks(/*min_frac=*/0.125, /*low_frac=*/0.5);  // min 1, low 4
  EXPECT_EQ(pm.min_watermark(1), 1u);
  EXPECT_EQ(pm.low_watermark(1), 4u);
  EXPECT_FALSE(pm.under_pressure(1));
  for (int i = 0; i < 5; ++i) pm.alloc_on(1);
  EXPECT_TRUE(pm.under_pressure(1));  // 3 free < low of 4
}

TEST_F(PhysMemTest, ZonelistWalkSkipsNodesAtTheirWatermark) {
  PhysMem pm(topo_, Backing::kPhantom, 4);
  pm.set_node_watermarks(0, /*min_frames=*/4, /*low_frames=*/4);
  // Node 0 is entirely reserve: a preferred-node alloc falls through to the
  // next node in hop order instead of failing.
  const FrameId f = pm.alloc_near(0);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(pm.node_of(f), 1u);
}

TEST_F(PhysMemTest, CapacityCapExhaustsAndRestores) {
  PhysMem pm(topo_, Backing::kPhantom, 8);
  std::vector<FrameId> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(pm.alloc_on(2));
  pm.set_node_capacity(2, 2);  // below the live count of 4
  EXPECT_EQ(pm.free_frames(2), 0u);  // clamped, no underflow
  EXPECT_EQ(pm.alloc_on(2), kInvalidFrame);
  for (FrameId f : frames) pm.free(f);  // frames above the cap stay valid
  EXPECT_EQ(pm.used_frames(2), 0u);
  pm.set_node_capacity(2, 100);  // clamped to the construction-time size
  EXPECT_EQ(pm.capacity_frames(2), 8u);
  EXPECT_NE(pm.alloc_on(2), kInvalidFrame);
}

}  // namespace
}  // namespace numasim::mem
