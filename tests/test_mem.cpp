// Unit tests for physical frames and the per-node allocator.
#include <gtest/gtest.h>

#include <cstring>

#include "mem/phys.hpp"
#include "topo/topology.hpp"

namespace numasim::mem {
namespace {

class PhysMemTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::Topology::quad_opteron();
};

TEST_F(PhysMemTest, AllocOnExactNode) {
  PhysMem pm(topo_, Backing::kPhantom, 16);
  const FrameId f = pm.alloc_on(2);
  ASSERT_NE(f, kInvalidFrame);
  EXPECT_EQ(pm.node_of(f), 2u);
  EXPECT_EQ(pm.used_frames(2), 1u);
  EXPECT_EQ(pm.used_frames(0), 0u);
  pm.free(f);
  EXPECT_EQ(pm.used_frames(2), 0u);
  EXPECT_EQ(pm.total_frees(), 1u);
}

TEST_F(PhysMemTest, CapacityEnforced) {
  PhysMem pm(topo_, Backing::kPhantom, 2);
  EXPECT_NE(pm.alloc_on(0), kInvalidFrame);
  EXPECT_NE(pm.alloc_on(0), kInvalidFrame);
  EXPECT_EQ(pm.alloc_on(0), kInvalidFrame);
  EXPECT_EQ(pm.free_frames(0), 0u);
}

TEST_F(PhysMemTest, FallbackPrefersNearNodes) {
  PhysMem pm(topo_, Backing::kPhantom, 1);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 0u);
  // Node 0 full: next nearest are 1-hop neighbours (1 and 2), id order.
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 1u);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 2u);
  EXPECT_EQ(pm.node_of(pm.alloc_near(0)), 3u);
  EXPECT_EQ(pm.alloc_near(0), kInvalidFrame);  // machine full
  EXPECT_EQ(pm.fallback_allocs(), 3u);
}

TEST_F(PhysMemTest, FreeListReusesFrames) {
  PhysMem pm(topo_, Backing::kPhantom, 4);
  const FrameId a = pm.alloc_on(1);
  pm.free(a);
  const FrameId b = pm.alloc_on(1);
  EXPECT_EQ(a, b);
}

TEST_F(PhysMemTest, MaterializedFramesHaveData) {
  PhysMem pm(topo_, Backing::kMaterialized, 4);
  const FrameId f = pm.alloc_on(0);
  ASSERT_NE(pm.data(f), nullptr);
  std::memset(pm.data(f), 0xAB, kPageSize);
  EXPECT_EQ(static_cast<unsigned char>(pm.data(f)[4095]), 0xABu);
}

TEST_F(PhysMemTest, PhantomFramesHaveNoData) {
  PhysMem pm(topo_, Backing::kPhantom, 4);
  const FrameId f = pm.alloc_on(0);
  EXPECT_EQ(pm.data(f), nullptr);
}

TEST_F(PhysMemTest, CapacityFromTopologyWhenUnclamped) {
  PhysMem pm(topo_, Backing::kPhantom);
  EXPECT_EQ(pm.capacity_frames(0), (8ull << 30) >> kPageShift);
}

TEST_F(PhysMemTest, CountersTrackTotals) {
  PhysMem pm(topo_, Backing::kPhantom, 8);
  std::vector<FrameId> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(pm.alloc_near(3));
  EXPECT_EQ(pm.total_used_frames(), 5u);
  EXPECT_EQ(pm.total_allocs(), 5u);
  for (FrameId f : frames) pm.free(f);
  EXPECT_EQ(pm.total_used_frames(), 0u);
}

}  // namespace
}  // namespace numasim::mem
