// Tests for the textual topology spec parser.
#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace numasim::topo {
namespace {

TEST(TopoSpec, RingShape) {
  const Topology t = Topology::from_spec("nodes=8 cores=2 shape=ring");
  EXPECT_EQ(t.num_nodes(), 8u);
  EXPECT_EQ(t.num_cores(), 16u);
  EXPECT_EQ(t.num_links(), 8u);
  EXPECT_EQ(t.hops(0, 4), 4u);
  EXPECT_EQ(t.hops(0, 7), 1u);
}

TEST(TopoSpec, LineShape) {
  const Topology t = Topology::from_spec("nodes=4 cores=1 shape=line");
  EXPECT_EQ(t.num_links(), 3u);
  EXPECT_EQ(t.hops(0, 3), 3u);
}

TEST(TopoSpec, MeshShape) {
  const Topology t = Topology::from_spec("nodes=5 cores=1 shape=mesh");
  EXPECT_EQ(t.num_links(), 10u);
  for (NodeId a = 0; a < 5; ++a)
    for (NodeId b = 0; b < 5; ++b)
      if (a != b) {
        EXPECT_EQ(t.hops(a, b), 1u);
      }
}

TEST(TopoSpec, StarShape) {
  const Topology t = Topology::from_spec("nodes=5 cores=1 shape=star");
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_EQ(t.hops(1, 4), 2u);
  EXPECT_EQ(t.hops(0, 4), 1u);
}

TEST(TopoSpec, TwoNodeRingHasOneLink) {
  const Topology t = Topology::from_spec("nodes=2 cores=4 shape=ring");
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.hops(0, 1), 1u);
}

TEST(TopoSpec, NumericOverrides) {
  const Topology t = Topology::from_spec(
      "nodes=2 cores=1 link_bw=3000 hop_ns=25 dram_bw=8000 dram_ns=60 "
      "l3_mb=4 mem_gb=16 ghz=2.5 flops_per_cycle=8");
  EXPECT_DOUBLE_EQ(t.link_spec(0).bytes_per_us, 3000.0);
  EXPECT_EQ(t.link_spec(0).hop_latency, 25u);
  EXPECT_DOUBLE_EQ(t.node_spec(0).dram_bytes_per_us, 8000.0);
  EXPECT_EQ(t.node_spec(0).dram_latency, 60u);
  EXPECT_EQ(t.node_spec(0).l3_bytes, 4ull << 20);
  EXPECT_EQ(t.node_spec(0).dram_capacity_bytes, 16ull << 30);
  EXPECT_DOUBLE_EQ(t.core_spec().peak_gflops(), 20.0);
}

TEST(TopoSpec, Rejections) {
  EXPECT_THROW(Topology::from_spec("cores=2"), std::invalid_argument);
  EXPECT_THROW(Topology::from_spec("nodes=2"), std::invalid_argument);
  EXPECT_THROW(Topology::from_spec("nodes=2 cores=1 shape=torus"),
               std::invalid_argument);
  EXPECT_THROW(Topology::from_spec("nodes=2 cores=1 bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(Topology::from_spec("nodes=2 cores=1 ghz=fast"),
               std::invalid_argument);
  EXPECT_THROW(Topology::from_spec("nodes=2 cores=1 shape"),
               std::invalid_argument);
}

TEST(TopoSpec, DefaultsMatchNodeSpec) {
  const Topology t = Topology::from_spec("nodes=4 cores=4");
  const NodeSpec d;
  EXPECT_DOUBLE_EQ(t.node_spec(0).dram_bytes_per_us, d.dram_bytes_per_us);
  EXPECT_EQ(t.node_spec(0).dram_latency, d.dram_latency);
}

}  // namespace
}  // namespace numasim::topo
