// Tests for automatic NUMA balancing: the kernel half (scan clock, hint
// faults, two-reference promotion, decaying task stats) and the scheduler
// half (sched::Balancer task placement), plus the subsystem's cardinal
// invariant — balancing off is event-for-event identical to the baseline.
#include <gtest/gtest.h>

#include <vector>

#include "kern/event_log.hpp"
#include "rt/team.hpp"
#include "sched/balancer.hpp"

namespace numasim {
namespace {

using kern::Kernel;
using kern::KernelConfig;
using kern::ThreadCtx;

KernelConfig balanced_config(sim::Time scan_period = sim::microseconds(100)) {
  KernelConfig cfg;
  cfg.topology = topo::Topology::quad_opteron();
  cfg.backing = mem::Backing::kPhantom;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = scan_period;
  cfg.numa_balancing.scan_size_pages = 1024;
  return cfg;
}

ThreadCtx ctx_on(kern::Pid pid, topo::CoreId core, kern::ThreadId tid = 0) {
  ThreadCtx t;
  t.pid = pid;
  t.core = core;
  t.tid = tid;
  return t;
}

// --- scan clock --------------------------------------------------------------

TEST(NumabScan, ClockArmsThenFiresOncePerPeriod) {
  const sim::Time period = sim::microseconds(100);
  Kernel k(balanced_config(period));
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0);

  const std::uint64_t len = 32 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);

  // First access arms the clock: populate, but no scan, no hint faults.
  k.access(t, a, len, vm::Prot::kWrite, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 0u);
  EXPECT_EQ(k.stats().numab_hint_faults, 0u);

  // Before the period elapses: still nothing.
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 0u);

  // Past the period: exactly one scan window; the same access then takes a
  // hint fault on every page the window marked (all local here).
  t.clock += period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 1u);
  EXPECT_EQ(k.stats().numab_pages_scanned, 32u);
  EXPECT_EQ(k.stats().numab_hint_faults, 32u);
  EXPECT_EQ(k.stats().numab_hint_faults_local, 32u);
  // Local faults never queue promotions.
  EXPECT_EQ(k.stats().numab_pages_promoted, 0u);

  // Immediately again: the window has been consumed, clock not yet due.
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 1u);

  t.clock += period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 2u);
  k.validate(pid);
}

TEST(NumabScan, DisabledMeansNoScansNoCounters) {
  KernelConfig cfg = balanced_config();
  cfg.numa_balancing.enabled = false;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 0.0);
  t.clock += sim::microseconds(10'000);
  k.access(t, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_scans, 0u);
  EXPECT_EQ(k.stats().numab_hint_faults, 0u);
}

// --- two-reference confirmation ----------------------------------------------

TEST(NumabPromotion, SecondRemoteReferenceConfirms) {
  const sim::Time period = sim::microseconds(100);
  Kernel k(balanced_config(period));
  const kern::Pid pid = k.create_process();
  ThreadCtx t0 = ctx_on(pid, 0, /*tid=*/0);  // node 0
  ThreadCtx t4 = ctx_on(pid, 4, /*tid=*/1);  // node 1

  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k.access(t0, a, len, vm::Prot::kWrite, 0.0);  // first-touch node 0, arms
  ASSERT_EQ(k.pages_on_node(pid, a, len, 0), 16u);

  // Scan window 1, then a remote access: every fault defers (first
  // reference from node 1).
  t4.clock = t0.clock + period;
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_hint_faults, 16u);
  EXPECT_EQ(k.stats().numab_promotions_deferred, 16u);
  EXPECT_EQ(k.stats().numab_pages_promoted, 0u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 0), 16u);

  // Scan window 2, remote access again: confirmed, promoted via kmigrated.
  t4.clock += period;
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_pages_promoted, 16u);
  EXPECT_GT(k.stats().kmigrated_pages, 0u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 1), 16u);
  k.validate(pid);
}

TEST(NumabPromotion, SingleReferenceModePromotesImmediately) {
  const sim::Time period = sim::microseconds(100);
  KernelConfig cfg = balanced_config(period);
  cfg.numa_balancing.two_reference = false;
  Kernel k(cfg);
  const kern::Pid pid = k.create_process();
  ThreadCtx t0 = ctx_on(pid, 0, 0);
  ThreadCtx t4 = ctx_on(pid, 4, 1);

  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t0, len, vm::Prot::kReadWrite);
  k.access(t0, a, len, vm::Prot::kWrite, 0.0);

  t4.clock = t0.clock + period;
  k.access(t4, a, len, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().numab_promotions_deferred, 0u);
  EXPECT_EQ(k.stats().numab_pages_promoted, 8u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 1), 8u);
}

// --- decaying task stats ------------------------------------------------------

TEST(NumabStats, FaultScoresHalvePerScanPeriod) {
  const sim::Time period = sim::microseconds(100);
  Kernel k(balanced_config(period));
  const kern::Pid pid = k.create_process();
  ThreadCtx t = ctx_on(pid, 0, /*tid=*/7);

  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 0.0);
  t.clock += period;
  k.access(t, a, len, vm::Prot::kRead, 0.0);  // 8 hint faults on node 0

  const std::vector<double> now = k.numab_task_faults(pid, 7, t.clock);
  ASSERT_EQ(now.size(), 4u);
  EXPECT_DOUBLE_EQ(now[0], 8.0);

  // Two full periods later the mass has halved twice (exact in doubles).
  const std::vector<double> later =
      k.numab_task_faults(pid, 7, t.clock + 2 * period);
  EXPECT_DOUBLE_EQ(later[0], 2.0);
  EXPECT_DOUBLE_EQ(later[1], 0.0);

  // Unknown task: no stats, no preferred node.
  EXPECT_TRUE(k.numab_task_faults(pid, 99, t.clock).empty());
  EXPECT_EQ(k.numab_preferred_node(pid, 99, t.clock), topo::kInvalidNode);
  // Known task: all mass on node 0, comfortably past hot_threshold.
  EXPECT_EQ(k.numab_preferred_node(pid, 7, t.clock), 0u);
}

// --- balancer task placement --------------------------------------------------

TEST(Balancer, InterchangeSwapsCrossBoundPair) {
  KernelConfig cfg;
  cfg.topology = topo::Topology::quad_opteron();
  cfg.backing = mem::Backing::kPhantom;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(50);
  cfg.numa_balancing.scan_size_pages = 1024;
  cfg.numa_balancing.balance_period = sim::microseconds(100);
  cfg.numa_balancing.policy = kern::NumaPolicy::kInterchange;
  rt::Machine m(cfg);
  sched::Balancer bal(m);

  // Two workers with deliberately cross-bound working sets: the thread on
  // node 0 streams node-1 memory and vice versa. The interchange policy
  // should find the pair and swap their cores.
  const std::uint64_t len = 32 * mem::kPageSize;
  std::vector<topo::CoreId> final_core(2, 0);
  m.run_main(15, [&](rt::Thread& th) -> sim::Task<void> {
    sim::Barrier bar(m.engine(), 2, m.cost().barrier_phase);
    rt::Team team(m, {0, 4});
    std::vector<rt::Thread*> slots(2, nullptr);
    rt::Team::WorkerFn worker = [&](unsigned tid,
                                    rt::Thread& w) -> sim::Task<void> {
      const topo::NodeId other = tid == 0 ? 1u : 0u;
      const vm::Vaddr buf = co_await w.mmap(
          len, vm::Prot::kReadWrite,
          vm::MemPolicy::bind(topo::node_mask_of(other)));
      slots[tid] = &w;
      co_await w.barrier(bar);
      if (tid == 0)
        for (rt::Thread* s : slots) bal.add_thread(*s);
      for (unsigned it = 0; it < 6; ++it) {
        co_await w.touch(buf, len, vm::Prot::kRead);
        co_await w.compute(sim::microseconds(60));
        co_await bal.tick(w);
        co_await w.barrier(bar);
      }
      final_core[tid] = w.core();
    };
    co_await team.parallel(th, std::move(worker));
  });

  EXPECT_EQ(final_core[0], 4u);
  EXPECT_EQ(final_core[1], 0u);
  EXPECT_GE(bal.stats().swaps, 1u);
  EXPECT_GE(bal.stats().migrations, 2u);
  EXPECT_EQ(m.kernel().stats().numab_task_swaps, bal.stats().swaps);
  EXPECT_EQ(m.kernel().stats().numab_task_migrations, bal.stats().migrations);
}

TEST(Balancer, PreferredNodeFollowsMemory) {
  KernelConfig cfg;
  cfg.topology = topo::Topology::quad_opteron();
  cfg.backing = mem::Backing::kPhantom;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(50);
  cfg.numa_balancing.scan_size_pages = 1024;
  cfg.numa_balancing.balance_period = sim::microseconds(100);
  cfg.numa_balancing.policy = kern::NumaPolicy::kPreferredNode;
  rt::Machine m(cfg);
  sched::Balancer bal(m);

  topo::CoreId final_core = 0;
  topo::NodeId final_node = 0;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    bal.add_thread(th);
    const std::uint64_t len = 32 * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(2)));
    for (unsigned it = 0; it < 6; ++it) {
      co_await th.touch(buf, len, vm::Prot::kRead);
      co_await th.compute(sim::microseconds(60));
      co_await bal.tick(th);
    }
    final_core = th.core();
    final_node = th.node();
  });

  EXPECT_EQ(final_node, 2u);
  EXPECT_EQ(final_core, 8u);  // least-loaded = lowest-id core of node 2
  EXPECT_GE(m.kernel().stats().numab_task_migrations, 1u);
}

TEST(Balancer, PolicyNoneNeverMovesTasks) {
  KernelConfig cfg;
  cfg.topology = topo::Topology::quad_opteron();
  cfg.backing = mem::Backing::kPhantom;
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.policy = kern::NumaPolicy::kNone;
  rt::Machine m(cfg);
  sched::Balancer bal(m);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    bal.add_thread(th);
    const vm::Vaddr buf = co_await th.mmap(
        8 * mem::kPageSize, vm::Prot::kReadWrite,
        vm::MemPolicy::bind(topo::node_mask_of(3)));
    for (unsigned it = 0; it < 4; ++it) {
      co_await th.touch(buf, 8 * mem::kPageSize, vm::Prot::kRead);
      co_await th.compute(sim::microseconds(200));
      co_await bal.tick(th);
    }
    EXPECT_EQ(th.core(), 0u);
  });
  EXPECT_EQ(bal.stats().evaluations, 0u);
  EXPECT_EQ(m.kernel().stats().numab_task_migrations, 0u);
}

// --- off == baseline ----------------------------------------------------------

namespace equivalence {

/// A little workload exercising faults, migration, and multi-thread
/// interleaving; returns the final main-thread clock.
sim::Time run_workload(const KernelConfig& cfg, kern::EventLog* log) {
  rt::Machine m(cfg);
  if (log != nullptr) m.kernel().set_event_log(log);
  sim::Time final_clock = 0;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = 64 * mem::kPageSize;
    const vm::Vaddr a = co_await th.mmap(len);
    co_await th.touch(a, len);
    co_await th.move_range(a, len / 2, 2);
    rt::Team team(m, {4, 8});
    rt::Team::WorkerFn worker = [&](unsigned tid,
                                    rt::Thread& w) -> sim::Task<void> {
      co_await w.touch(a + tid * (len / 2), len / 2, vm::Prot::kRead);
      co_await w.madvise(a, len / 4, kern::Advice::kMigrateOnNextTouch);
      co_await w.touch(a, len / 4);
    };
    co_await team.parallel(th, std::move(worker));
    final_clock = th.now();
  });
  return final_clock;
}

}  // namespace equivalence

TEST(NumabOff, EventForEventIdenticalToBaseline) {
  KernelConfig base;
  base.topology = topo::Topology::quad_opteron();
  base.backing = mem::Backing::kPhantom;

  // Same machine with every balancing knob set but the subsystem disabled:
  // the config must be inert.
  KernelConfig off = base;
  off.numa_balancing.scan_period = sim::microseconds(10);
  off.numa_balancing.scan_size_pages = 4096;
  off.numa_balancing.two_reference = false;
  off.numa_balancing.policy = kern::NumaPolicy::kInterchange;
  ASSERT_FALSE(off.numa_balancing.enabled);

  kern::EventLog log_base, log_off;
  const sim::Time t_base = equivalence::run_workload(base, &log_base);
  const sim::Time t_off = equivalence::run_workload(off, &log_off);

  EXPECT_EQ(t_base, t_off);
  EXPECT_EQ(log_base.to_csv(), log_off.to_csv());
}

TEST(NumabOff, DisabledRunKeepsNumabCountersZero) {
  KernelConfig off;
  off.topology = topo::Topology::quad_opteron();
  off.backing = mem::Backing::kPhantom;
  off.numa_balancing.policy = kern::NumaPolicy::kPreferredNode;

  rt::Machine m(off);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const vm::Vaddr a = co_await th.mmap(16 * mem::kPageSize);
    co_await th.touch(a, 16 * mem::kPageSize);
    co_await th.compute(sim::microseconds(5000));
    co_await th.touch(a, 16 * mem::kPageSize, vm::Prot::kRead);
  });
  const kern::KernelStats& s = m.kernel().stats();
  EXPECT_EQ(s.numab_scans, 0u);
  EXPECT_EQ(s.numab_pages_scanned, 0u);
  EXPECT_EQ(s.numab_hint_faults, 0u);
  EXPECT_EQ(s.numab_pages_promoted, 0u);
  EXPECT_EQ(s.numab_task_migrations, 0u);
}

// --- lock-model and determinism ----------------------------------------------

TEST(NumabDeterminism, RangeLockPromotionIsDeterministic) {
  auto run = [](kern::KernelStats& out) -> sim::Time {
    KernelConfig cfg = balanced_config(sim::microseconds(50));
    cfg.lock_model = kern::LockModel::kRange;
    cfg.numa_balancing.two_reference = true;
    rt::Machine m(cfg);
    sim::Time final_clock = 0;
    m.run_main(4, [&](rt::Thread& th) -> sim::Task<void> {
      const std::uint64_t len = 64 * mem::kPageSize;
      const vm::Vaddr a = co_await th.mmap(
          len, vm::Prot::kReadWrite,
          vm::MemPolicy::bind(topo::node_mask_of(0)));
      for (unsigned it = 0; it < 8; ++it) {
        co_await th.touch(a, len, vm::Prot::kRead);
        co_await th.compute(sim::microseconds(60));
      }
      co_await th.kmigrated_drain();
      final_clock = th.now();
    });
    out = m.kernel().stats();
    return final_clock;
  };

  kern::KernelStats s1, s2;
  const sim::Time t1 = run(s1);
  const sim::Time t2 = run(s2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.numab_scans, s2.numab_scans);
  EXPECT_EQ(s1.numab_hint_faults, s2.numab_hint_faults);
  EXPECT_EQ(s1.numab_pages_promoted, s2.numab_pages_promoted);
  // Under kRange the promotion path works end to end: the node-1 thread's
  // repeated reads of node-0 memory pull the buffer over.
  EXPECT_GT(s1.numab_pages_promoted, 0u);
  EXPECT_EQ(s1.kmigrated_pages, s2.kmigrated_pages);
}

}  // namespace
}  // namespace numasim
