// Tests for the soft-TLB access fast path (kern/stlb.hpp): hit/miss
// accounting, cost identity against a cache-disabled kernel, generation
// invalidation at the mapping-mutation sites, the validate() descriptor
// audit, and the access() edge cases that guard the eligibility rules
// (zero-length accesses, mid-extent faults across chunk boundaries, and
// write reuse of already-dirty runs).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

KernelConfig config_with_stlb(const topo::Topology& topo, bool stlb) {
  KernelConfig cfg;
  cfg.topology = topo;
  cfg.backing = mem::Backing::kMaterialized;
  cfg.stlb = stlb;
  return cfg;
}

class StlbTest : public ::testing::Test {
 protected:
  StlbTest()
      : topo_(topo::Topology::quad_opteron()),
        k_(config_with_stlb(topo_, true)) {
    pid_ = k_.create_process("stlb");
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  topo::Topology topo_;
  Kernel k_;
  Pid pid_ = 0;
};

/// Two kernels differing only in cfg.stlb, driven in lockstep: the cache is
/// host-side memoization, so every simulated quantity must stay identical.
class StlbLockstep : public ::testing::Test {
 protected:
  StlbLockstep()
      : topo_(topo::Topology::quad_opteron()),
        on_(config_with_stlb(topo_, true)),
        off_(config_with_stlb(topo_, false)) {
    ton_.pid = on_.create_process("on");
    toff_.pid = off_.create_process("off");
  }

  topo::Topology topo_;
  Kernel on_, off_;
  ThreadCtx ton_, toff_;
};

TEST_F(StlbTest, LenZeroAccessTouchesNothing) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, 4 * mem::kPageSize, vm::Prot::kReadWrite);
  const sim::Time before = t.clock;
  const AccessResult r = k_.access(t, a, 0, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.pages, 0u);
  EXPECT_EQ(r.minor_faults, 0u);
  EXPECT_EQ(t.clock, before);
  // The early return precedes the cache: no hit, no miss, even when a
  // descriptor covering the address exists.
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kWrite, 3500.0);
  k_.access(t, a, 4 * mem::kPageSize, vm::Prot::kRead, 3500.0);
  const std::uint64_t hits = k_.stats().stlb_hits;
  const std::uint64_t misses = k_.stats().stlb_misses;
  const AccessResult r2 = k_.access(t, a, 0, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r2.pages, 0u);
  EXPECT_EQ(k_.stats().stlb_hits, hits);
  EXPECT_EQ(k_.stats().stlb_misses, misses);
}

TEST_F(StlbLockstep, RepeatedReadsHitAndStayCostIdentical) {
  const std::uint64_t len = 64 * mem::kPageSize;
  const vm::Vaddr a = on_.sys_mmap(ton_, len, vm::Prot::kReadWrite);
  const vm::Vaddr b = off_.sys_mmap(toff_, len, vm::Prot::kReadWrite);
  ASSERT_EQ(a, b);
  on_.access(ton_, a, len, vm::Prot::kWrite, 3500.0);
  off_.access(toff_, b, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(ton_.clock, toff_.clock);
  for (int rep = 0; rep < 8; ++rep) {
    const AccessResult ra = on_.access(ton_, a, len, vm::Prot::kRead, 3500.0);
    const AccessResult rb = off_.access(toff_, b, len, vm::Prot::kRead, 3500.0);
    EXPECT_EQ(ra.pages, rb.pages);
    EXPECT_EQ(ra.minor_faults, rb.minor_faults);
    EXPECT_EQ(ton_.clock, toff_.clock);
  }
  // Read 1 walks and fills; reads 2..8 hit. The disabled kernel never hits.
  EXPECT_EQ(on_.stats().stlb_hits, 7u);
  EXPECT_EQ(off_.stats().stlb_hits, 0u);
  EXPECT_NO_THROW(on_.validate(ton_));
}

TEST_F(StlbTest, WriteHitRequiresAlreadyDirtyRun) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);  // populate; pages dirty
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);   // fill: dirty => kWriteOk
  const std::uint64_t hits = k_.stats().stlb_hits;
  // A write over an already-dirty run changes no PTE state the slow path
  // would record differently (re-set kDirty is idempotent; see the
  // write_gen argument in docs/performance.md), so it may hit.
  const AccessResult r = k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(r.pages, 16u);
  EXPECT_EQ(r.minor_faults, 0u);
  EXPECT_EQ(k_.stats().stlb_hits, hits + 1);
  EXPECT_NO_THROW(k_.validate(t));
}

TEST_F(StlbTest, ReadPopulatedRunDoesNotEarnWriteHit) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);  // populate clean pages
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);  // fill: clean => read-only
  const std::uint64_t hits = k_.stats().stlb_hits;
  // The first write must walk (it dirties pages and bumps write_gen — state
  // the fast path is not allowed to skip on clean pages).
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.stats().stlb_hits, hits);
  EXPECT_NO_THROW(k_.validate(t));
}

TEST_F(StlbLockstep, ChunkBoundarySpanWithMidExtentFault) {
  // > 512 pages guarantees the extent crosses at least one page-table chunk
  // boundary wherever mmap placed it.
  const std::uint64_t pages = 1200;
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = on_.sys_mmap(ton_, len, vm::Prot::kReadWrite);
  const vm::Vaddr b = off_.sys_mmap(toff_, len, vm::Prot::kReadWrite);
  on_.access(ton_, a, len, vm::Prot::kWrite, 3500.0);
  off_.access(toff_, b, len, vm::Prot::kWrite, 3500.0);
  // Drop one page in the middle of the extent (and past the first chunk).
  const vm::Vaddr hole = a + 700 * mem::kPageSize;
  on_.sys_madvise(ton_, hole, mem::kPageSize, Advice::kDontNeed);
  off_.sys_madvise(toff_, b + 700 * mem::kPageSize, mem::kPageSize,
                   Advice::kDontNeed);
  // The spanning read faults mid-extent: correct result, no descriptor.
  const std::uint64_t hits = on_.stats().stlb_hits;
  const AccessResult ra = on_.access(ton_, a, len, vm::Prot::kRead, 3500.0);
  const AccessResult rb = off_.access(toff_, b, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(ra.pages, pages);
  EXPECT_EQ(ra.minor_faults, 1u);
  EXPECT_EQ(ra.pages, rb.pages);
  EXPECT_EQ(ra.minor_faults, rb.minor_faults);
  EXPECT_EQ(ton_.clock, toff_.clock);
  EXPECT_EQ(on_.stats().stlb_hits, hits);  // the faulting pass cannot hit
  // Next read walks fault-free and fills; the one after hits.
  on_.access(ton_, a, len, vm::Prot::kRead, 3500.0);
  off_.access(toff_, b, len, vm::Prot::kRead, 3500.0);
  on_.access(ton_, a, len, vm::Prot::kRead, 3500.0);
  off_.access(toff_, b, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(on_.stats().stlb_hits, hits + 1);
  EXPECT_EQ(ton_.clock, toff_.clock);
  EXPECT_NO_THROW(on_.validate(ton_));
}

TEST_F(StlbTest, MappingMutationsBumpTheGeneration) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  std::uint64_t gen = k_.mapping_generation(pid_);
  auto bumped = [&](const char* what) {
    const std::uint64_t now = k_.mapping_generation(pid_);
    EXPECT_GT(now, gen) << what;
    gen = now;
  };
  k_.sys_mprotect(t, a, len, vm::Prot::kReadWrite);
  bumped("mprotect");
  k_.sys_madvise(t, a, mem::kPageSize, Advice::kDontNeed);
  bumped("madvise(DONTNEED)");
  k_.sys_madvise(t, a + mem::kPageSize, mem::kPageSize,
                 Advice::kMigrateOnNextTouch);
  bumped("madvise(MIGRATE_ON_NEXT_TOUCH)");
  const Kernel::MoveRange mr{a + 2 * mem::kPageSize, mem::kPageSize, 1};
  k_.sys_move_pages_ranged(t, {&mr, 1});
  bumped("move_pages_ranged");
  k_.sys_mbind(t, a, len, vm::MemPolicy::preferred(2));
  bumped("mbind");
  k_.sys_set_mempolicy(t, vm::MemPolicy::preferred(1));
  bumped("set_mempolicy");
  k_.set_task_policy(pid_, vm::MemPolicy{});
  bumped("set_task_policy");
  k_.sys_munmap(t, a, len);
  bumped("munmap");
}

TEST_F(StlbTest, MigrationInvalidatesCachedDescriptor) {
  ThreadCtx t = ctx_on(0);  // node 0
  const std::uint64_t len = 32 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);  // fill
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);  // hit
  EXPECT_EQ(k_.stats().stlb_hits, 1u);
  const Kernel::MoveRange mr{a, len, 2};
  ASSERT_EQ(k_.sys_move_pages_ranged(t, {&mr, 1}), 32);
  // The cached descriptor names node 0; the bump keeps it from serving a
  // stale one-stream charge. The re-walk sees node 2 and refills.
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(k_.stats().stlb_hits, 1u);
  k_.access(t, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(k_.stats().stlb_hits, 2u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 32u);
  EXPECT_NO_THROW(k_.validate(t));
}

TEST_F(StlbTest, ValidateAuditRejectsCorruptDescriptor) {
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  // A current-generation descriptor lying about the node must be caught.
  t.stlb.insert({vm::vpn_of(a), 4, t.pid, k_.mapping_generation(pid_),
                 /*node=*/3, SoftTlb::kReadOk});
  EXPECT_THROW(k_.validate(t), std::logic_error);
  // The same lie at a stale generation is dead weight, not corruption: the
  // lookup can never return it, so the audit skips it.
  t.stlb.clear();
  t.stlb.insert({vm::vpn_of(a), 4, t.pid, k_.mapping_generation(pid_) + 1000,
                 /*node=*/3, SoftTlb::kReadOk});
  EXPECT_NO_THROW(k_.validate(t));
}

TEST_F(StlbLockstep, MixedMutationSequenceStaysEventIdentical) {
  const std::uint64_t len = 128 * mem::kPageSize;
  const vm::Vaddr a = on_.sys_mmap(ton_, len, vm::Prot::kReadWrite);
  const vm::Vaddr b = off_.sys_mmap(toff_, len, vm::Prot::kReadWrite);
  auto step = [&] {
    ASSERT_EQ(ton_.clock, toff_.clock);
    ASSERT_EQ(on_.stats().minor_faults, off_.stats().minor_faults);
    ASSERT_EQ(on_.stats().pages_migrated_move, off_.stats().pages_migrated_move);
    ASSERT_EQ(on_.stats().tlb_shootdowns, off_.stats().tlb_shootdowns);
  };
  on_.access(ton_, a, len, vm::Prot::kWrite, 3500.0);
  off_.access(toff_, b, len, vm::Prot::kWrite, 3500.0);
  step();
  for (int rep = 0; rep < 4; ++rep) {
    on_.access(ton_, a, len, vm::Prot::kRead, 3500.0);
    off_.access(toff_, b, len, vm::Prot::kRead, 3500.0);
    step();
  }
  on_.sys_madvise(ton_, a, len, Advice::kMigrateOnNextTouch);
  off_.sys_madvise(toff_, b, len, Advice::kMigrateOnNextTouch);
  ThreadCtx ton2 = ton_;
  ThreadCtx toff2 = toff_;
  ton2.core = toff2.core = 4;  // node 1 touches next
  on_.access(ton2, a, len, vm::Prot::kWrite, 3500.0);
  off_.access(toff2, b, len, vm::Prot::kWrite, 3500.0);
  ASSERT_EQ(ton2.clock, toff2.clock);
  const Kernel::MoveRange mr_on{a, len, 3};
  const Kernel::MoveRange mr_off{b, len, 3};
  EXPECT_EQ(on_.sys_move_pages_ranged(ton2, {&mr_on, 1}),
            off_.sys_move_pages_ranged(toff2, {&mr_off, 1}));
  on_.access(ton2, a, len, vm::Prot::kRead, 3500.0);
  off_.access(toff2, b, len, vm::Prot::kRead, 3500.0);
  ASSERT_EQ(ton2.clock, toff2.clock);
  step();
  EXPECT_GT(on_.stats().stlb_hits, 0u);
  EXPECT_EQ(off_.stats().stlb_hits, 0u);
  EXPECT_NO_THROW(on_.validate(ton2));
}

}  // namespace
}  // namespace numasim::kern
