// Tests for the user-space library: numalib allocators, lazy migration, and
// the mprotect/SIGSEGV user next-touch (paper Fig. 1).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "lib/numalib.hpp"
#include "lib/user_next_touch.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

namespace numasim::lib {
namespace {

class LibTest : public ::testing::Test {
 protected:
  LibTest() : topo_(topo::Topology::quad_opteron()),
              k_(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kMaterialized}) {
    pid_ = k_.create_process("lib-test");
  }

  kern::ThreadCtx ctx_on(topo::CoreId core) {
    kern::ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  topo::Topology topo_;
  kern::Kernel k_;
  kern::Pid pid_ = 0;
};

TEST_F(LibTest, AllocOnNodePlacesThere) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t, k_, len, 3, "buf");
  populate(t, k_, a, len);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 3), 16u);
  numa_free(t, k_, a, len);
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
}

TEST_F(LibTest, AllocInterleavedSpreads) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_interleaved(t, k_, len);
  populate(t, k_, a, len);
  for (topo::NodeId n = 0; n < 4; ++n)
    EXPECT_EQ(k_.pages_on_node(pid_, a, len, n), 4u);
}

TEST_F(LibTest, AllocLocalFollowsFirstTouch) {
  kern::ThreadCtx t = ctx_on(10);  // node 2
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_local(t, k_, len);
  populate(t, k_, a, len);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 4u);
}

TEST_F(LibTest, SyncMigrateMovesRange) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 32 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t, k_, len, 0);
  populate(t, k_, a, len);
  EXPECT_EQ(sync_migrate(t, k_, a, len, 2), 32);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 32u);
}

TEST_F(LibTest, LazyMigrateMarksAndFollowsToucher) {
  kern::ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t0, k_, len, 0);
  populate(t0, k_, a, len);
  EXPECT_EQ(lazy_migrate(t0, k_, a, len), 0);

  kern::ThreadCtx t1 = ctx_on(6);  // node 1
  k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 1), 16u);
}

TEST_F(LibTest, UserNextTouchWholeRegionOnOneFault) {
  kern::ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 64 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t0, k_, len, 0);
  populate(t0, k_, a, len);
  std::vector<std::byte> payload(len);
  for (std::size_t i = 0; i < len; ++i) payload[i] = static_cast<std::byte>(3 * i);
  ASSERT_TRUE(k_.poke(pid_, a, payload));

  UserNextTouch unt(k_, pid_);
  EXPECT_EQ(unt.mark(t0, a, len), 0);
  EXPECT_EQ(unt.armed_bytes(), len);

  // One touch from node 2 migrates the whole region via the handler.
  kern::ThreadCtx t2 = ctx_on(8);
  const kern::AccessResult r = k_.access(t2, a + 5 * mem::kPageSize, 8,
                                         vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.sigsegv_delivered, 1u);
  EXPECT_EQ(unt.stats().faults_handled, 1u);
  EXPECT_EQ(unt.stats().pages_moved, 64u);
  EXPECT_EQ(unt.armed_bytes(), 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 2), 64u);

  std::vector<std::byte> readback(len);
  ASSERT_TRUE(k_.peek(pid_, a, readback));
  EXPECT_EQ(readback, payload);

  // Protection restored: further touches are fault-free.
  const kern::AccessResult r2 = k_.access(t2, a, len, vm::Prot::kReadWrite, 3500.0);
  EXPECT_EQ(r2.sigsegv_delivered, 0u);
}

TEST_F(LibTest, UserNextTouchGranuleMigratesWindowOnly) {
  kern::ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 64 * mem::kPageSize;
  const std::uint64_t granule = 16 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t0, k_, len, 0);
  populate(t0, k_, a, len);

  UserNextTouch unt(k_, pid_);
  ASSERT_EQ(unt.mark(t0, a, len, granule), 0);

  // Fault in the third granule from node 3.
  kern::ThreadCtx t3 = ctx_on(12);
  k_.access(t3, a + 2 * granule + 123, 8, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(unt.stats().pages_moved, 16u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 3), 16u);
  EXPECT_EQ(k_.pages_on_node(pid_, a + 2 * granule, granule, 3), 16u);
  EXPECT_EQ(unt.armed_bytes(), len - granule);

  // Another thread takes the first granule.
  kern::ThreadCtx t1 = ctx_on(4);
  k_.access(t1, a, 8, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, granule, 1), 16u);
  EXPECT_EQ(unt.armed_bytes(), len - 2 * granule);
}

TEST_F(LibTest, UserNextTouchRejectsOverlapAndBadArgs) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t, k_, len, 0);
  populate(t, k_, a, len);
  UserNextTouch unt(k_, pid_);
  EXPECT_EQ(unt.mark(t, a, len), 0);
  EXPECT_EQ(unt.mark(t, a + mem::kPageSize, mem::kPageSize), -kern::kEBUSY);
  EXPECT_EQ(unt.mark(t, a, 0), -kern::kEINVAL);
  // Unaligned granule is rejected before the overlap check.
  EXPECT_EQ(unt.mark(t, a, len, 100), -kern::kEINVAL);
}

TEST_F(LibTest, UserNextTouchCancelRestoresProtection) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = numa_alloc_onnode(t, k_, len, 0);
  populate(t, k_, a, len);
  UserNextTouch unt(k_, pid_);
  ASSERT_EQ(unt.mark(t, a, len), 0);
  ASSERT_EQ(unt.cancel(t, a, len), 0);
  EXPECT_EQ(unt.armed_bytes(), 0u);
  // No fault, no migration.
  kern::ThreadCtx t2 = ctx_on(8);
  const kern::AccessResult r = k_.access(t2, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.sigsegv_delivered, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), 8u);
}

TEST_F(LibTest, FaultOutsideArmedRegionStillFatal) {
  kern::ThreadCtx t = ctx_on(0);
  UserNextTouch unt(k_, pid_);
  EXPECT_THROW(k_.access(t, 0x40, 8, vm::Prot::kRead, 3500.0), kern::SegfaultError);
}

// --- NumaBuffer RAII handle --------------------------------------------------

TEST_F(LibTest, NumaBufferFreesOnDestruction) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  {
    NumaBuffer b = NumaBuffer::on_node(t, k_, len, 3, "raii");
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_EQ(b.size(), len);
    EXPECT_EQ(b.node(), 3u);
    b.populate(t);
    EXPECT_EQ(b.pages_on(3), 16u);
    EXPECT_EQ(k_.phys().total_used_frames(), 16u);
  }
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
}

TEST_F(LibTest, NumaBufferMoveTransfersOwnership) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 8 * mem::kPageSize;
  NumaBuffer a = NumaBuffer::on_node(t, k_, len, 1, "mv");
  a.populate(t);
  const vm::Vaddr addr = a.addr();

  NumaBuffer b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.addr(), addr);
  EXPECT_EQ(b.pages_on(1), 8u);

  NumaBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.addr(), addr);
  EXPECT_EQ(k_.phys().total_used_frames(), 8u);
  EXPECT_EQ(c.free(t), 0);
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
}

TEST_F(LibTest, NumaBufferSyncMigrateMoves) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 32 * mem::kPageSize;
  NumaBuffer b = NumaBuffer::on_node(t, k_, len, 0, "sync");
  b.populate(t);
  const kern::SyscallResult r = b.sync_migrate(t, 2);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.count(), 32);
  EXPECT_EQ(b.pages_on(2), 32u);
}

TEST_F(LibTest, NumaBufferLazyMigrateFollowsToucher) {
  kern::ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  NumaBuffer b = NumaBuffer::on_node(t0, k_, len, 0, "lazy");
  b.populate(t0);
  EXPECT_TRUE(b.lazy_migrate(t0).ok());
  kern::ThreadCtx t1 = ctx_on(6);  // node 1
  k_.access(t1, b.addr(), b.size(), vm::Prot::kRead, 3500.0);
  EXPECT_EQ(b.pages_on(1), 16u);
}

TEST_F(LibTest, NumaBufferReleaseKeepsMapping) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  vm::Vaddr addr = 0;
  {
    NumaBuffer b = NumaBuffer::local(t, k_, len, "rel");
    b.populate(t);
    addr = b.release();
    EXPECT_FALSE(static_cast<bool>(b));
  }
  // Still mapped after the handle died; the legacy free path reclaims it.
  EXPECT_EQ(k_.phys().total_used_frames(), 4u);
  numa_free(t, k_, addr, len);
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
}

TEST_F(LibTest, NumaBufferInterleavedSpreads) {
  kern::ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  NumaBuffer b = NumaBuffer::interleaved(t, k_, len);
  EXPECT_EQ(b.node(), topo::kInvalidNode);
  b.populate(t);
  for (topo::NodeId n = 0; n < 4; ++n) EXPECT_EQ(b.pages_on(n), 4u);
}

// Property: for every granule size dividing the region, total pages moved
// after touching every granule equals the region size, each on its toucher.
class GranuleProperty : public LibTest,
                        public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(GranuleProperty, AllGranulesMigrateIndependently) {
  const std::uint64_t granule_pages = GetParam();
  const std::uint64_t npages = 32;
  const std::uint64_t len = npages * mem::kPageSize;
  const std::uint64_t granule = granule_pages * mem::kPageSize;

  kern::ThreadCtx t0 = ctx_on(0);
  const vm::Vaddr a = numa_alloc_onnode(t0, k_, len, 0);
  populate(t0, k_, a, len);
  UserNextTouch unt(k_, pid_);
  ASSERT_EQ(unt.mark(t0, a, len, granule), 0);

  for (std::uint64_t g = 0; g < npages / granule_pages; ++g) {
    const topo::CoreId core = static_cast<topo::CoreId>((g % 4) * 4);
    kern::ThreadCtx t = ctx_on(core);
    k_.access(t, a + g * granule, 8, vm::Prot::kRead, 3500.0);
    EXPECT_EQ(k_.pages_on_node(pid_, a + g * granule, granule,
                               topo_.node_of_core(core)),
              granule_pages);
  }
  EXPECT_EQ(unt.stats().pages_moved + /*granule 0 touch local*/ 0, npages);
  EXPECT_EQ(unt.armed_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Granules, GranuleProperty, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace numasim::lib
