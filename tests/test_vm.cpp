// Unit tests for VMAs, the address space, the page table and policies.
#include <gtest/gtest.h>

#include "vm/address_space.hpp"

namespace numasim::vm {
namespace {

TEST(Pte, FlagHelpers) {
  Pte pte;
  EXPECT_FALSE(pte.present());
  pte.set(Pte::kPresent | Pte::kHwRead);
  EXPECT_TRUE(pte.present());
  EXPECT_TRUE(pte.hw_allows(Prot::kRead));
  EXPECT_FALSE(pte.hw_allows(Prot::kWrite));
  EXPECT_FALSE(pte.hw_allows(Prot::kReadWrite));
  pte.set(Pte::kHwWrite);
  EXPECT_TRUE(pte.hw_allows(Prot::kReadWrite));
  pte.clear(Pte::kHwRead | Pte::kHwWrite);
  EXPECT_FALSE(pte.hw_allows(Prot::kRead));
  pte.set(Pte::kNextTouch);
  EXPECT_TRUE(pte.next_touch());
}

TEST(Prot, Lattice) {
  EXPECT_TRUE(prot_allows(Prot::kReadWrite, Prot::kRead));
  EXPECT_TRUE(prot_allows(Prot::kReadWrite, Prot::kWrite));
  EXPECT_FALSE(prot_allows(Prot::kRead, Prot::kWrite));
  EXPECT_FALSE(prot_allows(Prot::kNone, Prot::kRead));
  EXPECT_TRUE(prot_allows(Prot::kRead, Prot::kNone));
}

TEST(PageTable, FindVsEnsure) {
  PageTable pt;
  EXPECT_EQ(pt.find(100), nullptr);
  Pte& pte = pt.ensure(100);
  pte.set(Pte::kPresent);
  ASSERT_NE(pt.find(100), nullptr);
  EXPECT_TRUE(pt.find(100)->present());
  // Neighbouring slot in the same chunk exists but is empty.
  ASSERT_NE(pt.find(101), nullptr);
  EXPECT_FALSE(pt.find(101)->present());
  // A distant vpn has no chunk at all.
  EXPECT_EQ(pt.find(1'000'000), nullptr);
}

TEST(PageTable, ClearRangeAndCount) {
  PageTable pt;
  for (Vpn v = 10; v < 20; ++v) pt.ensure(v).set(Pte::kPresent);
  EXPECT_EQ(pt.count_present(0, 100), 10u);
  pt.clear_range(12, 15);
  EXPECT_EQ(pt.count_present(0, 100), 7u);
  EXPECT_FALSE(pt.find(13)->present());
  EXPECT_TRUE(pt.find(15)->present());
}

TEST(AddressSpace, MapAlignsAndSeparates) {
  AddressSpace as;
  const Vaddr a = as.map(100, Prot::kReadWrite, {});
  const Vaddr b = as.map(mem::kPageSize * 3, Prot::kRead, {});
  EXPECT_EQ(a % mem::kPageSize, 0u);
  EXPECT_GE(b, a + mem::kPageSize * 2);  // rounded-up + guard page
  ASSERT_NE(as.find(a), nullptr);
  EXPECT_EQ(as.find(a)->pages(), 1u);
  EXPECT_EQ(as.find(b)->pages(), 3u);
  EXPECT_EQ(as.find(a + mem::kPageSize), nullptr);  // guard gap unmapped
  EXPECT_TRUE(as.range_mapped(b, mem::kPageSize * 3));
  EXPECT_FALSE(as.range_mapped(b, mem::kPageSize * 4));
  EXPECT_THROW(as.map(0, Prot::kRead, {}), std::invalid_argument);
}

TEST(AddressSpace, ForRangeSplitsAndMergesBack) {
  AddressSpace as;
  const Vaddr a = as.map(mem::kPageSize * 10, Prot::kReadWrite, {});
  EXPECT_EQ(as.vma_count(), 1u);

  // Change protection of the middle 4 pages: 3 VMAs.
  as.for_range(a + 3 * mem::kPageSize, a + 7 * mem::kPageSize,
               [](Vma& v) { v.prot = Prot::kNone; });
  EXPECT_EQ(as.vma_count(), 3u);
  EXPECT_EQ(as.find(a)->prot, Prot::kReadWrite);
  EXPECT_EQ(as.find(a + 4 * mem::kPageSize)->prot, Prot::kNone);
  EXPECT_EQ(as.find(a + 8 * mem::kPageSize)->prot, Prot::kReadWrite);

  // Restore: merges back into one VMA.
  as.for_range(a + 3 * mem::kPageSize, a + 7 * mem::kPageSize,
               [](Vma& v) { v.prot = Prot::kReadWrite; });
  EXPECT_EQ(as.vma_count(), 1u);
}

TEST(AddressSpace, PgoffBaseSurvivesSplit) {
  AddressSpace as;
  const Vaddr a = as.map(mem::kPageSize * 8, Prot::kReadWrite,
                         MemPolicy::interleave(0b11));
  as.for_range(a + 2 * mem::kPageSize, a + 4 * mem::kPageSize,
               [](Vma& v) { v.prot = Prot::kRead; });
  const Vma* right = as.find(a + 5 * mem::kPageSize);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(right->pgoff_base, vpn_of(a));
  EXPECT_EQ(right->pgoff(vpn_of(a) + 5), 5u);
}

TEST(AddressSpace, UnmapRemovesMiddle) {
  AddressSpace as;
  const Vaddr a = as.map(mem::kPageSize * 10, Prot::kReadWrite, {});
  const std::uint64_t removed = as.unmap(a + 2 * mem::kPageSize, 3 * mem::kPageSize);
  EXPECT_EQ(removed, 3u);
  EXPECT_NE(as.find(a), nullptr);
  EXPECT_EQ(as.find(a + 2 * mem::kPageSize), nullptr);
  EXPECT_NE(as.find(a + 5 * mem::kPageSize), nullptr);
  EXPECT_EQ(as.vma_count(), 2u);
}

TEST(MemPolicy, FirstTouchFollowsLocal) {
  const MemPolicy p = MemPolicy::first_touch();
  EXPECT_EQ(p.target_node(17, 2, 4), 2u);
}

TEST(MemPolicy, BindAndPreferredPickFirstMaskNode) {
  EXPECT_EQ(MemPolicy::bind(0b1000).target_node(0, 0, 4), 3u);
  EXPECT_EQ(MemPolicy::preferred(2).target_node(9, 0, 4), 2u);
}

TEST(MemPolicy, InterleaveIsOffsetBased) {
  const MemPolicy p = MemPolicy::interleave(0b1111);
  EXPECT_EQ(p.target_node(0, 9, 4), 0u);
  EXPECT_EQ(p.target_node(1, 9, 4), 1u);
  EXPECT_EQ(p.target_node(5, 9, 4), 1u);
  // Sparse mask: nodes 1 and 3 alternate.
  const MemPolicy q = MemPolicy::interleave(0b1010);
  EXPECT_EQ(q.target_node(0, 0, 4), 1u);
  EXPECT_EQ(q.target_node(1, 0, 4), 3u);
  EXPECT_EQ(q.target_node(2, 0, 4), 1u);
}

TEST(Vma, PagesAndContains) {
  Vma v;
  v.start = 0x10000;
  v.end = 0x14000;
  EXPECT_EQ(v.pages(), 4u);
  EXPECT_TRUE(v.contains(0x10000));
  EXPECT_TRUE(v.contains(0x13fff));
  EXPECT_FALSE(v.contains(0x14000));
}

TEST(VmHelpers, Alignment) {
  EXPECT_EQ(page_align_down(0x12345), 0x12000u);
  EXPECT_EQ(page_align_up(0x12345), 0x13000u);
  EXPECT_EQ(page_align_up(0x12000), 0x12000u);
  EXPECT_EQ(vpn_of(0x12345), 0x12u);
  EXPECT_EQ(addr_of(0x12), 0x12000u);
}

}  // namespace
}  // namespace numasim::vm
