// KV serving subsystem tests: shard routing and slot permutation, zipfian
// traffic determinism and skew, phase-shift boundaries, data integrity under
// concurrent migration (both lock models), event-for-event run determinism
// with all policies off, and the zero-cost guarantee for sink-free serving.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "apps/kvstore.hpp"
#include "apps/traffic.hpp"
#include "kern/event_log.hpp"
#include "obs/trace.hpp"
#include "rt/machine.hpp"
#include "rt/team.hpp"
#include "rt/thread.hpp"

namespace numasim::apps {
namespace {

// --- shard routing / index ---------------------------------------------------

TEST(KvStore, ShardRoutingAndSlotPermutation) {
  rt::Machine m;
  KvConfig cfg;
  cfg.shards = 8;
  cfg.keys_per_shard = 64;
  KvStore store(m, cfg);
  ASSERT_EQ(store.num_keys(), 512u);
  for (std::uint64_t key = 0; key < store.num_keys(); ++key)
    EXPECT_EQ(store.shard_of(key), key / 64) << key;
  // Within each shard the slot assignment is a bijection onto [0, kps).
  for (std::uint64_t s = 0; s < cfg.shards; ++s) {
    std::set<std::uint64_t> slots;
    for (std::uint64_t k = 0; k < cfg.keys_per_shard; ++k) {
      const std::uint64_t slot = store.slot_of(s * cfg.keys_per_shard + k);
      EXPECT_LT(slot, cfg.keys_per_shard);
      slots.insert(slot);
    }
    EXPECT_EQ(slots.size(), cfg.keys_per_shard) << "shard " << s;
  }
  // Distinct index seeds permute differently (overwhelmingly likely).
  KvConfig cfg2 = cfg;
  cfg2.index_seed = 8;
  KvStore other(m, cfg2);
  bool differs = false;
  for (std::uint64_t key = 0; key < store.num_keys() && !differs; ++key)
    differs = store.slot_of(key) != other.slot_of(key);
  EXPECT_TRUE(differs);
}

TEST(KvStore, RejectsBadShape) {
  rt::Machine m;
  KvConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(KvStore(m, cfg), std::invalid_argument);
  cfg.shards = 4;
  cfg.keys_per_shard = 0;
  EXPECT_THROW(KvStore(m, cfg), std::invalid_argument);
  cfg.keys_per_shard = 16;
  cfg.value_bytes = 3000;  // does not divide the page size
  EXPECT_THROW(KvStore(m, cfg), std::invalid_argument);
}

TEST(KvStore, SlotAddressesStayInsideTheirShardArena) {
  rt::Machine m;
  KvConfig cfg;
  cfg.shards = 4;
  cfg.keys_per_shard = 32;
  cfg.value_bytes = 256;
  KvStore store(m, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    co_await store.setup(th);
  });
  for (std::uint64_t key = 0; key < store.num_keys(); ++key) {
    const vm::Vaddr base = store.shard_addr(store.shard_of(key));
    const vm::Vaddr a = store.slot_addr(key);
    EXPECT_GE(a, base);
    EXPECT_LE(a + cfg.value_bytes, base + store.shard_bytes());
  }
}

// --- traffic generator -------------------------------------------------------

ClientTraffic::Config traffic_config(unsigned tenant = 0,
                                     std::uint64_t seed = 42) {
  ClientTraffic::Config tc;
  tc.tenant = tenant;
  tc.tenants = 4;
  tc.keys_per_tenant = 2048;
  tc.mix = Mix::kScanMixed;
  tc.theta = 0.99;
  tc.plan = {3, 1000};
  tc.seed = seed;
  return tc;
}

TEST(Traffic, SameSeedYieldsIdenticalStream) {
  ClientTraffic a(traffic_config());
  ClientTraffic b(traffic_config());
  ClientTraffic c(traffic_config(0, 43));
  bool differs = false;
  for (int i = 0; i < 3000; ++i) {
    const Request ra = a.next();
    const Request rb = b.next();
    const Request rc = c.next();
    ASSERT_EQ(ra.op, rb.op) << i;
    ASSERT_EQ(ra.key, rb.key) << i;
    ASSERT_EQ(ra.scan_slots, rb.scan_slots) << i;
    differs = differs || ra.op != rc.op || ra.key != rc.key;
  }
  EXPECT_TRUE(differs);  // a different seed is a different stream
}

TEST(Traffic, ZipfianMassConcentratesInFirstShardOfRange) {
  ClientTraffic gen(traffic_config());
  std::uint64_t hot = 0, total = 0;
  const std::uint64_t base = gen.range_base(0);
  for (int i = 0; i < 1000; ++i) {  // stay inside phase 0
    const Request r = gen.next();
    ASSERT_GE(r.key, base);
    ASSERT_LT(r.key, base + 2048);
    if (r.key < base + 512) ++hot;  // first shard of the 4-shard range
    ++total;
  }
  // theta=0.99 over 2048 keys puts ~80 % of draws in the first 512 ranks.
  EXPECT_GT(hot * 100, total * 60);
}

TEST(Traffic, PhaseShiftRotatesKeyRangesAtExactBoundaries) {
  ClientTraffic gen(traffic_config(/*tenant=*/1));
  EXPECT_EQ(gen.config().plan.total_requests(), 3000u);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const unsigned expect_phase = static_cast<unsigned>(i / 1000);
    EXPECT_EQ(gen.phase(), expect_phase) << i;
    EXPECT_EQ(gen.range_of(expect_phase), (1 + expect_phase) % 4);
    const Request r = gen.next();
    const std::uint64_t base = gen.range_base(expect_phase);
    EXPECT_GE(r.key, base) << i;
    EXPECT_LT(r.key, base + 2048) << i;
  }
  // Past the plan the generator clamps to the final phase.
  EXPECT_EQ(gen.phase(), 2u);
}

TEST(Traffic, RejectsBadConfig) {
  ClientTraffic::Config tc = traffic_config();
  tc.tenants = 0;
  EXPECT_THROW(ClientTraffic{tc}, std::invalid_argument);
  tc = traffic_config();
  tc.tenant = 4;  // out of range
  EXPECT_THROW(ClientTraffic{tc}, std::invalid_argument);
  tc = traffic_config();
  tc.keys_per_tenant = 0;
  EXPECT_THROW(ClientTraffic{tc}, std::invalid_argument);
}

// --- integrity under concurrent migration ------------------------------------

/// Two clients hammer get/put/scan over the whole store while a migrator
/// thread bounces every shard arena between nodes. Numeric stamps must
/// survive: migration may move pages but never corrupt or lose them.
void run_concurrent_migration(kern::LockModel lock) {
  rt::Machine::Config mc;
  mc.lock_model = lock;
  rt::Machine m(mc);
  KvConfig kc;
  kc.shards = 4;
  kc.keys_per_shard = 64;
  kc.value_bytes = 1024;
  kc.numeric = true;
  KvStore store(m, kc);

  rt::Team team(m, {0, 4, 8});
  rt::Team::WorkerFn worker = [&](unsigned tid,
                                  rt::Thread& w) -> sim::Task<void> {
    if (tid == 2) {
      // Migrator: sweep every shard to every node, twice.
      for (unsigned round = 0; round < 8; ++round)
        for (std::uint64_t s = 0; s < kc.shards; ++s) {
          const auto res = co_await w.move_range(
              store.shard_addr(s), store.shard_bytes(),
              static_cast<topo::NodeId>((s + round) % 4));
          EXPECT_TRUE(res.ok());
        }
      co_return;
    }
    ClientTraffic::Config tc;
    tc.tenant = tid;
    tc.tenants = 2;
    tc.keys_per_tenant = store.num_keys() / 2;
    tc.mix = Mix::kWriteHeavy;  // puts exercise stamp writes under migration
    tc.plan = {2, 300};
    tc.seed = 1000 + tid;
    ClientTraffic gen(tc);
    for (int i = 0; i < 600; ++i) co_await store.execute(w, gen.next());
  };
  m.run_main(12, [&](rt::Thread& th) -> sim::Task<void> {
    co_await store.setup(th);
    co_await store.populate_all(th);
    co_await team.parallel(th, worker, "kv-migrate");
    co_await th.kmigrated_drain();
  });

  EXPECT_GT(m.kernel().stats().pages_migrated_move, 0u);
  EXPECT_EQ(store.stats().verify_failures, 0u);
  EXPECT_EQ(store.verify_all(), 0u);
  EXPECT_GT(store.stats().gets, 0u);
  EXPECT_GT(store.stats().puts, 0u);
}

TEST(KvStore, IntegrityUnderConcurrentMigrationCoarseLock) {
  run_concurrent_migration(kern::LockModel::kCoarse);
}

TEST(KvStore, IntegrityUnderConcurrentMigrationRangeLock) {
  run_concurrent_migration(kern::LockModel::kRange);
}

// --- determinism / zero-cost -------------------------------------------------

struct ServingResult {
  sim::Time end_time = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t scans = 0;
  std::uint64_t probes = 0;
};

/// A small two-client serving run with every adaptive policy off. `sink`
/// (optional) subscribes to the kernel tracepoint stream.
ServingResult run_serving(obs::TraceSink* sink) {
  rt::Machine m;
  if (sink != nullptr) m.kernel().add_trace_sink(sink);
  KvConfig kc;
  kc.shards = 4;
  kc.keys_per_shard = 64;
  KvStore store(m, kc);
  rt::Team team(m, {0, 4});
  rt::Team::WorkerFn worker = [&](unsigned tid,
                                  rt::Thread& w) -> sim::Task<void> {
    ClientTraffic::Config tc;
    tc.tenant = tid;
    tc.tenants = 2;
    tc.keys_per_tenant = store.num_keys() / 2;
    tc.mix = Mix::kScanMixed;
    tc.plan = {2, 400};
    tc.seed = 7 + tid;
    ClientTraffic gen(tc);
    obs::Histogram lat;
    for (int i = 0; i < 800; ++i)
      co_await store.execute(w, gen.next(), &lat);
    EXPECT_EQ(lat.count(), 800u);
  };
  ServingResult r;
  m.run_main(8, [&](rt::Thread& th) -> sim::Task<void> {
    co_await store.setup(th);
    co_await team.parallel(th, worker, "serving");
    r.end_time = th.now();
  });
  r.minor_faults = m.kernel().stats().minor_faults;
  r.gets = store.stats().gets;
  r.puts = store.stats().puts;
  r.scans = store.stats().scans;
  r.probes = store.stats().index_probes;
  return r;
}

TEST(KvStore, PolicyOffRunsAreEventForEventIdentical) {
  kern::EventLog log1(1 << 20), log2(1 << 20);
  const ServingResult r1 = run_serving(&log1);
  const ServingResult r2 = run_serving(&log2);
  EXPECT_EQ(r1.end_time, r2.end_time);
  ASSERT_GT(log1.events().size(), 0u);
  ASSERT_EQ(log1.events().size(), log2.events().size());
  for (std::size_t i = 0; i < log1.events().size(); ++i) {
    const kern::Event& a = log1.events()[i];
    const kern::Event& b = log2.events()[i];
    ASSERT_EQ(a.when, b.when) << i;
    ASSERT_EQ(a.tid, b.tid) << i;
    ASSERT_EQ(a.type, b.type) << i;
    ASSERT_EQ(a.vpn, b.vpn) << i;
    ASSERT_EQ(a.pages, b.pages) << i;
    ASSERT_EQ(a.from, b.from) << i;
    ASSERT_EQ(a.to, b.to) << i;
  }
}

TEST(KvStore, SinkFreeServingIsZeroCostAndDeterministic) {
  // Two sink-free runs are byte-identical in everything observable.
  const ServingResult bare1 = run_serving(nullptr);
  const ServingResult bare2 = run_serving(nullptr);
  EXPECT_EQ(bare1.end_time, bare2.end_time);
  EXPECT_EQ(bare1.minor_faults, bare2.minor_faults);
  EXPECT_EQ(bare1.gets, bare2.gets);
  EXPECT_EQ(bare1.puts, bare2.puts);
  EXPECT_EQ(bare1.scans, bare2.scans);
  EXPECT_EQ(bare1.probes, bare2.probes);

  // A fully traced run emits per-request kv.* spans yet draws no simulated
  // cost: execute() only constructs its Phase span when tracing is enabled,
  // and span emission never advances the thread clock.
  obs::ChromeTraceWriter w(/*capacity=*/1 << 20);
  const ServingResult traced = run_serving(&w);
  EXPECT_EQ(traced.end_time, bare1.end_time);
  EXPECT_EQ(traced.minor_faults, bare1.minor_faults);
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"name\":\"kv.get\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"kv.scan\""), std::string::npos);
}

}  // namespace
}  // namespace numasim::apps
