// Tests for the 2 MiB huge-page extension, including the era-accurate
// limitation the paper's future-work section points at: huge pages cannot
// be migrated.
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

constexpr std::uint64_t kHugeSize = 2ull << 20;
constexpr std::uint64_t kHugePages = kHugeSize / mem::kPageSize;

class HugePageTest : public ::testing::Test {
 protected:
  HugePageTest()
      : topo_(topo::Topology::quad_opteron()), k_(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom}) {
    pid_ = k_.create_process("huge");
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  topo::Topology topo_;
  kern::Kernel k_;
  Pid pid_ = 0;
};

TEST_F(HugePageTest, MappingIsAlignedAndBlockPopulated) {
  ThreadCtx t = ctx_on(5);  // node 1
  const vm::Vaddr a =
      k_.sys_mmap(t, 2 * kHugeSize, vm::Prot::kReadWrite, {}, "huge", true);
  EXPECT_EQ(a % kHugeSize, 0u);

  // One touch populates the whole first 2 MiB block with ONE fault.
  const AccessResult r = k_.access(t, a, 8, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(r.minor_faults, 1u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, kHugeSize, 1), kHugePages);
  EXPECT_EQ(k_.pages_on_node(pid_, a + kHugeSize, kHugeSize, 1), 0u);

  // Later touches inside the block are fault-free.
  const AccessResult r2 = k_.access(t, a + kHugeSize / 2, 4096, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(r2.minor_faults, 0u);
}

TEST_F(HugePageTest, FarFewerFaultsThanSmallPages) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr huge =
      k_.sys_mmap(t, 4 * kHugeSize, vm::Prot::kReadWrite, {}, "h", true);
  const AccessResult rh = k_.access(t, huge, 4 * kHugeSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(rh.minor_faults, 4u);

  const vm::Vaddr small = k_.sys_mmap(t, 4 * kHugeSize, vm::Prot::kReadWrite, {}, "s");
  const AccessResult rs = k_.access(t, small, 4 * kHugeSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(rs.minor_faults, 4 * kHugePages);
}

TEST_F(HugePageTest, PopulationIsCheaperThanSmallPages) {
  ThreadCtx th = ctx_on(0);
  const vm::Vaddr huge =
      k_.sys_mmap(th, 8 * kHugeSize, vm::Prot::kReadWrite, {}, "h", true);
  const sim::Time t0 = th.clock;
  k_.access(th, huge, 8 * kHugeSize, vm::Prot::kWrite, 3500.0);
  const sim::Time huge_time = th.clock - t0;

  ThreadCtx ts = ctx_on(0);
  ts.clock = sim::seconds(10);
  const vm::Vaddr small = k_.sys_mmap(ts, 8 * kHugeSize, vm::Prot::kReadWrite, {}, "s");
  const sim::Time t1 = ts.clock;
  k_.access(ts, small, 8 * kHugeSize, vm::Prot::kWrite, 3500.0);
  const sim::Time small_time = ts.clock - t1;

  EXPECT_LT(huge_time, small_time);
}

TEST_F(HugePageTest, RespectsPolicyPlacement) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a =
      k_.sys_mmap(t, kHugeSize, vm::Prot::kReadWrite,
                  vm::MemPolicy::bind(topo::node_mask_of(2)), "h", true);
  k_.access(t, a, 8, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.pages_on_node(pid_, a, kHugeSize, 2), kHugePages);
}

TEST_F(HugePageTest, MovePagesRefusesHugePages) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, kHugeSize, vm::Prot::kReadWrite, {}, "h", true);
  k_.access(t, a, 8, vm::Prot::kWrite, 3500.0);

  std::vector<vm::Vaddr> pages{a, a + mem::kPageSize};
  std::vector<topo::NodeId> nodes(2, 3);
  std::vector<int> status(2, 0);
  EXPECT_EQ(k_.sys_move_pages(t, pages, nodes, status), 0);
  EXPECT_EQ(status[0], -kEINVAL);
  EXPECT_EQ(status[1], -kEINVAL);
  EXPECT_EQ(k_.pages_on_node(pid_, a, kHugeSize, 0), kHugePages);  // unmoved
}

TEST_F(HugePageTest, NextTouchAndReplicationRefused) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = k_.sys_mmap(t, kHugeSize, vm::Prot::kReadWrite, {}, "h", true);
  k_.access(t, a, 8, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(k_.sys_madvise(t, a, kHugeSize, Advice::kMigrateOnNextTouch), -kEINVAL);
  k_.set_replication_enabled(true);
  EXPECT_EQ(k_.sys_madvise(t, a, kHugeSize, Advice::kReplicate), -kEINVAL);
}

TEST_F(HugePageTest, MigratePagesSkipsHugePages) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr h = k_.sys_mmap(t, kHugeSize, vm::Prot::kReadWrite, {}, "h", true);
  const vm::Vaddr s = k_.sys_mmap(t, 8 * mem::kPageSize, vm::Prot::kReadWrite, {}, "s");
  k_.access(t, h, 8, vm::Prot::kWrite, 3500.0);
  k_.access(t, s, 8 * mem::kPageSize, vm::Prot::kWrite, 3500.0);

  const long moved =
      k_.sys_migrate_pages(t, pid_, topo::node_mask_of(0), topo::node_mask_of(1));
  EXPECT_EQ(moved, 8);  // only the small pages
  EXPECT_EQ(k_.pages_on_node(pid_, h, kHugeSize, 0), kHugePages);
  EXPECT_EQ(k_.pages_on_node(pid_, s, 8 * mem::kPageSize, 1), 8u);
}

TEST_F(HugePageTest, UnalignedLengthRejected) {
  ThreadCtx t = ctx_on(0);
  EXPECT_THROW(k_.sys_mmap(t, kHugeSize + mem::kPageSize, vm::Prot::kReadWrite, {},
                           "bad", true),
               std::invalid_argument);
}

}  // namespace
}  // namespace numasim::kern
