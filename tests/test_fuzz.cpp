// Randomized stress: drive the kernel with arbitrary sequences of mm
// operations from a seeded PRNG and audit the full consistency invariants
// after every step (Kernel::validate). Catches frame leaks, dangling PTEs,
// replica aliasing and flag-state corruption that targeted tests miss.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "kern/kernel.hpp"
#include "sim/rng.hpp"

namespace numasim::kern {
namespace {

class Fuzzer {
 public:
  /// `fault_spec` arms a FaultInjector (seeded from the fuzz seed) for the
  /// whole run, so every kernel path is exercised under injected failures.
  /// `mode` selects the migration engine (the transactional engine must
  /// uphold the same invariants as stop-and-copy under every plan).
  Fuzzer(std::uint64_t seed, mem::Backing backing,
         std::string_view fault_spec = {},
         MigrationMode mode = MigrationMode::kStopAndCopy)
      : topo_(topo::Topology::quad_opteron()),
        k_(kern::KernelConfig{.topology = topo_, .backing = backing,
                             .migration_mode = mode,
                             .max_frames_per_node = 4096}),
        rng_(seed) {
    k_.set_replication_enabled(true);
    if (!fault_spec.empty()) {
      injector_.arm(FaultPlan::parse(fault_spec), seed ^ 0x5eed);
      k_.set_fault_injector(&injector_);
    }
    pid_ = k_.create_process("fuzz");
    k_.set_sigsegv_handler(pid_, [this](ThreadCtx& t, const SigInfo& info) {
      // Handler: restore full access to the faulting region if we armed it.
      for (const auto& r : regions_) {
        if (info.fault_addr >= r.addr && info.fault_addr < r.addr + r.len) {
          k_.sys_mprotect(t, r.addr, r.len, vm::Prot::kReadWrite);
          return;
        }
      }
      throw SegfaultError{info.fault_addr};
    });
  }

  void step() {
    ThreadCtx t;
    t.pid = pid_;
    t.core = static_cast<topo::CoreId>(rng_.below(topo_.num_cores()));
    t.clock = clock_;

    switch (rng_.below(regions_.empty() ? 1 : 10)) {
      case 0: {  // mmap
        if (regions_.size() < 12) {
          Region r;
          r.pages = 1 + rng_.below(64);
          r.len = r.pages * mem::kPageSize;
          const vm::MemPolicy pol = random_policy();
          r.addr = k_.sys_mmap(t, r.len, vm::Prot::kReadWrite, pol, "fuzz");
          regions_.push_back(r);
        }
        break;
      }
      case 1: {  // munmap
        const std::size_t i = rng_.below(regions_.size());
        k_.sys_munmap(t, regions_[i].addr, regions_[i].len);
        regions_.erase(regions_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 2:
      case 3: {  // touch a random sub-range
        const Region& r = pick();
        const std::uint64_t off = rng_.below(r.len);
        const std::uint64_t len = 1 + rng_.below(r.len - off);
        k_.access(t, r.addr + off, len,
                  rng_.chance(0.5) ? vm::Prot::kRead : vm::Prot::kReadWrite, 3500.0);
        break;
      }
      case 4: {  // madvise next-touch
        const Region& r = pick();
        k_.sys_madvise(t, r.addr, r.len, Advice::kMigrateOnNextTouch);
        break;
      }
      case 5: {  // madvise replicate or dontneed
        const Region& r = pick();
        k_.sys_madvise(t, r.addr, r.len,
                       rng_.chance(0.5) ? Advice::kReplicate : Advice::kDontNeed);
        break;
      }
      case 6: {  // move_pages of a random subset
        const Region& r = pick();
        std::vector<vm::Vaddr> pages;
        for (std::uint64_t pg = 0; pg < r.pages; ++pg)
          if (rng_.chance(0.4)) pages.push_back(r.addr + pg * mem::kPageSize);
        if (pages.empty()) break;
        std::vector<topo::NodeId> nodes(pages.size());
        for (auto& n : nodes)
          n = static_cast<topo::NodeId>(rng_.below(topo_.num_nodes()));
        std::vector<int> status(pages.size());
        k_.sys_move_pages(t, pages, nodes, status);
        break;
      }
      case 7: {  // ranged interface / mbind-with-move
        const Region& r = pick();
        if (rng_.chance(0.5)) {
          const std::vector<Kernel::MoveRange> ranges{
              {r.addr, r.len,
               static_cast<topo::NodeId>(rng_.below(topo_.num_nodes()))}};
          k_.sys_move_pages_ranged(t, ranges);
        } else {
          k_.sys_mbind(t, r.addr, r.len, random_policy(), true);
        }
        break;
      }
      case 8: {  // mprotect none (handler will repair on next touch)
        const Region& r = pick();
        k_.sys_mprotect(t, r.addr, r.len, vm::Prot::kNone);
        break;
      }
      case 9: {  // migrate the whole process
        k_.sys_migrate_pages(t, pid_, rng_.between(1, 15), rng_.between(1, 15));
        break;
      }
    }
    clock_ = t.clock;
    k_.validate(pid_);
  }

  void finish() {
    ThreadCtx t;
    t.pid = pid_;
    t.clock = clock_;
    for (const Region& r : regions_) k_.sys_munmap(t, r.addr, r.len);
    regions_.clear();
    k_.validate(pid_);
    EXPECT_EQ(k_.phys().total_used_frames(), 0u);
    k_.set_fault_injector(nullptr);
  }

  const Kernel& kernel() const { return k_; }
  const FaultInjector& injector() const { return injector_; }

 private:
  struct Region {
    vm::Vaddr addr = 0;
    std::uint64_t len = 0;
    std::uint64_t pages = 0;
  };

  const Region& pick() { return regions_[rng_.below(regions_.size())]; }

  vm::MemPolicy random_policy() {
    switch (rng_.below(4)) {
      case 0: return vm::MemPolicy::first_touch();
      case 1: return vm::MemPolicy::bind(
          topo::node_mask_of(static_cast<topo::NodeId>(rng_.below(4))));
      case 2: return vm::MemPolicy::interleave(rng_.between(1, 15));
      default: return vm::MemPolicy::preferred(
          static_cast<topo::NodeId>(rng_.below(4)));
    }
  }

  topo::Topology topo_;
  kern::Kernel k_;
  sim::Rng rng_;
  FaultInjector injector_;
  Pid pid_ = 0;
  sim::Time clock_ = 0;
  std::vector<Region> regions_;
};

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, RandomOpSequencesKeepInvariantsPhantom) {
  Fuzzer f(GetParam(), mem::Backing::kPhantom);
  for (int i = 0; i < 400; ++i) f.step();
  f.finish();
}

TEST_P(FuzzTest, RandomOpSequencesKeepInvariantsMaterialized) {
  Fuzzer f(GetParam() ^ 0xabcdef, mem::Backing::kMaterialized);
  for (int i = 0; i < 200; ++i) f.step();
  f.finish();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 7, 1234, 99991, 0xdeadbeef));

// --- the same op sequences under injected failures ---------------------------
//
// Three fault plans (destination-alloc ENOMEM, flaky page copies plus lost
// IPIs and delayed signals, hard node exhaustion) run under the full
// invariant audit after every step: no injected failure may leak a frame,
// dangle a PTE or double-map anything, and teardown must still reach zero
// used frames.

constexpr std::string_view kPlanAllocFail = "alloc:p=0.05";
constexpr std::string_view kPlanCopyFail =
    "copy:pt=0.2,pp=0.05; shootdown:p=0.05; signal:p=0.1";
constexpr std::string_view kPlanExhaustion =
    "cap:node=1,frames=40; cap:node=3,frames=0; alloc:p=0.02";

class FaultFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string_view>> {};

TEST_P(FaultFuzzTest, InjectedFailuresKeepInvariants) {
  const auto [seed, plan] = GetParam();
  Fuzzer f(seed, mem::Backing::kMaterialized, plan);
  for (int i = 0; i < 200; ++i) f.step();
  f.finish();
}

INSTANTIATE_TEST_SUITE_P(
    Plans, FaultFuzzTest,
    ::testing::Combine(::testing::Values(1, 42, 0xdeadbeef),
                       ::testing::Values(kPlanAllocFail, kPlanCopyFail,
                                         kPlanExhaustion)),
    [](const auto& pinfo) {
      const char* plan =
          std::get<1>(pinfo.param) == kPlanAllocFail   ? "AllocFail"
          : std::get<1>(pinfo.param) == kPlanCopyFail  ? "CopyFail"
                                                       : "Exhaustion";
      return std::string(plan) + "Seed" + std::to_string(std::get<0>(pinfo.param));
    });

// --- the transactional engine under the same chaos ---------------------------
//
// Every plan rerun with migration_mode=kTransactional: injected copy faults
// must land in the bounded dirty-retry loop (transient) or the abort ->
// stop-and-copy degradation ladder (permanent), and no outcome may leak a
// shadow frame or leave a kTxn-protected PTE behind (validate checks both).

class TxnFaultFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::string_view>> {};

TEST_P(TxnFaultFuzzTest, InjectedFailuresKeepInvariants) {
  const auto [seed, plan] = GetParam();
  Fuzzer f(seed, mem::Backing::kMaterialized, plan,
           MigrationMode::kTransactional);
  for (int i = 0; i < 200; ++i) f.step();
  f.finish();
  EXPECT_EQ(f.kernel().phys().total_shadow_frames(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, TxnFaultFuzzTest,
    ::testing::Combine(::testing::Values(1, 42, 0xdeadbeef),
                       ::testing::Values(kPlanAllocFail, kPlanCopyFail,
                                         kPlanExhaustion)),
    [](const auto& pinfo) {
      const char* plan =
          std::get<1>(pinfo.param) == kPlanAllocFail   ? "AllocFail"
          : std::get<1>(pinfo.param) == kPlanCopyFail  ? "CopyFail"
                                                       : "Exhaustion";
      return std::string(plan) + "Seed" + std::to_string(std::get<0>(pinfo.param));
    });

TEST(TxnFaultFuzzDeterminism, SameSeedAndPlanGiveIdenticalOutcome) {
  auto run = [](std::uint64_t seed) {
    Fuzzer f(seed, mem::Backing::kPhantom, kPlanCopyFail,
             MigrationMode::kTransactional);
    for (int i = 0; i < 150; ++i) f.step();
    const KernelStats s = f.kernel().stats();
    const FaultInjector::Counters c = f.injector().counters();
    f.finish();
    return std::tuple{s.pages_migrated_move,  s.migrations_failed,
                      s.txn_commits,          s.txn_dirty_retries,
                      s.txn_degraded,         s.txn_aborted,
                      c.copies_checked,       c.copies_transient,
                      c.copies_permanent,     c.shootdowns_dropped};
  };
  EXPECT_EQ(run(0xabcd), run(0xabcd));
}

TEST(FaultFuzzDeterminism, SameSeedAndPlanGiveIdenticalOutcome) {
  auto run = [](std::uint64_t seed) {
    Fuzzer f(seed, mem::Backing::kPhantom, kPlanCopyFail);
    for (int i = 0; i < 150; ++i) f.step();
    const KernelStats s = f.kernel().stats();
    const FaultInjector::Counters c = f.injector().counters();
    f.finish();
    return std::tuple{s.pages_migrated_move,  s.migrations_failed,
                      s.migration_retries,    s.nexttouch_degraded,
                      s.shootdown_retries,    s.signals_delayed,
                      c.copies_checked,       c.copies_transient,
                      c.copies_permanent,     c.shootdowns_dropped};
  };
  EXPECT_EQ(run(0xabcd), run(0xabcd));
}

}  // namespace
}  // namespace numasim::kern
