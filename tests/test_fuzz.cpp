// Randomized stress: drive the kernel with arbitrary sequences of mm
// operations from a seeded PRNG and audit the full consistency invariants
// after every step (Kernel::validate). Catches frame leaks, dangling PTEs,
// replica aliasing and flag-state corruption that targeted tests miss.
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"
#include "sim/rng.hpp"

namespace numasim::kern {
namespace {

class Fuzzer {
 public:
  Fuzzer(std::uint64_t seed, mem::Backing backing)
      : topo_(topo::Topology::quad_opteron()),
        k_(topo_, backing, {}, /*max_frames_per_node=*/4096),
        rng_(seed) {
    k_.set_replication_enabled(true);
    pid_ = k_.create_process("fuzz");
    k_.set_sigsegv_handler(pid_, [this](ThreadCtx& t, const SigInfo& info) {
      // Handler: restore full access to the faulting region if we armed it.
      for (const auto& r : regions_) {
        if (info.fault_addr >= r.addr && info.fault_addr < r.addr + r.len) {
          k_.sys_mprotect(t, r.addr, r.len, vm::Prot::kReadWrite);
          return;
        }
      }
      throw SegfaultError{info.fault_addr};
    });
  }

  void step() {
    ThreadCtx t;
    t.pid = pid_;
    t.core = static_cast<topo::CoreId>(rng_.below(topo_.num_cores()));
    t.clock = clock_;

    switch (rng_.below(regions_.empty() ? 1 : 10)) {
      case 0: {  // mmap
        if (regions_.size() < 12) {
          Region r;
          r.pages = 1 + rng_.below(64);
          r.len = r.pages * mem::kPageSize;
          const vm::MemPolicy pol = random_policy();
          r.addr = k_.sys_mmap(t, r.len, vm::Prot::kReadWrite, pol, "fuzz");
          regions_.push_back(r);
        }
        break;
      }
      case 1: {  // munmap
        const std::size_t i = rng_.below(regions_.size());
        k_.sys_munmap(t, regions_[i].addr, regions_[i].len);
        regions_.erase(regions_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 2:
      case 3: {  // touch a random sub-range
        const Region& r = pick();
        const std::uint64_t off = rng_.below(r.len);
        const std::uint64_t len = 1 + rng_.below(r.len - off);
        k_.access(t, r.addr + off, len,
                  rng_.chance(0.5) ? vm::Prot::kRead : vm::Prot::kReadWrite, 3500.0);
        break;
      }
      case 4: {  // madvise next-touch
        const Region& r = pick();
        k_.sys_madvise(t, r.addr, r.len, Advice::kMigrateOnNextTouch);
        break;
      }
      case 5: {  // madvise replicate or dontneed
        const Region& r = pick();
        k_.sys_madvise(t, r.addr, r.len,
                       rng_.chance(0.5) ? Advice::kReplicate : Advice::kDontNeed);
        break;
      }
      case 6: {  // move_pages of a random subset
        const Region& r = pick();
        std::vector<vm::Vaddr> pages;
        for (std::uint64_t pg = 0; pg < r.pages; ++pg)
          if (rng_.chance(0.4)) pages.push_back(r.addr + pg * mem::kPageSize);
        if (pages.empty()) break;
        std::vector<topo::NodeId> nodes(pages.size());
        for (auto& n : nodes)
          n = static_cast<topo::NodeId>(rng_.below(topo_.num_nodes()));
        std::vector<int> status(pages.size());
        k_.sys_move_pages(t, pages, nodes, status);
        break;
      }
      case 7: {  // ranged interface / mbind-with-move
        const Region& r = pick();
        if (rng_.chance(0.5)) {
          const std::vector<Kernel::MoveRange> ranges{
              {r.addr, r.len,
               static_cast<topo::NodeId>(rng_.below(topo_.num_nodes()))}};
          k_.sys_move_pages_ranged(t, ranges);
        } else {
          k_.sys_mbind(t, r.addr, r.len, random_policy(), true);
        }
        break;
      }
      case 8: {  // mprotect none (handler will repair on next touch)
        const Region& r = pick();
        k_.sys_mprotect(t, r.addr, r.len, vm::Prot::kNone);
        break;
      }
      case 9: {  // migrate the whole process
        k_.sys_migrate_pages(t, pid_, rng_.between(1, 15), rng_.between(1, 15));
        break;
      }
    }
    clock_ = t.clock;
    k_.validate(pid_);
  }

  void finish() {
    ThreadCtx t;
    t.pid = pid_;
    t.clock = clock_;
    for (const Region& r : regions_) k_.sys_munmap(t, r.addr, r.len);
    regions_.clear();
    k_.validate(pid_);
    EXPECT_EQ(k_.phys().total_used_frames(), 0u);
  }

 private:
  struct Region {
    vm::Vaddr addr = 0;
    std::uint64_t len = 0;
    std::uint64_t pages = 0;
  };

  const Region& pick() { return regions_[rng_.below(regions_.size())]; }

  vm::MemPolicy random_policy() {
    switch (rng_.below(4)) {
      case 0: return vm::MemPolicy::first_touch();
      case 1: return vm::MemPolicy::bind(
          topo::node_mask_of(static_cast<topo::NodeId>(rng_.below(4))));
      case 2: return vm::MemPolicy::interleave(rng_.between(1, 15));
      default: return vm::MemPolicy::preferred(
          static_cast<topo::NodeId>(rng_.below(4)));
    }
  }

  topo::Topology topo_;
  kern::Kernel k_;
  sim::Rng rng_;
  Pid pid_ = 0;
  sim::Time clock_ = 0;
  std::vector<Region> regions_;
};

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, RandomOpSequencesKeepInvariantsPhantom) {
  Fuzzer f(GetParam(), mem::Backing::kPhantom);
  for (int i = 0; i < 400; ++i) f.step();
  f.finish();
}

TEST_P(FuzzTest, RandomOpSequencesKeepInvariantsMaterialized) {
  Fuzzer f(GetParam() ^ 0xabcdef, mem::Backing::kMaterialized);
  for (int i = 0; i < 200; ++i) f.step();
  f.finish();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1, 7, 1234, 99991, 0xdeadbeef));

}  // namespace
}  // namespace numasim::kern
