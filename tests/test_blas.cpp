// Tests for the simulated BLAS: numeric correctness against host references
// and timing-model properties (cache threshold, traffic amplification).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "lib/numalib.hpp"

namespace numasim::blas {
namespace {

double idx_fill(std::uint64_t r, std::uint64_t c) {
  return 0.25 * static_cast<double>(r % 13) - 0.5 * static_cast<double>(c % 7) + 1.0;
}

class BlasTest : public ::testing::Test {
 protected:
  rt::Machine m_;

  /// Allocate + populate an n x n matrix through a thread.
  static sim::Task<Matrix> make_matrix(rt::Thread& th, std::uint64_t n) {
    const std::uint64_t bytes = n * n * kElemBytes;
    const vm::Vaddr a = co_await th.mmap(bytes);
    co_await th.touch(a, bytes);
    co_return Matrix{a, n, n, n};
  }
};

TEST_F(BlasTest, GemmMinusMatchesHostReference) {
  m_.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    BlasEngine eng(m_, {.numeric = true});
    const std::uint64_t n = 48;
    const Matrix a = co_await make_matrix(th, n);
    const Matrix b = co_await make_matrix(th, n);
    const Matrix c = co_await make_matrix(th, n);
    fill_matrix(m_, a, idx_fill);
    fill_matrix(m_, b, [](std::uint64_t r, std::uint64_t cc) {
      return idx_fill(cc, r) * 0.5;
    });
    fill_matrix(m_, c, [](std::uint64_t r, std::uint64_t cc) {
      return idx_fill(r + 1, cc + 2);
    });
    const auto va = dump_matrix(m_, a);
    const auto vb = dump_matrix(m_, b);
    auto ref = dump_matrix(m_, c);

    // Sub-tiles with a leading dimension (exercises strided addressing).
    const std::uint64_t t = 32;
    co_await eng.gemm_minus(th, Tile::of(a, 8, 8, t, t), Tile::of(b, 4, 12, t, t),
                            Tile::of(c, 16, 0, t, t));

    for (std::uint64_t i = 0; i < t; ++i)
      for (std::uint64_t j = 0; j < t; ++j)
        for (std::uint64_t l = 0; l < t; ++l)
          ref[(16 + i) * n + j] -= va[(8 + i) * n + (8 + l)] * vb[(4 + l) * n + (12 + j)];

    const auto got = dump_matrix(m_, c);
    double max_err = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
      max_err = std::max(max_err, std::abs(got[i] - ref[i]));
    EXPECT_LT(max_err, 1e-9);
  });
}

TEST_F(BlasTest, Getf2TrsmGemmComposeToLu) {
  // One full block-LU step on a 2x2 block matrix must equal the unblocked
  // factorization of the whole matrix.
  m_.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    BlasEngine eng(m_, {.numeric = true});
    const std::uint64_t n = 32, half = 16;
    const Matrix a = co_await make_matrix(th, n);
    auto dominant = [](std::uint64_t r, std::uint64_t c) {
      return r == c ? 40.0 : idx_fill(r, c);
    };
    fill_matrix(m_, a, dominant);
    const auto orig = dump_matrix(m_, a);

    // Reference: unblocked LU on the host.
    auto ref = orig;
    for (std::uint64_t k = 0; k < n; ++k)
      for (std::uint64_t i = k + 1; i < n; ++i) {
        ref[i * n + k] /= ref[k * n + k];
        for (std::uint64_t j = k + 1; j < n; ++j)
          ref[i * n + j] -= ref[i * n + k] * ref[k * n + j];
      }

    // Blocked: getf2(D00); trsm row+col; gemm update; getf2(D11).
    co_await eng.getf2(th, Tile::of(a, 0, 0, half, half));
    co_await eng.trsm_lower_left(th, Tile::of(a, 0, 0, half, half),
                                 Tile::of(a, 0, half, half, half));
    co_await eng.trsm_upper_right(th, Tile::of(a, 0, 0, half, half),
                                  Tile::of(a, half, 0, half, half));
    co_await eng.gemm_minus(th, Tile::of(a, half, 0, half, half),
                            Tile::of(a, 0, half, half, half),
                            Tile::of(a, half, half, half, half));
    co_await eng.getf2(th, Tile::of(a, half, half, half, half));

    const auto got = dump_matrix(m_, a);
    double max_rel_err = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
      max_rel_err = std::max(max_rel_err,
                             std::abs(got[i] - ref[i]) / (1.0 + std::abs(ref[i])));
    EXPECT_LT(max_rel_err, 1e-6);
  });
}

TEST_F(BlasTest, AxpyAndDotNumerics) {
  m_.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    BlasEngine eng(m_, {.numeric = true});
    const std::uint64_t n = 1000;
    const vm::Vaddr x = co_await th.mmap(n * kElemBytes);
    const vm::Vaddr y = co_await th.mmap(n * kElemBytes);
    co_await th.touch(x, n * kElemBytes);
    co_await th.touch(y, n * kElemBytes);
    std::vector<double> vx(n), vy(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      vx[i] = static_cast<double>(i) * 0.01;
      vy[i] = 1.0;
    }
    m_.kernel().poke(m_.pid(), x,
                     {reinterpret_cast<std::byte*>(vx.data()), n * kElemBytes});
    m_.kernel().poke(m_.pid(), y,
                     {reinterpret_cast<std::byte*>(vy.data()), n * kElemBytes});

    co_await eng.axpy(th, 2.0, x, y, n);
    const double d = co_await eng.dot(th, x, y, n);
    double expect = 0;
    for (std::uint64_t i = 0; i < n; ++i) expect += vx[i] * (1.0 + 2.0 * vx[i]);
    EXPECT_NEAR(d, expect, 1e-6);
  });
}

TEST_F(BlasTest, CacheResidentTilesAreCheaperPerByte) {
  // Same total bytes: many small (L3-resident) GEMMs vs one large GEMM.
  // The large one pays amplified traffic and must be slower.
  m_.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    BlasEngine eng(m_, {});
    const Matrix big = co_await make_matrix(th, 1024);
    const Matrix small = co_await make_matrix(th, 128);

    const sim::Time t0 = th.now();
    co_await eng.gemm_minus(th, Tile::of(small, 0, 0, 128, 128),
                            Tile::of(small, 0, 0, 128, 128),
                            Tile::of(small, 0, 0, 128, 128));
    const sim::Time small_time = th.now() - t0;

    const sim::Time t1 = th.now();
    co_await eng.gemm_minus(th, Tile::of(big, 0, 0, 1024, 1024),
                            Tile::of(big, 0, 0, 1024, 1024),
                            Tile::of(big, 0, 0, 1024, 1024));
    const sim::Time big_time = th.now() - t1;

    // 512x more flops; amplified traffic makes it much worse than 512x.
    EXPECT_GT(big_time, 512 * small_time);
  });
}

TEST_F(BlasTest, RemoteTilesSlowerThanLocalWhenOutOfCache) {
  m_.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    BlasEngine eng(m_, {});
    const std::uint64_t n = 512;
    const std::uint64_t bytes = n * n * kElemBytes;
    const vm::Vaddr local = co_await th.mmap(bytes, vm::Prot::kReadWrite,
                                             vm::MemPolicy::bind(0b0001));
    const vm::Vaddr remote = co_await th.mmap(bytes, vm::Prot::kReadWrite,
                                              vm::MemPolicy::bind(0b1000));
    co_await th.touch(local, bytes);
    co_await th.touch(remote, bytes);
    const Matrix ml{local, n, n, n}, mr{remote, n, n, n};

    const sim::Time t0 = th.now();
    co_await eng.gemm_minus(th, Tile::of(ml, 0, 0, n, n), Tile::of(ml, 0, 0, n, n),
                            Tile::of(ml, 0, 0, n, n));
    const sim::Time local_time = th.now() - t0;

    const sim::Time t1 = th.now();
    co_await eng.gemm_minus(th, Tile::of(mr, 0, 0, n, n), Tile::of(mr, 0, 0, n, n),
                            Tile::of(mr, 0, 0, n, n));
    const sim::Time remote_time = th.now() - t1;

    EXPECT_GT(remote_time, local_time);
    EXPECT_LT(remote_time, 2 * local_time);  // bounded by the NUMA factor-ish
  });
}

TEST_F(BlasTest, NumericModeRequiresMaterializedMemory) {
  rt::Machine::Config cfg;
  cfg.backing = mem::Backing::kPhantom;
  rt::Machine phantom(cfg);
  EXPECT_THROW(BlasEngine(phantom, {.numeric = true}), std::invalid_argument);
  BlasEngine timing_only(phantom, {});  // fine
}

TEST_F(BlasTest, TileAddressing) {
  const Matrix m{0x1000, 64, 64, 64};
  const Tile t = Tile::of(m, 8, 16, 4, 4);
  EXPECT_EQ(t.base, 0x1000 + (8 * 64 + 16) * kElemBytes);
  EXPECT_EQ(t.row_addr(2), t.base + 2 * 64 * kElemBytes);
  EXPECT_EQ(t.row_bytes(), 32u);
  EXPECT_EQ(t.touched_bytes(), 128u);
}

}  // namespace
}  // namespace numasim::blas
