// Unit tests for the discrete-event engine, coroutine tasks, timeline
// resources, barrier, RNG determinism and cost statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/barrier.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace numasim::sim {
namespace {

TEST(Time, UnitHelpers) {
  EXPECT_EQ(microseconds(3), 3000u);
  EXPECT_EQ(milliseconds(2), 2'000'000u);
  EXPECT_EQ(seconds(1), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(mb_per_second(1'000'000, milliseconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(mb_per_second(123, 0), 0.0);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(500), "500 ns");
  EXPECT_EQ(format_time(microseconds(150)), "150.000 us");
  EXPECT_EQ(format_time(milliseconds(12)), "12.000 ms");
  EXPECT_EQ(format_time(seconds(30)), "30.000 s");
}

Task<void> record_at(Engine& e, Time t, std::vector<Time>& out) {
  co_await e.resume_at(t);
  out.push_back(e.now());
}

TEST(Engine, ProcessesEventsInTimeOrder) {
  Engine e;
  std::vector<Time> order;
  e.start(record_at(e, 300, order));
  e.start(record_at(e, 100, order));
  e.start(record_at(e, 200, order));
  e.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 100u);
  EXPECT_EQ(order[1], 200u);
  EXPECT_EQ(order[2], 300u);
}

Task<void> two_hops(Engine& e, std::vector<Time>& out) {
  co_await e.advance(50);
  out.push_back(e.now());
  co_await e.advance(25);
  out.push_back(e.now());
}

TEST(Engine, AdvanceAccumulates) {
  Engine e;
  std::vector<Time> out;
  e.start(two_hops(e, out));
  e.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 50u);
  EXPECT_EQ(out[1], 75u);
}

TEST(Engine, SameInstantTieBreaksByScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.start([](Engine& eng, std::vector<int>& o, int id) -> Task<void> {
      co_await eng.resume_at(42);
      o.push_back(id);
    }(e, order, i));
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Task<int> answer() { co_return 42; }

Task<void> outer(Engine& e, int& result) {
  co_await e.advance(10);
  result = co_await answer();
}

TEST(Task, NestedTaskReturnsValue) {
  Engine e;
  int result = 0;
  e.start(outer(e, result));
  e.run();
  EXPECT_EQ(result, 42);
}

Task<void> thrower(Engine& e) {
  co_await e.advance(1);
  throw std::runtime_error{"boom"};
}

TEST(Task, RootExceptionPropagatesFromRun) {
  Engine e;
  e.start(thrower(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

Task<void> catcher(Engine& e, bool& caught) {
  try {
    co_await thrower(e);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, NestedExceptionCatchable) {
  Engine e;
  bool caught = false;
  e.start(catcher(e, caught));
  e.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, CompletionCallbackAndFinished) {
  Engine e;
  bool done = false;
  const RootId id = e.start_with_callback(
      [](Engine& eng) -> Task<void> { co_await eng.advance(7); }(e),
      [&] { done = true; });
  EXPECT_FALSE(e.finished(id));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(e.finished(id));
  EXPECT_EQ(e.live_roots(), 0u);
}

TEST(Timeline, SerializesReservations) {
  Timeline tl;
  const Slot a = tl.reserve(100, 50);
  EXPECT_EQ(a.start, 100u);
  EXPECT_EQ(a.finish, 150u);
  const Slot b = tl.reserve(120, 10);  // arrives while busy
  EXPECT_EQ(b.start, 150u);
  EXPECT_EQ(b.finish, 160u);
  EXPECT_EQ(b.wait(120), 30u);
  const Slot c = tl.reserve(500, 10);  // idle resource
  EXPECT_EQ(c.start, 500u);
}

TEST(BandwidthResource, DurationMatchesRate) {
  BandwidthResource bw(1000.0);  // 1 GB/s == 1000 bytes/us
  EXPECT_EQ(bw.duration(4096), 4096u);
  const Slot s = bw.transfer(0, 4096);
  EXPECT_EQ(s.finish, 4096u);
  const Slot t = bw.transfer(0, 4096);  // queued behind the first
  EXPECT_EQ(t.start, 4096u);
  EXPECT_EQ(t.finish, 8192u);
}

TEST(BandwidthResource, LatencyAddsPerTransfer) {
  BandwidthResource bw(1000.0, 500);
  const Slot s = bw.transfer(0, 1000);
  EXPECT_EQ(s.finish, 1500u);
}

Task<void> barrier_party(Engine& e, Barrier& b, Time arrive, std::vector<Time>& out) {
  co_await e.resume_at(arrive);
  co_await b.arrive();
  out.push_back(e.now());
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Engine e;
  Barrier b(e, 3, /*phase_cost=*/10);
  std::vector<Time> out;
  e.start(barrier_party(e, b, 100, out));
  e.start(barrier_party(e, b, 250, out));
  e.start(barrier_party(e, b, 400, out));
  e.run();
  ASSERT_EQ(out.size(), 3u);
  for (Time t : out) EXPECT_EQ(t, 410u);  // last arrival + phase cost
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine e;
  Barrier b(e, 2, 0);
  std::vector<Time> out;
  auto body = [](Engine& eng, Barrier& bar, Time first,
                 std::vector<Time>& o) -> Task<void> {
    co_await eng.resume_at(first);
    co_await bar.arrive();
    o.push_back(eng.now());
    co_await eng.advance(first);  // diverge again
    co_await bar.arrive();
    o.push_back(eng.now());
  };
  e.start(body(e, b, 10, out));
  e.start(body(e, b, 30, out));
  e.run();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 30u);
  EXPECT_EQ(out[1], 30u);
  EXPECT_EQ(out[2], 60u);  // 30 + max(10,30)
  EXPECT_EQ(out[3], 60u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const auto v = r.between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CostStats, AccumulatesAndFractions) {
  CostStats s;
  s.add(CostKind::kCompute, 300);
  s.add(CostKind::kMemAccess, 100);
  s.add(CostKind::kCompute, 100);
  EXPECT_EQ(s.get(CostKind::kCompute), 400u);
  EXPECT_EQ(s.total(), 500u);
  EXPECT_DOUBLE_EQ(s.fraction(CostKind::kCompute), 0.8);
  CostStats t;
  t.add(CostKind::kCompute, 100);
  t += s;
  EXPECT_EQ(t.get(CostKind::kCompute), 500u);
  t.reset();
  EXPECT_EQ(t.total(), 0u);
}

TEST(CostStats, EveryKindHasAName) {
  for (std::size_t i = 0; i < kCostKindCount; ++i) {
    EXPECT_NE(cost_kind_name(static_cast<CostKind>(i)), "?");
  }
}

TEST(Engine, SameTimestampWakeupsRunInPostOrder) {
  // The redesigned posting API routes same-time wakeups through a FIFO.
  // Heap events that land on the current timestamp still run before FIFO
  // entries — they were posted from an earlier instant, so their sequence
  // numbers are older. A: sleep to 10, record, then advance(0) (FIFO);
  // B: sleep to 10, record. Expected order: A1, B1 (heap drained first), A2.
  Engine e;
  std::vector<int> order;
  e.start([](Engine& eng, std::vector<int>& ord) -> Task<void> {
    co_await eng.advance(10);
    ord.push_back(1);  // A1
    co_await eng.advance(0);
    ord.push_back(3);  // A2
  }(e, order));
  e.start([](Engine& eng, std::vector<int>& ord) -> Task<void> {
    co_await eng.advance(10);
    ord.push_back(2);  // B1
  }(e, order));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 10u);
}

TEST(Engine, ZeroDelayAdvancesCountAsEvents) {
  Engine e;
  e.start([](Engine& eng) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await eng.advance(0);
  }(e));
  e.run();
  // 5 wakeups + the root start event.
  EXPECT_EQ(e.events_processed(), 6u);
  EXPECT_EQ(e.now(), 0u);
}

TEST(Engine, RunsAreDeterministic) {
  auto drive = [] {
    Engine e;
    std::vector<std::uint64_t> trace;
    for (int id = 0; id < 4; ++id) {
      e.start([](Engine& eng, int me, std::vector<std::uint64_t>& tr)
                  -> Task<void> {
        for (int i = 0; i < 8; ++i) {
          co_await eng.advance(static_cast<Time>((me + 1) * 3));
          tr.push_back(eng.now() * 10 + static_cast<std::uint64_t>(me));
        }
      }(e, id, trace));
    }
    e.run();
    return std::pair{trace, e.events_processed()};
  };
  const auto a = drive();
  const auto b = drive();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FramePool, ReusesFreedCoroutineFrames) {
  // The slab pool hands back the most recently freed block of a size class.
  void* a = FramePool::allocate(192);
  FramePool::deallocate(a, 192);
  void* b = FramePool::allocate(192);
  EXPECT_EQ(a, b);
  FramePool::deallocate(b, 192);
  // Distinct size classes never alias while both are live.
  void* c = FramePool::allocate(64);
  void* d = FramePool::allocate(128);
  EXPECT_NE(c, d);
  FramePool::deallocate(c, 64);
  FramePool::deallocate(d, 128);
  // Oversized requests bypass the pool but still round-trip.
  void* big = FramePool::allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  FramePool::deallocate(big, 1 << 20);
}

}  // namespace
}  // namespace numasim::sim
