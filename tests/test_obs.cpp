// Observability subsystem tests: log2 histogram bucketing, registry
// snapshot/delta semantics and kernel binding, Chrome trace-event JSON
// well-formedness, the zero-cost/zero-randomness guarantee when no sink is
// attached, the periodic reporter cadence, and the SyscallResult wrapper.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "kern/event_log.hpp"
#include "kern/fault_injector.hpp"
#include "kern/kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace numasim::obs {
namespace {

// --- histogram bucketing -----------------------------------------------------

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketBoundsRoundTrip) {
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(Histogram::bucket_hi(2), 3u);
  EXPECT_EQ(Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Histogram::bucket_hi(64), ~std::uint64_t{0});
  for (std::size_t b = 1; b < 64; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lo(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b)), b) << b;
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_hi(b) + 1), b + 1) << b;
  }
}

TEST(Histogram, RecordTracksStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not uint64 max
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 4.0);
  EXPECT_EQ(h.bucket(0), 1u);   // {0}
  EXPECT_EQ(h.bucket(1), 1u);   // {1}
  EXPECT_EQ(h.bucket(3), 1u);   // [4,8)
  EXPECT_EQ(h.bucket(10), 1u);  // [512,1024)
  // rank(0.5) over 4 samples selects the 2nd (value 1, bucket 1).
  EXPECT_EQ(h.quantile(0.5), 1u);
  // The top quantile is clamped by the observed max, not the bucket bound.
  EXPECT_EQ(h.quantile(1.0), 1000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);  // empty
  // All four samples share bucket 3 = [4,8): the samples spread evenly
  // across (lo, hi], so ranks land at lo + (hi-lo) * rank/4.
  h.record(4);
  h.record(5);
  h.record(6);
  h.record(7);
  EXPECT_DOUBLE_EQ(h.percentile(25), 4.75);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);  // == max, exactly
}

TEST(Histogram, PercentileClampsToObservedRange) {
  Histogram h;
  h.record(1000);  // bucket 10 = [512, 1023]: interpolation alone would
                   // report 1023 for the top rank and 512 + eps for low p
  EXPECT_DOUBLE_EQ(h.percentile(0), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  // Out-of-range p is clamped, not rejected.
  EXPECT_DOUBLE_EQ(h.percentile(-5), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(250), 1000.0);
}

TEST(Histogram, PercentileIsMonotoneAndBoundedByQuantile) {
  Histogram h;
  std::uint64_t x = 88172645463325252ull;  // deterministic xorshift spread
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(x % 100000);
  }
  double prev = -1.0;
  for (double p = 0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()));
    // quantile() reports the rank's bucket upper bound; the interpolated
    // estimate never exceeds it.
    EXPECT_LE(v, static_cast<double>(h.quantile(p / 100.0)) + 1e-9) << p;
    prev = v;
  }
}

TEST(Histogram, SnapshotPercentileMatchesLive) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  for (std::uint64_t v : {3u, 17u, 90u, 1500u, 70000u}) h.record(v);
  const Snapshot s = reg.snapshot();
  const HistogramSnap& hs = s.histograms.at("lat");
  for (double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(hs.percentile(p), h.percentile(p)) << p;
  EXPECT_DOUBLE_EQ(HistogramSnap{}.percentile(50), 0.0);  // empty snap
}

// --- registry ----------------------------------------------------------------

TEST(Registry, OwnedBoundAndRetire) {
  Registry reg;
  reg.counter("a").inc(3);
  std::uint64_t src = 5;
  reg.bind_counter("kern.x", &src);

  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counters.at("a"), 3u);
  EXPECT_EQ(s.counters.at("kern.x"), 5u);

  src = 7;  // bound counters read through the pointer at snapshot time
  EXPECT_EQ(reg.snapshot().counters.at("kern.x"), 7u);

  reg.retire("kern.");
  src = 999;  // must no longer be dereferenced
  EXPECT_EQ(reg.snapshot().counters.at("kern.x"), 7u);

  // Re-binding after retire sums with the retired remainder.
  std::uint64_t src2 = 10;
  reg.bind_counter("kern.x", &src2);
  EXPECT_EQ(reg.snapshot().counters.at("kern.x"), 17u);
}

TEST(Registry, StableReferencesAcrossInserts) {
  Registry reg;
  Counter& a = reg.counter("a");
  Histogram& h = reg.histogram("h");
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name).inc();
  }
  a.inc(42);
  h.record(9);
  EXPECT_EQ(reg.counter("a").value(), 42u);
  EXPECT_EQ(reg.histogram("h").count(), 1u);
}

TEST(Registry, SnapshotDelta) {
  Registry reg;
  reg.counter("events").inc(10);
  reg.gauge("level").set(3);
  reg.histogram("lat").record(100);

  Snapshot before = reg.snapshot();
  reg.counter("events").inc(5);
  reg.gauge("level").set(-2);
  reg.histogram("lat").record(200);
  reg.histogram("lat").record(300);
  Snapshot after = reg.snapshot();

  Snapshot d = after.delta_since(before);
  EXPECT_EQ(d.counters.at("events"), 5u);
  EXPECT_EQ(d.gauges.at("level"), -2);  // gauges report the later level
  EXPECT_EQ(d.histograms.at("lat").count, 2u);
  EXPECT_EQ(d.histograms.at("lat").sum, 500u);
}

// --- kernel binding ----------------------------------------------------------

class ObsKernelTest : public ::testing::Test {
 protected:
  ObsKernelTest() : topo_(topo::Topology::quad_opteron()) {}

  static kern::ThreadCtx ctx_on(kern::Pid pid, topo::CoreId core) {
    kern::ThreadCtx t;
    t.pid = pid;
    t.core = core;
    return t;
  }

  /// Fault-heavy workload: populate on node 0, mark migrate-on-next-touch,
  /// touch everything from node 1. Returns the toucher's final clock.
  static sim::Time workload(kern::Kernel& k) {
    const kern::Pid pid = k.create_process("obs");
    kern::ThreadCtx t0 = ctx_on(pid, 0);
    const std::uint64_t len = 64 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t0, len, vm::Prot::kReadWrite, {}, "w");
    k.access(t0, a, len, vm::Prot::kWrite, 3500.0);
    kern::ThreadCtx t1 = ctx_on(pid, 4);
    t1.tid = 1;
    t1.clock = t0.clock;
    EXPECT_EQ(k.sys_madvise(t1, a, len, kern::Advice::kMigrateOnNextTouch), 0);
    k.access(t1, a, len, vm::Prot::kReadWrite, 3500.0);
    return t1.clock;
  }

  topo::Topology topo_;
};

TEST_F(ObsKernelTest, RegistryDeltaMatchesKernelStats) {
  // Declared before the kernel: an attached registry must outlive it (the
  // kernel's destructor retires its bound counters into the registry).
  Registry reg;
  kern::Kernel k(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  k.set_metrics(&reg);
  const kern::KernelStats s0 = k.stats();
  const Snapshot snap0 = reg.snapshot();

  workload(k);

  const kern::KernelStats s1 = k.stats();
  const Snapshot d = reg.snapshot().delta_since(snap0);
  EXPECT_GT(s1.minor_faults, s0.minor_faults);
  EXPECT_GT(s1.pages_migrated_nexttouch, s0.pages_migrated_nexttouch);
  EXPECT_EQ(d.counters.at("kern.minor_faults"), s1.minor_faults - s0.minor_faults);
  EXPECT_EQ(d.counters.at("kern.nexttouch_faults"),
            s1.nexttouch_faults - s0.nexttouch_faults);
  EXPECT_EQ(d.counters.at("kern.pages_migrated_nexttouch"),
            s1.pages_migrated_nexttouch - s0.pages_migrated_nexttouch);
  EXPECT_EQ(d.counters.at("kern.tlb_shootdowns"),
            s1.tlb_shootdowns - s0.tlb_shootdowns);

  // The latency histograms saw the same traffic.
  EXPECT_GT(d.histograms.at("kern.fault_service_ns").count, 0u);
  EXPECT_EQ(d.histograms.at("kern.migrate_page_ns").count,
            s1.pages_migrated_nexttouch - s0.pages_migrated_nexttouch);

  // Per-node memory gauges reflect live placement.
  std::int64_t used = 0;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n)
    used += reg.snapshot().gauges.at("mem.used_frames.node" + std::to_string(n));
  EXPECT_EQ(static_cast<std::uint64_t>(used), k.phys().total_used_frames());
}

TEST_F(ObsKernelTest, RegistryAccumulatesAcrossKernelGenerations) {
  Registry reg;
  std::uint64_t total_faults = 0;
  for (int gen = 0; gen < 3; ++gen) {
    kern::Kernel k(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
    k.set_metrics(&reg);
    workload(k);
    total_faults += k.stats().minor_faults;
  }  // ~Kernel retires the bound counters into the registry
  EXPECT_EQ(reg.snapshot().counters.at("kern.minor_faults"), total_faults);
}

// --- zero cost / zero randomness without sinks -------------------------------

void expect_stats_eq(const kern::KernelStats& a, const kern::KernelStats& b) {
  EXPECT_EQ(a.minor_faults, b.minor_faults);
  EXPECT_EQ(a.protection_faults, b.protection_faults);
  EXPECT_EQ(a.nexttouch_faults, b.nexttouch_faults);
  EXPECT_EQ(a.pages_migrated_move, b.pages_migrated_move);
  EXPECT_EQ(a.pages_migrated_process, b.pages_migrated_process);
  EXPECT_EQ(a.pages_migrated_nexttouch, b.pages_migrated_nexttouch);
  EXPECT_EQ(a.tlb_shootdowns, b.tlb_shootdowns);
  EXPECT_EQ(a.signals_delivered, b.signals_delivered);
  EXPECT_EQ(a.migrations_failed, b.migrations_failed);
  EXPECT_EQ(a.migration_retries, b.migration_retries);
  EXPECT_EQ(a.nexttouch_degraded, b.nexttouch_degraded);
  EXPECT_EQ(a.shootdown_retries, b.shootdown_retries);
  EXPECT_EQ(a.signals_delayed, b.signals_delayed);
  EXPECT_EQ(a.alloc_stalls, b.alloc_stalls);
}

TEST_F(ObsKernelTest, SinksDrawNoSimulatedCostOrRandomness) {
  // A probabilistic fault plan makes any extra RNG draw visible as a
  // diverging schedule; instrumentation must not perturb it.
  kern::FaultPlan plan;
  plan.copy_transient_p = 0.05;
  plan.shootdown_drop_p = 0.05;

  // Baseline: no observability at all.
  kern::Kernel bare(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  kern::FaultInjector inj_bare(plan, /*seed=*/42);
  bare.set_fault_injector(&inj_bare);
  const sim::Time t_bare = workload(bare);

  // Full instrumentation: metrics + trace writer + a null sink. Registry and
  // sinks are declared before the kernel so they outlive it.
  Registry reg;
  ChromeTraceWriter writer;
  NullSink null;
  kern::Kernel traced(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  kern::FaultInjector inj_traced(plan, /*seed=*/42);
  traced.set_fault_injector(&inj_traced);
  traced.set_metrics(&reg);
  traced.add_trace_sink(&writer);
  traced.add_trace_sink(&null);
  const sim::Time t_traced = workload(traced);
  EXPECT_GT(writer.size(), 0u);

  // Sink attached then removed before the workload: identical to bare.
  kern::Kernel removed(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  kern::FaultInjector inj_removed(plan, /*seed=*/42);
  removed.set_fault_injector(&inj_removed);
  NullSink transient;
  removed.add_trace_sink(&transient);
  removed.remove_trace_sink(&transient);
  EXPECT_FALSE(removed.tracing());
  const sim::Time t_removed = workload(removed);

  EXPECT_EQ(t_bare, t_traced);
  EXPECT_EQ(t_bare, t_removed);
  expect_stats_eq(bare.stats(), traced.stats());
  expect_stats_eq(bare.stats(), removed.stats());
}

// --- Chrome trace JSON -------------------------------------------------------

/// Minimal recursive-descent JSON syntax validator (objects, arrays, strings
/// with escapes, numbers, literals). Returns true iff `s` is one valid JSON
/// value with nothing trailing.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0)
              return false;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

TEST(ChromeTrace, EmitsWellFormedJson) {
  ChromeTraceWriter w;
  TraceEvent span;
  span.kind = TraceEvent::Kind::kSpan;
  span.ts = 1500;
  span.dur = 250;
  span.pid = 1;
  span.tid = 2;
  span.cat = "kern";
  span.name = "migrate-page";
  span.add_arg("vpn", 0x42).add_arg("from", -1);
  w.record(span);

  TraceEvent inst;
  inst.kind = TraceEvent::Kind::kInstant;
  inst.ts = 1234567;
  inst.name = "minor-fault";
  w.record(inst);

  const std::string json = w.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);   // instant scope
  // Timestamps are microseconds with the nanosecond fraction preserved.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos);
  EXPECT_NE(json.find("\"from\":-1"), std::string::npos);
}

TEST(ChromeTrace, EscapesHostileStrings) {
  ChromeTraceWriter w;
  TraceEvent e;
  e.name = "a\"b\\c\nd\te\x01" "f";  // concat keeps the hex escape one byte
  e.cat = "we\"ird";
  w.record(e);
  const std::string json = w.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
}

TEST(ChromeTrace, CapacityBoundsBufferAndCountsDrops) {
  ChromeTraceWriter w(/*capacity=*/2);
  TraceEvent e;
  e.name = "x";
  w.record(e);
  w.record(e);
  w.record(e);
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.dropped(), 1u);
  EXPECT_TRUE(JsonValidator(w.to_json()).valid());
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.dropped(), 0u);
}

TEST(ChromeTrace, WriteFileRoundTrips) {
  ChromeTraceWriter w;
  TraceEvent e;
  e.name = "ev";
  e.ts = 42;
  w.record(e);
  const std::string path = ::testing::TempDir() + "numasim_trace_test.json";
  ASSERT_TRUE(w.write_file(path));
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), w.to_json());
  EXPECT_TRUE(JsonValidator(buf.str()).valid());
  std::remove(path.c_str());
}

TEST_F(ObsKernelTest, KernelTraceHasPerThreadFaultAndMigrationSlices) {
  ChromeTraceWriter w;
  kern::Kernel k(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  k.add_trace_sink(&w);
  workload(k);
  ASSERT_GT(w.size(), 0u);
  const std::string json = w.to_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"name\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"migrate-page\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sys_madvise\""), std::string::npos);
  // Owner (tid 0) and toucher (tid 1) land on distinct timeline rows.
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

// --- EventLog as a TraceSink -------------------------------------------------

TEST(EventLogSink, AdaptsInstantsAndIgnoresSpans) {
  kern::EventLog log;
  obs::TraceSink& sink = log;

  TraceEvent inst;
  inst.ts = 10;
  inst.tid = 3;
  inst.name = "minor-fault";
  inst.add_arg("vpn", 7).add_arg("pages", 1).add_arg("from", -1).add_arg("to", 2);
  sink.record(inst);

  TraceEvent span = inst;
  span.kind = TraceEvent::Kind::kSpan;
  span.dur = 100;
  sink.record(span);  // spans are not part of the legacy instant stream

  TraceEvent unknown;
  unknown.name = "not-an-event-type";
  sink.record(unknown);

  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.count(kern::EventType::kMinorFault), 1u);
  EXPECT_EQ(log.events().front().vpn, 7u);
  EXPECT_EQ(log.events().front().to, 2u);
  EXPECT_EQ(log.events().front().from, topo::kInvalidNode);
}

// --- periodic reporter -------------------------------------------------------

TEST(PeriodicReporter, EmitsOnIntervalAndCatchesUpOnce) {
  Registry reg;
  reg.counter("ticks");
  std::vector<std::string> reports;
  PeriodicReporter::Output out = [&](const std::string& s) {
    reports.push_back(s);
  };
  PeriodicReporter rep(reg, /*interval=*/1000, out);

  EXPECT_EQ(rep.poll(0), 0);  // first poll arms, no report
  reg.counter("ticks").inc(3);
  EXPECT_EQ(rep.poll(999), 0);
  EXPECT_EQ(rep.poll(1000), 1);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("numastat @1000ns"), std::string::npos);
  EXPECT_NE(reports[0].find("ticks = 3"), std::string::npos);

  // A long idle gap yields one catch-up report, not a flood.
  reg.counter("ticks").inc(1);
  EXPECT_EQ(rep.poll(10'000), 1);
  EXPECT_EQ(reports.size(), 2u);
  EXPECT_NE(reports[1].find("ticks = 1"), std::string::npos);

  rep.final_report(10'500);
  EXPECT_EQ(reports.size(), 3u);
  EXPECT_EQ(rep.reports(), 3u);
}

TEST(PeriodicReporter, DrivenBySinkEvents) {
  Registry reg;
  std::vector<std::string> reports;
  PeriodicReporter::Output out = [&](const std::string& s) {
    reports.push_back(s);
  };
  PeriodicReporter rep(reg, /*interval=*/100, out);
  TraceSink& sink = rep;
  TraceEvent e;
  e.ts = 0;
  sink.record(e);  // arms
  e.ts = 250;
  sink.record(e);  // one interval elapsed
  EXPECT_EQ(reports.size(), 1u);
}

// --- SyscallResult -----------------------------------------------------------

TEST(SyscallResult, WrapsTheLinuxReturnConvention) {
  const kern::SyscallResult ok0;
  EXPECT_TRUE(ok0.ok());
  EXPECT_EQ(ok0.error(), 0);
  EXPECT_EQ(ok0.count(), 0);
  EXPECT_EQ(ok0, 0);

  const kern::SyscallResult moved = 32;
  EXPECT_TRUE(moved.ok());
  EXPECT_EQ(moved.count(), 32);
  EXPECT_EQ(static_cast<long>(moved), 32);

  const kern::SyscallResult bad = -kern::kEINVAL;
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), kern::kEINVAL);
  EXPECT_EQ(bad.count(), 0);
  EXPECT_EQ(bad, -kern::kEINVAL);
}

}  // namespace
}  // namespace numasim::obs
