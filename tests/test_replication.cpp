// Tests for the read-only replication extension (the paper's future work:
// "replicating read-only pages among NUMA nodes so as to achieve local
// access performance from anywhere").
#include <gtest/gtest.h>

#include <vector>

#include "kern/kernel.hpp"

namespace numasim::kern {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : topo_(topo::Topology::quad_opteron()),
        k_(kern::KernelConfig{.topology = topo_, .backing = mem::Backing::kMaterialized}) {
    k_.set_replication_enabled(true);
    pid_ = k_.create_process("repl");
  }

  ThreadCtx ctx_on(topo::CoreId core, sim::Time clock = 0) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    t.clock = clock;
    return t;
  }

  /// Buffer on node 0, populated + filled with a pattern.
  vm::Vaddr make_buffer(std::uint64_t npages) {
    ThreadCtx t = ctx_on(0);
    len_ = npages * mem::kPageSize;
    const vm::Vaddr a = k_.sys_mmap(t, len_, vm::Prot::kReadWrite, {}, "r");
    k_.access(t, a, len_, vm::Prot::kWrite, 3500.0);
    std::vector<std::byte> data(len_);
    for (std::size_t i = 0; i < len_; ++i) data[i] = static_cast<std::byte>(i * 11);
    k_.poke(pid_, a, data);
    return a;
  }

  topo::Topology topo_;
  kern::Kernel k_;
  Pid pid_ = 0;
  std::uint64_t len_ = 0;
};

TEST_F(ReplicationTest, DisabledByDefault) {
  Kernel plain(KernelConfig{.topology = topo_, .backing = mem::Backing::kPhantom});
  const Pid pid = plain.create_process();
  ThreadCtx t;
  t.pid = pid;
  const vm::Vaddr a = plain.sys_mmap(t, mem::kPageSize, vm::Prot::kReadWrite);
  plain.access(t, a, mem::kPageSize, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(plain.sys_madvise(t, a, mem::kPageSize, Advice::kReplicate), -kENOSYS);
}

TEST_F(ReplicationTest, ReadersGetLocalReplicas) {
  const vm::Vaddr a = make_buffer(8);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);

  // Readers on nodes 1, 2, 3: each first read creates that node's replicas.
  for (topo::CoreId core : {4u, 8u, 12u}) {
    ThreadCtx t = ctx_on(core, sim::seconds(1));
    const AccessResult r = k_.access(t, a, len_, vm::Prot::kRead, 3500.0);
    EXPECT_EQ(r.sigsegv_delivered, 0u);
  }
  EXPECT_EQ(k_.replica_pages(pid_), 3u * 8u);
  EXPECT_EQ(k_.stats().replica_pages, 24u);
  // Home pages stay on node 0.
  EXPECT_EQ(k_.pages_on_node(pid_, a, len_, 0), 8u);
}

TEST_F(ReplicationTest, RepeatReadsAreLocalAndCheaper) {
  const vm::Vaddr a = make_buffer(64);
  ThreadCtx t0 = ctx_on(0);

  // Baseline: remote read without replication.
  ThreadCtx remote = ctx_on(12, sim::seconds(1));
  k_.access(remote, a, len_, vm::Prot::kRead, 3500.0);
  const sim::Time cold = remote.clock - sim::seconds(1);

  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);
  ThreadCtx warmup = ctx_on(12, sim::seconds(2));
  k_.access(warmup, a, len_, vm::Prot::kRead, 3500.0);  // builds replicas

  ThreadCtx warm = ctx_on(12, sim::seconds(3));
  k_.access(warm, a, len_, vm::Prot::kRead, 3500.0);
  const sim::Time replicated = warm.clock - sim::seconds(3);
  // Replica reads are local: faster than the 2-hop remote read.
  EXPECT_LT(replicated, cold);
}

TEST_F(ReplicationTest, WriteCollapsesToWriterNode) {
  const vm::Vaddr a = make_buffer(8);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);

  for (topo::CoreId core : {4u, 8u}) {
    ThreadCtx t = ctx_on(core, sim::seconds(1));
    k_.access(t, a, len_, vm::Prot::kRead, 3500.0);
  }
  ASSERT_EQ(k_.replica_pages(pid_), 16u);

  // Writer on node 3: replicas die, pages move to node 3, data intact.
  ThreadCtx w = ctx_on(13, sim::seconds(2));
  k_.access(w, a, len_, vm::Prot::kReadWrite, 3500.0);
  EXPECT_EQ(k_.replica_pages(pid_), 0u);
  EXPECT_EQ(k_.stats().replica_collapses, 8u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len_, 3), 8u);

  std::vector<std::byte> out(len_);
  ASSERT_TRUE(k_.peek(pid_, a, out));
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(out[i], static_cast<std::byte>(i * 11));

  // Writes work normally afterwards (flag cleared).
  const AccessResult again = k_.access(w, a, len_, vm::Prot::kWrite, 3500.0);
  EXPECT_EQ(again.nexttouch_migrations, 0u);
}

TEST(ReplicationRangeLock, WriteCollapsesUnderRangeModel) {
  // The collapse path serializes against migration through the lock model;
  // the scalable range engine must reach the same end state as coarse.
  const topo::Topology topo = topo::Topology::quad_opteron();
  Kernel k(KernelConfig{.topology = topo,
                        .backing = mem::Backing::kMaterialized,
                        .lock_model = LockModel::kRange});
  k.set_replication_enabled(true);
  const Pid pid = k.create_process("repl-range");

  ThreadCtx t0;
  t0.pid = pid;
  t0.core = 0;
  const std::uint64_t len = 8 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t0, len, vm::Prot::kReadWrite, {}, "r");
  k.access(t0, a, len, vm::Prot::kWrite, 3500.0);
  std::vector<std::byte> data(len);
  for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::byte>(i * 7);
  k.poke(pid, a, data);
  ASSERT_EQ(k.sys_madvise(t0, a, len, Advice::kReplicate), 0);

  for (topo::CoreId core : {4u, 8u}) {
    ThreadCtx t;
    t.pid = pid;
    t.core = core;
    t.clock = sim::seconds(1);
    k.access(t, a, len, vm::Prot::kRead, 3500.0);
  }
  ASSERT_EQ(k.replica_pages(pid), 16u);

  ThreadCtx w;
  w.pid = pid;
  w.core = 13;  // node 3
  w.clock = sim::seconds(2);
  k.access(w, a, len, vm::Prot::kReadWrite, 3500.0);
  EXPECT_EQ(k.replica_pages(pid), 0u);
  EXPECT_EQ(k.stats().replica_collapses, 8u);
  EXPECT_EQ(k.pages_on_node(pid, a, len, 3), 8u);

  std::vector<std::byte> out(len);
  ASSERT_TRUE(k.peek(pid, a, out));
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(out[i], static_cast<std::byte>(i * 7));
  k.validate(pid);
}

TEST_F(ReplicationTest, MunmapFreesReplicaFrames) {
  const vm::Vaddr a = make_buffer(8);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);
  ThreadCtx t1 = ctx_on(4, sim::seconds(1));
  k_.access(t1, a, len_, vm::Prot::kRead, 3500.0);
  ASSERT_GT(k_.replica_pages(pid_), 0u);

  EXPECT_EQ(k_.sys_munmap(t0, a, len_), 0);
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
  EXPECT_EQ(k_.replica_pages(pid_), 0u);
}

TEST_F(ReplicationTest, DontNeedDropsReplicas) {
  const vm::Vaddr a = make_buffer(4);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);
  ThreadCtx t1 = ctx_on(8, sim::seconds(1));
  k_.access(t1, a, len_, vm::Prot::kRead, 3500.0);
  ASSERT_EQ(k_.replica_pages(pid_), 4u);
  EXPECT_EQ(k_.sys_madvise(t0, a, len_, Advice::kDontNeed), 0);
  EXPECT_EQ(k_.replica_pages(pid_), 0u);
  EXPECT_EQ(k_.phys().total_used_frames(), 0u);
}

TEST_F(ReplicationTest, ReplicateOverridesNextTouch) {
  const vm::Vaddr a = make_buffer(4);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kMigrateOnNextTouch), 0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);
  ThreadCtx t1 = ctx_on(4, sim::seconds(1));
  const AccessResult r = k_.access(t1, a, len_, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r.nexttouch_migrations, 0u);  // replicated, not migrated
  EXPECT_EQ(k_.pages_on_node(pid_, a, len_, 0), 4u);
  EXPECT_EQ(k_.replica_pages(pid_), 4u);
}

// Property: replicas on every node never change what readers observe, for
// any interleaving of readers before the collapse.
class ReplicaProperty : public ReplicationTest,
                        public ::testing::WithParamInterface<unsigned> {};

TEST_P(ReplicaProperty, DataIdenticalEverywhere) {
  const unsigned readers = GetParam();
  const vm::Vaddr a = make_buffer(16);
  ThreadCtx t0 = ctx_on(0);
  ASSERT_EQ(k_.sys_madvise(t0, a, len_, Advice::kReplicate), 0);
  for (unsigned i = 0; i < readers; ++i) {
    ThreadCtx t = ctx_on((i % 4) * 4 + i % 2, sim::seconds(1 + i));
    std::vector<std::byte> out(len_);
    k_.access(t, a, len_, vm::Prot::kRead, 3500.0);
    ASSERT_TRUE(k_.peek(pid_, a, out));
    for (std::size_t j = 0; j < out.size(); j += 97)
      ASSERT_EQ(out[j], static_cast<std::byte>(j * 11));
  }
  EXPECT_LE(k_.replica_pages(pid_), 3u * 16u);
}

INSTANTIATE_TEST_SUITE_P(Readers, ReplicaProperty, ::testing::Values(1, 3, 6, 12));

}  // namespace
}  // namespace numasim::kern
