// Tests for the scalable migration engine: the SharedTimeline rwsem and
// per-VMA RangeLock primitives, kCoarse/kRange equivalence on a single
// thread, determinism of both models, parallel scaling of the range engine,
// and the kmigrated async daemons.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kern/hw_state.hpp"
#include "kern/kernel.hpp"
#include "rt/team.hpp"
#include "sim/resource.hpp"

namespace numasim {
namespace {

kern::KernelConfig phantom_cfg(kern::LockModel model) {
  kern::KernelConfig cfg;
  cfg.backing = mem::Backing::kPhantom;
  cfg.lock_model = model;
  return cfg;
}

// --- SharedTimeline (mmap_sem as a reader/writer resource) -------------------

TEST(SharedTimeline, ReadersOverlap) {
  sim::SharedTimeline rw;
  const sim::Slot a = rw.reserve_shared(0, 100);
  const sim::Slot b = rw.reserve_shared(10, 100);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 10u);  // not queued behind the first reader
  EXPECT_EQ(rw.free_at(), 110u);
}

TEST(SharedTimeline, WriterWaitsForAllReaders) {
  sim::SharedTimeline rw;
  rw.reserve_shared(0, 100);
  rw.reserve_shared(0, 250);
  const sim::Slot w = rw.reserve_exclusive(50, 40);
  EXPECT_EQ(w.start, 250u);
  EXPECT_EQ(w.finish, 290u);
}

TEST(SharedTimeline, ReadersQueueBehindWriter) {
  sim::SharedTimeline rw;
  rw.reserve_exclusive(0, 100);
  const sim::Slot r = rw.reserve_shared(10, 20);
  EXPECT_EQ(r.start, 100u);
}

// --- RangeLock (per-VMA page-interval locks) ---------------------------------

TEST(RangeLock, DisjointRangesProceedInParallel) {
  kern::RangeLock rl;
  const sim::Slot a = rl.reserve(0, 100, 0, 16, /*exclusive=*/true, 0, 1500);
  const sim::Slot b = rl.reserve(0, 100, 16, 32, /*exclusive=*/true, 1, 1500);
  EXPECT_EQ(a.start, 0u);
  EXPECT_EQ(b.start, 0u);       // no conflict: starts immediately...
  EXPECT_EQ(b.finish, 100u);    // ...and pays no ownership bounce.
}

TEST(RangeLock, OverlappingExclusiveQueuesWithBounce) {
  kern::RangeLock rl;
  const sim::Slot a = rl.reserve(0, 100, 0, 16, /*exclusive=*/true, 0, 1500);
  const sim::Slot b = rl.reserve(0, 100, 8, 24, /*exclusive=*/true, 1, 1500);
  EXPECT_EQ(b.start, a.finish);         // queued behind the overlapping hold
  EXPECT_EQ(b.finish, a.finish + 1600); // + cacheline bounce on owner change
}

TEST(RangeLock, ReaderReaderOverlapIsFree) {
  kern::RangeLock rl;
  rl.reserve(0, 100, 0, 16, /*exclusive=*/false, 0, 1500);
  const sim::Slot b = rl.reserve(0, 100, 0, 16, /*exclusive=*/false, 1, 1500);
  EXPECT_EQ(b.start, 0u);
  EXPECT_EQ(b.finish, 100u);
}

TEST(RangeLock, SameOwnerHoldsCoalesce) {
  kern::RangeLock rl;
  for (std::uint64_t i = 0; i < 32; ++i)
    rl.reserve(i * 10, 10, i * 16, (i + 1) * 16, /*exclusive=*/true, 0, 1500);
  // Adjacent same-owner/same-mode holds merge instead of accreting.
  EXPECT_EQ(rl.live_holds(), 1u);
}

// --- single-thread equivalence and determinism -------------------------------

/// A representative single-thread workload: allocate, first-touch, migrate
/// with move_pages, arm next-touch and fault it over from another core,
/// mprotect and unmap. Returns the final clock; `csv` gets the event log.
sim::Time st_workload(kern::Kernel& k, std::string* csv) {
  kern::EventLog log(16384);
  k.set_event_log(&log);
  const kern::Pid pid = k.create_process("eq");
  kern::ThreadCtx t;
  t.pid = pid;
  t.core = 0;
  const std::uint64_t len = 96 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);

  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < len / 2; i += mem::kPageSize)
    pages.push_back(a + i);
  std::vector<topo::NodeId> nodes(pages.size(), 1);
  std::vector<int> status(pages.size(), 0);
  EXPECT_TRUE(k.sys_move_pages(t, pages, nodes, status).ok());

  EXPECT_TRUE(k.sys_madvise(t, a, len, kern::Advice::kMigrateOnNextTouch).ok());
  t.core = 4;  // node 1 touches: every page migrates over
  k.access(t, a, len, vm::Prot::kRead, 3500.0);

  // Back on the original core: the coarse model's mmap_lock charges a
  // cacheline bounce on owner change — a contention artifact the range
  // engine deliberately does not have — so the equivalence claim is for a
  // thread that keeps its lock-owning core.
  t.core = 0;
  EXPECT_TRUE(k.sys_mprotect(t, a, len / 4, vm::Prot::kRead).ok());
  EXPECT_TRUE(k.sys_munmap(t, a, len).ok());
  *csv = log.to_csv();
  k.set_event_log(nullptr);
  return t.clock;
}

TEST(LockModelEquivalence, SingleThreadRangeMatchesCoarseEventForEvent) {
  std::string csv_coarse, csv_range;
  kern::Kernel coarse(phantom_cfg(kern::LockModel::kCoarse));
  kern::Kernel range(phantom_cfg(kern::LockModel::kRange));
  const sim::Time t_coarse = st_workload(coarse, &csv_coarse);
  const sim::Time t_range = st_workload(range, &csv_range);
  EXPECT_EQ(csv_coarse, csv_range);
  EXPECT_EQ(t_coarse, t_range);
}

/// Fig. 7 workload: `nthreads` workers on node 1 each move_pages their own
/// chunk of a node-0 buffer. Returns the fork-to-join span; `csv` (optional)
/// gets the run's event log for determinism checks.
sim::Time mt_migrate_span(kern::LockModel model, std::uint64_t npages,
                          unsigned nthreads, std::string* csv = nullptr) {
  rt::Machine m(phantom_cfg(model));
  kern::EventLog log(1 << 18);
  if (csv != nullptr) m.kernel().set_event_log(&log);
  sim::Time span = 0;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);
    rt::Team team = rt::Team::node_cores(m, 1, nthreads);
    const std::uint64_t chunk = npages / nthreads;
    rt::Team::WorkerFn worker = [&, chunk, buf](unsigned tid,
                                                rt::Thread& w) -> sim::Task<void> {
      co_await w.move_range(buf + tid * chunk * mem::kPageSize,
                            chunk * mem::kPageSize, 1);
    };
    co_await team.parallel(th, std::move(worker));
    span = team.last_span();
  });
  if (csv != nullptr) {
    *csv = log.to_csv();
    m.kernel().set_event_log(nullptr);
  }
  return span;
}

TEST(LockModelDeterminism, RepeatedRunsAreByteIdentical) {
  for (const kern::LockModel model :
       {kern::LockModel::kCoarse, kern::LockModel::kRange}) {
    std::string csv1, csv2;
    const sim::Time s1 = mt_migrate_span(model, 512, 4, &csv1);
    const sim::Time s2 = mt_migrate_span(model, 512, 4, &csv2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(csv1, csv2);
  }
}

TEST(LockModelScaling, RangeEngineScalesSyncMigration) {
  const sim::Time r1 = mt_migrate_span(kern::LockModel::kRange, 2048, 1);
  const sim::Time r4 = mt_migrate_span(kern::LockModel::kRange, 2048, 4);
  // Aggregate throughput over the same buffer: span ratio == speedup.
  EXPECT_GE(static_cast<double>(r1) / static_cast<double>(r4), 2.5);

  // The coarse model plateaus: the range engine must beat it at 4 threads.
  const sim::Time c4 = mt_migrate_span(kern::LockModel::kCoarse, 2048, 4);
  EXPECT_LT(r4, c4);

  // With one thread the two engines are indistinguishable.
  const sim::Time c1 = mt_migrate_span(kern::LockModel::kCoarse, 2048, 1);
  EXPECT_EQ(r1, c1);
}

// --- kmigrated async daemons -------------------------------------------------

TEST(Kmigrated, AsyncMoveRangeCompletesAfterDrain) {
  rt::Machine m(phantom_cfg(kern::LockModel::kRange));
  const std::uint64_t npages = 64;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);

    const sim::Time before = th.now();
    const kern::SyscallResult r = co_await th.move_range_async(buf, len, 1);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.count(), static_cast<long>(npages));
    // The submitter pays only entry + submit costs, not the migration.
    const kern::CostModel& cm = m.kernel().cost();
    EXPECT_EQ(th.now() - before, cm.syscall_entry + cm.kmigrated_submit);

    co_await th.kmigrated_drain();
    EXPECT_EQ(m.kernel().pages_on_node(m.pid(), buf, len, 1), npages);
  });
  EXPECT_EQ(m.kernel().stats().kmigrated_batches, 1u);
  EXPECT_EQ(m.kernel().stats().kmigrated_pages, npages);
  EXPECT_EQ(m.kernel().stats().kmigrated_batches_dropped, 0u);
}

TEST(Kmigrated, DrainAdvancesPastDaemonCompletion) {
  rt::Machine m(phantom_cfg(kern::LockModel::kCoarse));
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = 32 * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);
    co_await th.move_range_async(buf, len, 2);
    const sim::Time submitted = th.now();
    co_await th.kmigrated_drain();
    // The daemon needed wakeup + copy time beyond the submit instant.
    EXPECT_GT(th.now(), submitted);
    // A second drain with nothing in flight is free.
    const sim::Time drained = th.now();
    co_await th.kmigrated_drain();
    EXPECT_EQ(th.now(), drained);
  });
}

TEST(Kmigrated, NextTouchMigrateAheadDrainsTheWindow) {
  kern::KernelConfig cfg = phantom_cfg(kern::LockModel::kCoarse);
  cfg.nt_async_window = 16;
  kern::Kernel k(cfg);
  const kern::Pid pid = k.create_process("nta");
  kern::ThreadCtx t;
  t.pid = pid;
  t.core = 0;
  const std::uint64_t len = 32 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  EXPECT_TRUE(k.sys_madvise(t, a, len, kern::Advice::kMigrateOnNextTouch).ok());

  // One touch from node 1 migrates the faulting page synchronously and hands
  // the next 16 pages to node 1's kmigrated daemon.
  t.core = 4;
  k.access(t, a, 8, vm::Prot::kRead, 0.0);
  EXPECT_EQ(k.stats().kmigrated_batches, 1u);
  EXPECT_EQ(k.stats().kmigrated_pages, 16u);
  EXPECT_EQ(k.pages_on_node(pid, a, 17 * mem::kPageSize, 1), 17u);
  // Pages behind the window still carry the next-touch mark.
  EXPECT_EQ(k.pages_on_node(pid, a + 17 * mem::kPageSize,
                            len - 17 * mem::kPageSize, 0),
            32u - 17u);
  k.validate(pid);
}

}  // namespace
}  // namespace numasim
