// Fault-injection and memory-pressure tests: every migration path must
// survive ENOMEM, transient copy failures and node exhaustion with the same
// degradation semantics as Linux (per-page -ENOMEM/-EAGAIN from move_pages,
// in-place mapping for next-touch, no frame leaked or double-mapped), and an
// identical (plan, seed) pair must replay an identical event schedule.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "kern/fault_injector.hpp"
#include "kern/kernel.hpp"
#include "lib/user_next_touch.hpp"

namespace numasim::kern {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : topo_(topo::Topology::quad_opteron()),
        k_(KernelConfig{.topology = topo_, .backing = mem::Backing::kMaterialized,
           .max_frames_per_node = 256}) {
    pid_ = k_.create_process("finj");
  }

  ThreadCtx ctx_on(topo::CoreId core) {
    ThreadCtx t;
    t.pid = pid_;
    t.core = core;
    return t;
  }

  /// mmap + populate `pages` pages bound to `node`; returns the base address.
  vm::Vaddr make_region(ThreadCtx& t, std::uint64_t pages, topo::NodeId node) {
    const std::uint64_t len = pages * mem::kPageSize;
    const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite,
                                    vm::MemPolicy::bind(topo::node_mask_of(node)));
    k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
    EXPECT_EQ(k_.pages_on_node(pid_, a, len, node), pages);
    return a;
  }

  /// move_pages of `pages` pages at `a` to `dest`; returns the status array.
  std::vector<int> move_all(ThreadCtx& t, vm::Vaddr a, std::uint64_t pages,
                            topo::NodeId dest) {
    std::vector<vm::Vaddr> addrs;
    for (std::uint64_t i = 0; i < pages; ++i)
      addrs.push_back(a + i * mem::kPageSize);
    std::vector<topo::NodeId> nodes(addrs.size(), dest);
    std::vector<int> status(addrs.size(), 0);
    EXPECT_EQ(k_.sys_move_pages(t, addrs, nodes, status), 0);
    return status;
  }

  topo::Topology topo_;
  Kernel k_;
  Pid pid_ = 0;
};

// --- plan parsing -----------------------------------------------------------

TEST(FaultPlanTest, ParseRoundTrip) {
  const FaultPlan p = FaultPlan::parse(
      "alloc:p=0.25,node=1; alloc:nth=5,node=2; alloc:nth=9; "
      "cap:node=3,frames=100; copy:pt=0.125,pp=0.0625; "
      "shootdown:p=0.5; signal:p=0.75");
  EXPECT_DOUBLE_EQ(p.alloc_fail_p, 0.25);
  EXPECT_EQ(p.alloc_fail_node, 1);
  ASSERT_EQ(p.nth_allocs.size(), 2u);
  EXPECT_EQ(p.nth_allocs[0].node, 2);
  EXPECT_EQ(p.nth_allocs[0].nth, 5u);
  EXPECT_EQ(p.nth_allocs[1].node, topo::kInvalidNode);
  ASSERT_EQ(p.node_caps.size(), 1u);
  EXPECT_EQ(p.node_caps[0].frames, 100u);
  EXPECT_DOUBLE_EQ(p.copy_transient_p, 0.125);
  EXPECT_DOUBLE_EQ(p.copy_permanent_p, 0.0625);
  EXPECT_DOUBLE_EQ(p.shootdown_drop_p, 0.5);
  EXPECT_DOUBLE_EQ(p.signal_delay_p, 0.75);
  EXPECT_FALSE(p.empty());

  // to_string must re-parse to the same plan.
  const FaultPlan q = FaultPlan::parse(p.to_string());
  EXPECT_EQ(q.to_string(), p.to_string());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus:p=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("alloc:"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("alloc:p=zebra"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("cap:node=1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("copy:pt=0.1,pp"), std::invalid_argument);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ").empty());
}

TEST(FaultPlanTest, NthAllocFiresOnExactAttempt) {
  FaultInjector inj(FaultPlan::parse("alloc:nth=3,node=1"), 42);
  EXPECT_FALSE(inj.fail_alloc(1));
  EXPECT_FALSE(inj.fail_alloc(0));  // other node: not counted for node 1
  EXPECT_FALSE(inj.fail_alloc(1));
  EXPECT_TRUE(inj.fail_alloc(1));   // third attempt on node 1
  EXPECT_FALSE(inj.fail_alloc(1));  // fires once
  EXPECT_EQ(inj.counters().allocs_failed, 1u);
}

TEST_F(FaultInjectionTest, CapOnNonexistentNodeIsIgnored) {
  // Plan specs are untrusted strings; a cap naming a node beyond the
  // topology must not touch the allocator (out-of-bounds) nor fail.
  FaultInjector inj(FaultPlan::parse("cap:node=9,frames=0"), 1);
  k_.set_fault_injector(&inj);
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 4, 0);
  const std::vector<int> status = move_all(t, a, 4, 1);
  k_.set_fault_injector(nullptr);
  for (int s : status) EXPECT_EQ(s, 1);
  k_.validate(pid_);
}

// --- sys_move_pages under ENOMEM (satellite 1) ------------------------------

TEST_F(FaultInjectionTest, MovePagesReportsPerPageEnomemAndLeavesPagesResident) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 8, 0);

  FaultInjector inj(FaultPlan::parse("alloc:nth=1,node=2; alloc:nth=4,node=2"), 7);
  k_.set_fault_injector(&inj);
  const std::vector<int> status = move_all(t, a, 8, 2);
  k_.set_fault_injector(nullptr);

  // Pages 0 and 3 hit the injected destination-alloc failures: they report
  // -ENOMEM and stay where they were; every other page moved.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const vm::Vaddr pa = a + i * mem::kPageSize;
    if (i == 0 || i == 3) {
      EXPECT_EQ(status[i], -kENOMEM) << "page " << i;
      EXPECT_EQ(k_.page_node(pid_, pa), 0) << "page " << i;
    } else {
      EXPECT_EQ(status[i], 2) << "page " << i;
      EXPECT_EQ(k_.page_node(pid_, pa), 2) << "page " << i;
    }
  }
  EXPECT_EQ(k_.stats().migrations_failed, 2u);
  k_.validate(pid_);
}

TEST_F(FaultInjectionTest, MovePagesToTrulyFullNodeDegradesPerPage) {
  // No injector at all: genuinely exhaust node 2, then migrate into it.
  // Destination allocation is strict (__GFP_THISNODE), so every page must
  // come back -ENOMEM and remain resident on its source node.
  ThreadCtx t = ctx_on(0);
  const std::uint64_t cap = k_.phys().capacity_frames(2);
  const vm::Vaddr filler = make_region(t, cap, 2);
  EXPECT_EQ(k_.phys().free_frames(2), 0u);

  const vm::Vaddr a = make_region(t, 16, 0);
  const std::vector<int> status = move_all(t, a, 16, 2);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(status[i], -kENOMEM) << "page " << i;
    EXPECT_EQ(k_.page_node(pid_, a + i * mem::kPageSize), 0) << "page " << i;
  }
  EXPECT_EQ(k_.stats().migrations_failed, 16u);
  k_.validate(pid_);

  // Free a little room: a re-issued request moves exactly what now fits.
  k_.sys_munmap(t, filler + (cap - 4) * mem::kPageSize, 4 * mem::kPageSize);
  const std::vector<int> retry = move_all(t, a, 16, 2);
  std::uint64_t moved = 0;
  for (int s : retry) moved += (s == 2) ? 1u : 0u;
  EXPECT_EQ(moved, 4u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 16 * mem::kPageSize, 2), 4u);
  k_.validate(pid_);
}

// --- copy failures: retry and rollback --------------------------------------

TEST_F(FaultInjectionTest, TransientCopyFailuresAreRetriedWithBackoff) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 32, 0);

  EventLog log;
  k_.set_event_log(&log);
  FaultInjector inj(FaultPlan::parse("copy:pt=0.4"), 1234);
  k_.set_fault_injector(&inj);
  const std::vector<int> status = move_all(t, a, 32, 1);
  k_.set_fault_injector(nullptr);
  k_.set_event_log(nullptr);

  // With pt=0.4 and 32 pages some retries must have fired; each page either
  // lands on node 1 or reports -EAGAIN after exhausting its retry budget.
  EXPECT_GT(k_.stats().migration_retries, 0u);
  EXPECT_EQ(k_.stats().migration_retries, log.count(EventType::kMigrateRetry));
  for (std::uint64_t i = 0; i < 32; ++i) {
    const vm::Vaddr pa = a + i * mem::kPageSize;
    if (status[i] == 1) {
      EXPECT_EQ(k_.page_node(pid_, pa), 1);
    } else {
      EXPECT_EQ(status[i], -kEAGAIN);
      EXPECT_EQ(k_.page_node(pid_, pa), 0);
    }
  }
  k_.validate(pid_);
}

TEST_F(FaultInjectionTest, PermanentCopyFailureRollsBackWithoutLeaking) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 8, 0);
  const std::uint64_t used_before = k_.phys().total_used_frames();

  EventLog log;
  k_.set_event_log(&log);
  FaultInjector inj(FaultPlan::parse("copy:pp=1.0"), 99);
  k_.set_fault_injector(&inj);
  const std::vector<int> status = move_all(t, a, 8, 3);
  k_.set_fault_injector(nullptr);
  k_.set_event_log(nullptr);

  // Every copy failed permanently: all pages report -EAGAIN, stay mapped on
  // their original frames, and the aborted destination frames were freed.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(status[i], -kEAGAIN);
    EXPECT_EQ(k_.page_node(pid_, a + i * mem::kPageSize), 0);
  }
  EXPECT_EQ(k_.phys().total_used_frames(), used_before);
  EXPECT_EQ(k_.stats().migrations_failed, 8u);
  EXPECT_EQ(log.count(EventType::kMigrateFail), 8u);
  k_.validate(pid_);
}

TEST_F(FaultInjectionTest, RangedInterfaceAndMbindSurviveCopyFailures) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 16, 0);
  const vm::Vaddr b = make_region(t, 16, 1);

  FaultInjector inj(FaultPlan::parse("copy:pt=0.5,pp=0.1"), 2024);
  k_.set_fault_injector(&inj);
  const std::vector<Kernel::MoveRange> ranges{{a, 16 * mem::kPageSize, 2}};
  const SyscallResult moved = k_.sys_move_pages_ranged(t, ranges);
  EXPECT_TRUE(moved.ok());
  k_.sys_mbind(t, b, 16 * mem::kPageSize,
               vm::MemPolicy::bind(topo::node_mask_of(3)), /*move_existing=*/true);
  k_.set_fault_injector(nullptr);

  // Whatever failed stayed put; whatever moved is where it was asked to go.
  EXPECT_EQ(k_.pages_on_node(pid_, a, 16 * mem::kPageSize, 2),
            static_cast<std::uint64_t>(moved.count()));
  k_.validate(pid_);
}

TEST_F(FaultInjectionTest, MigratePagesSurvivesExhaustedDestination) {
  ThreadCtx t = ctx_on(0);
  make_region(t, 16, 0);

  FaultInjector inj(FaultPlan::parse("cap:node=1,frames=6"), 5);
  k_.set_fault_injector(&inj);
  const SyscallResult moved = k_.sys_migrate_pages(
      t, pid_, topo::node_mask_of(0), topo::node_mask_of(1));
  k_.set_fault_injector(nullptr);

  // Only the frames below the cap can land on node 1; the rest stay on 0,
  // nothing leaks. (A min watermark of zero lets all 6 be used.)
  EXPECT_TRUE(moved.ok());
  EXPECT_LE(moved.count(), 6);
  EXPECT_EQ(k_.phys().used_frames(0) + k_.phys().used_frames(1), 16u);
  EXPECT_GT(k_.stats().migrations_failed, 0u);
  k_.validate(pid_);
}

// --- next-touch degradation --------------------------------------------------

TEST_F(FaultInjectionTest, KernelNextTouchDegradesInPlaceWhenNodeExhausted) {
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t pages = 8;
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = make_region(t0, pages, 0);
  EXPECT_EQ(k_.sys_madvise(t0, a, len, Advice::kMigrateOnNextTouch), 0);

  EventLog log;
  k_.set_event_log(&log);
  FaultInjector inj(FaultPlan::parse("cap:node=2,frames=0"), 3);
  k_.set_fault_injector(&inj);
  ThreadCtx t2 = ctx_on(10);  // node 2 — the exhausted destination
  const AccessResult r = k_.access(t2, a, len, vm::Prot::kRead, 3500.0);
  k_.set_fault_injector(nullptr);
  k_.set_event_log(nullptr);

  // The touch never crashes: the pages map in place on node 0 and the
  // next-touch flag is consumed, so a second touch faults nothing.
  EXPECT_EQ(r.pages, pages);
  EXPECT_EQ(r.nexttouch_migrations, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), pages);
  EXPECT_EQ(k_.stats().nexttouch_degraded, pages);
  EXPECT_EQ(log.count(EventType::kNextTouchDegraded), pages);
  k_.validate(pid_);

  const AccessResult r2 = k_.access(t2, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r2.nexttouch_migrations, 0u);
  EXPECT_EQ(k_.stats().nexttouch_degraded, pages);  // no re-degrade
}

TEST_F(FaultInjectionTest, UserNextTouchSurvivesExhaustedNode) {
  lib::UserNextTouch unt(k_, pid_);
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t pages = 8;
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = make_region(t0, pages, 0);
  ASSERT_EQ(unt.mark(t0, a, len), 0);

  FaultInjector inj(FaultPlan::parse("cap:node=1,frames=0"), 11);
  k_.set_fault_injector(&inj);
  ThreadCtx t1 = ctx_on(4);  // node 1 — exhausted
  k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  k_.set_fault_injector(nullptr);

  // The handler must disarm and restore protection even though every
  // move_pages status came back -ENOMEM — the access completes remotely.
  EXPECT_EQ(unt.stats().faults_handled, 1u);
  EXPECT_EQ(unt.stats().pages_moved, 0u);
  EXPECT_EQ(unt.stats().pages_failed, pages);
  EXPECT_EQ(unt.stats().degraded_windows, 1u);
  EXPECT_EQ(unt.armed_bytes(), 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), pages);
  k_.validate(pid_);

  // Protection restored: the next access faults no signal.
  const AccessResult r2 = k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  EXPECT_EQ(r2.sigsegv_delivered, 0u);
}

// --- shootdown and signal injection ------------------------------------------

TEST_F(FaultInjectionTest, DroppedShootdownIsResentAndCharged) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 4, 0);

  ThreadCtx base = ctx_on(0);
  base.pid = pid_;
  k_.sys_mprotect(base, a, 4 * mem::kPageSize, vm::Prot::kRead);
  const sim::Time baseline = base.clock;
  k_.sys_mprotect(base, a, 4 * mem::kPageSize, vm::Prot::kReadWrite);

  EventLog log;
  k_.set_event_log(&log);
  FaultInjector inj(FaultPlan::parse("shootdown:p=1.0"), 8);
  k_.set_fault_injector(&inj);
  ThreadCtx hit = ctx_on(0);
  k_.sys_mprotect(hit, a, 4 * mem::kPageSize, vm::Prot::kRead);
  k_.set_fault_injector(nullptr);
  k_.set_event_log(nullptr);

  EXPECT_GT(hit.clock, baseline);  // resend wait + second IPI round
  EXPECT_GT(k_.stats().shootdown_retries, 0u);
  EXPECT_GT(log.count(EventType::kShootdownRetry), 0u);
}

TEST_F(FaultInjectionTest, DelayedSignalStillDelivers) {
  lib::UserNextTouch unt(k_, pid_);
  ThreadCtx t0 = ctx_on(0);
  const std::uint64_t len = 4 * mem::kPageSize;
  const vm::Vaddr a = make_region(t0, 4, 0);
  ASSERT_EQ(unt.mark(t0, a, len), 0);

  FaultInjector inj(FaultPlan::parse("signal:p=1.0"), 21);
  k_.set_fault_injector(&inj);
  ThreadCtx t1 = ctx_on(4);
  const AccessResult r = k_.access(t1, a, len, vm::Prot::kRead, 3500.0);
  k_.set_fault_injector(nullptr);

  EXPECT_EQ(r.sigsegv_delivered, 1u);
  EXPECT_EQ(unt.stats().faults_handled, 1u);
  EXPECT_GT(k_.stats().signals_delayed, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 1), 4u);
  k_.validate(pid_);
}

// --- first-touch under injected pressure -------------------------------------

TEST_F(FaultInjectionTest, UserFaultsStallButNeverFail) {
  FaultInjector inj(FaultPlan::parse("alloc:p=1.0"), 17);
  k_.set_fault_injector(&inj);
  ThreadCtx t = ctx_on(0);
  const std::uint64_t len = 16 * mem::kPageSize;
  const vm::Vaddr a = k_.sys_mmap(t, len, vm::Prot::kReadWrite);
  const AccessResult r = k_.access(t, a, len, vm::Prot::kWrite, 3500.0);
  k_.set_fault_injector(nullptr);

  // Every first-touch allocation was flagged, yet all pages materialized:
  // user faults reclaim (charged as a stall) instead of failing.
  EXPECT_EQ(r.minor_faults, 16u);
  EXPECT_EQ(k_.stats().alloc_stalls, 16u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, len, 0), 16u);
  k_.validate(pid_);
}

// --- determinism --------------------------------------------------------------

std::string run_faulty_workload(std::uint64_t seed) {
  const topo::Topology topo = topo::Topology::quad_opteron();
  Kernel k(KernelConfig{.topology = topo, .backing = mem::Backing::kPhantom,
                       .max_frames_per_node = 256});
  const Pid pid = k.create_process("replay");
  EventLog log(16384);
  k.set_event_log(&log);
  FaultInjector inj(
      FaultPlan::parse("alloc:p=0.1; copy:pt=0.3,pp=0.05; shootdown:p=0.2"),
      seed);
  k.set_fault_injector(&inj);

  ThreadCtx t;
  t.pid = pid;
  t.core = 0;
  const std::uint64_t len = 64 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                 vm::MemPolicy::bind(topo::node_mask_of(0)));
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < 64; ++i) pages.push_back(a + i * mem::kPageSize);
  std::vector<topo::NodeId> nodes(pages.size(), 1);
  std::vector<int> status(pages.size(), 0);
  k.sys_move_pages(t, pages, nodes, status);
  k.sys_madvise(t, a, len, Advice::kMigrateOnNextTouch);
  ThreadCtx t2;
  t2.pid = pid;
  t2.core = 10;
  t2.clock = t.clock;
  k.access(t2, a, len, vm::Prot::kRead, 3500.0);
  k.validate(pid);
  k.set_fault_injector(nullptr);
  return log.to_csv();
}

TEST(FaultInjectionDeterminism, SamePlanAndSeedReplayIdenticalEventLogs) {
  const std::string first = run_faulty_workload(0xfeedface);
  const std::string second = run_faulty_workload(0xfeedface);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("migrate-"), std::string::npos);  // faults did fire
}

TEST(FaultInjectionDeterminism, EmptyPlanMatchesNoInjectorExactly) {
  // An attached-but-empty injector must not perturb the simulation: same
  // event stream, no randomness consumed.
  const topo::Topology topo = topo::Topology::quad_opteron();
  auto run = [&](bool attach) {
    Kernel k(KernelConfig{.topology = topo, .backing = mem::Backing::kPhantom,
                         .max_frames_per_node = 256});
    const Pid pid = k.create_process();
    EventLog log(16384);
    k.set_event_log(&log);
    FaultInjector inj{FaultPlan{}, 1};
    if (attach) k.set_fault_injector(&inj);
    ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = 32 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
    k.access(t, a, len, vm::Prot::kWrite, 3500.0);
    std::vector<vm::Vaddr> pages;
    for (std::uint64_t i = 0; i < 32; ++i)
      pages.push_back(a + i * mem::kPageSize);
    std::vector<topo::NodeId> nodes(pages.size(), 2);
    std::vector<int> status(pages.size(), 0);
    k.sys_move_pages(t, pages, nodes, status);
    k.validate(pid);
    return log.to_csv();
  };
  EXPECT_EQ(run(false), run(true));
}

// --- kmigrated (async migration daemons) under faults ------------------------

TEST_F(FaultInjectionTest, KmigratedDroppedBatchLeavesPagesResident) {
  ThreadCtx t = ctx_on(0);
  const vm::Vaddr a = make_region(t, 8, 0);

  FaultInjector inj(FaultPlan::parse("kmigrated:p=1"), 7);
  k_.set_fault_injector(&inj);
  const Kernel::MoveRange r{a, 8 * mem::kPageSize, 2};
  const SyscallResult res = k_.sys_move_pages_async(t, std::span{&r, 1});
  k_.kmigrated_drain(t);
  k_.set_fault_injector(nullptr);

  // Fire-and-forget: the submit succeeds but the batch dies on the queue, so
  // nothing moved and the loss is only visible through the counters.
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.count(), 0);
  EXPECT_EQ(k_.stats().kmigrated_batches_dropped, 1u);
  EXPECT_EQ(k_.stats().kmigrated_batches, 0u);
  EXPECT_EQ(k_.stats().kmigrated_pages, 0u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 0), 8u);
  EXPECT_EQ(inj.counters().kmigrated_dropped, 1u);
  k_.validate(pid_);
}

TEST_F(FaultInjectionTest, KmigratedEnomemMidBatchMovesOnlyWhatFits) {
  ThreadCtx t = ctx_on(0);
  // Leave exactly 4 free frames on node 2, then async-migrate 8 pages in:
  // the daemon degrades per page, exactly like synchronous move_pages.
  const std::uint64_t cap = k_.phys().capacity_frames(2);
  make_region(t, cap - 4, 2);
  const vm::Vaddr a = make_region(t, 8, 0);

  const Kernel::MoveRange r{a, 8 * mem::kPageSize, 2};
  const SyscallResult res = k_.sys_move_pages_async(t, std::span{&r, 1});
  k_.kmigrated_drain(t);

  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.count(), 4);
  EXPECT_EQ(k_.stats().kmigrated_batches, 1u);
  EXPECT_EQ(k_.stats().kmigrated_pages, 4u);
  EXPECT_EQ(k_.stats().kmigrated_pages_failed, 4u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 2), 4u);
  EXPECT_EQ(k_.pages_on_node(pid_, a, 8 * mem::kPageSize, 0), 4u);
  k_.validate(pid_);
}

TEST(KmigratedDeterminism, ConfigFaultPlanReplaysIdentically) {
  // The KernelConfig fault-plan path (kernel-owned injector) must be as
  // reproducible as an external injector: same seed, same event stream.
  const topo::Topology topo = topo::Topology::quad_opteron();
  auto run = [&] {
    Kernel k(KernelConfig{.topology = topo, .backing = mem::Backing::kPhantom,
                          .fault_plan = FaultPlan::parse("kmigrated:p=0.5"),
                          .fault_seed = 42});
    const Pid pid = k.create_process();
    EventLog log(16384);
    k.set_event_log(&log);
    ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = 16 * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite,
                                   vm::MemPolicy::bind(topo::node_mask_of(0)));
    k.access(t, a, len, vm::Prot::kWrite, 3500.0);
    for (int i = 0; i < 4; ++i) {
      const Kernel::MoveRange r{a, len, static_cast<topo::NodeId>(1 + i % 3)};
      k.sys_move_pages_async(t, std::span{&r, 1});
    }
    k.kmigrated_drain(t);
    k.validate(pid);
    return log.to_csv() + std::to_string(k.stats().kmigrated_batches_dropped);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace numasim::kern
