// Ablation: 2 MiB huge pages (paper future work: "Huge pages ... are known
// to help performance by reducing the TLB pressure, but LINUX does not
// currently support their migration").
//
// Shows the population-cost win (one fault per 2 MiB instead of 512) and
// the era-accurate migration refusal.
#include <vector>

#include "common.hpp"

using namespace numasim;

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  numasim::bench::print_header(
      opts, "Ablation — huge pages: population cost and migration support",
      {"size_MiB", "small_populate_ms", "huge_populate_ms", "speedup",
       "small_migrates", "huge_migrates"});

  for (std::uint64_t mib : {2u, 8u, 32u, opts.quick ? 32u : 128u}) {
    const std::uint64_t len = mib << 20;

    kern::Kernel k(bench::phantom_kernel_config(t));
    bench::observe(k);
    const kern::Pid pid = k.create_process();
    kern::ThreadCtx c;
    c.pid = pid;
    c.core = 0;

    const vm::Vaddr small = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "s");
    const sim::Time t0 = c.clock;
    k.access(c, small, len, vm::Prot::kWrite, 3500.0);
    const sim::Time small_pop = c.clock - t0;

    const vm::Vaddr huge = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "h", true);
    const sim::Time t1 = c.clock;
    k.access(c, huge, len, vm::Prot::kWrite, 3500.0);
    const sim::Time huge_pop = c.clock - t1;

    // Attempt to migrate one page of each to node 1.
    auto migrates = [&](vm::Vaddr a) {
      std::vector<vm::Vaddr> pages{a};
      std::vector<topo::NodeId> nodes{1};
      std::vector<int> status{0};
      k.sys_move_pages(c, pages, nodes, status);
      return status[0] >= 0;
    };

    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(mib),
               numasim::bench::fmt(sim::to_seconds(small_pop) * 1e3, "%.3f"),
               numasim::bench::fmt(sim::to_seconds(huge_pop) * 1e3, "%.3f"),
               numasim::bench::fmt(static_cast<double>(small_pop) /
                                       static_cast<double>(huge_pop),
                                   "%.2fx"),
               migrates(small) ? "yes" : "no", migrates(huge) ? "yes" : "no"});
  }
  obsv.finish();
  return 0;
}
