// Ablation: the paper's proposed syscall-interface improvement (Sec. 6:
// "improving the LINUX migration system call interface to reduce the
// move_pages overhead further more").
//
// Classic move_pages takes per-page address/node/status arrays; the ranged
// interface takes (addr, len, node) triples, so argument processing is
// O(ranges) and the kernel walks pages sequentially. Expect: lower base
// overhead (small buffers) and higher plateau (cheaper per-page control).
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

double classic_mbps(const topo::Topology& t, std::uint64_t npages) {
  kern::Kernel k(bench::phantom_kernel_config(t));
  bench::observe(k);
  const kern::Pid pid = k.create_process();
  kern::ThreadCtx c;
  c.pid = pid;
  c.core = 0;
  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "b");
  k.access(c, a, len, vm::Prot::kWrite, 3500.0);
  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < len; i += mem::kPageSize) pages.push_back(a + i);
  std::vector<topo::NodeId> nodes(pages.size(), 1);
  std::vector<int> status(pages.size(), 0);
  const sim::Time t0 = c.clock;
  k.sys_move_pages(c, pages, nodes, status);
  return sim::mb_per_second(len, c.clock - t0);
}

double ranged_mbps(const topo::Topology& t, std::uint64_t npages) {
  kern::Kernel k(bench::phantom_kernel_config(t));
  bench::observe(k);
  const kern::Pid pid = k.create_process();
  kern::ThreadCtx c;
  c.pid = pid;
  c.core = 0;
  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "b");
  k.access(c, a, len, vm::Prot::kWrite, 3500.0);
  const std::vector<kern::Kernel::MoveRange> ranges{{a, len, 1}};
  const sim::Time t0 = c.clock;
  k.sys_move_pages_ranged(c, ranges);
  return sim::mb_per_second(len, c.clock - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  numasim::bench::print_header(
      opts, "Ablation — classic vs range-based move_pages (MB/s)",
      {"pages", "classic", "ranged", "speedup"});

  for (std::uint64_t n = 1; n <= (opts.quick ? 512u : 16384u); n *= 4) {
    const double c = classic_mbps(t, n);
    const double r = ranged_mbps(t, n);
    numasim::bench::print_row(opts, {numasim::bench::fmt_u64(n),
                                     numasim::bench::fmt(c), numasim::bench::fmt(r),
                                     numasim::bench::fmt(r / c, "%.2fx")});
  }
  obsv.finish();
  return 0;
}
