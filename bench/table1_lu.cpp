// Table 1: execution time of the threaded LU factorization with 16 OpenMP
// threads — static interleaved allocation versus the per-iteration
// next-touch hook, across matrix and block sizes.
//
// Paper result: next-touch LOSES whenever a 4-KiB page spans several blocks
// (block < 512 doubles), and wins up to +129 % for 512-blocks in the 16k and
// 32k matrices; very large blocks (1024) gain little (load imbalance).
#include <vector>

#include "apps/lu.hpp"
#include "common.hpp"

using namespace numasim;

namespace {

sim::Time run_lu(std::uint64_t n, std::uint64_t bs, bool next_touch) {
  rt::Machine m(bench::phantom_config());
  bench::observe(m);
  rt::Team team = rt::Team::all_cores(m);
  apps::LuConfig cfg;
  cfg.n = n;
  cfg.bs = bs;
  cfg.next_touch = next_touch;
  apps::LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });
  return lu.result().factor_time;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);

  struct Case {
    std::uint64_t n, bs;
  };
  // The paper's eleven rows.
  std::vector<Case> cases{{4096, 64},   {4096, 128},  {4096, 256},
                          {8192, 128},  {8192, 256},  {8192, 512},
                          {16384, 256}, {16384, 512}, {16384, 1024},
                          {32768, 256}, {32768, 512}};
  if (opts.quick)
    cases = {{2048, 64}, {2048, 128}, {2048, 512}, {4096, 512}};

  numasim::bench::print_header(
      opts, "Table 1 — LU factorization, 16 threads (simulated seconds)",
      {"matrix", "block", "static_s", "next_touch_s", "improvement_%"});

  for (const Case& c : cases) {
    const sim::Time stat = run_lu(c.n, c.bs, false);
    const sim::Time nt = run_lu(c.n, c.bs, true);
    const double imp =
        100.0 * (static_cast<double>(stat) / static_cast<double>(nt) - 1.0);
    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(c.n) + "x" + numasim::bench::fmt_u64(c.n),
               numasim::bench::fmt_u64(c.bs),
               numasim::bench::fmt(sim::to_seconds(stat), "%.2f"),
               numasim::bench::fmt(sim::to_seconds(nt), "%.2f"),
               numasim::bench::fmt(imp, "%+.1f")});
  }
  obsv.finish();
  return 0;
}
