// Section 4.5 claim: BLAS1 (vector) operations never improve from memory
// migration. A remote worker sweeps axpy over vectors on node 0; we compare
// leaving them remote, migrating synchronously first, and lazy next-touch —
// as a function of how many passes the worker performs.
#include <vector>

#include "apps/blas1_sweep.hpp"
#include "common.hpp"

using namespace numasim;

namespace {

sim::Time run_sweep(unsigned passes, apps::Blas1Config::Mode mode) {
  rt::Machine m(bench::phantom_config());
  bench::observe(m);
  apps::Blas1Config cfg;
  cfg.n = 1u << 19;  // 4 MiB vectors
  cfg.passes = passes;
  cfg.mode = mode;
  apps::Blas1Sweep app(m, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    co_await app.run(th, /*worker_core=*/4);  // node 1
  });
  return app.result().total_time;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  using Mode = apps::Blas1Config::Mode;

  numasim::bench::print_header(
      opts, "Sec. 4.5 — BLAS1 axpy sweeps, remote vs migrated (simulated ms)",
      {"passes", "remote_ms", "sync_migrate_ms", "lazy_nt_ms", "migration_pays"});

  std::vector<unsigned> passes{1, 2, 4, 8, 16, 32, 64};
  if (opts.quick) passes = {1, 8};

  for (unsigned p : passes) {
    const sim::Time remote = run_sweep(p, Mode::kRemote);
    const sim::Time sync = run_sweep(p, Mode::kSyncMigrate);
    const sim::Time lazy = run_sweep(p, Mode::kLazyMigrate);
    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(p),
               numasim::bench::fmt(sim::to_seconds(remote) * 1e3, "%.2f"),
               numasim::bench::fmt(sim::to_seconds(sync) * 1e3, "%.2f"),
               numasim::bench::fmt(sim::to_seconds(lazy) * 1e3, "%.2f"),
               (sync < remote || lazy < remote) ? "yes" : "no"});
  }
  obsv.finish();
  return 0;
}
