// Figure 4: throughput of memcpy, migrate_pages and move_pages (patched and
// unpatched) between NUMA nodes #0 and #1, versus buffer size in 4-KiB pages.
//
// Paper result: memcpy fastest; migrate_pages plateaus near 780 MB/s with a
// ~400 us base; patched move_pages is flat near 600 MB/s with a ~160 us base;
// the unpatched implementation collapses quadratically past ~1k pages.
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

struct Probe {
  kern::Kernel k;
  kern::Pid pid;
  kern::ThreadCtx ctx;
  vm::Vaddr buf;
  std::uint64_t len;

  Probe(const topo::Topology& t, std::uint64_t npages)
      : k(bench::phantom_kernel_config(t)), pid(k.create_process()), len(npages * mem::kPageSize) {
    bench::observe(k);
    ctx.pid = pid;
    ctx.core = 0;  // node 0
    buf = k.sys_mmap(ctx, len, vm::Prot::kReadWrite,
                     vm::MemPolicy::bind(topo::node_mask_of(0)), "src");
    k.access(ctx, buf, len, vm::Prot::kWrite, 3500.0);
  }
};

double measure_memcpy(const topo::Topology& t, std::uint64_t npages) {
  Probe p(t, npages);
  const vm::Vaddr dst = p.k.sys_mmap(p.ctx, p.len, vm::Prot::kReadWrite,
                                     vm::MemPolicy::bind(topo::node_mask_of(1)), "dst");
  p.k.access(p.ctx, dst, p.len, vm::Prot::kWrite, 3500.0);  // pre-fault
  const sim::Time t0 = p.ctx.clock;
  p.k.user_memcpy(p.ctx, dst, p.buf, p.len);
  return sim::mb_per_second(p.len, p.ctx.clock - t0);
}

double measure_migrate_pages(const topo::Topology& t, std::uint64_t npages) {
  Probe p(t, npages);
  const sim::Time t0 = p.ctx.clock;
  p.k.sys_migrate_pages(p.ctx, p.pid, topo::node_mask_of(0), topo::node_mask_of(1));
  return sim::mb_per_second(p.len, p.ctx.clock - t0);
}

double measure_move_pages(const topo::Topology& t, std::uint64_t npages,
                          kern::MovePagesImpl impl) {
  Probe p(t, npages);
  p.k.set_move_pages_impl(impl);
  std::vector<vm::Vaddr> pages;
  pages.reserve(npages);
  for (std::uint64_t i = 0; i < npages; ++i)
    pages.push_back(p.buf + i * mem::kPageSize);
  std::vector<topo::NodeId> nodes(npages, 1);
  std::vector<int> status(npages, 0);
  const sim::Time t0 = p.ctx.clock;
  p.k.sys_move_pages(p.ctx, pages, nodes, status);
  return sim::mb_per_second(p.len, p.ctx.clock - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  numasim::bench::print_header(
      opts, "Fig. 4 — migration/copy throughput node0 -> node1 (MB/s)",
      {"pages", "memcpy", "migrate_pages", "move_pages", "move_pages_nopatch"});

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t n = 1; n <= (opts.quick ? 1024u : 16384u); n *= 2)
    sizes.push_back(n);

  for (std::uint64_t n : sizes) {
    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(n),
         numasim::bench::fmt(measure_memcpy(t, n)),
         numasim::bench::fmt(measure_migrate_pages(t, n)),
         numasim::bench::fmt(measure_move_pages(t, n, kern::MovePagesImpl::kLinear)),
         numasim::bench::fmt(measure_move_pages(t, n, kern::MovePagesImpl::kQuadratic))});
  }
  obsv.finish();
  return 0;
}
