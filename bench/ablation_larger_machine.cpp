// Ablation: larger NUMA machines (paper Sec. 6: "We are now running similar
// experiments on larger NUMA machines where data locality is more critical,
// making the Next-touch policy even more interesting").
//
// The LU workload at a fixed size on rings of 2..16 nodes: with more nodes,
// interleaved static placement means a larger remote share and longer
// routes, so next-touch's improvement should grow with the machine.
#include <string>

#include "apps/lu.hpp"
#include "common.hpp"

using namespace numasim;

namespace {

sim::Time run_lu(const topo::Topology& topo, std::uint64_t n, std::uint64_t bs,
                 bool nt) {
  rt::Machine::Config mc;
  mc.topology = topo;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  bench::observe(m);
  rt::Team team = rt::Team::all_cores(m);
  apps::LuConfig cfg;
  cfg.n = n;
  cfg.bs = bs;
  cfg.next_touch = nt;
  apps::LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });
  return lu.result().factor_time;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const std::uint64_t n = opts.quick ? 2048 : 4096;
  const std::uint64_t bs = 512;

  numasim::bench::print_header(
      opts, "Ablation — LU " + std::to_string(n) + "/512 on growing ring machines",
      {"nodes", "cores", "static_s", "next_touch_s", "improvement_%"});

  for (unsigned nodes : {2u, 4u, 8u, 16u}) {
    // Keep 16 cores total so compute capacity is constant; only the memory
    // system grows more distributed.
    const unsigned cores = 16 / nodes;
    const topo::Topology topo = topo::Topology::from_spec(
        "nodes=" + std::to_string(nodes) + " cores=" + std::to_string(cores) +
        " shape=ring link_bw=2200 hop_ns=15");
    const sim::Time stat = run_lu(topo, n, bs, false);
    const sim::Time nt = run_lu(topo, n, bs, true);
    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(nodes), numasim::bench::fmt_u64(cores),
         numasim::bench::fmt(sim::to_seconds(stat), "%.2f"),
         numasim::bench::fmt(sim::to_seconds(nt), "%.2f"),
         numasim::bench::fmt(
             100.0 * (static_cast<double>(stat) / static_cast<double>(nt) - 1.0),
             "%+.1f")});
  }
  obsv.finish();
  return 0;
}
