// Figure 5: next-touch migration throughput versus buffer size.
//
// Three series: the user-space mprotect/SIGSEGV implementation with and
// without the move_pages patch, and the kernel madvise implementation.
// Paper result: user next-touch tracks patched move_pages (~600 MB/s,
// collapsing without the patch); kernel next-touch reaches ~800 MB/s even
// for small buffers.
#include <vector>

#include "common.hpp"
#include "lib/user_next_touch.hpp"

using namespace numasim;

namespace {

struct Probe {
  kern::Kernel k;
  kern::Pid pid;
  kern::ThreadCtx owner;    // node 0: populates the buffer
  kern::ThreadCtx toucher;  // node 1: triggers the next-touch
  vm::Vaddr buf;
  std::uint64_t len;

  Probe(const topo::Topology& t, std::uint64_t npages)
      : k(bench::phantom_kernel_config(t)), pid(k.create_process()),
        len(npages * mem::kPageSize) {
    bench::observe(k);
    owner.pid = pid;
    owner.core = 0;
    toucher.pid = pid;
    toucher.tid = 1;   // distinct timeline row in trace output
    toucher.core = 4;  // node 1
    buf = k.sys_mmap(owner, len, vm::Prot::kReadWrite, {}, "nt");
    k.access(owner, buf, len, vm::Prot::kWrite, 3500.0);
    toucher.clock = owner.clock;
  }

  /// Touch one word per page (the microbenchmark access pattern).
  void touch_all_pages() {
    for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
      k.access(toucher, buf + i, sizeof(std::uint64_t), vm::Prot::kReadWrite, 0.0);
  }
};

double measure_user_nt(const topo::Topology& t, std::uint64_t npages,
                       kern::MovePagesImpl impl) {
  Probe p(t, npages);
  p.k.set_move_pages_impl(impl);
  lib::UserNextTouch unt(p.k, p.pid);
  const sim::Time t0 = p.toucher.clock;
  // Marking happens on the touching side, as a scheduler hook would.
  unt.mark(p.toucher, p.buf, p.len);
  p.touch_all_pages();
  return sim::mb_per_second(p.len, p.toucher.clock - t0);
}

double measure_kernel_nt(const topo::Topology& t, std::uint64_t npages) {
  Probe p(t, npages);
  const sim::Time t0 = p.toucher.clock;
  p.k.sys_madvise(p.toucher, p.buf, p.len, kern::Advice::kMigrateOnNextTouch);
  p.touch_all_pages();
  return sim::mb_per_second(p.len, p.toucher.clock - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  numasim::bench::print_header(
      opts, "Fig. 5 — next-touch migration throughput (MB/s)",
      {"pages", "user_nt_nopatch", "user_nt", "kernel_nt"});

  for (std::uint64_t n = 4; n <= (opts.quick ? 256u : 4096u); n *= 2) {
    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(n),
               numasim::bench::fmt(measure_user_nt(t, n, kern::MovePagesImpl::kQuadratic)),
               numasim::bench::fmt(measure_user_nt(t, n, kern::MovePagesImpl::kLinear)),
               numasim::bench::fmt(measure_kernel_nt(t, n))});
  }
  obsv.finish();
  return 0;
}
