// Ablation: coarse (paper-faithful mmap_sem) versus range-locked migration
// engine, head to head on the Fig. 7 workload — N threads on node 1 each
// calling move_pages on a disjoint chunk of a node-0 buffer.
//
// Coarse serializes every chunk behind one per-process lock, so aggregate
// throughput plateaus near the single-lock service rate regardless of
// thread count. The range engine takes the whole-space lock shared and
// serializes only overlapping page runs per VMA, so disjoint chunks migrate
// in parallel until the copy hardware (HT links) saturates. The lock-wait
// columns show where the coarse plateau comes from.
#include <vector>

#include "common.hpp"
#include "rt/team.hpp"

using namespace numasim;

namespace {

struct RunResult {
  sim::Time span = 0;
  sim::Time lock_wait = 0;
};

RunResult run_one(kern::LockModel model, std::uint64_t npages, unsigned nthreads) {
  kern::KernelConfig cfg =
      bench::phantom_kernel_config(topo::Topology::quad_opteron());
  cfg.lock_model = model;
  rt::Machine m(cfg);
  bench::observe(m);
  RunResult res;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);

    rt::Team team = rt::Team::node_cores(m, 1, nthreads);
    const std::uint64_t chunk_pages = npages / nthreads;
    rt::Team::WorkerFn worker = [&, chunk_pages,
                                 buf](unsigned tid, rt::Thread& w) -> sim::Task<void> {
      const vm::Vaddr lo = buf + tid * chunk_pages * mem::kPageSize;
      co_await w.move_range(lo, chunk_pages * mem::kPageSize, 1);
    };
    co_await team.parallel(th, std::move(worker));
    res.span = team.last_span();
    res.lock_wait = team.last_stats().get(sim::CostKind::kLockWait);
  });
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);

  std::vector<std::string> cols{"pages"};
  for (unsigned n : {1u, 2u, 4u}) cols.push_back("coarse_" + std::to_string(n) + "t");
  for (unsigned n : {1u, 2u, 4u}) cols.push_back("range_" + std::to_string(n) + "t");
  cols.insert(cols.end(),
              {"range_speedup_4t", "coarse_lockw_4t_us", "range_lockw_4t_us"});
  numasim::bench::print_header(
      opts, "Ablation — coarse vs range-locked migration engine (MB/s)", cols);

  for (std::uint64_t pages = 64; pages <= (opts.quick ? 2048u : 32768u); pages *= 2) {
    std::vector<std::string> row{numasim::bench::fmt_u64(pages)};
    double coarse4 = 0, range4 = 0;
    sim::Time coarse_lockw = 0, range_lockw = 0;
    for (unsigned nt : {1u, 2u, 4u}) {
      const RunResult r = run_one(kern::LockModel::kCoarse, pages, nt);
      const double mbps = sim::mb_per_second(pages * mem::kPageSize, r.span);
      if (nt == 4) {
        coarse4 = mbps;
        coarse_lockw = r.lock_wait;
      }
      row.push_back(numasim::bench::fmt(mbps));
    }
    for (unsigned nt : {1u, 2u, 4u}) {
      const RunResult r = run_one(kern::LockModel::kRange, pages, nt);
      const double mbps = sim::mb_per_second(pages * mem::kPageSize, r.span);
      if (nt == 4) {
        range4 = mbps;
        range_lockw = r.lock_wait;
      }
      row.push_back(numasim::bench::fmt(mbps));
    }
    row.push_back(numasim::bench::fmt(range4 / coarse4, "%.2fx"));
    row.push_back(numasim::bench::fmt(static_cast<double>(coarse_lockw) / 1000.0));
    row.push_back(numasim::bench::fmt(static_cast<double>(range_lockw) / 1000.0));
    numasim::bench::print_row(opts, row);
  }
  obsv.finish();
  return 0;
}
