// Beyond-the-paper workload: iterative sparse solver with a drifting row
// partition. Compares static placement, next-touch redistribution, and
// next-touch + replication of the shared gather vector (the combination of
// the paper's contribution and its future work).
#include "apps/spmv.hpp"
#include "common.hpp"

using namespace numasim;

namespace {

apps::SpmvResult run(apps::SpmvConfig cfg) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  bench::observe(m);
  rt::Team team = rt::Team::all_cores(m);
  apps::Spmv app(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
  return app.result();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  using Policy = apps::SpmvConfig::Policy;

  numasim::bench::print_header(
      opts,
      "SpMV solver, 16 threads, partition drifts every 2 iterations "
      "(simulated ms)",
      {"rows", "static_ms", "next_touch_ms", "nt+replicate_ms", "migrated",
       "replicas"});

  for (std::uint64_t n : {1u << 14, 1u << 16, 1u << 18}) {
    if (opts.quick && n > (1u << 16)) continue;
    apps::SpmvConfig cfg;
    cfg.n = n;
    cfg.nnz_per_row = 16;
    cfg.iterations = 8;
    cfg.repartition_every = 2;

    cfg.policy = Policy::kStatic;
    const auto stat = run(cfg);
    cfg.policy = Policy::kNextTouch;
    const auto nt = run(cfg);
    cfg.policy = Policy::kNextTouchReplX;
    const auto repl = run(cfg);

    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(n),
         numasim::bench::fmt(sim::to_seconds(stat.solve_time) * 1e3, "%.1f"),
         numasim::bench::fmt(sim::to_seconds(nt.solve_time) * 1e3, "%.1f"),
         numasim::bench::fmt(sim::to_seconds(repl.solve_time) * 1e3, "%.1f"),
         numasim::bench::fmt_u64(repl.pages_migrated),
         numasim::bench::fmt_u64(repl.replicas_created)});
  }
  obsv.finish();
  return 0;
}
