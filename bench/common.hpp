// Shared support for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of Goglin & Furmento 2009,
// printing the same rows/series the paper reports. `--csv` switches to
// machine-readable output for plotting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "kern/kernel.hpp"
#include "rt/machine.hpp"
#include "rt/team.hpp"
#include "rt/thread.hpp"

namespace numasim::bench {

struct Options {
  bool csv = false;
  bool quick = false;  ///< reduced sweeps for smoke runs
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) o.csv = true;
    if (std::strcmp(argv[i], "--quick") == 0) o.quick = true;
  }
  return o;
}

inline void print_header(const Options& o, const std::string& title,
                         const std::vector<std::string>& cols) {
  if (o.csv) {
    std::string line;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i != 0) line += ',';
      line += cols[i];
    }
    std::printf("%s\n", line.c_str());
  } else {
    std::printf("# %s\n", title.c_str());
    for (std::size_t i = 0; i < cols.size(); ++i)
      std::printf("%s%-14s", i == 0 ? "" : " ", cols[i].c_str());
    std::printf("\n");
  }
}

inline void print_row(const Options& o, const std::vector<std::string>& cells) {
  if (o.csv) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) line += ',';
      line += cells[i];
    }
    std::printf("%s\n", line.c_str());
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::printf("%s%-14s", i == 0 ? "" : " ", cells[i].c_str());
    std::printf("\n");
  }
}

inline std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Fresh phantom-backed paper machine (one per measurement so hardware
/// timelines start idle).
inline kern::Kernel fresh_kernel(const topo::Topology& t) {
  return kern::Kernel(t, mem::Backing::kPhantom);
}

inline rt::Machine::Config phantom_config() {
  rt::Machine::Config cfg;
  cfg.backing = mem::Backing::kPhantom;
  return cfg;
}

}  // namespace numasim::bench
