// Shared support for the paper-reproduction benchmark binaries.
//
// Each binary regenerates one table or figure of Goglin & Furmento 2009,
// printing the same rows/series the paper reports. `--csv` switches to
// machine-readable output for plotting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kern/kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "rt/machine.hpp"
#include "rt/team.hpp"
#include "rt/thread.hpp"

namespace numasim::bench {

struct Options {
  bool csv = false;
  bool quick = false;      ///< reduced sweeps for smoke runs
  bool metrics = false;    ///< print a metrics report to stderr on exit
  std::string trace_file;  ///< write Chrome trace-event JSON here ("--trace=")
  /// Migration-engine locking ("--lock-model=coarse|range"). Coarse is the
  /// paper-faithful default; range is the scalable engine.
  kern::LockModel lock_model = kern::LockModel::kCoarse;
  /// Migration engine ("--migration-mode=stop_and_copy|transactional").
  /// Stop-and-copy is the paper-faithful default; transactional is the
  /// shadow-copy engine (kern/txn_migrate.hpp).
  kern::MigrationMode migration_mode = kern::MigrationMode::kStopAndCopy;
  /// Topology-spec override ("--tier-spec=..."), validated at parse time.
  /// Empty keeps each binary's built-in machine. A tiered spec also turns
  /// the kernel's tier promotion/demotion loops on (phantom_kernel_config).
  std::string tier_spec;
  /// Tier demotion ("--demotion=on|off"); only meaningful on tiered specs.
  bool demotion = true;
  /// Soft-TLB access fast path ("--stlb=on|off"). Host-side memoization
  /// only: on and off produce event-identical simulations, so this knob
  /// exists for determinism double-runs and host-cost A/B, not behaviour.
  bool stlb = true;
};

/// The run's parsed options; parse_options() fills it so measurement helpers
/// (which construct kernels locally) pick up machine-wide knobs like the
/// lock model without threading Options through every signature.
inline Options& current_options() {
  static Options o;
  return o;
}

/// Binary-local usage text appended by print_usage. Benches with their own
/// enum flags (serving_mixes's --mix/--placement) set this before parsing,
/// so a bad value rejected by parse_enum_flag prints the full flag surface
/// of the binary, not just the common one.
inline const char*& extra_usage() {
  static const char* text = nullptr;
  return text;
}

inline void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--csv] [--quick] [--metrics] [--trace=FILE]\n"
               "          [--lock-model=coarse|range]\n"
               "          [--migration-mode=stop_and_copy|transactional]\n"
               "          [--tier-spec=SPEC] [--demotion=on|off]\n"
               "          [--stlb=on|off]\n"
               "  --csv          machine-readable output\n"
               "  --quick        reduced sweeps for smoke runs\n"
               "  --metrics      print a metrics report to stderr on exit\n"
               "  --trace=FILE   write a Chrome trace-event JSON file\n"
               "                 (open in chrome://tracing or ui.perfetto.dev)\n"
               "  --lock-model=M migration locking: coarse (paper-faithful\n"
               "                 default) or range (scalable engine)\n"
               "  --migration-mode=M  page-migration engine: stop_and_copy\n"
               "                 (paper-faithful default) or transactional\n"
               "                 (shadow-copy with dirty retry)\n"
               "  --tier-spec=S  override the machine with a topology spec\n"
               "                 (topo::Topology::from_spec grammar, e.g.\n"
               "                 \"nodes=2 cores=4 tiers=fast:1,dram:1\");\n"
               "                 a tiered spec enables tier promote/demote\n"
               "  --demotion=D   tier demotion on|off (default on; only\n"
               "                 meaningful with a tiered --tier-spec)\n"
               "  --stlb=S       soft-TLB access fast path on|off (default\n"
               "                 on; host-side only — simulated events are\n"
               "                 identical either way)\n",
               prog);
  if (extra_usage() != nullptr) std::fputs(extra_usage(), stderr);
}

/// One name -> value row of an enum-valued command-line flag.
template <typename E>
struct EnumFlagOption {
  const char* name;
  E value;
};

/// Match `arg` against `--<flag>=<value>` where <value> must name a row of
/// `table`. Returns false when `arg` is not this flag at all; on a matching
/// flag with an unknown value, prints the allowed set + usage and exits 2.
template <typename E, std::size_t N>
inline bool parse_enum_flag(const char* prog, const char* arg, const char* flag,
                            const EnumFlagOption<E> (&table)[N], E& out) {
  const std::size_t flen = std::strlen(flag);
  if (std::strncmp(arg, flag, flen) != 0 || arg[flen] != '=') return false;
  const char* v = arg + flen + 1;
  for (const EnumFlagOption<E>& opt : table) {
    if (std::strcmp(v, opt.name) == 0) {
      out = opt.value;
      return true;
    }
  }
  std::fprintf(stderr, "%s: bad %s '%s' (", prog, flag, v);
  for (std::size_t i = 0; i < N; ++i)
    std::fprintf(stderr, "%s%s", i == 0 ? "" : "|", table[i].name);
  std::fprintf(stderr, ")\n");
  print_usage(prog);
  std::exit(2);
}

inline Options parse_options(int argc, char** argv) {
  static constexpr EnumFlagOption<kern::LockModel> kLockModels[] = {
      {"coarse", kern::LockModel::kCoarse},
      {"range", kern::LockModel::kRange},
  };
  static constexpr EnumFlagOption<kern::MigrationMode> kMigrationModes[] = {
      {"stop_and_copy", kern::MigrationMode::kStopAndCopy},
      {"transactional", kern::MigrationMode::kTransactional},
  };
  static constexpr EnumFlagOption<bool> kOnOff[] = {
      {"on", true},
      {"off", false},
  };
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--csv") == 0) {
      o.csv = true;
    } else if (std::strcmp(a, "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(a, "--metrics") == 0) {
      o.metrics = true;
    } else if (std::strncmp(a, "--trace=", 8) == 0) {
      o.trace_file = a + 8;
    } else if (parse_enum_flag(argv[0], a, "--lock-model", kLockModels,
                               o.lock_model) ||
               parse_enum_flag(argv[0], a, "--migration-mode", kMigrationModes,
                               o.migration_mode) ||
               parse_enum_flag(argv[0], a, "--demotion", kOnOff, o.demotion) ||
               parse_enum_flag(argv[0], a, "--stlb", kOnOff, o.stlb)) {
      // handled
    } else if (std::strncmp(a, "--tier-spec=", 12) == 0) {
      o.tier_spec = a + 12;
      try {
        (void)topo::Topology::from_spec(o.tier_spec);
      } catch (const topo::SpecError& e) {
        std::fprintf(stderr, "%s: bad --tier-spec: %s\n", argv[0], e.what());
        print_usage(argv[0]);
        std::exit(2);
      }
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      print_usage(argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], a);
      print_usage(argv[0]);
      std::exit(2);
    }
  }
  current_options() = o;
  return o;
}

inline void print_header(const Options& o, const std::string& title,
                         const std::vector<std::string>& cols) {
  if (o.csv) {
    std::string line;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (i != 0) line += ',';
      line += cols[i];
    }
    std::printf("%s\n", line.c_str());
  } else {
    std::printf("# %s\n", title.c_str());
    for (std::size_t i = 0; i < cols.size(); ++i)
      std::printf("%s%-14s", i == 0 ? "" : " ", cols[i].c_str());
    std::printf("\n");
  }
}

inline void print_row(const Options& o, const std::vector<std::string>& cells) {
  if (o.csv) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) line += ',';
      line += cells[i];
    }
    std::printf("%s\n", line.c_str());
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::printf("%s%-14s", i == 0 ? "" : " ", cells[i].c_str());
    std::printf("\n");
  }
}

inline std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

inline std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

class Observability;

/// Process-wide hook: the live Observability instance, if any. Measurement
/// helpers construct kernels locally, so they announce each one through
/// observe() instead of threading a handle through every signature.
inline Observability*& obs_hook() {
  static Observability* hook = nullptr;
  return hook;
}

/// Owns the observability state of one benchmark run: a metrics registry
/// that accumulates across every kernel the run constructs (kernel
/// destruction folds its counters in), a Chrome trace writer, and a
/// numastat-style periodic reporter. Reports go to stderr so `--csv` stdout
/// stays machine-readable. Does nothing (and attaches nothing) unless
/// `--metrics` or `--trace=` was given.
class Observability {
 public:
  explicit Observability(Options o) : opts_(std::move(o)) {
    if (!opts_.trace_file.empty())
      writer_ = std::make_unique<obs::ChromeTraceWriter>();
    if (opts_.metrics) {
      obs::PeriodicReporter::Output out = [](const std::string& s) {
        std::fputs(s.c_str(), stderr);
      };
      reporter_ = std::make_unique<obs::PeriodicReporter>(
          registry_, kReportInterval, std::move(out));
    }
    obs_hook() = this;
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;
  ~Observability() {
    if (obs_hook() == this) obs_hook() = nullptr;
  }

  void attach(kern::Kernel& k) {
    if (opts_.metrics) k.set_metrics(&registry_);
    if (writer_ != nullptr) k.add_trace_sink(writer_.get());
    if (reporter_ != nullptr) k.add_trace_sink(reporter_.get());
  }
  void attach(rt::Machine& m) { attach(m.kernel()); }

  const obs::Registry& registry() const { return registry_; }

  /// Flush at the end of main: write the trace file, print the cumulative
  /// metrics report.
  void finish() {
    if (writer_ != nullptr) {
      if (writer_->write_file(opts_.trace_file)) {
        std::fprintf(stderr, "# trace: %zu events -> %s",
                     writer_->size(), opts_.trace_file.c_str());
        if (writer_->dropped() > 0)
          std::fprintf(stderr, " (%llu dropped)",
                       static_cast<unsigned long long>(writer_->dropped()));
        std::fprintf(stderr, "\n");
      } else {
        std::fprintf(stderr, "# trace: failed to write %s\n",
                     opts_.trace_file.c_str());
      }
    }
    if (opts_.metrics)
      std::fprintf(stderr, "== metrics (cumulative) ==\n%s",
                   registry_.render().c_str());
  }

 private:
  static constexpr sim::Time kReportInterval = 10'000'000;  // 10 ms simulated

  Options opts_;
  obs::Registry registry_;
  std::unique_ptr<obs::ChromeTraceWriter> writer_;
  std::unique_ptr<obs::PeriodicReporter> reporter_;
};

/// Announce a freshly constructed kernel/machine to the run's Observability
/// (no-op when none is live or no observability flag was given).
inline void observe(kern::Kernel& k) {
  if (obs_hook() != nullptr) obs_hook()->attach(k);
}
inline void observe(rt::Machine& m) { observe(m.kernel()); }

/// Post-migration assertion: abort the benchmark (exit 1) unless all pages
/// of [addr, addr+len) landed on `node`. Pure host-side inspection — it
/// never advances simulated time, so adding it to a bench cannot perturb
/// golden outputs. `what` names the buffer in the failure message.
inline void expect_on_node(rt::Thread& th, vm::Vaddr addr, std::uint64_t len,
                           topo::NodeId node, const char* what) {
  const std::uint64_t want = len / mem::kPageSize;
  const std::uint64_t got =
      th.kernel().pages_on_node(th.ctx().pid, addr, len, node);
  if (got != want) {
    std::fprintf(stderr,
                 "expect_on_node: %s: %llu/%llu pages on node %u "
                 "(addr=0x%llx len=%llu)\n",
                 what, static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want), node,
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(len));
    std::exit(1);
  }
}

/// Phantom-backed kernel config on topology `t`, honoring the run's
/// machine-wide options (lock model, migration mode, tier spec/demotion).
/// A `--tier-spec` override replaces `t`; tier promotion/demotion is enabled
/// exactly when the resulting topology is tiered, so flat runs are
/// bit-identical with and without the tier code.
inline kern::KernelConfig phantom_kernel_config(const topo::Topology& t) {
  kern::KernelConfig cfg;
  const Options& o = current_options();
  cfg.topology = o.tier_spec.empty() ? t : topo::Topology::from_spec(o.tier_spec);
  cfg.backing = mem::Backing::kPhantom;
  cfg.lock_model = o.lock_model;
  cfg.migration_mode = o.migration_mode;
  cfg.tiers.enabled = cfg.topology.tiered();
  cfg.tiers.demotion = o.demotion;
  cfg.stlb = o.stlb;
  return cfg;
}

/// Fresh phantom-backed paper machine (one per measurement so hardware
/// timelines start idle).
inline kern::Kernel fresh_kernel(const topo::Topology& t) {
  return kern::Kernel(phantom_kernel_config(t));
}

inline rt::Machine::Config phantom_config() {
  return phantom_kernel_config(topo::Topology::quad_opteron());
}

}  // namespace numasim::bench
