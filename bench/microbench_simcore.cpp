// google-benchmark microbenchmarks of the simulator core itself: how many
// engine events, page-table walks and fault handlings the host can push per
// second. These bound how large a simulated experiment is practical (the
// Table 1 32k runs walk ~10^8 pages).
#include <benchmark/benchmark.h>

#include <vector>

#include "kern/kernel.hpp"
#include "rt/team.hpp"

using namespace numasim;

namespace {

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const std::int64_t n = state.range(0);
    e.start([](sim::Engine& eng, std::int64_t steps) -> sim::Task<void> {
      for (std::int64_t i = 0; i < steps; ++i) co_await eng.advance(10);
    }(e, n));
    e.run();
    benchmark::DoNotOptimize(e.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_PageTableWalk(benchmark::State& state) {
  vm::PageTable pt;
  const std::int64_t pages = state.range(0);
  for (vm::Vpn v = 0; v < static_cast<vm::Vpn>(pages); ++v)
    pt.ensure(v).set(vm::Pte::kPresent | vm::Pte::kHwRead);
  for (auto _ : state) {
    std::uint64_t present = 0;
    for (vm::Vpn v = 0; v < static_cast<vm::Vpn>(pages); ++v)
      present += pt.find(v)->present();
    benchmark::DoNotOptimize(present);
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_PageTableWalk)->Arg(1 << 10)->Arg(1 << 16);

void BM_FirstTouchFaultPath(benchmark::State& state) {
  const topo::Topology topo = topo::Topology::quad_opteron();
  const std::int64_t pages = state.range(0);
  for (auto _ : state) {
    kern::Kernel k(kern::KernelConfig{.topology = topo,
                                      .backing = mem::Backing::kPhantom});
    const kern::Pid pid = k.create_process();
    kern::ThreadCtx t;
    t.pid = pid;
    const vm::Vaddr a =
        k.sys_mmap(t, pages * mem::kPageSize, vm::Prot::kReadWrite);
    k.access(t, a, pages * mem::kPageSize, vm::Prot::kWrite, 3500.0);
    benchmark::DoNotOptimize(k.stats().minor_faults);
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_FirstTouchFaultPath)->Arg(1 << 10)->Arg(1 << 14);

void BM_NextTouchMigrationPath(benchmark::State& state) {
  const topo::Topology topo = topo::Topology::quad_opteron();
  const std::int64_t pages = state.range(0);
  for (auto _ : state) {
    kern::Kernel k(kern::KernelConfig{.topology = topo,
                                      .backing = mem::Backing::kPhantom});
    const kern::Pid pid = k.create_process();
    kern::ThreadCtx t;
    t.pid = pid;
    const std::uint64_t len = pages * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
    k.access(t, a, len, vm::Prot::kWrite, 3500.0);
    k.sys_madvise(t, a, len, kern::Advice::kMigrateOnNextTouch);
    kern::ThreadCtx r;
    r.pid = pid;
    r.core = 4;
    r.clock = t.clock;
    k.access(r, a, len, vm::Prot::kRead, 0.0);
    benchmark::DoNotOptimize(k.stats().pages_migrated_nexttouch);
  }
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_NextTouchMigrationPath)->Arg(1 << 10)->Arg(1 << 14);

void BM_ParallelRegionForkJoin(benchmark::State& state) {
  for (auto _ : state) {
    rt::Machine::Config mc;
    mc.backing = mem::Backing::kPhantom;
    rt::Machine m(mc);
    const std::int64_t regions = state.range(0);
    m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
      rt::Team team = rt::Team::all_cores(m);
      for (std::int64_t i = 0; i < regions; ++i) {
        rt::Team::WorkerFn w = [](unsigned, rt::Thread& wt) -> sim::Task<void> {
          co_await wt.compute(1000);
        };
        co_await team.parallel(th, std::move(w));
      }
    });
    benchmark::DoNotOptimize(m.engine().events_processed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_ParallelRegionForkJoin)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
