// Host-performance microbenchmarks of the simulator core itself: how fast the
// engine, page-table walks, fault paths, the AutoNUMA scanner, and the ranged
// migration engine run on the *host*. These bound how large a simulated
// experiment is practical (the Table 1 32k runs walk ~10^8 pages).
//
// Unlike the fig*/table*/ablation_* binaries this one measures wall-clock, so
// its numbers vary run to run; the `checksum` column is the part that must
// not: it folds the final simulated clock and kernel counters of each
// scenario, so two builds that disagree on any simulated event disagree on
// the checksum. CI appends the wall-clock rows to BENCH_simcore.json (see
// docs/performance.md) and fails on regressions.
//
// The scenario matrix is (scenario x nodes x pages x lock model); override
// the axes with --nodes=/--pages= (comma-separated lists). Only seed-era
// public APIs are used, so the same source builds against older checkouts
// for honest before/after measurement.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "kern/kernel.hpp"
#include "rt/machine.hpp"
#include "rt/team.hpp"
#include "rt/thread.hpp"

using namespace numasim;

namespace {

/// FNV-1a fold for the determinism checksum column.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

struct Scenario {
  const char* name;
  /// Runs the scenario; returns the determinism checksum.
  std::uint64_t (*run)(const topo::Topology&, kern::LockModel, std::uint64_t);
};

kern::KernelConfig config_for(const topo::Topology& topo, kern::LockModel lm) {
  kern::KernelConfig cfg;
  cfg.topology = topo;
  cfg.backing = mem::Backing::kPhantom;
  cfg.lock_model = lm;
  cfg.stlb = bench::current_options().stlb;
  return cfg;
}

/// Pure engine throughput: one coroutine advancing simulated time, one event
/// per step (frame allocation + queue churn dominated).
std::uint64_t run_events(const topo::Topology&, kern::LockModel,
                         std::uint64_t pages) {
  const std::uint64_t steps = pages * 8;
  sim::Engine e;
  e.start([](sim::Engine& eng, std::uint64_t n) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < n; ++i) co_await eng.advance(10);
  }(e, steps));
  e.run();
  return mix(e.events_processed(), e.now());
}

/// Fork-join churn: repeated parallel regions over all cores (coroutine
/// frame allocation + same-timestamp posting dominated).
std::uint64_t run_forkjoin(const topo::Topology& topo, kern::LockModel lm,
                           std::uint64_t pages) {
  const std::uint64_t regions = pages / 16 == 0 ? 1 : pages / 16;
  rt::Machine::Config mc = config_for(topo, lm);
  rt::Machine m(mc);
  bench::observe(m);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    for (std::uint64_t i = 0; i < regions; ++i) {
      rt::Team team = rt::Team::all_cores(m);
      rt::Team::WorkerFn w = [](unsigned, rt::Thread& wt) -> sim::Task<void> {
        co_await wt.compute(1000);
      };
      co_await team.parallel(th, std::move(w));
    }
  });
  return mix(m.engine().events_processed(), m.engine().now());
}

/// First-touch fault storm: allocate and write-fault `pages` fresh pages.
std::uint64_t run_faults(const topo::Topology& topo, kern::LockModel lm,
                         std::uint64_t pages) {
  std::uint64_t h = 14695981039346656037ull;
  for (int rep = 0; rep < 4; ++rep) {
    kern::Kernel k(config_for(topo, lm));
    bench::observe(k);
    kern::ThreadCtx t;
    t.pid = k.create_process();
    const std::uint64_t len = pages * mem::kPageSize;
    const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
    k.access(t, a, len, vm::Prot::kWrite, 3500.0);
    h = mix(h, t.clock);
    h = mix(h, k.stats().minor_faults);
  }
  return h;
}

/// Page-table walk: populate `pages` pages once, then sweep the range with
/// the kernel's residency query (the hot inspection path every figure uses).
std::uint64_t run_pt_walk(const topo::Topology& topo, kern::LockModel lm,
                          std::uint64_t pages) {
  kern::Kernel k(config_for(topo, lm));
  bench::observe(k);
  kern::ThreadCtx t;
  t.pid = k.create_process();
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  std::uint64_t h = mix(14695981039346656037ull, t.clock);
  std::uint64_t resident = 0;
  for (int rep = 0; rep < 128; ++rep)
    for (topo::NodeId n = 0; n < k.topo().num_nodes(); ++n)
      resident += k.pages_on_node(t.pid, a, len, n);
  return mix(h, resident);
}

/// AutoNUMA scan windows: enable balancing with an aggressive period and
/// re-touch the region so every pass is one scan window (tag + hint faults).
std::uint64_t run_numab_scan(const topo::Topology& topo, kern::LockModel lm,
                             std::uint64_t pages) {
  kern::KernelConfig cfg = config_for(topo, lm);
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = 50'000;  // 50 us: every pass scans
  cfg.numa_balancing.scan_size_pages = pages;
  kern::Kernel k(cfg);
  bench::observe(k);
  kern::ThreadCtx t;
  t.pid = k.create_process();
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  for (int pass = 0; pass < 16; ++pass)
    k.access(t, a, len, vm::Prot::kRead, 3500.0);
  std::uint64_t h = mix(14695981039346656037ull, t.clock);
  h = mix(h, k.stats().numab_pages_scanned);
  return mix(h, k.stats().numab_hint_faults);
}

/// Ranged migration ping-pong: the paper's proposed interface, driven hard.
std::uint64_t run_migrate_ranged(const topo::Topology& topo,
                                 kern::LockModel lm, std::uint64_t pages) {
  kern::Kernel k(config_for(topo, lm));
  bench::observe(k);
  kern::ThreadCtx t;
  t.pid = k.create_process();
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  std::uint64_t h = 14695981039346656037ull;
  const topo::NodeId nn = k.topo().num_nodes();
  for (int round = 0; round < 8; ++round) {
    const kern::Kernel::MoveRange r{a, len,
                                    static_cast<topo::NodeId>(round % nn)};
    h = mix(h, static_cast<std::uint64_t>(
                   k.sys_move_pages_ranged(t, {&r, 1})));
  }
  h = mix(h, t.clock);
  return mix(h, k.stats().pages_migrated_move);
}

/// Soft-TLB best case: populate once, then hammer the same fully mapped
/// same-node range with repeated whole-range reads. After the first read
/// fills the extent descriptor every later access is a cache hit that skips
/// the page walk entirely — the scenario the soft-TLB exists for. The
/// checksum folds only simulated state (clock, faults), never the stlb
/// hit/miss counters, so --stlb=on and --stlb=off rows must agree on it.
std::uint64_t run_stlb_hot(const topo::Topology& topo, kern::LockModel lm,
                           std::uint64_t pages) {
  kern::Kernel k(config_for(topo, lm));
  bench::observe(k);
  kern::ThreadCtx t;
  t.pid = k.create_process();
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  for (int rep = 0; rep < 64; ++rep)
    k.access(t, a, len, vm::Prot::kRead, 3500.0);
  std::uint64_t h = mix(14695981039346656037ull, t.clock);
  return mix(h, k.stats().minor_faults);
}

/// Soft-TLB worst case: every access is preceded by an mprotect over the
/// range, which bumps the process mapping generation and invalidates every
/// cached descriptor — so each access misses, walks, and refills. Bounds the
/// overhead the cache adds when it never hits.
std::uint64_t run_stlb_churn(const topo::Topology& topo, kern::LockModel lm,
                             std::uint64_t pages) {
  kern::Kernel k(config_for(topo, lm));
  bench::observe(k);
  kern::ThreadCtx t;
  t.pid = k.create_process();
  const std::uint64_t len = pages * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(t, len, vm::Prot::kReadWrite);
  k.access(t, a, len, vm::Prot::kWrite, 3500.0);
  std::uint64_t h = 14695981039346656037ull;
  for (int rep = 0; rep < 32; ++rep) {
    h = mix(h, static_cast<std::uint64_t>(
                   k.sys_mprotect(t, a, len, vm::Prot::kReadWrite)));
    k.access(t, a, len, vm::Prot::kRead, 3500.0);
  }
  h = mix(h, t.clock);
  return mix(h, k.stats().minor_faults);
}

constexpr Scenario kScenarios[] = {
    {"events", run_events},
    {"forkjoin", run_forkjoin},
    {"faults", run_faults},
    {"pt_walk", run_pt_walk},
    {"numab_scan", run_numab_scan},
    {"migrate_ranged", run_migrate_ranged},
    {"stlb_hot", run_stlb_hot},
    {"stlb_churn", run_stlb_churn},
};

/// Parse "a,b,c" into unsigned values; exits 2 on junk.
std::vector<std::uint64_t> parse_list(const char* prog, const char* flag,
                                      const char* s) {
  std::vector<std::uint64_t> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0 || (*end != ',' && *end != '\0')) {
      std::fprintf(stderr, "%s: bad %s list '%s'\n", prog, flag, s);
      std::exit(2);
    }
    out.push_back(v);
    p = *end == ',' ? end + 1 : end;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: empty %s list\n", prog, flag);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Matrix axes are local flags; everything else (--csv/--quick/--metrics/
  // --trace=/--lock-model=...) goes through the shared strict parser.
  std::vector<std::uint64_t> nodes_axis;
  std::vector<std::uint64_t> pages_axis;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0) {
      nodes_axis = parse_list(argv[0], "--nodes", argv[i] + 8);
    } else if (std::strncmp(argv[i], "--pages=", 8) == 0) {
      pages_axis = parse_list(argv[0], "--pages", argv[i] + 8);
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const Scenario& sc : kScenarios) std::printf("%s\n", sc.name);
      return 0;
    } else {
      if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)
        std::fprintf(stderr,
                     "%s extra flags:\n"
                     "  --nodes=N,...  node counts to sweep (default 2,4)\n"
                     "  --pages=N,...  pages per scenario (default 4096,32768)\n"
                     "  --list         print scenario names and exit\n",
                     argv[0]);
      rest.push_back(argv[i]);
    }
  }
  const bench::Options opt =
      bench::parse_options(static_cast<int>(rest.size()), rest.data());
  bench::Observability obs(opt);

  if (nodes_axis.empty()) nodes_axis = opt.quick ? std::vector<std::uint64_t>{4}
                                                 : std::vector<std::uint64_t>{2, 4};
  if (pages_axis.empty())
    pages_axis = opt.quick ? std::vector<std::uint64_t>{2048}
                           : std::vector<std::uint64_t>{4096, 32768};
  const std::vector<kern::LockModel> locks =
      opt.quick ? std::vector<kern::LockModel>{kern::LockModel::kCoarse}
                : std::vector<kern::LockModel>{kern::LockModel::kCoarse,
                                               kern::LockModel::kRange};

  bench::print_header(opt, "simulator-core host performance",
                      {"scenario", "nodes", "pages", "lock_model", "wall_ms",
                       "checksum"});
  for (const Scenario& sc : kScenarios) {
    for (const std::uint64_t nn : nodes_axis) {
      const topo::Topology topo = topo::Topology::from_spec(
          "nodes=" + std::to_string(nn) + " cores=2");
      for (const std::uint64_t pages : pages_axis) {
        for (const kern::LockModel lm : locks) {
          const auto t0 = std::chrono::steady_clock::now();
          const std::uint64_t checksum = sc.run(topo, lm, pages);
          const auto t1 = std::chrono::steady_clock::now();
          const double ms =
              std::chrono::duration<double, std::milli>(t1 - t0).count();
          char sum[32];
          std::snprintf(sum, sizeof sum, "%016llx",
                        static_cast<unsigned long long>(checksum));
          bench::print_row(opt, {sc.name, std::to_string(nn),
                                 std::to_string(pages),
                                 lm == kern::LockModel::kCoarse ? "coarse"
                                                                : "range",
                                 bench::fmt(ms, "%.3f"), sum});
        }
      }
    }
  }
  obs.finish();
  return 0;
}
