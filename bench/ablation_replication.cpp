// Ablation: read-only replication (the paper's future work) versus
// next-touch and static placement on a read-mostly shared table.
//
// All 16 threads repeatedly read the same lookup table that lives on node 0.
//   static      — 12 of 16 threads read remotely forever;
//   next-touch  — the table migrates to the FIRST toucher's node only (a
//                 shared structure cannot follow everyone);
//   replicate   — every node gets a local copy after its first pass.
#include "common.hpp"

using namespace numasim;

namespace {

enum class Mode { kStatic, kNextTouch, kReplicate };

sim::Time run(Mode mode, std::uint64_t npages, unsigned passes) {
  rt::Machine::Config mc = bench::phantom_config();
  rt::Machine m(mc);
  bench::observe(m);
  m.kernel().set_replication_enabled(true);
  sim::Time span = 0;

  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr table = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(table, len);
    if (mode == Mode::kNextTouch)
      co_await th.madvise(table, len, kern::Advice::kMigrateOnNextTouch);
    else if (mode == Mode::kReplicate)
      co_await th.madvise(table, len, kern::Advice::kReplicate);

    rt::Team team = rt::Team::all_cores(m);
    rt::Team::WorkerFn worker = [&, table, len, passes](unsigned,
                                                        rt::Thread& w) -> sim::Task<void> {
      for (unsigned p = 0; p < passes; ++p)
        co_await w.touch(table, len, vm::Prot::kRead);
    };
    co_await team.parallel(th, std::move(worker));
    span = team.last_span();
  });
  return span;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const std::uint64_t npages = opts.quick ? 256 : 1024;  // 4 MiB table
  numasim::bench::print_header(
      opts, "Ablation — shared read-mostly table, 16 threads (simulated ms)",
      {"passes", "static_ms", "next_touch_ms", "replicate_ms"});

  for (unsigned passes : {1u, 2u, 4u, 8u, 16u}) {
    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(passes),
         numasim::bench::fmt(sim::to_seconds(run(Mode::kStatic, npages, passes)) * 1e3, "%.2f"),
         numasim::bench::fmt(sim::to_seconds(run(Mode::kNextTouch, npages, passes)) * 1e3, "%.2f"),
         numasim::bench::fmt(sim::to_seconds(run(Mode::kReplicate, npages, passes)) * 1e3, "%.2f")});
  }
  obsv.finish();
  return 0;
}
