# Determinism regression check: run a bench binary in its pinned quick
# configuration and require byte-identical output to the golden CSV.
# Invoked by the golden_* ctest entries (see CMakeLists.txt) with
#   -DBIN=<bench binary> -DGOLDEN=<golden csv> -DOUT=<scratch output>
execute_process(COMMAND ${BIN} --quick --csv
                OUTPUT_FILE ${OUT} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} --quick --csv failed (exit ${rc})")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "determinism regression: ${OUT} differs from ${GOLDEN}; if the "
          "change is intended, regenerate the golden and say so in the PR")
endif()
