// Figure 6: cost breakdown of the two next-touch implementations, as
// percentages of the total migration cost per buffer size.
//
// (a) user-space: move_pages copy / move_pages control / mprotect restore /
//     page-fault+signal / mprotect mark.
// (b) kernel: copy / fault+migration control / madvise.
// Paper result: at large sizes the user-space control share stays ~38 %
// (inherited from move_pages) while the kernel path is ~80 % copy.
#include <vector>

#include "common.hpp"
#include "lib/user_next_touch.hpp"

using namespace numasim;

namespace {

struct Probe {
  kern::Kernel k;
  kern::Pid pid;
  kern::ThreadCtx owner;
  kern::ThreadCtx toucher;
  vm::Vaddr buf;
  std::uint64_t len;

  Probe(const topo::Topology& t, std::uint64_t npages)
      : k(bench::phantom_kernel_config(t)), pid(k.create_process()),
        len(npages * mem::kPageSize) {
    bench::observe(k);
    owner.pid = pid;
    owner.core = 0;
    toucher.pid = pid;
    toucher.tid = 1;  // distinct timeline row in trace output
    toucher.core = 4;
    buf = k.sys_mmap(owner, len, vm::Prot::kReadWrite, {}, "nt");
    k.access(owner, buf, len, vm::Prot::kWrite, 3500.0);
    toucher.clock = owner.clock;
    toucher.stats.reset();
  }

  void touch_all_pages() {
    for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
      k.access(toucher, buf + i, sizeof(std::uint64_t), vm::Prot::kReadWrite, 0.0);
  }
};

double pct(const sim::CostStats& s, sim::CostKind k) { return 100.0 * s.fraction(k); }

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  numasim::bench::print_header(
      opts, "Fig. 6(a) — user-space next-touch cost percentage",
      {"pages", "mv_copy", "mv_control", "mprot_restore", "fault+signal",
       "mprot_mark"});
  for (std::uint64_t n = 4; n <= (opts.quick ? 256u : 4096u); n *= 2) {
    Probe p(t, n);
    lib::UserNextTouch unt(p.k, p.pid);
    unt.mark(p.toucher, p.buf, p.len);
    p.touch_all_pages();
    const sim::CostStats& s = p.toucher.stats;
    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(n),
         numasim::bench::fmt(pct(s, sim::CostKind::kMovePagesCopy)),
         numasim::bench::fmt(pct(s, sim::CostKind::kMovePagesControl) +
                             pct(s, sim::CostKind::kLockWait) +
                             pct(s, sim::CostKind::kSyscallEntry)),
         numasim::bench::fmt(pct(s, sim::CostKind::kMprotectRestore)),
         numasim::bench::fmt(pct(s, sim::CostKind::kPageFault) +
                             pct(s, sim::CostKind::kSignalDelivery)),
         numasim::bench::fmt(pct(s, sim::CostKind::kMprotectMark))});
  }

  std::printf("%s", opts.csv ? "" : "\n");
  numasim::bench::print_header(
      opts, "Fig. 6(b) — kernel next-touch cost percentage",
      {"pages", "copy", "fault+control", "madvise"});
  for (std::uint64_t n = 4; n <= (opts.quick ? 256u : 4096u); n *= 2) {
    Probe p(t, n);
    p.k.sys_madvise(p.toucher, p.buf, p.len, kern::Advice::kMigrateOnNextTouch);
    p.touch_all_pages();
    const sim::CostStats& s = p.toucher.stats;
    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(n),
               numasim::bench::fmt(pct(s, sim::CostKind::kNextTouchCopy)),
               numasim::bench::fmt(pct(s, sim::CostKind::kNextTouchControl) +
                                   pct(s, sim::CostKind::kPageFault) +
                                   pct(s, sim::CostKind::kLockWait)),
               numasim::bench::fmt(pct(s, sim::CostKind::kMadvise) +
                                   pct(s, sim::CostKind::kSyscallEntry))});
  }
  obsv.finish();
  return 0;
}
