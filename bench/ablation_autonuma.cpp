// Ablation: the automatic-NUMA-balancing policy showdown.
//
// Pits the placement strategies the paper discusses (first-touch, explicit
// synchronous move_pages, kernel next-touch, user-space next-touch) against
// the AutoNUMA subsystem (hint-fault-driven page promotion plus
// preferred-node / interchange task placement) on three workloads:
//
//   stream — four pinned workers each streaming a 1 MiB slab; every 6
//            iterations the slabs rotate one node over (a phase shift, the
//            adaptive-refinement scenario the paper motivates next-touch
//            with). One-shot strategies fix the first shift and lose the
//            second; AutoNUMA keeps re-converging.
//   lu     — blocked LU, interleaved matrix (page placement only: app
//            threads are per-region, so only the fault path acts).
//   spmv   — iterative SpMV with repartitioning (page placement only).
//
// Columns: steady_remote_pct is the mean fraction of each worker's slab on
// a remote node, sampled before the *last* stream iteration ("na" for the
// apps); pages_migrated counts every migration path (move_pages, next-touch,
// kmigrated daemons); task_moves counts balancer core migrations.
//
// `--policy=NAME` restricts the run to one policy (CI smoke-tests each).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/lu.hpp"
#include "apps/spmv.hpp"
#include "common.hpp"
#include "lib/user_next_touch.hpp"
#include "sched/balancer.hpp"
#include "sim/barrier.hpp"

using namespace numasim;

namespace {

enum class Policy : std::uint8_t {
  kFirstTouch,
  kMovePagesOnce,
  kNtKernelOnce,
  kNtUserOnce,
  kAutonuma,             // page placement + preferred-node task placement
  kAutonumaInterchange,  // page placement + pairwise interchange
};

struct PolicyInfo {
  Policy p;
  const char* name;
};
constexpr PolicyInfo kPolicies[] = {
    {Policy::kFirstTouch, "first_touch"},
    {Policy::kMovePagesOnce, "move_pages_once"},
    {Policy::kNtKernelOnce, "nt_kernel_once"},
    {Policy::kNtUserOnce, "nt_user_once"},
    {Policy::kAutonuma, "autonuma"},
    {Policy::kAutonumaInterchange, "autonuma_interchange"},
};

bool is_autonuma(Policy p) {
  return p == Policy::kAutonuma || p == Policy::kAutonumaInterchange;
}

/// Machine config for one run. AutoNUMA params are tuned to the stream
/// iteration scale (~300 us): a few scan windows per iteration, so a shifted
/// page needs about two iterations to clear two-reference confirmation.
kern::KernelConfig config_for(Policy p) {
  kern::KernelConfig cfg = bench::phantom_config();
  if (is_autonuma(p)) {
    kern::NumaBalancingConfig& nb = cfg.numa_balancing;
    nb.enabled = true;
    nb.scan_period = sim::microseconds(100);
    nb.scan_size_pages = 512;
    nb.two_reference = true;
    nb.balance_period = sim::microseconds(400);
    nb.policy = p == Policy::kAutonumaInterchange
                    ? kern::NumaPolicy::kInterchange
                    : kern::NumaPolicy::kPreferredNode;
  }
  return cfg;
}

struct RunRow {
  sim::Time total = 0;
  double steady_remote = -1.0;  ///< < 0 = not applicable
  std::uint64_t pages_migrated = 0;
  std::uint64_t task_moves = 0;
};

std::uint64_t migrated_pages(const kern::KernelStats& s) {
  return s.pages_migrated_move + s.pages_migrated_process +
         s.pages_migrated_nexttouch + s.kmigrated_pages;
}

// --- stream -----------------------------------------------------------------

constexpr unsigned kWorkers = 4;
constexpr std::uint64_t kSlabPages = 256;  // 1 MiB per worker

RunRow run_stream(Policy pol, unsigned phases, unsigned iters_per_phase) {
  rt::Machine m(config_for(pol));
  bench::observe(m);
  sched::Balancer bal(m);
  std::unique_ptr<lib::UserNextTouch> unt;
  if (pol == Policy::kNtUserOnce)
    unt = std::make_unique<lib::UserNextTouch>(m.kernel(), m.pid());

  RunRow row;
  std::vector<rt::Thread*> slots(kWorkers, nullptr);
  std::vector<sim::Time> finish(kWorkers, 0);
  std::vector<double> last_remote(kWorkers, 0.0);
  sim::Time loop_start = 0;

  m.run_main(3, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t slab_bytes = kSlabPages * mem::kPageSize;
    std::vector<vm::Vaddr> slab(kWorkers);
    for (unsigned i = 0; i < kWorkers; ++i)
      slab[i] = co_await th.mmap(slab_bytes, vm::Prot::kReadWrite, {},
                                 "slab" + std::to_string(i));

    sim::Barrier bar(m.engine(), kWorkers, m.cost().barrier_phase);
    rt::Team team(m, {0, 4, 8, 12});  // one worker per node
    rt::Team::WorkerFn worker = [&](unsigned tid,
                                    rt::Thread& w) -> sim::Task<void> {
      slots[tid] = &w;
      co_await w.barrier(bar);
      if (tid == 0) {
        // All workers have parked in slots; register in tid order so the
        // balancer's evaluation order is deterministic.
        for (rt::Thread* t : slots) bal.add_thread(*t);
        loop_start = w.now();
      }
      for (unsigned phase = 0; phase < phases; ++phase) {
        const vm::Vaddr s = slab[(tid + phase) % kWorkers];
        if (phase == 1) {
          // One-shot strategies get exactly one corrective action, at the
          // first shift. The second shift is theirs to lose.
          switch (pol) {
            case Policy::kMovePagesOnce:
              co_await w.move_range(s, slab_bytes, w.node());
              bench::expect_on_node(w, s, slab_bytes, w.node(),
                                    "shifted slab");
              break;
            case Policy::kNtKernelOnce:
              co_await w.madvise(s, slab_bytes,
                                 kern::Advice::kMigrateOnNextTouch);
              break;
            case Policy::kNtUserOnce:
              unt->mark(w.ctx(), s, slab_bytes);
              co_await w.sync();
              break;
            default:
              break;
          }
        }
        for (unsigned it = 0; it < iters_per_phase; ++it) {
          const double on = static_cast<double>(
              w.kernel().pages_on_node(m.pid(), s, slab_bytes, w.node()));
          last_remote[tid] = 1.0 - on / static_cast<double>(kSlabPages);
          co_await w.touch(s, slab_bytes);
          co_await bal.tick(w);
          co_await w.barrier(bar);
        }
      }
      finish[tid] = w.now();
    };
    co_await team.parallel(th, std::move(worker), "stream");
    co_await th.kmigrated_drain();
  });

  sim::Time end = 0;
  double remote = 0.0;
  for (unsigned i = 0; i < kWorkers; ++i) {
    end = std::max(end, finish[i]);
    remote += last_remote[i];
  }
  row.total = end - loop_start;
  row.steady_remote = remote / kWorkers;
  row.pages_migrated = migrated_pages(m.kernel().stats());
  row.task_moves = m.kernel().stats().numab_task_migrations;
  return row;
}

// --- apps (page placement only: app threads are forked per region) ----------

RunRow run_lu(Policy pol, bool quick) {
  rt::Machine m(config_for(pol));
  bench::observe(m);
  apps::LuConfig lc;
  lc.n = quick ? 256 : 512;
  lc.bs = 64;
  lc.next_touch = pol == Policy::kNtKernelOnce;
  rt::Team team = rt::Team::all_cores(m);
  apps::LuFactorization lu(m, team, lc);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    co_await lu.run(th);
    co_await th.kmigrated_drain();
  });
  RunRow row;
  row.total = lu.result().factor_time;
  row.pages_migrated = migrated_pages(m.kernel().stats());
  row.task_moves = m.kernel().stats().numab_task_migrations;
  return row;
}

RunRow run_spmv(Policy pol, bool quick) {
  rt::Machine m(config_for(pol));
  bench::observe(m);
  apps::SpmvConfig sc;
  sc.n = quick ? (1u << 12) : (1u << 14);
  sc.policy = pol == Policy::kNtKernelOnce
                  ? apps::SpmvConfig::Policy::kNextTouch
                  : apps::SpmvConfig::Policy::kStatic;
  rt::Team team = rt::Team::all_cores(m);
  apps::Spmv spmv(m, team, sc);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    co_await spmv.run(th);
    co_await th.kmigrated_drain();
  });
  RunRow row;
  row.total = spmv.result().solve_time;
  row.pages_migrated = migrated_pages(m.kernel().stats());
  row.task_moves = m.kernel().stats().numab_task_migrations;
  return row;
}

void emit(const bench::Options& opts, const char* workload, const char* policy,
          std::uint64_t iters, const RunRow& r) {
  std::vector<std::string> row{
      workload, policy, bench::fmt_u64(iters),
      bench::fmt(static_cast<double>(r.total) / 1e6, "%.3f")};
  row.push_back(r.steady_remote < 0.0
                    ? "na"
                    : bench::fmt(100.0 * r.steady_remote, "%.1f"));
  row.push_back(bench::fmt_u64(r.pages_migrated));
  row.push_back(bench::fmt_u64(r.task_moves));
  bench::print_row(opts, row);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --policy= before the strict common parser sees it.
  std::string only;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--policy=", 9) == 0)
      only = argv[i] + 9;
    else
      args.push_back(argv[i]);
  }
  if (!only.empty()) {
    bool known = false;
    for (const PolicyInfo& pi : kPolicies) known = known || only == pi.name;
    if (!known) {
      std::fprintf(stderr, "%s: bad --policy '%s'\n", argv[0], only.c_str());
      return 2;
    }
  }
  const auto opts =
      numasim::bench::parse_options(static_cast<int>(args.size()), args.data());
  numasim::bench::Observability obsv(opts);

  numasim::bench::print_header(
      opts, "Ablation — automatic NUMA balancing policy showdown",
      {"workload", "policy", "iters", "total_ms", "steady_remote_pct",
       "pages_migrated", "task_moves"});

  const unsigned phases = 3;
  const unsigned ipp = 6;  // iterations per phase (shift_every)
  for (const PolicyInfo& pi : kPolicies) {
    if (!only.empty() && only != pi.name) continue;
    emit(opts, "stream", pi.name, phases * ipp, run_stream(pi.p, phases, ipp));
  }
  // The apps fork fresh threads per parallel region, so task placement never
  // engages: run them under the policies that differ (interchange would
  // duplicate the autonuma row; one-shot move_pages / user next-touch have
  // no natural hook inside the apps).
  const std::uint64_t lu_n = opts.quick ? 256 : 512;
  for (const PolicyInfo& pi : kPolicies) {
    if (!only.empty() && only != pi.name) continue;
    if (pi.p == Policy::kMovePagesOnce || pi.p == Policy::kNtUserOnce ||
        pi.p == Policy::kAutonumaInterchange)
      continue;
    emit(opts, "lu", pi.name, lu_n / 64, run_lu(pi.p, opts.quick));
  }
  for (const PolicyInfo& pi : kPolicies) {
    if (!only.empty() && only != pi.name) continue;
    if (pi.p == Policy::kMovePagesOnce || pi.p == Policy::kNtUserOnce ||
        pi.p == Policy::kAutonumaInterchange)
      continue;
    emit(opts, "spmv", pi.name, apps::SpmvConfig{}.iterations,
         run_spmv(pi.p, opts.quick));
  }

  obsv.finish();
  return 0;
}
