// Ablation: heterogeneous memory tiers — promotion engine and demotion
// on/off under fast-tier pressure.
//
// A two-node machine with one HBM-like fast node (node 0, small) and one
// DRAM node (node 1, large). The fast node is pre-filled to rising
// occupancy; four workers on the fast node's cores then take over a buffer
// sitting on DRAM: each writes its chunk remotely, explicitly promotes the
// first half with move_pages, and keeps writing the whole chunk so AutoNUMA
// hint faults promote the second half through kmigrated (two-reference
// confirmed, using the configured migration engine). Past the high
// watermark every promotion needs room: with demotion on, cold filler pages
// walk down to DRAM (watermark passes at scan ticks, direct demotion under
// allocation pressure) and promotion keeps succeeding; with demotion off
// the fast node degrades promotions to per-page ENOMEM (`failed`). The
// stop-and-copy vs transactional contrast shows in the workers' aggregate
// stall: transactional promotion copies outside the serialized critical
// section, so at >=90 % fast-tier occupancy its stall stays well below
// stop-and-copy's.
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

struct Result {
  sim::Time span = 0;   ///< fork-to-join wall span of the takeover
  sim::Time stall = 0;  ///< aggregate worker lock-wait
  std::uint64_t moved = 0;     ///< pages moved by the explicit move_pages
  std::uint64_t failed = 0;    ///< per-page migration failures (ENOMEM legs)
  std::uint64_t promoted = 0;  ///< kern.tier.promotions (numab up-tier)
  std::uint64_t demoted = 0;   ///< kern.tier.demotions
  std::int64_t fast_occ = 0;   ///< kern.tier.fast_occupancy at the end
};

Result run(kern::MigrationMode mode, bool demotion, unsigned occ_pct,
           bool quick) {
  // Fast node 0 holds 16 MB (quick) / 64 MB; DRAM node 1 is effectively
  // unbounded. Line shape keeps one hop between the tiers.
  const std::uint64_t fast_frames = quick ? 4096 : 16384;
  const std::string spec =
      "nodes=2 cores=4 shape=line tiers=fast:1,dram:1 fast_mb=" +
      std::to_string(fast_frames * mem::kPageSize >> 20);
  const topo::Topology topo = topo::Topology::from_spec(spec);
  kern::KernelConfig cfg = bench::phantom_kernel_config(topo);
  cfg.migration_mode = mode;
  cfg.tiers.enabled = true;
  cfg.tiers.demotion = demotion;
  // Fast scan clock so hint faults confirm within the takeover, and a window
  // wide enough to cover the filler + buffer.
  cfg.numa_balancing.enabled = true;
  cfg.numa_balancing.scan_period = sim::microseconds(20);
  cfg.numa_balancing.scan_size_pages = 2 * fast_frames;
  rt::Machine m(cfg);
  bench::observe(m);

  constexpr unsigned kThreads = 4;
  const std::uint64_t npages = fast_frames / 2;

  Result res;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    if (occ_pct > 0) {
      // Fill the fast tier; these pages go cold once the takeover starts,
      // so they are the demotion victims.
      const std::uint64_t flen = (fast_frames * occ_pct / 100) * mem::kPageSize;
      const vm::Vaddr filler = co_await th.mmap(
          flen, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
      co_await th.touch(filler, flen);
    }
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(1)));
    co_await th.touch(buf, len);  // phase 1: resident on DRAM

    rt::Team team = rt::Team::node_cores(m, 0, kThreads);
    const std::uint64_t chunk_pages = npages / kThreads;
    rt::Team::WorkerFn worker = [&, buf, chunk_pages](
                                    unsigned tid,
                                    rt::Thread& w) -> sim::Task<void> {
      const vm::Vaddr lo = buf + tid * chunk_pages * mem::kPageSize;
      const std::uint64_t bytes = chunk_pages * mem::kPageSize;
      // Still writing the DRAM placement remotely...
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
      // ...explicitly promote the first half (sync move_pages into the fast
      // node — the direct-demotion pressure path)...
      co_await w.move_range(lo, bytes / 2, 0);
      // ...and keep writing the whole chunk: hint faults promote the second
      // half through kmigrated with the configured engine.
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
    };
    co_await team.parallel(th, std::move(worker));
    res.span = team.last_span();
    res.stall = team.last_stats().get(sim::CostKind::kLockWait);
  });

  const kern::KernelStats& s = m.kernel().stats();
  res.moved = s.pages_migrated_move;
  res.failed = s.migrations_failed;
  res.promoted = s.tier_promotions;
  res.demoted = s.tier_demotions;
  res.fast_occ = m.kernel().fast_occupancy_pct();
  return res;
}

std::vector<std::string> row_of(unsigned occ, const char* mode, bool demotion,
                                const Result& r) {
  return {std::to_string(occ),
          mode,
          demotion ? "on" : "off",
          numasim::bench::fmt(static_cast<double>(r.span) / 1000.0),
          numasim::bench::fmt(static_cast<double>(r.stall) / 1000.0),
          numasim::bench::fmt_u64(r.moved),
          numasim::bench::fmt_u64(r.failed),
          numasim::bench::fmt_u64(r.promoted),
          numasim::bench::fmt_u64(r.demoted),
          std::to_string(r.fast_occ)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);

  numasim::bench::print_header(
      opts,
      "Ablation — memory tiers: promotion engine x demotion under fast-node "
      "occupancy sweep",
      {"occupancy%", "mode", "demotion", "runtime_us", "stall_us", "moved",
       "failed", "promoted", "demoted", "fast_occ%"});

  for (const unsigned occ : {0u, 50u, 90u, 99u}) {
    const Result sc =
        run(kern::MigrationMode::kStopAndCopy, true, occ, opts.quick);
    const Result tx =
        run(kern::MigrationMode::kTransactional, true, occ, opts.quick);
    numasim::bench::print_row(opts, row_of(occ, "stop_and_copy", true, sc));
    numasim::bench::print_row(opts, row_of(occ, "transactional", true, tx));
  }
  // The ENOMEM contrast: at 99 % occupancy with demotion off, the fast tier
  // cannot make room and promotions degrade to per-page failures.
  for (const auto mode : {kern::MigrationMode::kStopAndCopy,
                          kern::MigrationMode::kTransactional}) {
    const Result r = run(mode, false, 99, opts.quick);
    numasim::bench::print_row(
        opts, row_of(99,
                     mode == kern::MigrationMode::kStopAndCopy
                         ? "stop_and_copy"
                         : "transactional",
                     false, r));
  }
  obsv.finish();
  return 0;
}
