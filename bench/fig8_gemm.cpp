// Figure 8: execution time of 16 concurrent BLAS3 multiplications in 16
// independent threads — static allocation vs kernel next-touch vs user-space
// next-touch, versus matrix size.
//
// Paper result: migration starts paying at N=512 (the size where the
// operands stop fitting in the node L3); below that, static allocation wins
// because the multiply is cache-resident and migration is pure overhead.
#include <vector>

#include "apps/matmul_batch.hpp"
#include "common.hpp"

using namespace numasim;

namespace {

sim::Time run_batch(std::uint64_t n, apps::MatmulBatchConfig::Mode mode) {
  rt::Machine m(bench::phantom_config());
  bench::observe(m);
  rt::Team team = rt::Team::all_cores(m);
  apps::MatmulBatchConfig cfg;
  cfg.n = n;
  cfg.mode = mode;
  apps::MatmulBatch app(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });
  return app.result().compute_time;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  using Mode = apps::MatmulBatchConfig::Mode;

  numasim::bench::print_header(
      opts, "Fig. 8 — 16 concurrent BLAS3 multiplications (simulated seconds)",
      {"N", "static_s", "kernel_nt_s", "user_nt_s"});

  std::vector<std::uint64_t> sizes{128, 256, 512, 1024, 2048};
  if (opts.quick) sizes = {128, 512};

  for (std::uint64_t n : sizes) {
    numasim::bench::print_row(
        opts,
        {numasim::bench::fmt_u64(n),
         numasim::bench::fmt(sim::to_seconds(run_batch(n, Mode::kStatic)), "%.4f"),
         numasim::bench::fmt(sim::to_seconds(run_batch(n, Mode::kKernelNextTouch)), "%.4f"),
         numasim::bench::fmt(sim::to_seconds(run_batch(n, Mode::kUserNextTouch)), "%.4f")});
  }
  obsv.finish();
  return 0;
}
