// Ablation: next-touch migration under destination memory pressure.
//
// Fig. 5 measures next-touch throughput with an empty destination node; real
// machines migrate into nodes that are already busy. This sweep pre-fills
// the destination to 50/90/99/100% occupancy and replays the Fig. 5
// next-touch microbenchmark (kernel madvise and user mprotect/SIGSEGV
// flavors). Migration destinations are allocated strictly on the target
// node (__GFP_THISNODE), so pages that no longer fit degrade gracefully:
// the kernel path maps them in place on their source node, the user path
// sees per-page -ENOMEM from move_pages — either way the touch completes
// and the access is served remotely. The MB/s columns rate the touch phase
// itself: degraded pages skip the copy, so the touch finishes faster while
// the moved/degraded columns show how much data was actually localized —
// every later access to a degraded page keeps paying the remote latency.
#include <vector>

#include "common.hpp"
#include "kern/event_log.hpp"
#include "lib/user_next_touch.hpp"

using namespace numasim;

namespace {

struct Result {
  double mbps = 0.0;
  std::uint64_t moved = 0;
  std::uint64_t degraded = 0;
};

/// Fill node 1 with `filler_pages`, place `npages` on node 0, then trigger
/// next-touch from a node-1 core. `user_nt` selects the Fig. 1 user-space
/// implementation over the Fig. 2 kernel one.
Result run(const topo::Topology& t, std::uint64_t max_frames,
           std::uint64_t npages, std::uint64_t filler_pages, bool user_nt) {
  kern::KernelConfig cfg = bench::phantom_kernel_config(t);
  cfg.max_frames_per_node = max_frames;
  kern::Kernel k(cfg);
  bench::observe(k);
  const kern::Pid pid = k.create_process("pressure");
  kern::EventLog log(1 << 20);
  k.set_event_log(&log);

  kern::ThreadCtx owner;
  owner.pid = pid;
  owner.core = 0;  // node 0

  if (filler_pages > 0) {
    const std::uint64_t flen = filler_pages * mem::kPageSize;
    const vm::Vaddr filler = k.sys_mmap(
        owner, flen, vm::Prot::kReadWrite,
        vm::MemPolicy::bind(topo::node_mask_of(1)), "filler");
    k.access(owner, filler, flen, vm::Prot::kWrite, 3500.0);
  }

  const std::uint64_t len = npages * mem::kPageSize;
  const vm::Vaddr buf = k.sys_mmap(owner, len, vm::Prot::kReadWrite, {}, "nt");
  k.access(owner, buf, len, vm::Prot::kWrite, 3500.0);

  kern::ThreadCtx toucher;
  toucher.pid = pid;
  toucher.core = 4;  // node 1 — the pressured destination
  toucher.clock = owner.clock;

  lib::UserNextTouch unt(k, pid);
  if (user_nt) {
    unt.mark(owner, buf, len);
    toucher.clock = owner.clock;
  } else {
    k.sys_madvise(owner, buf, len, kern::Advice::kMigrateOnNextTouch);
    toucher.clock = owner.clock;
  }

  const sim::Time t0 = toucher.clock;
  for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
    k.access(toucher, buf + i, sizeof(std::uint64_t), vm::Prot::kReadWrite, 0.0);

  Result r;
  r.mbps = sim::mb_per_second(len, toucher.clock - t0);
  r.moved = k.pages_on_node(pid, buf, len, 1);
  r.degraded = user_nt ? unt.stats().pages_failed
                       : log.count(kern::EventType::kNextTouchDegraded);
  k.validate(pid);
  k.set_event_log(nullptr);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  const std::uint64_t max_frames = opts.quick ? 8192 : 32768;
  const std::uint64_t npages = max_frames / 4;

  numasim::bench::print_header(
      opts,
      "Ablation — next-touch under destination pressure "
      "(node-1 occupancy sweep)",
      {"occupancy%", "knt_MB/s", "knt_moved", "knt_degraded", "unt_MB/s",
       "unt_moved", "unt_degraded"});

  for (const unsigned occ : {0u, 50u, 90u, 99u, 100u}) {
    const std::uint64_t filler = max_frames * occ / 100;
    const Result knt = run(t, max_frames, npages, filler, /*user_nt=*/false);
    const Result unt = run(t, max_frames, npages, filler, /*user_nt=*/true);
    numasim::bench::print_row(
        opts, {numasim::bench::fmt_u64(occ), numasim::bench::fmt(knt.mbps),
               numasim::bench::fmt_u64(knt.moved),
               numasim::bench::fmt_u64(knt.degraded),
               numasim::bench::fmt(unt.mbps),
               numasim::bench::fmt_u64(unt.moved),
               numasim::bench::fmt_u64(unt.degraded)});
  }
  obsv.finish();
  return 0;
}
