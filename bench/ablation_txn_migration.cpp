// Ablation: stop-and-copy vs transactional shadow-copy migration under a
// write-hot phase-shifting workload.
//
// Four workers bound to node 1 take over a buffer first-touched on node 0:
// each writes its chunk remotely (the old phase's data is still hot), then
// migrates it with move_pages, then keeps writing it locally. Under
// stop-and-copy, concurrent migrations serialize on the long per-page
// critical section (move_pages_serial_per_page); the transactional engine
// copies outside the lock and serializes only the commit flips, so the
// workers' aggregate stall (lock-wait) and the end-to-end runtime both
// drop. The sweep pre-fills node 1 to rising occupancy: past the low
// watermark the transactional engine stops admitting shadow copies and
// degrades per page to stop-and-copy (the `degraded` column), and at 100 %
// both engines fail pages with per-page ENOMEM (`failed`) — never a batch
// failure.
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

struct Result {
  sim::Time span = 0;   ///< fork-to-join wall span of the takeover
  sim::Time stall = 0;  ///< aggregate worker lock-wait
  std::uint64_t moved = 0;
  std::uint64_t commits = 0;
  std::uint64_t dirty_retries = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
};

Result run(kern::MigrationMode mode, unsigned occ_pct, bool quick) {
  kern::KernelConfig cfg = bench::phantom_config();
  cfg.migration_mode = mode;
  const std::uint64_t max_frames = quick ? 4096 : 16384;
  cfg.max_frames_per_node = max_frames;
  rt::Machine m(cfg);
  bench::observe(m);
  // Pressure ladder: shadow-copy admission yields once node 1 falls below
  // 4 % free; min stays 0 so stop-and-copy keeps allocating to the last
  // frame. Stop-and-copy mode is unaffected (it never doubles a page).
  m.kernel().phys().set_node_watermarks(1, 0, max_frames * 4 / 100);

  constexpr unsigned kThreads = 4;
  const std::uint64_t npages = max_frames / 2;

  Result res;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    if (occ_pct > 0) {
      const std::uint64_t flen = (max_frames * occ_pct / 100) * mem::kPageSize;
      const vm::Vaddr filler = co_await th.mmap(
          flen, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(1)));
      co_await th.touch(filler, flen);
    }
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);  // phase 1: the node-0 phase owned it

    rt::Team team = rt::Team::node_cores(m, 1, kThreads);
    const std::uint64_t chunk_pages = npages / kThreads;
    rt::Team::WorkerFn worker = [&, buf, chunk_pages](
                                    unsigned tid,
                                    rt::Thread& w) -> sim::Task<void> {
      const vm::Vaddr lo = buf + tid * chunk_pages * mem::kPageSize;
      const std::uint64_t bytes = chunk_pages * mem::kPageSize;
      // Phase shift: still writing the old placement remotely...
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
      // ...pull the chunk over (this is where the engines differ)...
      co_await w.move_range(lo, bytes, 1);
      // ...and keep writing, now (mostly) locally.
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
      co_await w.touch(lo, bytes, vm::Prot::kWrite);
    };
    co_await team.parallel(th, std::move(worker));
    res.span = team.last_span();
    res.stall = team.last_stats().get(sim::CostKind::kLockWait);
  });

  const kern::KernelStats& s = m.kernel().stats();
  res.moved = s.pages_migrated_move;
  res.commits = s.txn_commits;
  res.dirty_retries = s.txn_dirty_retries;
  res.degraded = s.txn_degraded;
  res.failed = s.migrations_failed;
  return res;
}

std::vector<std::string> row_of(unsigned occ, const char* mode,
                                const Result& r) {
  return {std::to_string(occ),
          mode,
          numasim::bench::fmt(static_cast<double>(r.span) / 1000.0),
          numasim::bench::fmt(static_cast<double>(r.stall) / 1000.0),
          numasim::bench::fmt_u64(r.moved),
          numasim::bench::fmt_u64(r.commits),
          numasim::bench::fmt_u64(r.dirty_retries),
          numasim::bench::fmt_u64(r.degraded),
          numasim::bench::fmt_u64(r.failed)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);

  numasim::bench::print_header(
      opts,
      "Ablation — stop-and-copy vs transactional migration, write-hot "
      "phase shift (node-1 occupancy sweep)",
      {"occupancy%", "mode", "runtime_us", "stall_us", "moved", "commits",
       "dirty_retries", "degraded", "failed"});

  for (const unsigned occ : {0u, 50u, 90u, 99u, 100u}) {
    const Result sc = run(kern::MigrationMode::kStopAndCopy, occ, opts.quick);
    const Result tx = run(kern::MigrationMode::kTransactional, occ, opts.quick);
    numasim::bench::print_row(opts, row_of(occ, "stop_and_copy", sc));
    numasim::bench::print_row(opts, row_of(occ, "transactional", tx));
  }
  obsv.finish();
  return 0;
}
