// Ablation: user next-touch migration granularity (paper Sec. 3.4 — the
// user-space design's unique knob: "the library may migrate larger or more
// complex areas ... since it knows the data structure in memory").
//
// A 16 MiB buffer is armed and then touched page-by-page from a remote
// node. Granule = bytes migrated per fault: small granules pay a signal
// round-trip + mprotect shootdown per window; the whole-region granule pays
// them once but migrates data the toucher may not need yet.
#include <vector>

#include "common.hpp"
#include "lib/user_next_touch.hpp"

using namespace numasim;

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();
  const std::uint64_t npages = opts.quick ? 512 : 4096;
  const std::uint64_t len = npages * mem::kPageSize;

  numasim::bench::print_header(
      opts, "Ablation — user next-touch granularity (16 MiB buffer)",
      {"granule_pages", "faults", "throughput_MBs", "per_fault_us"});

  std::vector<std::uint64_t> granules{1, 4, 16, 64, 256, 1024, 0 /*whole*/};
  for (std::uint64_t g : granules) {
    if (g > npages) continue;
    kern::Kernel k(bench::phantom_kernel_config(t));
    bench::observe(k);
    const kern::Pid pid = k.create_process();
    kern::ThreadCtx owner;
    owner.pid = pid;
    owner.core = 0;
    const vm::Vaddr buf = k.sys_mmap(owner, len, vm::Prot::kReadWrite, {}, "g");
    k.access(owner, buf, len, vm::Prot::kWrite, 3500.0);

    lib::UserNextTouch unt(k, pid);
    kern::ThreadCtx toucher;
    toucher.pid = pid;
    toucher.core = 4;
    toucher.clock = owner.clock;
    const sim::Time t0 = toucher.clock;
    unt.mark(toucher, buf, len, g * mem::kPageSize);
    for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
      k.access(toucher, buf + i, 8, vm::Prot::kReadWrite, 0.0);
    const sim::Time dur = toucher.clock - t0;

    numasim::bench::print_row(
        opts,
        {g == 0 ? "whole" : numasim::bench::fmt_u64(g),
         numasim::bench::fmt_u64(unt.stats().faults_handled),
         numasim::bench::fmt(sim::mb_per_second(len, dur)),
         numasim::bench::fmt(sim::to_microseconds(dur) /
                             static_cast<double>(unt.stats().faults_handled))});
  }
  obsv.finish();
  return 0;
}
