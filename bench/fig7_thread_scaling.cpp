// Figure 7: aggregate throughput of parallel migration — synchronous
// (move_pages) versus lazy (kernel next-touch) — with 1..4 threads bound to
// NUMA node #1 migrating a buffer from node #0.
//
// Paper result: no improvement below ~1 MiB (256 pages) for either strategy
// (kernel lock contention); +50-60 % with 4 threads on large buffers; lazy
// scales slightly better, reaching ~1.3 GB/s.
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

struct RunResult {
  sim::Time span = 0;       ///< fork-to-join wall span
  sim::Time lock_wait = 0;  ///< aggregate lock-wait across the workers
};

RunResult run_one(std::uint64_t npages, unsigned nthreads, bool lazy) {
  rt::Machine m(bench::phantom_config());
  bench::observe(m);
  RunResult res;
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    const std::uint64_t len = npages * mem::kPageSize;
    const vm::Vaddr buf = co_await th.mmap(
        len, vm::Prot::kReadWrite, vm::MemPolicy::bind(topo::node_mask_of(0)));
    co_await th.touch(buf, len);

    rt::Team team = rt::Team::node_cores(m, 1, nthreads);
    const std::uint64_t chunk_pages = npages / nthreads;
    rt::Team::WorkerFn worker = [&, lazy, chunk_pages,
                                 buf](unsigned tid, rt::Thread& w) -> sim::Task<void> {
      const vm::Vaddr lo = buf + tid * chunk_pages * mem::kPageSize;
      const std::uint64_t bytes = chunk_pages * mem::kPageSize;
      if (lazy) {
        co_await w.madvise(lo, bytes, kern::Advice::kMigrateOnNextTouch);
        co_await w.touch_pages_sparse(lo, bytes);
      } else {
        co_await w.move_range(lo, bytes, 1);
      }
      bench::expect_on_node(w, lo, bytes, 1, lazy ? "lazy chunk" : "sync chunk");
    };
    co_await team.parallel(th, std::move(worker));
    res.span = team.last_span();
    res.lock_wait = team.last_stats().get(sim::CostKind::kLockWait);
  });
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);

  std::vector<std::string> cols{"pages"};
  for (unsigned n = 1; n <= 4; ++n) cols.push_back("sync_" + std::to_string(n) + "t");
  for (unsigned n = 1; n <= 4; ++n) cols.push_back("lazy_" + std::to_string(n) + "t");
  // Lock-wait columns: aggregate worker time spent queued on the mmap /
  // range locks (us) — the contention fig. 7 attributes the sync plateau to.
  for (unsigned n = 1; n <= 4; ++n)
    cols.push_back("sync_lockw_" + std::to_string(n) + "t_us");
  for (unsigned n = 1; n <= 4; ++n)
    cols.push_back("lazy_lockw_" + std::to_string(n) + "t_us");
  numasim::bench::print_header(
      opts, "Fig. 7 — aggregate migration throughput node0 -> node1 (MB/s)", cols);

  for (std::uint64_t pages = 64; pages <= (opts.quick ? 2048u : 32768u); pages *= 2) {
    std::vector<std::string> row{numasim::bench::fmt_u64(pages)};
    std::vector<std::string> lockw;
    for (unsigned nt = 1; nt <= 4; ++nt) {
      const RunResult r = run_one(pages, nt, /*lazy=*/false);
      row.push_back(
          numasim::bench::fmt(sim::mb_per_second(pages * mem::kPageSize, r.span)));
      lockw.push_back(numasim::bench::fmt(static_cast<double>(r.lock_wait) / 1000.0));
    }
    for (unsigned nt = 1; nt <= 4; ++nt) {
      const RunResult r = run_one(pages, nt, /*lazy=*/true);
      row.push_back(
          numasim::bench::fmt(sim::mb_per_second(pages * mem::kPageSize, r.span)));
      lockw.push_back(numasim::bench::fmt(static_cast<double>(r.lock_wait) / 1000.0));
    }
    row.insert(row.end(), lockw.begin(), lockw.end());
    numasim::bench::print_row(opts, row);
  }
  obsv.finish();
  return 0;
}
