// Serving mixes: the multi-tenant KV latency-SLO policy showdown.
//
// The repo's first benchmark scored on a latency SLO rather than end-to-end
// runtime ("Revisiting Page Migration for Main-Memory Database Systems"
// argues tail request latency is where migration helps or hurts a serving
// system). Four tenants, each pinned to the cores of its own node with two
// client threads, serve zipfian get/put/scan traffic against a 16-shard KV
// store (apps/kvstore). The traffic layer rotates every tenant's key range
// one tenant over at each phase boundary, so the hot shard — ~80 % of a
// tenant's accesses — lands on a remote node after each shift and page
// placement must chase it.
//
// Placement policies compared (--placement to restrict):
//   first_touch — phase-0 warmup places the store tenant-local; after the
//                 shift every hot access is remote forever (the baseline).
//   interleave  — round-robin pages: uniformly mediocre, shift-immune.
//   move_pages  — one corrective action: at the *first* shift each tenant
//                 synchronously move_pages's its new hot shard home (the
//                 paper's explicit-migration model). The second shift is
//                 theirs to lose: the hot shard ends ~100 % remote.
//   autonuma    — NUMA-balancing hint faults re-converge after every shift;
//                 promotions ride the async kmigrated daemons.
//   tiering     — tiered topology (2 fast + 2 DRAM nodes, small fast tier):
//                 tier-preferred placement plus hint-fault promotion keeps
//                 the hot shard in the fast tier under capacity pressure.
//
// Per-request simulated latency is histogrammed per phase over a steady
// window (the first quarter of each phase is warmup: it absorbs first-touch
// faults, the move_pages spike, and AutoNUMA convergence, so the SLO
// columns compare steady serving, which is what an SLO means). Throughput
// spans the whole phase. hot_remote_pct is the fraction of each tenant's
// current hot shard resident off the tenant's node at phase end.
//
// All the machine-wide knobs compose: --lock-model, --migration-mode,
// --stlb, --tier-spec (which replaces the per-policy topology).
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "apps/kvstore.hpp"
#include "apps/traffic.hpp"
#include "common.hpp"
#include "sim/barrier.hpp"

using namespace numasim;

namespace {

enum class Policy : std::uint8_t {
  kFirstTouch,
  kInterleave,
  kMovePages,
  kAutonuma,
  kTiering,
};

constexpr bench::EnumFlagOption<Policy> kPlacements[] = {
    {"first_touch", Policy::kFirstTouch},
    {"interleave", Policy::kInterleave},
    {"move_pages", Policy::kMovePages},
    {"autonuma", Policy::kAutonuma},
    {"tiering", Policy::kTiering},
};

constexpr bench::EnumFlagOption<apps::Mix> kMixes[] = {
    {"read_heavy", apps::Mix::kReadHeavy},
    {"write_heavy", apps::Mix::kWriteHeavy},
    {"scan_mixed", apps::Mix::kScanMixed},
};

const char* policy_name(Policy p) {
  for (const auto& opt : kPlacements)
    if (opt.value == p) return opt.name;
  return "?";
}

// Workload shape. The store is 16 shards x 512 keys x 1 KiB = 8 MiB; each
// tenant's range is 4 shards whose first shard carries ~80 % of the
// tenant's zipfian mass (theta 0.99 over 2048 keys) — the hot shard.
constexpr unsigned kTenants = 4;
constexpr unsigned kClientsPerTenant = 2;
constexpr unsigned kPhases = 3;
constexpr std::uint64_t kShards = 16;
constexpr std::uint64_t kKeysPerShard = 512;
constexpr std::uint64_t kValueBytes = 1024;
constexpr std::uint64_t kShardsPerTenant = kShards / kTenants;
constexpr double kTheta = 0.99;
constexpr std::uint64_t kSeed = 0x5e39'11d5'0a1b'77c3ull;
/// First 1/kWarmupDiv of each phase's requests excluded from the latency
/// histogram (steady-window SLO).
constexpr std::uint64_t kWarmupDiv = 4;

/// Tiered machine for the tiering policy: four sockets, two with a small
/// fast tier (3 MB each — together 6 MB against the 8 MB store, so the
/// tier is always over-subscribed), two plain DRAM. Same core layout as
/// quad_opteron so tenant pinning is identical.
constexpr const char* kTierTopo =
    "nodes=4 cores=4 tiers=fast:2,dram:2 fast_mb=3";

std::uint64_t migrated_pages(const kern::KernelStats& s) {
  return s.pages_migrated_move + s.pages_migrated_process +
         s.pages_migrated_nexttouch + s.kmigrated_pages;
}

/// Machine config for one policy run. AutoNUMA's scan clock is tuned to the
/// phase scale: one full-address-space tag cycle ~1.2 ms (4 windows of 512
/// pages every 300 us), single-reference promotion — the hot shard
/// re-converges within the warmup window of a phase while the steady
/// hint-fault tax stays in the tail's noise. Tiering slows the clock 5x and
/// demands two references: its fast tier is over-subscribed, so promotion
/// must be conservative or the tier thrashes (observed: ~10x the page churn
/// and >10x the p99 with the AutoNUMA clock).
kern::KernelConfig config_for(Policy p) {
  const topo::Topology t = p == Policy::kTiering
                               ? topo::Topology::from_spec(kTierTopo)
                               : topo::Topology::quad_opteron();
  kern::KernelConfig cfg = bench::phantom_kernel_config(t);
  if (p == Policy::kAutonuma || p == Policy::kTiering) {
    kern::NumaBalancingConfig& nb = cfg.numa_balancing;
    nb.enabled = true;
    nb.scan_period = p == Policy::kTiering ? sim::microseconds(1500)
                                           : sim::microseconds(300);
    nb.scan_size_pages = 512;
    // Tiering promotes into a fast tier half the store's size: demand only
    // confirmed-hot pages (two references) or every cold zipfian touch
    // evicts a hot page and the tier thrashes. Plain AutoNUMA promotes on
    // first touch — capacity is not contended, so faster convergence wins.
    nb.two_reference = p == Policy::kTiering;
    nb.balance_period = sim::milliseconds(100);  // clients stay pinned
  }
  return cfg;
}

apps::KvPlacement placement_for(Policy p) {
  switch (p) {
    case Policy::kInterleave: return apps::KvPlacement::kInterleave;
    case Policy::kTiering: return apps::KvPlacement::kTiered;
    default: return apps::KvPlacement::kFirstTouch;
  }
}

struct PhaseRow {
  obs::Histogram lat;           ///< steady-window request latency (ns)
  sim::Time span = 0;           ///< full phase wall span (simulated)
  std::uint64_t requests = 0;   ///< all requests issued in the phase
  double hot_remote = 0.0;      ///< mean hot-shard remote fraction at end
  std::uint64_t migrated = 0;   ///< pages migrated during the phase
};

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::vector<PhaseRow> run_serving(Policy pol, apps::Mix mix,
                                  std::uint64_t rpp) {
  rt::Machine m(config_for(pol));
  bench::observe(m);

  apps::KvConfig kc;
  kc.shards = kShards;
  kc.keys_per_shard = kKeysPerShard;
  kc.value_bytes = kValueBytes;
  kc.placement = placement_for(pol);
  apps::KvStore store(m, kc);

  constexpr unsigned kClients = kTenants * kClientsPerTenant;
  std::vector<topo::CoreId> cores;
  for (unsigned t = 0; t < kTenants; ++t)
    for (unsigned c = 0; c < kClientsPerTenant; ++c)
      cores.push_back(static_cast<topo::CoreId>(4 * t + c));

  std::vector<PhaseRow> rows(kPhases);
  std::array<sim::Time, kPhases + 1> boundary{};
  std::array<std::uint64_t, kPhases + 1> migrated_at{};
  std::vector<std::array<double, kTenants>> remote(kPhases);

  sim::Barrier bar(m.engine(), kClients, m.cost().barrier_phase);
  rt::Team team(m, cores);
  rt::Team::WorkerFn worker = [&](unsigned tid,
                                  rt::Thread& w) -> sim::Task<void> {
    const unsigned tenant = tid / kClientsPerTenant;
    const unsigned local = tid % kClientsPerTenant;

    apps::ClientTraffic::Config tc;
    tc.tenant = tenant;
    tc.tenants = kTenants;
    tc.keys_per_tenant = kKeysPerShard * kShardsPerTenant;
    tc.mix = mix;
    tc.theta = kTheta;
    tc.plan = {kPhases, rpp};
    tc.seed = kSeed ^ (0x9e3779b97f4a7c15ull * (tid + 1));
    apps::ClientTraffic gen(tc);

    co_await w.barrier(bar);
    if (tid == 0) boundary[0] = w.now();
    for (unsigned phase = 0; phase < kPhases; ++phase) {
      const std::uint64_t hot_shard =
          static_cast<std::uint64_t>(gen.range_of(phase)) * kShardsPerTenant;
      if (pol == Policy::kMovePages && phase == 1 && local == 0) {
        // The one corrective action: pull the new hot shard home. The
        // second shift gets no second action — its hot shard stays where
        // this move (by the previous owner) put it: remote.
        co_await w.move_range(store.shard_addr(hot_shard),
                              store.shard_bytes(), w.node());
      }
      const std::uint64_t warm = rpp / kWarmupDiv;
      for (std::uint64_t i = 0; i < rpp; ++i) {
        const apps::Request q = gen.next();
        co_await store.execute(w, q, i < warm ? nullptr : &rows[phase].lat);
      }
      co_await w.barrier(bar);
      // Between the boundary barriers: placement inspection (timing-free).
      if (local == 0) {
        std::uint64_t present = 0;
        for (unsigned n = 0; n < m.topology().num_nodes(); ++n)
          present += store.shard_pages_on(hot_shard, n);
        const std::uint64_t on = store.shard_pages_on(hot_shard, w.node());
        remote[phase][tenant] =
            present == 0 ? 0.0
                         : 1.0 - static_cast<double>(on) /
                                     static_cast<double>(present);
      }
      if (tid == 0) {
        boundary[phase + 1] = w.now();
        migrated_at[phase + 1] = migrated_pages(m.kernel().stats());
      }
      co_await w.barrier(bar);
    }
  };

  m.run_main(2, [&](rt::Thread& th) -> sim::Task<void> {
    co_await store.setup(th);
    co_await team.parallel(th, worker, "serving");
    co_await th.kmigrated_drain();
  });

  for (unsigned p = 0; p < kPhases; ++p) {
    rows[p].span = boundary[p + 1] - boundary[p];
    rows[p].requests = static_cast<std::uint64_t>(kClients) * rpp;
    rows[p].migrated = migrated_at[p + 1] - migrated_at[p];
    double r = 0.0;
    for (unsigned t = 0; t < kTenants; ++t) r += remote[p][t];
    rows[p].hot_remote = r / kTenants;
  }
  return rows;
}

void emit(const bench::Options& opts, Policy pol, apps::Mix mix,
          const std::vector<PhaseRow>& rows) {
  for (unsigned p = 0; p < rows.size(); ++p) {
    const PhaseRow& r = rows[p];
    const double tput_kops =
        r.span == 0 ? 0.0
                    : static_cast<double>(r.requests) * 1e6 /
                          static_cast<double>(r.span);
    std::uint64_t ck = 0xcbf29ce484222325ull;
    ck = fnv_mix(ck, r.lat.count());
    ck = fnv_mix(ck, r.lat.sum());
    ck = fnv_mix(ck, r.lat.min());
    ck = fnv_mix(ck, r.lat.max());
    ck = fnv_mix(ck, static_cast<std::uint64_t>(r.span));
    ck = fnv_mix(ck, r.migrated);
    ck = fnv_mix(ck, static_cast<std::uint64_t>(r.hot_remote * 1e4));
    char ckbuf[20];
    std::snprintf(ckbuf, sizeof ckbuf, "%016llx",
                  static_cast<unsigned long long>(ck));
    bench::print_row(
        opts,
        {policy_name(pol), apps::mix_name(mix), std::to_string(p),
         bench::fmt_u64(r.lat.count()),
         bench::fmt(r.lat.percentile(50) / 1000.0, "%.3f"),
         bench::fmt(r.lat.percentile(95) / 1000.0, "%.3f"),
         bench::fmt(r.lat.percentile(99) / 1000.0, "%.3f"),
         bench::fmt(r.lat.mean() / 1000.0, "%.3f"),
         bench::fmt(tput_kops, "%.1f"),
         bench::fmt(100.0 * r.hot_remote, "%.1f"),
         bench::fmt_u64(r.migrated), ckbuf});
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::extra_usage() =
      "  --mix=M        restrict to one traffic mix:\n"
      "                 read_heavy|write_heavy|scan_mixed (default: all\n"
      "                 three; scan_mixed only with --quick)\n"
      "  --placement=P  restrict to one placement policy: first_touch|\n"
      "                 interleave|move_pages|autonuma|tiering\n";

  // Pull the bench-local enum flags out before the strict common parser.
  apps::Mix only_mix{};
  Policy only_pol{};
  bool have_mix = false, have_pol = false;
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && bench::parse_enum_flag(argv[0], argv[i], "--mix", kMixes,
                                        only_mix)) {
      have_mix = true;
    } else if (i > 0 && bench::parse_enum_flag(argv[0], argv[i], "--placement",
                                               kPlacements, only_pol)) {
      have_pol = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bench::Options opts =
      bench::parse_options(static_cast<int>(rest.size()), rest.data());
  bench::Observability obsv(opts);

  bench::print_header(
      opts, "Serving mixes — multi-tenant KV latency-SLO policy showdown",
      {"policy", "mix", "phase", "requests", "p50_us", "p95_us", "p99_us",
       "mean_us", "tput_kops", "hot_remote_pct", "migrated", "cksum"});

  const std::uint64_t rpp = opts.quick ? 12000 : 30000;
  std::vector<apps::Mix> mixes;
  if (have_mix)
    mixes.push_back(only_mix);
  else if (opts.quick)
    mixes.push_back(apps::Mix::kScanMixed);
  else
    mixes = {apps::Mix::kReadHeavy, apps::Mix::kWriteHeavy,
             apps::Mix::kScanMixed};

  for (const apps::Mix mix : mixes) {
    for (const auto& pl : kPlacements) {
      if (have_pol && pl.value != only_pol) continue;
      emit(opts, pl.value, mix, run_serving(pl.value, mix, rpp));
    }
  }

  obsv.finish();
  return 0;
}
