// Ablation: cost-model sensitivity. Sweeps the calibrated kernel constants
// one at a time and reports how the headline metrics respond — evidence for
// which parts of the model each paper result actually depends on.
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"

using namespace numasim;

namespace {

/// Patched move_pages plateau throughput under a modified cost model.
double move_pages_plateau(const topo::Topology& t, const kern::CostModel& cm) {
  kern::KernelConfig cfg = bench::phantom_kernel_config(t);
  cfg.cost = cm;
  kern::Kernel k(cfg);
  bench::observe(k);
  const kern::Pid pid = k.create_process();
  kern::ThreadCtx c;
  c.pid = pid;
  c.core = 0;
  const std::uint64_t len = 4096 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "b");
  k.access(c, a, len, vm::Prot::kWrite, 3500.0);
  std::vector<vm::Vaddr> pages;
  for (std::uint64_t i = 0; i < len; i += mem::kPageSize) pages.push_back(a + i);
  std::vector<topo::NodeId> nodes(pages.size(), 1);
  std::vector<int> status(pages.size(), 0);
  const sim::Time t0 = c.clock;
  k.sys_move_pages(c, pages, nodes, status);
  return sim::mb_per_second(len, c.clock - t0);
}

/// Kernel next-touch plateau under a modified cost model.
double nt_plateau(const topo::Topology& t, const kern::CostModel& cm) {
  kern::KernelConfig cfg = bench::phantom_kernel_config(t);
  cfg.cost = cm;
  kern::Kernel k(cfg);
  bench::observe(k);
  const kern::Pid pid = k.create_process();
  kern::ThreadCtx c;
  c.pid = pid;
  c.core = 0;
  const std::uint64_t len = 4096 * mem::kPageSize;
  const vm::Vaddr a = k.sys_mmap(c, len, vm::Prot::kReadWrite, {}, "b");
  k.access(c, a, len, vm::Prot::kWrite, 3500.0);
  kern::ThreadCtx r;
  r.pid = pid;
  r.core = 4;
  r.clock = c.clock;
  const sim::Time t0 = r.clock;
  k.sys_madvise(r, a, len, kern::Advice::kMigrateOnNextTouch);
  for (std::uint64_t i = 0; i < len; i += mem::kPageSize)
    k.access(r, a + i, 8, vm::Prot::kReadWrite, 0.0);
  return sim::mb_per_second(len, r.clock - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = numasim::bench::parse_options(argc, argv);
  numasim::bench::Observability obsv(opts);
  const topo::Topology t = topo::Topology::quad_opteron();

  struct Knob {
    std::string name;
    std::function<void(kern::CostModel&, double)> apply;
  };
  const std::vector<Knob> knobs{
      {"kernel_copy_rate", [](kern::CostModel& c, double f) {
         c.kernel_copy_bytes_per_us *= f;
       }},
      {"move_pages_control", [](kern::CostModel& c, double f) {
         c.move_pages_page_control = static_cast<sim::Time>(
             static_cast<double>(c.move_pages_page_control) * f);
       }},
      {"nt_fault_control", [](kern::CostModel& c, double f) {
         c.nt_fault_control = static_cast<sim::Time>(
             static_cast<double>(c.nt_fault_control) * f);
         c.pagefault_entry = static_cast<sim::Time>(
             static_cast<double>(c.pagefault_entry) * f);
       }},
      {"madvise_mark", [](kern::CostModel& c, double f) {
         c.madvise_page_mark = static_cast<sim::Time>(
             static_cast<double>(c.madvise_page_mark) * f);
       }},
  };

  numasim::bench::print_header(
      opts, "Ablation — cost-model sensitivity of the two migration plateaus",
      {"knob", "factor", "move_pages_MBs", "kernel_nt_MBs"});

  for (const Knob& knob : knobs) {
    for (double f : {0.5, 1.0, 2.0}) {
      kern::CostModel cm;
      knob.apply(cm, f);
      numasim::bench::print_row(
          opts, {knob.name, numasim::bench::fmt(f, "%.1f"),
                 numasim::bench::fmt(move_pages_plateau(t, cm)),
                 numasim::bench::fmt(nt_plateau(t, cm))});
    }
  }
  obsv.finish();
  return 0;
}
