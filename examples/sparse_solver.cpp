// Sparse iterative solver example: next-touch + replication working
// together. The row partition drifts (as a load balancer would shift it),
// next-touch keeps each thread's CSR rows local, and the read-shared gather
// vector is replicated so every node reads it at local speed. Numerics are
// verified against a host reference while pages migrate underneath.
//
//   $ ./sparse_solver [rows]   (default 32768)
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apps/spmv.hpp"

using namespace numasim;

namespace {

apps::SpmvResult run(std::uint64_t n, apps::SpmvConfig::Policy policy,
                     bool numeric) {
  rt::Machine::Config mc;
  mc.backing = numeric ? mem::Backing::kMaterialized : mem::Backing::kPhantom;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);
  apps::SpmvConfig cfg;
  cfg.n = n;
  cfg.nnz_per_row = 16;
  cfg.iterations = 8;
  cfg.repartition_every = 2;
  cfg.policy = policy;
  cfg.numeric = numeric;
  apps::Spmv app(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await app.run(th); });

  if (numeric) {
    double max_err = 0;
    for (std::size_t i = 0; i < app.reference_y().size(); ++i)
      max_err = std::max(max_err,
                         std::abs(app.simulated_y()[i] - app.reference_y()[i]));
    std::printf("  verified SpMV against host reference: max error %.2e\n", max_err);
  }
  return app.result();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32768;
  const bool numeric = n <= 4096;
  std::printf("sparse solver: %llu rows x 16 nnz, 16 threads, partition drifts "
              "every 2 of 8 iterations\n\n",
              static_cast<unsigned long long>(n));

  using Policy = apps::SpmvConfig::Policy;
  std::printf("[static interleaved]\n");
  const auto stat = run(n, Policy::kStatic, numeric);
  std::printf("  solve time: %s\n\n", sim::format_time(stat.solve_time).c_str());

  std::printf("[next-touch on CSR rows]\n");
  const auto nt = run(n, Policy::kNextTouch, numeric);
  std::printf("  solve time: %s  (migrated %llu pages)\n\n",
              sim::format_time(nt.solve_time).c_str(),
              static_cast<unsigned long long>(nt.pages_migrated));

  std::printf("[next-touch + replicated gather vector]\n");
  const auto repl = run(n, Policy::kNextTouchReplX, numeric);
  std::printf("  solve time: %s  (migrated %llu pages, %llu replicas)\n\n",
              sim::format_time(repl.solve_time).c_str(),
              static_cast<unsigned long long>(repl.pages_migrated),
              static_cast<unsigned long long>(repl.replicas_created));

  std::printf("next-touch vs static:      %+.1f%%\n",
              100.0 * (static_cast<double>(stat.solve_time) /
                           static_cast<double>(nt.solve_time) -
                       1.0));
  std::printf("nt+replication vs static:  %+.1f%%\n",
              100.0 * (static_cast<double>(stat.solve_time) /
                           static_cast<double>(repl.solve_time) -
                       1.0));
  return 0;
}
