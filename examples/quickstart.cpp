// Quickstart: build the paper's 4-node Opteron machine, allocate memory
// under different NUMA policies, and watch next-touch migration move pages
// to whichever thread uses them.
//
//   $ ./quickstart
//
// Walks through:
//   1. machine + topology inspection (numactl --hardware style),
//   2. first-touch / interleave / bind placement,
//   3. synchronous migration with move_pages,
//   4. the paper's kernel next-touch (madvise + fault-driven migration),
//   5. a numa_maps-style report.
#include <cstdio>

#include "lib/numalib.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

using namespace numasim;

namespace {

void show_placement(rt::Machine& m, const char* what,
                    const lib::NumaBuffer& buf) {
  std::printf("%-38s", what);
  for (topo::NodeId n = 0; n < m.topology().num_nodes(); ++n)
    std::printf(" N%u=%-4llu", n,
                static_cast<unsigned long long>(buf.pages_on(n)));
  std::printf("\n");
}

}  // namespace

int main() {
  rt::Machine m;  // default: the paper's 4x quad-core Opteron, materialized

  std::printf("=== machine ===\n%s\n", m.topology().describe().c_str());

  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    kern::Kernel& k = m.kernel();
    const std::uint64_t len = 64 * mem::kPageSize;

    // --- placement policies: RAII NumaBuffer handles -----------------------
    lib::NumaBuffer ft = lib::NumaBuffer::local(th.ctx(), k, len, "first-touch");
    lib::NumaBuffer il =
        lib::NumaBuffer::interleaved(th.ctx(), k, len, "interleave");
    lib::NumaBuffer b3 = lib::NumaBuffer::on_node(th.ctx(), k, len, 3, "bind3");
    co_await th.touch(ft.addr(), ft.size());
    co_await th.touch(il.addr(), il.size());
    co_await th.touch(b3.addr(), b3.size());
    std::printf("=== placement (thread on core %u / node %u) ===\n", th.core(),
                th.node());
    show_placement(m, "first-touch:", ft);
    show_placement(m, "interleaved:", il);
    show_placement(m, "bound to node 3:", b3);

    // --- synchronous migration ----------------------------------------------
    const sim::Time t0 = th.now();
    const kern::SyscallResult moved = ft.sync_migrate(th.ctx(), 2);
    co_await th.sync();
    std::printf("\n=== move_pages ===\nmigrated %ld pages to node 2 in %s "
                "(%.0f MB/s)\n",
                static_cast<long>(moved), sim::format_time(th.now() - t0).c_str(),
                sim::mb_per_second(len, th.now() - t0));
    show_placement(m, "after move_pages:", ft);

    // --- kernel next-touch ---------------------------------------------------
    ft.lazy_migrate(th.ctx());
    co_await th.sync();
    std::printf("\n=== next-touch ===\nmarked migrate-on-next-touch; hopping "
                "to core 12 (node 3) and touching...\n");
    co_await th.migrate_to_core(12);
    const sim::Time t1 = th.now();
    const kern::AccessResult r = co_await th.touch(ft.addr(), ft.size());
    std::printf("touch faulted %llu pages, migrated %llu in %s (%.0f MB/s)\n",
                static_cast<unsigned long long>(r.pages),
                static_cast<unsigned long long>(r.nexttouch_migrations),
                sim::format_time(th.now() - t1).c_str(),
                sim::mb_per_second(len, th.now() - t1));
    show_placement(m, "after next-touch:", ft);

    std::printf("\n=== numa_maps ===\n%s", k.numa_maps(m.pid()).c_str());
    std::printf("\nsimulated time elapsed: %s\n",
                sim::format_time(th.now()).c_str());
  });
  return 0;
}
