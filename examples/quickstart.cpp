// Quickstart: build the paper's 4-node Opteron machine, allocate memory
// under different NUMA policies, and watch next-touch migration move pages
// to whichever thread uses them.
//
//   $ ./quickstart
//
// Walks through:
//   1. machine + topology inspection (numactl --hardware style),
//   2. first-touch / interleave / bind placement,
//   3. synchronous migration with move_pages,
//   4. the paper's kernel next-touch (madvise + fault-driven migration),
//   5. a numa_maps-style report.
#include <cstdio>

#include "lib/numalib.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

using namespace numasim;

namespace {

void show_placement(rt::Machine& m, const char* what, vm::Vaddr a,
                    std::uint64_t len) {
  std::printf("%-38s", what);
  for (topo::NodeId n = 0; n < m.topology().num_nodes(); ++n)
    std::printf(" N%u=%-4llu", n,
                static_cast<unsigned long long>(
                    m.kernel().pages_on_node(m.pid(), a, len, n)));
  std::printf("\n");
}

}  // namespace

int main() {
  rt::Machine m;  // default: the paper's 4x quad-core Opteron, materialized

  std::printf("=== machine ===\n%s\n", m.topology().describe().c_str());

  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    kern::Kernel& k = m.kernel();
    const std::uint64_t len = 64 * mem::kPageSize;

    // --- placement policies -------------------------------------------------
    const vm::Vaddr ft = lib::numa_alloc_local(th.ctx(), k, len, "first-touch");
    const vm::Vaddr il = lib::numa_alloc_interleaved(th.ctx(), k, len, "interleave");
    const vm::Vaddr b3 = lib::numa_alloc_onnode(th.ctx(), k, len, 3, "bind3");
    co_await th.touch(ft, len);
    co_await th.touch(il, len);
    co_await th.touch(b3, len);
    std::printf("=== placement (thread on core %u / node %u) ===\n", th.core(),
                th.node());
    show_placement(m, "first-touch:", ft, len);
    show_placement(m, "interleaved:", il, len);
    show_placement(m, "bound to node 3:", b3, len);

    // --- synchronous migration ----------------------------------------------
    const sim::Time t0 = th.now();
    const long moved = co_await th.move_range(ft, len, 2);
    std::printf("\n=== move_pages ===\nmigrated %ld pages to node 2 in %s "
                "(%.0f MB/s)\n",
                moved, sim::format_time(th.now() - t0).c_str(),
                sim::mb_per_second(len, th.now() - t0));
    show_placement(m, "after move_pages:", ft, len);

    // --- kernel next-touch ---------------------------------------------------
    co_await th.madvise(ft, len, kern::Advice::kMigrateOnNextTouch);
    std::printf("\n=== next-touch ===\nmarked migrate-on-next-touch; hopping "
                "to core 12 (node 3) and touching...\n");
    co_await th.migrate_to_core(12);
    const sim::Time t1 = th.now();
    const kern::AccessResult r = co_await th.touch(ft, len);
    std::printf("touch faulted %llu pages, migrated %llu in %s (%.0f MB/s)\n",
                static_cast<unsigned long long>(r.pages),
                static_cast<unsigned long long>(r.nexttouch_migrations),
                sim::format_time(th.now() - t1).c_str(),
                sim::mb_per_second(len, th.now() - t1));
    show_placement(m, "after next-touch:", ft, len);

    std::printf("\n=== numa_maps ===\n%s", k.numa_maps(m.pid()).c_str());
    std::printf("\nsimulated time elapsed: %s\n",
                sim::format_time(th.now()).c_str());
  });
  return 0;
}
