// Adaptive mesh refinement mock: the paper's motivating "highly dynamic
// application" (Sections 1-2). A 1-D mesh of cells carries per-cell work
// that concentrates in a moving hot region; every few steps the partition is
// rebalanced so each thread gets equal work, which shuffles cell ownership
// across NUMA nodes. Next-touch redistribution keeps data local to its new
// owner; static placement decays as the refinement front moves.
//
//   $ ./adaptive_mesh [steps]   (default 24)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lib/numalib.hpp"
#include "rt/team.hpp"

using namespace numasim;

namespace {

constexpr std::uint64_t kCells = 1u << 14;        // mesh cells
constexpr std::uint64_t kCellBytes = 4096;        // one page per cell
constexpr std::uint64_t kBaseWork = 1;            // refinement units

/// Refinement level per cell: a Gaussian-ish bump that drifts right.
unsigned work_of(std::uint64_t cell, unsigned step) {
  const auto center = (kCells / 8) + step * (kCells / 32);
  const auto d = cell > center ? cell - center : center - cell;
  if (d < kCells / 64) return 12 * kBaseWork;
  if (d < kCells / 16) return 4 * kBaseWork;
  return kBaseWork;
}

/// Equal-work contiguous partition of the mesh across `parts` threads.
std::vector<std::uint64_t> partition(unsigned step, unsigned parts) {
  std::uint64_t total = 0;
  for (std::uint64_t c = 0; c < kCells; ++c) total += work_of(c, step);
  std::vector<std::uint64_t> bounds{0};
  std::uint64_t acc = 0, target = total / parts;
  for (std::uint64_t c = 0; c < kCells && bounds.size() < parts; ++c) {
    acc += work_of(c, step);
    if (acc >= target * bounds.size()) bounds.push_back(c + 1);
  }
  while (bounds.size() < parts) bounds.push_back(kCells);
  bounds.push_back(kCells);
  return bounds;
}

sim::Time run(unsigned steps, bool next_touch) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);
  sim::Time span = 0;

  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    kern::Kernel& k = m.kernel();
    const std::uint64_t bytes = kCells * kCellBytes;
    lib::NumaBuffer mesh_buf =
        lib::NumaBuffer::interleaved(th.ctx(), k, bytes, "mesh");
    mesh_buf.populate(th.ctx());
    co_await th.sync();
    const vm::Vaddr mesh = mesh_buf.addr();

    const sim::Time t0 = th.now();
    for (unsigned step = 0; step < steps; ++step) {
      // Rebalance, then (optionally) let the data follow its new owners.
      const auto bounds = partition(step, team.size());
      if (next_touch) {
        mesh_buf.lazy_migrate(th.ctx());
        co_await th.sync();
      }

      rt::Team::WorkerFn body = [&, step, bounds](unsigned tid, rt::Thread& w)
          -> sim::Task<void> {
        for (std::uint64_t c = bounds[tid]; c < bounds[tid + 1]; ++c) {
          const unsigned units = work_of(c, step);
          // Each work unit re-reads the cell (stencil sweeps).
          co_await w.touch(mesh + c * kCellBytes, kCellBytes, vm::Prot::kReadWrite);
          co_await w.compute(units * 600);
          for (unsigned u = 1; u < units; ++u)
            co_await w.touch(mesh + c * kCellBytes, kCellBytes, vm::Prot::kRead);
        }
      };
      co_await team.parallel(th, std::move(body), "mesh-step");
    }
    span = th.now() - t0;
  });
  return span;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned steps = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 24;
  std::printf("adaptive mesh: %llu cells (one page each), 16 threads, %u steps,\n"
              "refinement front drifting across the rebalanced partition\n\n",
              static_cast<unsigned long long>(kCells), steps);

  const sim::Time stat = run(steps, false);
  std::printf("static interleaved: %s\n", sim::format_time(stat).c_str());
  const sim::Time nt = run(steps, true);
  std::printf("next-touch:         %s\n", sim::format_time(nt).c_str());
  std::printf("improvement:        %+.1f%%\n",
              100.0 * (static_cast<double>(stat) / static_cast<double>(nt) - 1.0));
  return 0;
}
