// Administrator's view: whole-process migration with migrate_pages.
//
// The paper (Sec. 2.3) describes migrate_pages as "mostly a load-balancing
// feature that administrators use to split a large single machine into
// pieces (cpusets) and share it between multiple users". This example plays
// that scenario: two processes first share nodes {0,1}; the administrator
// then gives each its own half of the machine and migrates their memory
// wholesale, watching placement through numa_maps and the event trace.
//
// Compat note: this example used to consume the raw Linux ABI long from
// sys_migrate_pages (negative errno or moved-count); it now keeps the typed
// kern::SyscallResult and reads .ok()/.error()/.count(). The ABI value is
// still available via implicit long conversion for code that needs it.
//
//   $ ./numactl_admin
#include <cstdio>

#include "kern/kernel.hpp"

using namespace numasim;

namespace {

void show(kern::Kernel& k, kern::Pid pid, const char* name) {
  std::printf("--- numa_maps of %s ---\n%s", name, k.numa_maps(pid).c_str());
}

}  // namespace

int main() {
  const topo::Topology topo = topo::Topology::quad_opteron();
  kern::Kernel k(kern::KernelConfig{.topology = topo,
                                    .backing = mem::Backing::kPhantom});
  kern::EventLog log;
  k.set_event_log(&log);

  // Two tenant processes, both initially packed onto nodes 0 and 1.
  const kern::Pid alice = k.create_process("alice");
  const kern::Pid bob = k.create_process("bob");

  kern::ThreadCtx ta;
  ta.pid = alice;
  ta.core = 0;  // node 0
  kern::ThreadCtx tb;
  tb.pid = bob;
  tb.core = 4;  // node 1

  const std::uint64_t len = 256 * mem::kPageSize;  // 1 MiB each
  const vm::Vaddr a1 = k.sys_mmap(ta, len, vm::Prot::kReadWrite,
                                  vm::MemPolicy::interleave(0b0011), "heap");
  const vm::Vaddr b1 = k.sys_mmap(tb, len, vm::Prot::kReadWrite,
                                  vm::MemPolicy::interleave(0b0011), "heap");
  k.access(ta, a1, len, vm::Prot::kWrite, 3500.0);
  k.access(tb, b1, len, vm::Prot::kWrite, 3500.0);

  std::printf("=== before partitioning (both tenants interleaved on nodes 0-1) ===\n");
  show(k, alice, "alice");
  show(k, bob, "bob");

  // Administrator decision: alice gets nodes {0,1}, bob moves to {2,3}.
  kern::ThreadCtx admin;
  admin.pid = alice;  // syscalls on behalf of the admin tool
  admin.core = 0;
  admin.clock = std::max(ta.clock, tb.clock);
  const sim::Time t0 = admin.clock;
  const kern::SyscallResult r =
      k.sys_migrate_pages(admin, bob, /*from=*/0b0011, /*to=*/0b1100);
  if (!r.ok()) {
    std::fprintf(stderr, "migrate_pages failed: errno %d\n", r.error());
    return 1;
  }
  const auto moved = static_cast<std::uint64_t>(r.count());

  std::printf("=== migrate_pages(bob, {0,1} -> {2,3}) ===\n");
  std::printf("moved %llu pages in %s (%.0f MB/s)\n\n",
              static_cast<unsigned long long>(moved),
              sim::format_time(admin.clock - t0).c_str(),
              sim::mb_per_second(moved * mem::kPageSize, admin.clock - t0));
  show(k, alice, "alice");
  show(k, bob, "bob");

  std::printf("=== kernel event trace (tail) ===\n%s", log.render(6).c_str());
  return 0;
}
