// LU factorization example: the paper's Section 4.5 workload, runnable at
// laptop scale. Factorizes an interleaved matrix with 16 simulated OpenMP
// threads twice — static allocation vs the per-iteration next-touch hook —
// and verifies the numerics against a host-side reference factorization.
//
//   $ ./lu_factorization [N] [BS]     (defaults: 1024 128)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/lu.hpp"

using namespace numasim;

namespace {

double demo_fill(std::uint64_t r, std::uint64_t c) {
  if (r == c) return 80.0;
  return std::cos(static_cast<double>(r * 7 + c * 3)) * 0.9;
}

apps::LuResult run_once(std::uint64_t n, std::uint64_t bs, bool next_touch,
                        bool verify) {
  rt::Machine::Config mc;
  mc.backing = verify ? mem::Backing::kMaterialized : mem::Backing::kPhantom;
  rt::Machine m(mc);
  rt::Team team = rt::Team::all_cores(m);

  apps::LuConfig cfg;
  cfg.n = n;
  cfg.bs = bs;
  cfg.next_touch = next_touch;
  cfg.blas.numeric = verify;
  cfg.fill = demo_fill;

  apps::LuFactorization lu(m, team, cfg);
  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> { co_await lu.run(th); });

  if (verify) {
    std::vector<double> ref(n * n);
    for (std::uint64_t r = 0; r < n; ++r)
      for (std::uint64_t c = 0; c < n; ++c) ref[r * n + c] = demo_fill(r, c);
    for (std::uint64_t k = 0; k < n; ++k)
      for (std::uint64_t i = k + 1; i < n; ++i) {
        ref[i * n + k] /= ref[k * n + k];
        for (std::uint64_t j = k + 1; j < n; ++j)
          ref[i * n + j] -= ref[i * n + k] * ref[k * n + j];
      }
    const auto got = blas::dump_matrix(m, lu.matrix());
    double max_err = 0;
    for (std::size_t i = 0; i < got.size(); ++i)
      max_err = std::max(max_err,
                         std::abs(got[i] - ref[i]) / (1.0 + std::abs(ref[i])));
    std::printf("  numerics vs host reference: max relative error %.2e %s\n",
                max_err, max_err < 1e-9 ? "(exact)" : "");
  }
  return lu.result();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const std::uint64_t bs = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 128;
  const bool verify = n <= 1024;  // host reference is O(N^3)

  std::printf("LU factorization of a %llux%llu matrix, %llu-blocks, 16 threads\n",
              static_cast<unsigned long long>(n), static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(bs));

  std::printf("\n[static interleaved allocation]\n");
  const apps::LuResult stat = run_once(n, bs, false, verify);
  std::printf("  factorization time: %s\n", sim::format_time(stat.factor_time).c_str());

  std::printf("\n[next-touch redistribution each iteration]\n");
  const apps::LuResult nt = run_once(n, bs, true, verify);
  std::printf("  factorization time: %s\n", sim::format_time(nt.factor_time).c_str());
  std::printf("  madvise hooks: %llu, pages migrated by next-touch: %llu\n",
              static_cast<unsigned long long>(nt.madvise_calls),
              static_cast<unsigned long long>(nt.nexttouch_migrations));

  const double imp = 100.0 * (static_cast<double>(stat.factor_time) /
                                  static_cast<double>(nt.factor_time) -
                              1.0);
  std::printf("\nnext-touch improvement: %+.1f%%  (positive above the paper's "
              "512-block threshold, negative below)\n", imp);
  return 0;
}
