// Joint thread + memory migration (the paper's Section 3.4 scenario).
//
// A worker thread builds a working set on its node, then the "scheduler"
// moves it to a core on a different node for load-balancing. Three policies
// for the data:
//   1. leave it behind (remote access forever),
//   2. synchronously move_pages the whole workset at migration time,
//   3. mark it migrate-on-next-touch and let the pages it actually uses
//      follow lazily — including the case where only part of the workset is
//      ever touched again, where lazy wins by not moving dead data.
//
//   $ ./thread_migration
#include <cstdio>

#include "lib/numalib.hpp"
#include "rt/machine.hpp"
#include "rt/thread.hpp"

using namespace numasim;

namespace {

constexpr std::uint64_t kWorksetPages = 4096;           // 16 MiB
constexpr std::uint64_t kWorksetBytes = kWorksetPages * mem::kPageSize;
constexpr double kTouchedFraction = 0.5;                // used after migration
constexpr unsigned kPasses = 3;

enum class Policy { kLeaveRemote, kSyncMove, kLazyNextTouch };

const char* name_of(Policy p) {
  switch (p) {
    case Policy::kLeaveRemote: return "leave data remote";
    case Policy::kSyncMove: return "synchronous move_pages";
    case Policy::kLazyNextTouch: return "lazy next-touch";
  }
  return "?";
}

sim::Time run(Policy policy) {
  rt::Machine::Config mc;
  mc.backing = mem::Backing::kPhantom;
  rt::Machine m(mc);
  sim::Time elapsed = 0;

  m.run_main(0, [&](rt::Thread& th) -> sim::Task<void> {
    kern::Kernel& k = m.kernel();
    // Build the working set locally on node 0 (freed by the handle's dtor).
    lib::NumaBuffer ws = lib::NumaBuffer::local(th.ctx(), k, kWorksetBytes, "ws");
    {
      rt::Thread::Phase build = th.phase("build-workset");
      co_await th.touch(ws.addr(), ws.size());
    }

    // Scheduler decision: thread moves to node 2.
    co_await th.migrate_to_core(8);
    const sim::Time t0 = th.now();

    const std::uint64_t used =
        static_cast<std::uint64_t>(kTouchedFraction * kWorksetBytes);
    if (policy == Policy::kSyncMove) {
      ws.sync_migrate(th.ctx(), th.node());
      co_await th.sync();
    } else if (policy == Policy::kLazyNextTouch) {
      ws.lazy_migrate(th.ctx());
      co_await th.sync();
    }
    {
      rt::Thread::Phase use = th.phase("post-migration-passes");
      for (unsigned p = 0; p < kPasses; ++p)
        co_await th.touch(ws.addr(), used, vm::Prot::kReadWrite);
    }
    elapsed = th.now() - t0;

    std::printf("%-24s %10s   pages now on node 2: %llu/%llu\n", name_of(policy),
                sim::format_time(elapsed).c_str(),
                static_cast<unsigned long long>(ws.pages_on(2)),
                static_cast<unsigned long long>(kWorksetPages));
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("thread migrated node0 -> node2; workset %llu MiB, %.0f%% touched "
              "afterwards, %u passes\n\n",
              static_cast<unsigned long long>(kWorksetBytes >> 20),
              kTouchedFraction * 100, kPasses);
  const sim::Time remote = run(Policy::kLeaveRemote);
  const sim::Time sync = run(Policy::kSyncMove);
  const sim::Time lazy = run(Policy::kLazyNextTouch);

  std::printf("\nlazy vs sync:   %+.1f%%  (lazy moves only touched pages)\n",
              100.0 * (static_cast<double>(sync) / static_cast<double>(lazy) - 1.0));
  std::printf("lazy vs remote: %+.1f%%\n",
              100.0 * (static_cast<double>(remote) / static_cast<double>(lazy) - 1.0));
  return 0;
}
